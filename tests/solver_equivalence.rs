//! Solver-equivalence sweep: the MILP engine's determinism contract at
//! the flow level. For every graph, running the mapping-aware MILP flow
//! serially and with `jobs = 4` must return the *identical* objective
//! and — under the solver's deterministic lexicographic tie-break — the
//! identical schedule and cover, bit for bit.
//!
//! Timed-out solves return a best-effort incumbent whose identity is
//! wall-clock-dependent, so equivalence is only asserted when both runs
//! prove optimality; the sweep requires that to happen on most random
//! graphs and checks every Table 1 benchmark under a trimmed cut config
//! that keeps the models solvable in seconds.

use std::time::Duration;

use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::ir::{random_dfg, RandomDfgConfig, Target};
use pipemap::milp::Status;

fn opts(jobs: usize) -> FlowOptions {
    FlowOptions {
        time_limit: Duration::from_secs(10),
        jobs,
        ..FlowOptions::default()
    }
}

#[test]
fn random_graphs_serial_matches_jobs4() {
    let cfg = RandomDfgConfig::default();
    let target = Target::default();
    let mut proven = 0;
    for seed in 0..16u64 {
        let dfg = random_dfg(seed, &cfg);
        let serial = run_flow(&dfg, &target, Flow::MilpMap, &opts(1))
            .unwrap_or_else(|e| panic!("seed {seed}: serial: {e}"));
        let par = run_flow(&dfg, &target, Flow::MilpMap, &opts(4))
            .unwrap_or_else(|e| panic!("seed {seed}: jobs=4: {e}"));
        let (ss, sp) = (
            serial.milp.as_ref().expect("serial stats"),
            par.milp.as_ref().expect("parallel stats"),
        );
        if ss.status != Status::Optimal || sp.status != Status::Optimal {
            continue;
        }
        proven += 1;
        assert!(
            (ss.objective - sp.objective).abs() < 1e-6,
            "seed {seed}: objective {} (serial) vs {} (jobs=4)",
            ss.objective,
            sp.objective
        );
        assert_eq!(
            serial.implementation, par.implementation,
            "seed {seed}: schedule/cover diverged between jobs=1 and jobs=4"
        );
    }
    assert!(proven >= 12, "only {proven}/16 graphs solved to optimality");
}

#[test]
fn benchmarks_serial_matches_jobs4() {
    // Trimmed cut enumeration keeps every Table 1 model small enough to
    // solve to proven optimality in seconds; the determinism contract
    // is model-independent, so this still exercises all nine graphs.
    let trim = |jobs: usize| FlowOptions {
        max_cuts: 2,
        max_cone: 6,
        analyze: false,
        time_limit: Duration::from_secs(20),
        jobs,
        ..FlowOptions::default()
    };
    let mut proven = 0;
    for b in pipemap::bench_suite::all() {
        let serial = run_flow(&b.dfg, &b.target, Flow::MilpMap, &trim(1))
            .unwrap_or_else(|e| panic!("{}: serial: {e}", b.name));
        let par = run_flow(&b.dfg, &b.target, Flow::MilpMap, &trim(4))
            .unwrap_or_else(|e| panic!("{}: jobs=4: {e}", b.name));
        let (ss, sp) = (
            serial.milp.as_ref().expect("serial stats"),
            par.milp.as_ref().expect("parallel stats"),
        );
        assert_eq!(
            ss.status, sp.status,
            "{}: status diverged between jobs=1 and jobs=4",
            b.name
        );
        if ss.status != Status::Optimal {
            continue;
        }
        proven += 1;
        assert!(
            (ss.objective - sp.objective).abs() < 1e-6,
            "{}: objective {} (serial) vs {} (jobs=4)",
            b.name,
            ss.objective,
            sp.objective
        );
        assert_eq!(
            serial.implementation, par.implementation,
            "{}: schedule/cover diverged between jobs=1 and jobs=4",
            b.name
        );
    }
    // Even trimmed, several application benchmarks stay hard (the paper
    // gives CPLEX an hour); four proofs are enough to make the
    // objective/schedule equality assertions above meaningful.
    assert!(
        proven >= 4,
        "only {proven}/9 benchmarks solved to optimality"
    );
}
