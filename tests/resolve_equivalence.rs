//! Re-solve equivalence sweep: the incremental engine's determinism
//! contract. For 200 random (seed, jobs) cases, a [`ResolveContext`]
//! walked through a random sequence of bound, objective, and cut deltas
//! must report the *identical* status and objective as solving the
//! identically-edited model from scratch after every step, and every
//! assignment it returns must independently re-verify as feasible. The
//! incremental path may legitimately return a different member of a
//! tied optimal set than the cold solver (warm starts change which
//! optimal vertex each node LP lands on), so assignments are compared
//! up to re-verified feasibility at the same objective, not bit for
//! bit.
//!
//! A final DFG-level case runs the design-space sweep incrementally and
//! cold over a random graph and requires pointwise agreement — the same
//! contract `pipemap sweep --audit` and the `bench-suite resolve`
//! harness rely on.

use std::time::Duration;

use pipemap::core::{run_sweep, SweepConfig};
use pipemap::ir::{random_dfg, RandomDfgConfig, Target};
use pipemap::milp::{LinExpr, Model, ResolveContext, Sense, SolverOptions, Status, VarId};

/// xorshift64* — the same generator the other sweeps use, inlined to
/// keep the case set reproducible from the seed alone.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// A small random mixed model: binaries plus boxed continuous columns
/// and a few ≤/≥ rows, everything integer-coefficient so objective
/// comparisons are exact-grid.
fn random_model(r: &mut Rng) -> (Model, usize) {
    let n_bin = r.range(2, 6) as usize;
    let n_cont = r.range(1, 4) as usize;
    let n = n_bin + n_cont;
    let mut m = Model::new("resolve-eq");
    let mut vars = Vec::with_capacity(n);
    for _ in 0..n_bin {
        vars.push(m.add_binary(r.range(-6, 7) as f64));
    }
    for _ in 0..n_cont {
        vars.push(m.add_continuous(0.0, 5.0, r.range(-6, 7) as f64));
    }
    for _ in 0..r.range(1, 5) {
        let e: LinExpr = vars.iter().map(|&v| (r.range(-4, 5) as f64, v)).collect();
        let sense = if r.next_u64() & 1 == 0 {
            Sense::Le
        } else {
            Sense::Ge
        };
        m.add_constraint(e, sense, r.range(-6, 10) as f64);
    }
    (m, n)
}

/// One random delta applied to both the context and the shadow model.
fn apply_delta(r: &mut Rng, cx: &mut ResolveContext, shadow: &mut Model, n: usize) {
    match r.range(0, 3) {
        0 => {
            // Bound delta: clamp a column into a random sub-box of its
            // current bounds (never crossing, possibly a fixing).
            let v = VarId::from_index(r.range(0, n as i64) as usize);
            let (lb, ub) = shadow.bounds(v);
            let lo = lb.max(r.range(0, 3) as f64).min(ub);
            let hi = (lo + r.range(0, 3) as f64).min(ub);
            cx.set_bounds(v, lo, hi);
            shadow.set_bounds(v, lo, hi);
        }
        1 => {
            // Objective delta.
            let v = VarId::from_index(r.range(0, n as i64) as usize);
            let w = r.range(-6, 7) as f64;
            cx.set_objective_coeff(v, w);
            shadow.set_objective_coeff(v, w);
        }
        _ => {
            // Cut delta: a random ≤ row over all columns, slack enough
            // to usually (not always) keep the model feasible.
            let coeffs: Vec<f64> = (0..n).map(|_| r.range(-2, 3) as f64).collect();
            let rhs = r.range(2, 12) as f64;
            let e1: LinExpr = coeffs
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, VarId::from_index(j)))
                .collect();
            let e2: LinExpr = coeffs
                .iter()
                .enumerate()
                .map(|(j, &c)| (c, VarId::from_index(j)))
                .collect();
            cx.add_cut(e1, Sense::Le, rhs);
            shadow.add_constraint(e2, Sense::Le, rhs);
        }
    }
}

fn check_case(seed: u64, jobs: usize) {
    let mut r = Rng::new(seed);
    let (base, n) = random_model(&mut r);
    let opts = SolverOptions {
        jobs,
        time_limit: Duration::from_secs(30),
        ..SolverOptions::default()
    };
    let mut cx = ResolveContext::new(base.clone());
    let mut shadow = base;
    for step in 0..4 {
        if step > 0 {
            apply_delta(&mut r, &mut cx, &mut shadow, n);
        }
        let warm = cx
            .solve(&opts)
            .unwrap_or_else(|e| panic!("seed {seed} jobs {jobs} step {step}: incremental: {e}"));
        let cold = shadow
            .solve(&opts)
            .unwrap_or_else(|e| panic!("seed {seed} jobs {jobs} step {step}: cold: {e}"));
        assert_eq!(
            warm.status, cold.status,
            "seed {seed} jobs {jobs} step {step}: status diverged"
        );
        if warm.status == Status::Optimal {
            assert!(
                (warm.objective - cold.objective).abs() <= 1e-6,
                "seed {seed} jobs {jobs} step {step}: objective {} vs {}",
                warm.objective,
                cold.objective
            );
        }
        if warm.status.has_solution() {
            assert!(
                shadow.check_feasible(&warm.values, 1e-6).is_none(),
                "seed {seed} jobs {jobs} step {step}: incremental assignment infeasible"
            );
        }
    }
}

/// 100 seeds × jobs ∈ {1, 4} = 200 cases, each a 4-step delta walk.
#[test]
fn random_delta_walks_match_cold_resolves() {
    for seed in 0..100u64 {
        for &jobs in &[1usize, 4] {
            check_case(seed, jobs);
        }
    }
}

/// DFG-level: the incremental design-space sweep must agree pointwise
/// (status, objective) with the cold per-point replay on a random graph.
#[test]
fn sweep_incremental_matches_cold_on_random_dfg() {
    let dfg = random_dfg(7, &RandomDfgConfig::default());
    let target = Target::default();
    let cfg = |incremental: bool| SweepConfig {
        ii_values: vec![1, 2],
        k_values: vec![4],
        weights: vec![(1.0, 0.0, 0.0), (0.5, 0.5, 0.0)],
        time_limit: Duration::from_secs(20),
        incremental,
        ..SweepConfig::default()
    };
    let warm = run_sweep(&dfg, &target, &cfg(true)).expect("incremental sweep");
    let cold = run_sweep(&dfg, &target, &cfg(false)).expect("cold sweep");
    assert_eq!(warm.points.len(), cold.points.len());
    for (w, c) in warm.points.iter().zip(cold.points.iter()) {
        assert_eq!((w.ii, w.k), (c.ii, c.k));
        assert_eq!(w.status, c.status, "ii={} α={}", w.ii, w.alpha);
        assert!(
            (w.objective - c.objective).abs() <= 1e-6,
            "ii={} α={}: {} vs {}",
            w.ii,
            w.alpha,
            w.objective,
            c.objective
        );
    }
}
