//! Property tests over randomly generated CDFGs: cut enumeration
//! invariants, scheduler legality, functional equivalence of every
//! produced pipeline with the reference interpreter, and zero-error
//! verification of every flow by the `pipemap-verify` static checker.
//!
//! Graphs come from [`pipemap::ir::random_dfg`] — a deterministic,
//! dependency-free generator (the offline stand-in for an external
//! property-testing crate). Each property sweeps a fixed seed range, so
//! a failure reproduces from its seed alone.

use pipemap::core::{run_flow, schedule_baseline, schedule_mapped_heuristic, Flow, FlowOptions};
use pipemap::cuts::{cone_nodes, CutConfig, CutDb};
use pipemap::ir::{random_dfg, Dfg, InputStreams, RandomDfgConfig, Target};
use pipemap::netlist::{verify, verify_functional};
use pipemap::verify::{check_flows_with_graphs, FlowCheckOptions};

const CASES: u64 = 48;

fn cfg() -> RandomDfgConfig {
    RandomDfgConfig::default()
}

/// Every enumerated non-unit cut is K-feasible, the unit cut comes
/// first, and every cut's cone is extractable.
#[test]
fn cut_enumeration_invariants() {
    for seed in 0..CASES {
        let dfg = random_dfg(seed, &cfg());
        let target = Target::default();
        let cut_cfg = CutConfig::for_target(&target);
        let db = CutDb::enumerate(&dfg, &cut_cfg);
        for (id, node) in dfg.iter() {
            let set = db.cuts(id);
            if !node.op.is_lut_mappable() {
                assert!(set.is_empty());
                continue;
            }
            assert!(!set.is_empty(), "seed {seed}: missing unit cut for {id}");
            for (i, cut) in set.cuts().iter().enumerate() {
                if i > 0 {
                    assert!(
                        cut.max_bit_support() <= cut_cfg.k,
                        "seed {seed}: cut {cut} of {id} exceeds K"
                    );
                }
                let cone = cone_nodes(&dfg, id, cut);
                assert!(cone.contains(&id));
                // The traced (bit-level) cone may be smaller than the
                // structural one when bits are shifted out or masked.
                assert!(
                    cone.len() as u32 >= cut.cone_size() || i == 0,
                    "seed {seed}: structural cone {} < traced {}",
                    cone.len(),
                    cut.cone_size()
                );
            }
        }
    }
}

/// The baseline flow always produces a legal, functionally correct
/// pipeline (II is bumped if needed).
#[test]
fn baseline_always_legal_and_correct() {
    for seed in 0..CASES {
        let dfg = random_dfg(seed, &cfg());
        let target = Target::default();
        let db = CutDb::enumerate(&dfg, &CutConfig::for_target(&target));
        let base = schedule_baseline(&dfg, &target, 1, &db).expect("baseline schedules");
        verify(&dfg, &target, &base.implementation).expect("legal");
        let ins = InputStreams::random(&dfg, 12, 0xFACE);
        verify_functional(&dfg, &target, &base.implementation, &ins, 12)
            .unwrap_or_else(|e| panic!("seed {seed}: functional: {e}"));
    }
}

/// The mapping-aware heuristic, when it succeeds, is legal and
/// functionally correct, and never uses a longer pipeline than the
/// additive baseline at the same II.
#[test]
fn mapped_heuristic_legal_and_no_deeper() {
    for seed in 0..CASES {
        let dfg = random_dfg(seed, &cfg());
        let target = Target::default();
        let db = CutDb::enumerate(&dfg, &CutConfig::for_target(&target));
        let base = schedule_baseline(&dfg, &target, 1, &db).expect("baseline schedules");
        if let Some(h) = schedule_mapped_heuristic(&dfg, &target, 1, &db) {
            verify(&dfg, &target, &h.implementation).expect("legal");
            let ins = InputStreams::random(&dfg, 12, 0xF00D);
            verify_functional(&dfg, &target, &h.implementation, &ins, 12)
                .unwrap_or_else(|e| panic!("seed {seed}: functional: {e}"));
            if h.ii == base.ii {
                assert!(
                    h.implementation.schedule.depth() <= base.implementation.schedule.depth(),
                    "seed {seed}: heuristic deeper than baseline"
                );
            }
        }
    }
}

/// The full MILP-map flow on random graphs: legal, functional, and no
/// worse than the heuristic baseline in the Eq. 15 objective.
#[test]
fn milp_map_flow_on_random_graphs() {
    for seed in 0..8 {
        let dfg = random_dfg(seed, &cfg());
        let target = Target::default();
        let opts = FlowOptions {
            time_limit: std::time::Duration::from_secs(2),
            ..FlowOptions::default()
        };
        let hls = run_flow(&dfg, &target, Flow::HlsTool, &opts).expect("hls");
        let map = run_flow(&dfg, &target, Flow::MilpMap, &opts).expect("map");
        let ins = InputStreams::random(&map.dfg, 12, 0xBEE);
        verify_functional(&map.dfg, &target, &map.implementation, &ins, 12)
            .unwrap_or_else(|e| panic!("seed {seed}: functional: {e}"));
        if map.ii == hls.ii {
            let cost =
                |q: &pipemap::netlist::Qor| opts.alpha * q.luts as f64 + opts.beta * q.ffs as f64;
            assert!(
                cost(&map.qor) <= cost(&hls.qor) + 1e-9,
                "seed {seed}: map {:?} worse than hls {:?}",
                map.qor,
                hls.qor
            );
        }
    }
}

/// Every schedule produced by all three paper flows passes the full
/// static verifier with zero error diagnostics, and the flows are
/// simulation-equivalent (differential check, including the RTL lint at
/// II = 1).
#[test]
fn all_flows_verifier_clean() {
    for seed in 0..12 {
        let dfg = random_dfg(seed, &cfg());
        let target = Target::default();
        let opts = FlowOptions {
            time_limit: std::time::Duration::from_secs(2),
            ..FlowOptions::default()
        };
        let results: Vec<_> = Flow::ALL
            .iter()
            .map(|&f| {
                let r = run_flow(&dfg, &target, f, &opts)
                    .unwrap_or_else(|e| panic!("seed {seed}: flow {}: {e}", f.label()));
                (f.label(), r)
            })
            .collect();
        let flows: Vec<(&str, &Dfg, _)> = results
            .iter()
            .map(|(l, r)| (*l, &r.dfg, &r.implementation))
            .collect();
        let ds = check_flows_with_graphs(&dfg, &target, &flows, &FlowCheckOptions::default());
        assert!(
            !ds.has_errors(),
            "seed {seed}: verifier errors:\n{}",
            ds.render_human(dfg.name())
        );
    }
}
