//! Property tests over randomly generated CDFGs: cut enumeration
//! invariants, scheduler legality, and functional equivalence of every
//! produced pipeline with the reference interpreter.

use proptest::prelude::*;

use pipemap::core::{run_flow, schedule_baseline, schedule_mapped_heuristic, Flow, FlowOptions};
use pipemap::cuts::{cone_nodes, CutConfig, CutDb};
use pipemap::ir::{CmpPred, Dfg, DfgBuilder, InputStreams, NodeId, Target};
use pipemap::netlist::{verify, verify_functional};

const W: u32 = 8;

/// One graph-building step; operand indices select from the value pool
/// modulo its size.
#[derive(Debug, Clone)]
enum Cmd {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Not(usize),
    Add(usize, usize),
    Sub(usize, usize),
    Shr(usize, u32),
    Shl(usize, u32),
    Mux(usize, usize, usize),
    CmpGe0(usize),
}

fn cmd_strategy() -> impl Strategy<Value = Cmd> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Cmd::And(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Cmd::Or(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Cmd::Xor(a, b)),
        any::<usize>().prop_map(Cmd::Not),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Cmd::Add(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| Cmd::Sub(a, b)),
        (any::<usize>(), 0u32..W).prop_map(|(a, s)| Cmd::Shr(a, s)),
        (any::<usize>(), 0u32..W).prop_map(|(a, s)| Cmd::Shl(a, s)),
        (any::<usize>(), any::<usize>(), any::<usize>()).prop_map(|(s, a, b)| Cmd::Mux(s, a, b)),
        any::<usize>().prop_map(Cmd::CmpGe0),
    ]
}

#[derive(Debug, Clone)]
struct Spec {
    cmds: Vec<Cmd>,
    /// Optional recurrence: (consumer command index, distance).
    feedback: Option<(usize, u32)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        prop::collection::vec(cmd_strategy(), 3..28),
        prop::option::of((any::<usize>(), 1u32..3)),
    )
        .prop_map(|(cmds, feedback)| Spec { cmds, feedback })
}

/// Materialize a spec into a validated graph.
fn build(spec: &Spec) -> Dfg {
    let mut b = DfgBuilder::new("prop");
    let mut pool: Vec<NodeId> = Vec::new();
    pool.push(b.input("x", W));
    pool.push(b.input("y", W));
    let c = b.const_(0xA5, W);
    pool.push(c);

    // Optional feedback placeholder participates in the pool from the
    // start, bound to the last created value at the end.
    let fb = spec.feedback.map(|(_, dist)| (b.placeholder(W), dist));
    if let Some((ph, _)) = fb {
        pool.push(ph);
    }

    for cmd in &spec.cmds {
        let pick = |i: usize| pool[i % pool.len()];
        let n = match *cmd {
            Cmd::And(a, x) => b.and(pick(a), pick(x)),
            Cmd::Or(a, x) => b.or(pick(a), pick(x)),
            Cmd::Xor(a, x) => b.xor(pick(a), pick(x)),
            Cmd::Not(a) => b.not(pick(a)),
            Cmd::Add(a, x) => b.add(pick(a), pick(x)),
            Cmd::Sub(a, x) => b.sub(pick(a), pick(x)),
            Cmd::Shr(a, s) => b.shr(pick(a), s),
            Cmd::Shl(a, s) => b.shl(pick(a), s),
            Cmd::Mux(s, a, x) => {
                let sel = b.bit(pick(s), 0);
                b.mux(sel, pick(a), pick(x))
            }
            Cmd::CmpGe0(a) => {
                let z = b.const_(0, W);
                let cmp = b.cmp(CmpPred::Sge, pick(a), z);
                b.zext(cmp, W)
            }
        };
        pool.push(n);
    }
    let last = *pool.last().expect("pool non-empty");
    if let Some((ph, dist)) = fb {
        b.bind(ph, last, dist).expect("feedback binds");
    }
    b.output("out", last);
    b.output("mid", pool[pool.len() / 2]);
    b.finish().expect("generated graph is valid")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Every enumerated non-unit cut is K-feasible, the unit cut comes
    /// first, and every cut's cone is extractable.
    #[test]
    fn cut_enumeration_invariants(spec in spec_strategy()) {
        let dfg = build(&spec);
        let target = Target::default();
        let cfg = CutConfig::for_target(&target);
        let db = CutDb::enumerate(&dfg, &cfg);
        for (id, node) in dfg.iter() {
            let set = db.cuts(id);
            if !node.op.is_lut_mappable() {
                prop_assert!(set.is_empty());
                continue;
            }
            prop_assert!(!set.is_empty(), "missing unit cut for {id}");
            for (i, cut) in set.cuts().iter().enumerate() {
                if i > 0 {
                    prop_assert!(
                        cut.max_bit_support() <= cfg.k,
                        "cut {cut} of {id} exceeds K"
                    );
                }
                let cone = cone_nodes(&dfg, id, cut);
                prop_assert!(cone.contains(&id));
                // The traced (bit-level) cone may be smaller than the
                // structural one when bits are shifted out or masked.
                prop_assert!(
                    cone.len() as u32 >= cut.cone_size() || i == 0,
                    "structural cone {} < traced {}",
                    cone.len(),
                    cut.cone_size()
                );
            }
        }
    }

    /// The baseline flow always produces a legal, functionally correct
    /// pipeline (II is bumped if needed).
    #[test]
    fn baseline_always_legal_and_correct(spec in spec_strategy()) {
        let dfg = build(&spec);
        let target = Target::default();
        let db = CutDb::enumerate(&dfg, &CutConfig::for_target(&target));
        let base = schedule_baseline(&dfg, &target, 1, &db).expect("baseline schedules");
        verify(&dfg, &target, &base.implementation).expect("legal");
        let ins = InputStreams::random(&dfg, 12, 0xFACE);
        verify_functional(&dfg, &target, &base.implementation, &ins, 12)
            .expect("functional");
    }

    /// The mapping-aware heuristic, when it succeeds, is legal and
    /// functionally correct, and never uses a longer pipeline than the
    /// additive baseline at the same II.
    #[test]
    fn mapped_heuristic_legal_and_no_deeper(spec in spec_strategy()) {
        let dfg = build(&spec);
        let target = Target::default();
        let db = CutDb::enumerate(&dfg, &CutConfig::for_target(&target));
        let base = schedule_baseline(&dfg, &target, 1, &db).expect("baseline schedules");
        if let Some(h) = schedule_mapped_heuristic(&dfg, &target, 1, &db) {
            verify(&dfg, &target, &h.implementation).expect("legal");
            let ins = InputStreams::random(&dfg, 12, 0xF00D);
            verify_functional(&dfg, &target, &h.implementation, &ins, 12)
                .expect("functional");
            if h.ii == base.ii {
                prop_assert!(
                    h.implementation.schedule.depth()
                        <= base.implementation.schedule.depth()
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// The full MILP-map flow on random graphs: legal, functional, and no
    /// worse than the heuristic baseline in the Eq. 15 objective.
    #[test]
    fn milp_map_flow_on_random_graphs(spec in spec_strategy()) {
        let dfg = build(&spec);
        let target = Target::default();
        let opts = FlowOptions {
            time_limit: std::time::Duration::from_secs(2),
            ..FlowOptions::default()
        };
        let hls = run_flow(&dfg, &target, Flow::HlsTool, &opts).expect("hls");
        let map = run_flow(&dfg, &target, Flow::MilpMap, &opts).expect("map");
        let ins = InputStreams::random(&dfg, 12, 0xBEE);
        verify_functional(&dfg, &target, &map.implementation, &ins, 12)
            .expect("functional");
        if map.ii == hls.ii {
            let cost = |q: &pipemap::netlist::Qor| {
                opts.alpha * q.luts as f64 + opts.beta * q.ffs as f64
            };
            prop_assert!(
                cost(&map.qor) <= cost(&hls.qor) + 1e-9,
                "map {:?} worse than hls {:?}",
                map.qor,
                hls.qor
            );
        }
    }
}
