//! Flight-recorder coverage: a traced solve must assemble into a
//! `SolveReport` whose phase attribution reconciles with the wall
//! clock, whose JSON twin passes the schema validator, and which
//! survives a round-trip through the Chrome trace export. The metrics
//! registry must be as read-only as tracing — enabling it, at any job
//! count, cannot change what the solver returns — and its log-linear
//! histograms must merge shard snapshots into exactly the distribution
//! a serial recorder would have seen.
//!
//! The obs recorder and metrics registry are process-global, so every
//! test serializes on one lock and drains both around each run.

use std::sync::Mutex;
use std::time::Duration;

use pipemap::core::{run_flow, Flow, FlowOptions, FlowResult};
use pipemap::ir::{random_dfg, Dfg, RandomDfgConfig, Target};
use pipemap::milp::Status;
use pipemap::obs;
use pipemap::obs::{chrome, metrics, report, validate};

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn opts(jobs: usize) -> FlowOptions {
    FlowOptions {
        max_cuts: 2,
        max_cone: 6,
        analyze: false,
        time_limit: Duration::from_secs(15),
        jobs,
        ..FlowOptions::default()
    }
}

/// A solved seeded graph with its trace: seed 0 of the default random
/// config solves to optimality in well under a second.
fn traced_solve(dfg: &Dfg, target: &Target, jobs: usize) -> obs::Trace {
    let _ = obs::take();
    obs::enable();
    let r = run_flow(dfg, target, Flow::MilpMap, &opts(jobs)).expect("flow");
    obs::disable();
    assert_eq!(
        r.milp.expect("milp stats").status,
        Status::Optimal,
        "seeded graph must prove optimality for a stable golden report"
    );
    obs::take()
}

#[test]
fn golden_report_on_seeded_dfg() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    let dfg = random_dfg(0, &RandomDfgConfig::default());
    let target = Target::default();
    let trace = traced_solve(&dfg, &target, 1);

    let rep = report::build(&trace);
    assert_eq!(rep.status.as_deref(), Some("optimal"));
    assert!(rep.objective.is_some(), "milp-stats instant missing");
    assert!(rep.nodes.is_some());

    // Phase attribution reconciles: the slices (including the
    // unattributed remainder) cover the wall clock to within 5%.
    let wall = rep.wall_us;
    let sum: u64 = rep.phases.iter().map(|p| p.total_us).sum();
    assert!(wall > 0, "empty trace");
    let tol = wall / 20 + 1000;
    assert!(
        sum.abs_diff(wall) <= tol,
        "phase sum {sum} us vs wall {wall} us (tolerance {tol} us)"
    );
    assert!(
        rep.phases.iter().any(|p| p.name == "milp-solve"),
        "no milp-solve phase in {:?}",
        rep.phases.iter().map(|p| &p.name).collect::<Vec<_>>()
    );

    // The top gap-closing feature is named, consistently in the
    // struct, the human rendering, and the JSON twin.
    let top = rep.top_feature.clone().expect("top feature");
    assert!(
        rep.features.iter().any(|f| f.name == top),
        "top feature {top:?} not among features"
    );
    let text = rep.render();
    assert!(
        text.contains(&top),
        "rendered report does not name top feature {top:?}"
    );

    let json = rep.to_json();
    validate::validate_solve_report(&json).expect("report JSON schema");
    let doc = obs::json::parse(&json).expect("report JSON parses");
    assert_eq!(
        doc.get("top_feature").and_then(|v| v.as_str()),
        Some(top.as_str())
    );

    // Chrome round-trip: exporting the trace and re-ingesting it must
    // reconstruct the identical report.
    let reimported =
        report::trace_from_chrome(&chrome::to_chrome_trace(&trace)).expect("chrome re-ingest");
    assert_eq!(
        report::build(&reimported),
        rep,
        "report diverged after a Chrome trace round-trip"
    );
}

#[test]
fn histogram_shard_merge_matches_serial() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    // One deterministic value stream, recorded two ways: serially into
    // one histogram, and sharded across four worker-owned histograms
    // (as `--jobs 4` does) whose snapshots are then merged. Fixed-point
    // integer accumulation makes the merge exact, so the two snapshots
    // must be bit-identical — not merely close.
    let values: Vec<f64> = (0u64..4096)
        .map(|i| {
            let x = i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) >> 33;
            (x % 1_000_000) as f64 / 7.0
        })
        .collect();

    let serial = metrics::histogram("test.merge.serial");
    for &v in &values {
        serial.record(v);
    }

    let shards: Vec<&'static metrics::Histogram> = [
        "test.merge.shard0",
        "test.merge.shard1",
        "test.merge.shard2",
        "test.merge.shard3",
    ]
    .iter()
    .map(|&n| metrics::histogram(n))
    .collect();
    std::thread::scope(|scope| {
        for (k, h) in shards.iter().enumerate() {
            let values = &values;
            scope.spawn(move || {
                for v in values.iter().skip(k).step_by(4) {
                    h.record(*v);
                }
            });
        }
    });

    let mut merged = shards[0].snapshot();
    for h in &shards[1..] {
        merged.merge(&h.snapshot());
    }
    assert_eq!(merged, serial.snapshot());
    metrics::reset();
}

#[test]
fn metrics_enabled_runs_are_deterministic() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    let b = pipemap::bench_suite::by_name("GSM").expect("benchmark");
    let run = |jobs: usize, metered: bool| -> FlowResult {
        if metered {
            metrics::reset();
            metrics::enable();
        }
        let r = run_flow(&b.dfg, &b.target, Flow::MilpMap, &opts(jobs))
            .unwrap_or_else(|e| panic!("jobs={jobs} metered={metered}: {e}"));
        if metered {
            metrics::disable();
            let snap = metrics::snapshot();
            metrics::reset();
            assert!(
                !snap.is_empty(),
                "metered run registered nothing at jobs={jobs}"
            );
            assert!(
                matches!(
                    snap.get("lp.cold_solves"),
                    Some(metrics::MetricValue::Counter(n)) if *n > 0
                ),
                "no LP solves counted at jobs={jobs}"
            );
        }
        r
    };
    let base = run(1, false);
    let bs = base.milp.as_ref().expect("milp stats");
    assert_eq!(bs.status, Status::Optimal, "GSM must prove optimality");
    for (jobs, metered) in [(1, true), (4, true)] {
        let r = run(jobs, metered);
        let s = r.milp.as_ref().expect("milp stats");
        assert_eq!(bs.status, s.status, "status diverged at jobs={jobs}");
        assert!(
            (bs.objective - s.objective).abs() < 1e-6,
            "objective {} vs {} at jobs={jobs}",
            bs.objective,
            s.objective
        );
        assert_eq!(
            base.implementation, r.implementation,
            "schedule/cover diverged at jobs={jobs} metered={metered}"
        );
    }
}
