//! Acceptance criteria for the analyze pre-pass on the paper's benchmark
//! suite: on at least 3 of the 9 designs the bit-level analysis must
//! measurably shrink the cut database or the MILP-map model (the same
//! numbers `pipemap analyze --json` prints), and every simplification
//! must be certified equivalent by the verifier's replay + justification
//! audit.

use pipemap::analyze::simplify;
use pipemap::report::analyze_report;
use pipemap::verify::{check_analysis, check_simplification};

#[test]
fn pre_pass_shrinks_cuts_or_milp_vars_on_at_least_three_benchmarks() {
    let mut saved = Vec::new();
    for b in pipemap::bench_suite::all() {
        let report = analyze_report(&b.dfg, &b.target, 1).expect("report");
        assert!(
            report.cuts_after <= report.cuts_before,
            "{}: pre-pass grew the cut database ({} -> {})",
            b.name,
            report.cuts_before,
            report.cuts_after
        );
        if let (Some(vb), Some(va)) = (report.vars_before, report.vars_after) {
            assert!(
                va <= vb,
                "{}: pre-pass grew the MILP model ({vb} -> {va} vars)",
                b.name
            );
        }
        if report.saves_anything() {
            saved.push(format!(
                "{}: cuts {} -> {}, vars {:?} -> {:?}",
                b.name,
                report.cuts_before,
                report.cuts_after,
                report.vars_before,
                report.vars_after
            ));
        }
    }
    assert!(
        saved.len() >= 3,
        "expected measurable savings on >= 3 of 9 benchmarks, got {}:\n{}",
        saved.len(),
        saved.join("\n")
    );
}

#[test]
fn simplification_is_verifier_certified_on_every_benchmark() {
    for b in pipemap::bench_suite::all() {
        let ds = check_analysis(&b.dfg, 16, 0xACCE11);
        assert!(
            !ds.has_errors(),
            "{}: analyze audit errors:\n{}",
            b.name,
            ds.render_human(b.name)
        );

        let out = simplify(&b.dfg).expect("simplify");
        let ds = check_simplification(&b.dfg, &out, 16, 0xACCE12);
        assert!(
            !ds.has_errors(),
            "{}: simplification audit errors:\n{}",
            b.name,
            ds.render_human(b.name)
        );
    }
}
