//! Telemetry is read-only: tracing on or off, serial or `--jobs 4`,
//! the mapping-aware MILP flow must return the identical status,
//! objective, and schedule/cover. This pins the observability layer to
//! the solver's determinism contract — instrumentation may observe the
//! search but never steer it.
//!
//! The obs recorder is process-global, so the whole sweep serializes on
//! one lock and drains the sink around every traced run.

use std::sync::Mutex;
use std::time::Duration;

use pipemap::core::{run_flow, Flow, FlowOptions, FlowResult};
use pipemap::ir::{random_dfg, Dfg, RandomDfgConfig, Target};
use pipemap::milp::Status;
use pipemap::obs;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn opts(jobs: usize) -> FlowOptions {
    FlowOptions {
        max_cuts: 2,
        max_cone: 6,
        analyze: false,
        time_limit: Duration::from_secs(15),
        jobs,
        ..FlowOptions::default()
    }
}

fn run(dfg: &Dfg, target: &Target, jobs: usize, traced: bool, label: &str) -> FlowResult {
    if traced {
        let _ = obs::take();
        obs::enable();
    }
    let r = run_flow(dfg, target, Flow::MilpMap, &opts(jobs))
        .unwrap_or_else(|e| panic!("{label}: jobs={jobs} traced={traced}: {e}"));
    if traced {
        obs::disable();
        let trace = obs::take();
        assert!(
            !trace.events.is_empty(),
            "{label}: traced run recorded nothing"
        );
    }
    r
}

/// Run the four tracing/jobs combinations and assert bit-identical
/// results. Returns false when the solve is wall-clock-bound (no
/// optimality proof), in which case identity is not required.
fn assert_equivalent(dfg: &Dfg, target: &Target, label: &str) -> bool {
    let base = run(dfg, target, 1, false, label);
    let bs = base.milp.as_ref().expect("milp stats");
    if bs.status != Status::Optimal {
        return false;
    }
    for (jobs, traced) in [(1, true), (4, false), (4, true)] {
        let r = run(dfg, target, jobs, traced, label);
        let s = r.milp.as_ref().expect("milp stats");
        assert_eq!(
            bs.status, s.status,
            "{label}: status diverged at jobs={jobs} traced={traced}"
        );
        assert!(
            (bs.objective - s.objective).abs() < 1e-6,
            "{label}: objective {} vs {} at jobs={jobs} traced={traced}",
            bs.objective,
            s.objective
        );
        assert_eq!(
            base.implementation, r.implementation,
            "{label}: schedule/cover diverged at jobs={jobs} traced={traced}"
        );
    }
    true
}

#[test]
fn random_graphs_tracing_and_jobs_invariant() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    let cfg = RandomDfgConfig::default();
    let target = Target::default();
    let mut proven = 0;
    for seed in 0..6u64 {
        let dfg = random_dfg(seed, &cfg);
        if assert_equivalent(&dfg, &target, &format!("seed {seed}")) {
            proven += 1;
        }
    }
    assert!(proven >= 4, "only {proven}/6 graphs solved to optimality");
}

#[test]
fn benchmarks_tracing_and_jobs_invariant() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    let mut proven = 0;
    for name in ["CLZ", "GSM"] {
        let b = pipemap::bench_suite::by_name(name).expect("benchmark");
        if assert_equivalent(&b.dfg, &b.target, name) {
            proven += 1;
        }
    }
    assert_eq!(proven, 2, "both benchmarks must prove optimality");
}
