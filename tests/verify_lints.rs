//! One minimal, hand-built violation per `pipemap-verify` lint code:
//! corrupted IR, schedules, covers, and netlists must each be rejected
//! with exactly the right `P0xxx` diagnostic (never a panic), and the
//! textual front end must attach source spans.
//!
//! Three codes are differential cross-checks with no constructible
//! trigger: [`Code::QorMismatch`] (P0108) fires only when the two
//! independent area models disagree, [`Code::FlowsDiverge`] (P0302)
//! only when a *legal* implementation simulates differently from the
//! reference interpreter, and [`Code::FactUnsound`] (P0401) only when
//! a freshly derived dataflow fact contradicts a simulated value — all
//! signal toolchain bugs, not artifact corruption, so they are covered
//! by registry/severity tests plus the clean-path assertions here and
//! the property suite.

use pipemap::analyze::{simplify, Justification, Rewrite, RewriteKind};
use pipemap::cuts::{Cut, CutConfig, CutDb};
use pipemap::ir::{Dfg, DfgBuilder, Node, NodeId, Op, Port, Target};
use pipemap::netlist::{Cover, Implementation, Schedule};
use pipemap::verify::{
    check_analysis, check_flows, check_graph_equivalence, check_implementation,
    check_simplification, lint_dfg, lint_text, lint_verilog, Code, FlowCheckOptions, Severity,
};

// ---- helpers ---------------------------------------------------------------

fn unit_cover(dfg: &Dfg, target: &Target) -> Cover {
    let db = CutDb::enumerate(dfg, &CutConfig::trivial_only(target));
    Cover::new(dfg.node_ids().map(|v| db.cuts(v).unit().cloned()).collect())
}

/// x ^ y -> & x -> output, with a legal flat schedule.
fn simple() -> (Dfg, Vec<NodeId>, Target, Implementation) {
    let mut b = DfgBuilder::new("s");
    let x = b.input("x", 4);
    let y = b.input("y", 4);
    let t = b.xor(x, y);
    let u = b.and(t, x);
    let o = b.output("o", u);
    let g = b.finish().expect("valid");
    let target = Target::default();
    let d = target.lut_level_delay();
    let mut starts = vec![0.0; g.len()];
    starts[u.index()] = d;
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; g.len()], starts),
        cover: unit_cover(&g, &target),
    };
    (g, vec![x, y, t, u, o], target, imp)
}

fn text_codes(src: &str) -> Vec<Code> {
    lint_text(src).0.codes()
}

// ---- IR pass: P00xx --------------------------------------------------------

#[test]
fn p0001_bad_width_from_text() {
    let (ds, _) = lint_text("dfg d {\n  a: 77 = input\n  o: 77 = output a\n}\n");
    assert!(ds.has_code(Code::BadWidth), "{:?}", ds);
    let d = ds.iter().find(|d| d.code == Code::BadWidth).unwrap();
    assert_eq!(d.span.expect("span").line, 2);
}

#[test]
fn p0002_bad_arity_on_raw_graph() {
    let nodes = vec![
        Node {
            op: Op::Input,
            width: 8,
            ins: vec![],
        },
        Node {
            op: Op::Add,
            width: 8,
            ins: vec![Port::this_iter(NodeId(0))], // Add wants 2 operands
        },
    ];
    let g = Dfg::from_raw("arity", nodes, vec![], vec![], Default::default());
    let ds = lint_dfg(&g, None);
    assert!(ds.has_code(Code::BadArity), "{:?}", ds);
}

#[test]
fn p0003_dangling_port_from_undefined_name() {
    let (ds, dfg) = lint_text("dfg d {\n  a: 8 = input\n  o: 8 = output ghost\n}\n");
    assert!(dfg.is_some(), "lenient parse keeps the graph");
    assert!(ds.has_code(Code::DanglingPort), "{:?}", ds);
    let d = ds.iter().find(|d| d.code == Code::DanglingPort).unwrap();
    assert!(d.span.is_some());
}

#[test]
fn p0004_output_consumed_as_data() {
    let src = "dfg d {\n  a: 8 = input\n  z: 8 = output a\n  w: 8 = not z\n  o: 8 = output w\n}\n";
    let ds = lint_text(src).0;
    assert!(ds.has_code(Code::OutputHasConsumer), "{:?}", ds);
}

#[test]
fn p0005_width_mismatch_from_text() {
    let src = "dfg d {\n  a: 8 = input\n  b: 4 = input\n  c: 8 = add a, b\n  o: 8 = output c\n}\n";
    let ds = lint_text(src).0;
    assert!(ds.has_code(Code::WidthMismatch), "{:?}", ds);
    let d = ds.iter().find(|d| d.code == Code::WidthMismatch).unwrap();
    assert_eq!(d.span.expect("span").line, 4);
}

#[test]
fn p0006_load_from_empty_memory() {
    let src = "dfg d {\n  mem m: 8 = []\n  a: 8 = input\n  t: 8 = load.m a\n  o: 8 = output t\n}\n";
    let ds = lint_text(src).0;
    assert!(ds.has_code(Code::BadMemoryRef), "{:?}", ds);
}

#[test]
fn p0007_combinational_cycle_from_text() {
    let src = "dfg d {\n  a: 8 = not b\n  b: 8 = not a\n  o: 8 = output b\n}\n";
    let ds = lint_text(src).0;
    assert!(ds.has_code(Code::CombinationalCycle), "{:?}", ds);
}

#[test]
fn p0008_p0009_dead_code_are_warnings() {
    let src = "dfg d {\n  a: 8 = input\n  u: 8 = input\n  dead: 8 = not a\n  o: 8 = output a\n}\n";
    let ds = lint_text(src).0;
    assert!(ds.has_code(Code::DeadNode));
    assert!(ds.has_code(Code::UnusedInput));
    assert!(!ds.has_errors(), "dead code must not be an error: {:?}", ds);
}

#[test]
fn p0010_no_outputs() {
    let ds = lint_text("dfg d {\n  a: 8 = input\n  b: 8 = not a\n}\n").0;
    assert!(ds.has_code(Code::NoOutputs), "{:?}", ds);
}

#[test]
fn p0011_non_pow2_memory_is_info() {
    let src =
        "dfg d {\n  mem m: 8 = [1, 2, 3]\n  a: 8 = input\n  t: 8 = load.m a\n  o: 8 = output t\n}\n";
    let ds = lint_text(src).0;
    let d = ds.iter().find(|d| d.code == Code::NonPow2Memory).unwrap();
    assert_eq!(d.severity, Severity::Info);
}

#[test]
fn p0012_parse_error() {
    let (ds, dfg) = lint_text("this is not pmir at all");
    assert!(dfg.is_none());
    assert!(ds.has_code(Code::ParseError));
}

/// The acceptance bar for the textual front end: across small `.pmir`
/// inputs the linter reports at least 10 distinct codes, with source
/// spans on the node-anchored ones.
#[test]
fn textual_ir_reports_ten_plus_distinct_codes() {
    let snippets = [
        "dfg d {\n  a: 77 = input\n  o: 77 = output a\n}\n",
        "dfg d {\n  a: 8 = input\n  o: 8 = output ghost\n}\n",
        "dfg d {\n  a: 8 = input\n  z: 8 = output a\n  w: 8 = not z\n  o: 8 = output w\n}\n",
        "dfg d {\n  a: 8 = input\n  b: 4 = input\n  c: 8 = add a, b\n  o: 8 = output c\n}\n",
        "dfg d {\n  mem m: 8 = []\n  a: 8 = input\n  t: 8 = load.m a\n  o: 8 = output t\n}\n",
        "dfg d {\n  a: 8 = not b\n  b: 8 = not a\n  o: 8 = output b\n}\n",
        "dfg d {\n  a: 8 = input\n  u: 8 = input\n  dead: 8 = not a\n  o: 8 = output a\n}\n",
        "dfg d {\n  a: 8 = input\n}\n",
        "dfg d {\n  mem m: 8 = [1, 2, 3]\n  a: 8 = input\n  t: 8 = load.m a\n  o: 8 = output t\n}\n",
        "syntactic garbage",
    ];
    let mut distinct: Vec<Code> = snippets.iter().flat_map(|s| text_codes(s)).collect();
    distinct.sort_by_key(|c| c.as_str());
    distinct.dedup();
    assert!(
        distinct.len() >= 10,
        "only {} distinct codes: {:?}",
        distinct.len(),
        distinct
    );
    let spanned: usize = snippets
        .iter()
        .flat_map(|s| {
            let (ds, _) = lint_text(s);
            ds.into_iter()
                .filter(|d| d.span.is_some())
                .map(|d| d.code.as_str())
                .collect::<Vec<_>>()
        })
        .collect::<std::collections::BTreeSet<_>>()
        .len();
    assert!(spanned >= 8, "only {spanned} distinct codes carried spans");
}

// ---- schedule & cover pass: P01xx ------------------------------------------

#[test]
fn p0101_missing_root() {
    let (g, ids, t, imp) = simple();
    let mut sel: Vec<Option<Cut>> = g.node_ids().map(|v| imp.cover.cut(v).cloned()).collect();
    sel[ids[2].index()] = None; // the xor vanishes from the cover
    let imp = Implementation {
        schedule: imp.schedule,
        cover: Cover::new(sel),
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::MissingRoot), "{:?}", ds);
}

#[test]
fn p0102_output_not_fed_by_root() {
    let (g, ids, t, imp) = simple();
    let mut sel: Vec<Option<Cut>> = g.node_ids().map(|v| imp.cover.cut(v).cloned()).collect();
    sel[ids[3].index()] = None; // the and feeding the output vanishes
    let imp = Implementation {
        schedule: imp.schedule,
        cover: Cover::new(sel),
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::OutputNotRoot), "{:?}", ds);
}

#[test]
fn p0103_dependence_violated() {
    let (g, ids, t, imp) = simple();
    let mut cycles = vec![0; g.len()];
    cycles[ids[2].index()] = 2; // producer after its consumers
    let imp = Implementation {
        schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
        cover: imp.cover,
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::DependenceViolated), "{:?}", ds);
}

#[test]
fn p0104_cycle_time_exceeded() {
    // Ten chained 8-bit adders in one cycle: ~12.8 ns > the 10 ns target.
    let mut b = DfgBuilder::new("deep");
    let x = b.input("x", 8);
    let mut acc = x;
    for _ in 0..10 {
        acc = b.add(acc, x);
    }
    b.output("o", acc);
    let g = b.finish().expect("valid");
    let t = Target::default();
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
        cover: unit_cover(&g, &t),
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::CycleTimeExceeded), "{:?}", ds);
}

#[test]
fn p0105_resource_oversubscribed() {
    let mut b = DfgBuilder::new("dsp");
    let x = b.input("x", 8);
    let y = b.input("y", 8);
    let m1 = b.raw_node(Op::Mul, 8, vec![Port::this_iter(x), Port::this_iter(y)]);
    let m2 = b.raw_node(Op::Mul, 8, vec![Port::this_iter(y), Port::this_iter(x)]);
    let s = b.add(m1, m2);
    b.output("o", s);
    let g = b.finish().expect("valid");
    let t = Target {
        mult_limit: Some(1),
        ..Target::default()
    };
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
        cover: unit_cover(&g, &t),
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::ResourceOversubscribed), "{:?}", ds);
}

#[test]
fn p0106_cut_not_k_feasible() {
    // Enumerate under K=6, then verify against the 4-LUT device.
    let mut b = DfgBuilder::new("wide");
    let ins: Vec<NodeId> = (0..6).map(|i| b.input(format!("i{i}"), 1)).collect();
    let mut acc = ins[0];
    for &p in &ins[1..] {
        acc = b.xor(acc, p);
    }
    b.output("o", acc);
    let g = b.finish().expect("valid");
    let db = CutDb::enumerate(&g, &CutConfig::for_target(&Target::k6()));
    let wide = db
        .cuts(acc)
        .cuts()
        .iter()
        .find(|c| c.max_bit_support() > 4)
        .expect("a >4-input cut exists under K=6")
        .clone();
    let mut sel: Vec<Option<Cut>> = g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect();
    sel[acc.index()] = Some(wide);
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
        cover: Cover::new(sel),
    };
    let ds = check_implementation(&g, &Target::default(), &imp);
    assert!(ds.has_code(Code::CutNotKFeasible), "{:?}", ds);
}

#[test]
fn p0107_cone_inconsistent_cut_on_black_box() {
    let mut b = DfgBuilder::new("bb");
    let x = b.input("x", 8);
    let y = b.input("y", 8);
    let m = b.raw_node(Op::Mul, 8, vec![Port::this_iter(x), Port::this_iter(y)]);
    let s = b.add(m, x);
    b.output("o", s);
    let g = b.finish().expect("valid");
    let t = Target::default();
    let cover = unit_cover(&g, &t);
    let donor = cover.cut(s).expect("add has a unit cut").clone();
    let mut sel: Vec<Option<Cut>> = g.node_ids().map(|v| cover.cut(v).cloned()).collect();
    sel[m.index()] = Some(donor); // a LUT cut on a hard multiplier
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
        cover: Cover::new(sel),
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::ConeInconsistent), "{:?}", ds);
}

#[test]
fn p0108_qor_recount_agrees_on_legal_pipelines() {
    // QorMismatch is a cross-check between two independent area models;
    // a legal implementation must never trip it.
    let (g, _, t, imp) = simple();
    let ds = check_implementation(&g, &t, &imp);
    assert!(!ds.has_code(Code::QorMismatch), "{:?}", ds);
    assert!(Code::ALL.contains(&Code::QorMismatch));
    assert_eq!(Code::QorMismatch.severity(), Severity::Error);
}

#[test]
fn p0109_schedule_size_mismatch() {
    let (g, _, t, imp) = simple();
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; 2], vec![0.0; 2]),
        cover: imp.cover,
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::ScheduleSizeMismatch), "{:?}", ds);
}

#[test]
fn p0110_invalid_start_time() {
    let (g, ids, t, imp) = simple();
    let mut starts = vec![0.0; g.len()];
    starts[ids[2].index()] = f64::NAN;
    let imp = Implementation {
        schedule: Schedule::new(1, vec![0; g.len()], starts),
        cover: imp.cover,
    };
    let ds = check_implementation(&g, &t, &imp);
    assert!(ds.has_code(Code::InvalidStartTime), "{:?}", ds);
}

// ---- netlist pass: P02xx ---------------------------------------------------

#[test]
fn p0201_multiply_driven_net() {
    let src = "module m (\n  input wire clk,\n  output reg [3:0] o\n);\n\
               wire [3:0] a = 4'h1;\nwire [3:0] a = 4'h2;\n\
               always @(posedge clk) begin\n  o <= a;\nend\nendmodule\n";
    assert!(lint_verilog(src).has_code(Code::MultiplyDrivenNet));
}

#[test]
fn p0202_undeclared_identifier() {
    let src = "module m (\n  input wire clk,\n  output reg [3:0] o\n);\n\
               always @(posedge clk) begin\n  o <= ghost;\nend\nendmodule\n";
    assert!(lint_verilog(src).has_code(Code::UndeclaredIdentifier));
}

#[test]
fn p0203_unused_net_is_warning() {
    let src = "module m (\n  input wire clk,\n  output reg [3:0] o\n);\n\
               wire [3:0] dead = 4'h0;\n\
               always @(posedge clk) begin\n  o <= 4'h1;\nend\nendmodule\n";
    let ds = lint_verilog(src);
    assert!(ds.has_code(Code::UnusedNet));
    assert!(!ds.has_errors());
}

#[test]
fn p0204_net_width_mismatch() {
    let src = "module m (\n  input wire clk,\n  input wire [7:0] x,\n  output reg [3:0] o\n);\n\
               always @(posedge clk) begin\n  o <= x;\nend\nendmodule\n";
    assert!(lint_verilog(src).has_code(Code::NetWidthMismatch));
}

#[test]
fn p0205_p0206_structure_errors() {
    let src = "module m (\n  input wire clk\n);\nalways @(posedge clk) begin\n";
    let ds = lint_verilog(src);
    assert!(ds.has_code(Code::BeginEndImbalance));
    assert!(ds.has_code(Code::MissingModule));
}

#[test]
fn p0207_combinational_net_loop() {
    let src = "module m (\n  input wire clk,\n  output reg [0:0] o\n);\n\
               wire [0:0] a = b;\nwire [0:0] b = a;\n\
               always @(posedge clk) begin\n  o <= a;\nend\nendmodule\n";
    assert!(lint_verilog(src).has_code(Code::CombinationalNetLoop));
}

// ---- differential flow pass: P03xx -----------------------------------------

#[test]
fn p0301_flow_illegal_merges_details() {
    let (g, _, t, good) = simple();
    let bad = Implementation {
        schedule: Schedule::new(1, vec![0; 1], vec![0.0; 1]),
        cover: good.cover.clone(),
    };
    let ds = check_flows(
        &g,
        &t,
        &[("good", &good), ("bad", &bad)],
        &FlowCheckOptions::default(),
    );
    assert!(ds.has_code(Code::FlowIllegal), "{:?}", ds);
    assert!(ds.has_code(Code::ScheduleSizeMismatch));
    assert!(ds.iter().any(|d| d.message.starts_with("[bad]")));
}

#[test]
fn p0302_equivalent_flows_do_not_diverge() {
    // FlowsDiverge is the differential cross-check: legal covers of the
    // same graph implement the same function by construction, so only a
    // simulator/interpreter disagreement (a toolchain bug) can fire it.
    let (g, ids, t, flat) = simple();
    let mut cycles = vec![0; g.len()];
    cycles[ids[3].index()] = 1;
    cycles[ids[4].index()] = 1;
    let split = Implementation {
        schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
        cover: flat.cover.clone(),
    };
    let ds = check_flows(
        &g,
        &t,
        &[("flat", &flat), ("split", &split)],
        &FlowCheckOptions::default(),
    );
    assert!(!ds.has_code(Code::FlowsDiverge), "{:?}", ds);
    assert!(!ds.has_errors(), "{:?}", ds);
    assert!(Code::ALL.contains(&Code::FlowsDiverge));
    assert_eq!(Code::FlowsDiverge.severity(), Severity::Error);
}

#[test]
fn p0303_objective_regression_is_warning() {
    let (g, ids, t, flat) = simple();
    let mut cycles = vec![0; g.len()];
    cycles[ids[3].index()] = 1;
    cycles[ids[4].index()] = 1;
    let split = Implementation {
        schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
        cover: flat.cover.clone(),
    };
    let ds = check_flows(
        &g,
        &t,
        &[("flat", &flat), ("split", &split)],
        &FlowCheckOptions::default(),
    );
    let d = ds
        .iter()
        .find(|d| d.code == Code::ObjectiveRegression)
        .expect("split pays registers the flat schedule avoids");
    assert_eq!(d.severity, Severity::Warning);
}

// ---- dataflow-analysis audit: P04xx ----------------------------------------

#[test]
fn p0401_fresh_facts_are_sound_on_clean_graphs() {
    // FactUnsound is the differential cross-check of the analyze pass:
    // the audit derives its own facts, so only an analysis bug can fire
    // it. Clean path + registry entry, mirroring P0108/P0302.
    let (g, ..) = simple();
    let ds = check_analysis(&g, 16, 0x41);
    assert!(!ds.has_code(Code::FactUnsound), "{:?}", ds);
    assert!(!ds.has_errors(), "{:?}", ds);
    assert!(Code::ALL.contains(&Code::FactUnsound));
    assert_eq!(Code::FactUnsound.severity(), Severity::Error);
}

#[test]
fn p0402_forged_justification() {
    let mut b = DfgBuilder::new("j");
    let x = b.input("x", 8);
    let m = b.const_(0x0F, 8);
    let lo = b.and(x, m);
    b.output("o", lo);
    let g = b.finish().expect("valid");
    let mut out = simplify(&g).expect("simplifies");
    out.rewrites.push(Rewrite {
        node: NodeId(0),
        kind: RewriteKind::ConstFold { value: 0x42 },
        justification: Justification::KnownValue { value: 0x42 },
    });
    let ds = check_simplification(&g, &out, 8, 0x42);
    assert!(ds.has_code(Code::JustificationInvalid), "{:?}", ds);
}

#[test]
fn p0403_inequivalent_graphs_diverge_under_replay() {
    let mk = |op: Op| {
        let mut b = DfgBuilder::new("g");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let z = match op {
            Op::Xor => b.xor(x, y),
            _ => b.and(x, y),
        };
        b.output("o", z);
        b.finish().expect("valid")
    };
    let ds = check_graph_equivalence("opt", &mk(Op::Xor), &mk(Op::And), 16, 0x43);
    assert!(ds.has_code(Code::SimplifyDiverged), "{:?}", ds);
    assert_eq!(Code::SimplifyDiverged.severity(), Severity::Error);
}

#[test]
fn p0404_p0405_constant_output_and_dead_input_bits_warn() {
    let mut b = DfgBuilder::new("w");
    let x = b.input("x", 16);
    let m = b.const_(0x0F, 16);
    let lo = b.and(x, m); // output high bits known 0; input high bits dead
    b.output("o", lo);
    let g = b.finish().expect("valid");
    let ds = check_analysis(&g, 16, 0x44);
    assert!(!ds.has_errors(), "{:?}", ds);
    for code in [Code::ConstantOutputBit, Code::DeadInputBit] {
        let d = ds.iter().find(|d| d.code == code).unwrap_or_else(|| {
            panic!("missing {code:?}: {}", ds.render_human("w"));
        });
        assert_eq!(d.severity, Severity::Warning);
    }
}

// ---- registry --------------------------------------------------------------

#[test]
fn registry_is_complete_and_stable() {
    assert!(Code::ALL.len() >= 30);
    let mut strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
    let n = strs.len();
    strs.sort();
    strs.dedup();
    assert_eq!(strs.len(), n, "duplicate code strings");
    for c in Code::ALL {
        assert!(c.as_str().starts_with('P'), "{c:?}");
        assert!(!c.summary().is_empty());
    }
}
