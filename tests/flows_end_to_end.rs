//! End-to-end integration: all three flows on real benchmarks, checked
//! for legality, functional correctness, and the paper's qualitative
//! ordering (mapping-aware ≤ mapping-agnostic ≤ heuristic in the Eq. 15
//! objective).

use std::time::Duration;

use pipemap::bench_suite::{by_name, rs_encoder_fig1};
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::ir::{InputStreams, Target};
use pipemap::netlist::{verify, verify_functional, Qor};

fn opts(secs: u64) -> FlowOptions {
    FlowOptions {
        time_limit: Duration::from_secs(secs),
        ..FlowOptions::default()
    }
}

fn objective(q: &Qor, o: &FlowOptions) -> f64 {
    o.alpha * q.luts as f64 + o.beta * q.ffs as f64
}

#[test]
fn fig1_kernel_all_flows() {
    let (dfg, _) = rs_encoder_fig1();
    let target = Target::fig1();
    let o = opts(10);
    let mut qors = Vec::new();
    for flow in Flow::ALL {
        let r = run_flow(&dfg, &target, flow, &o).expect("flow runs");
        // The implementation refers to the graph the flow scheduled
        // (`r.dfg`), which the analyze pre-pass may have rewritten.
        let ins = InputStreams::random(&r.dfg, 40, 3);
        verify(&r.dfg, &target, &r.implementation).expect("legal");
        verify_functional(&r.dfg, &target, &r.implementation, &ins, 40).expect("functional");
        qors.push(r.qor);
    }
    // Paper Fig. 1: additive needs 3 stages, mapped fits 1.
    assert!(qors[0].depth >= 3, "additive depth {}", qors[0].depth);
    assert_eq!(qors[2].depth, 1, "mapped depth");
    assert!(objective(&qors[2], &o) <= objective(&qors[0], &o) + 1e-9);
}

#[test]
fn gfmul_collapses_to_combinational() {
    let b = by_name("GFMUL").expect("exists");
    let o = opts(20);

    let hls = run_flow(&b.dfg, &b.target, Flow::HlsTool, &o).expect("hls");
    let map = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("map");
    for r in [&hls, &map] {
        let ins = InputStreams::random(&r.dfg, 32, 5);
        verify_functional(&r.dfg, &b.target, &r.implementation, &ins, 32).expect("functional");
    }
    // Paper: GFMUL becomes a single combinational stage with zero FFs.
    assert_eq!(map.qor.ffs, 0, "map FFs {}", map.qor.ffs);
    assert_eq!(map.qor.depth, 1);
    assert!(hls.qor.ffs > 0, "baseline should have pipeline registers");
    assert!(map.qor.luts <= hls.qor.luts);
}

#[test]
fn milp_map_objective_never_worse_than_seeds() {
    for name in ["MT", "DR"] {
        let b = by_name(name).expect("exists");
        let o = opts(10);
        let hls = run_flow(&b.dfg, &b.target, Flow::HlsTool, &o).expect("hls");
        let map = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("map");
        assert!(
            objective(&map.qor, &o) <= objective(&hls.qor, &o) + 1e-9,
            "{name}: map {:?} worse than hls {:?}",
            map.qor,
            hls.qor
        );
    }
}

#[test]
fn achieved_cp_respects_target() {
    for name in ["CLZ", "GFMUL", "AES", "GSM"] {
        let b = by_name(name).expect("exists");
        let o = opts(5);
        for flow in Flow::ALL {
            let r = run_flow(&b.dfg, &b.target, flow, &o).expect("flow");
            assert!(
                r.qor.cp_ns <= b.target.t_cp + 1e-6,
                "{name}/{flow}: CP {} > target {}",
                r.qor.cp_ns,
                b.target.t_cp
            );
        }
    }
}

#[test]
fn flows_are_deterministic() {
    let b = by_name("GFMUL").expect("exists");
    let o = opts(5);
    let r1 = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("first");
    let r2 = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("second");
    assert_eq!(r1.qor.luts, r2.qor.luts);
    assert_eq!(r1.qor.ffs, r2.qor.ffs);
    assert_eq!(r1.qor.depth, r2.qor.depth);
}

#[test]
fn ii_sweep_never_increases_area() {
    // Relaxing throughput cannot make the optimum worse (the II=1
    // solution space is a subset).
    let b = by_name("AES").expect("exists");
    let mut prev = f64::INFINITY;
    for ii in [1u32, 2] {
        let o = FlowOptions {
            ii,
            time_limit: Duration::from_secs(10),
            ..FlowOptions::default()
        };
        let r = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("map");
        let cost = objective(&r.qor, &o);
        assert!(
            cost <= prev + 1e-9,
            "II {ii} cost {cost} worse than tighter II {prev}"
        );
        prev = cost;
    }
}

#[test]
fn simulated_occupancy_never_exceeds_priced_ffs() {
    use pipemap::netlist::{ff_count, simulate_with_stats};
    for name in ["GFMUL", "MT", "RS", "AES"] {
        let b = by_name(name).expect("exists");
        let o = opts(5);
        for flow in Flow::ALL {
            let r = run_flow(&b.dfg, &b.target, flow, &o).expect("flow");
            let ins = InputStreams::random(&r.dfg, 24, 21);
            let (_, stats) = simulate_with_stats(&r.dfg, &b.target, &r.implementation, &ins, 24)
                .expect("simulates");
            let ffs = ff_count(&r.dfg, &b.target, &r.implementation);
            assert!(
                stats.peak_register_bits <= ffs,
                "{name}/{flow}: peak occupancy {} > priced FFs {ffs}",
                stats.peak_register_bits
            );
        }
    }
}

#[test]
fn combinational_map_results_occupy_no_registers() {
    use pipemap::netlist::simulate_with_stats;
    let b = by_name("GFMUL").expect("exists");
    let o = opts(20);
    let map = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("map");
    assert_eq!(map.qor.ffs, 0);
    let ins = InputStreams::random(&map.dfg, 16, 2);
    let (_, stats) =
        simulate_with_stats(&map.dfg, &b.target, &map.implementation, &ins, 16).expect("simulates");
    assert_eq!(stats.peak_register_bits, 0);
}

#[test]
fn gamma_objective_shares_dsps_across_slots() {
    // Two independent multiplies at II = 2: with the DSP term enabled the
    // exact scheduler spreads them across modulo slots so one DSP serves
    // both (the paper's §3.2 resource extension).
    use pipemap::ir::DfgBuilder;
    let mut b = DfgBuilder::new("share");
    let x = b.input("x", 8);
    let y = b.input("y", 8);
    let z = b.input("z", 8);
    let p1 = b.mul(x, y);
    let p2 = b.mul(y, z);
    let n1 = b.not(p1);
    let n2 = b.not(p2);
    b.output("a", n1);
    b.output("b", n2);
    let dfg = b.finish().expect("valid");
    let target = Target::default();

    let mut o = opts(10);
    o.ii = 2;
    o.extra_latency = 1;
    o.gamma = 10.0;
    let r = run_flow(&dfg, &target, Flow::MilpMap, &o).expect("map");
    assert_eq!(r.ii, 2);
    assert_eq!(r.qor.dsps, 1, "DSP sharing expected: {:?}", r.qor);
    let ins = InputStreams::random(&r.dfg, 12, 4);
    verify_functional(&r.dfg, &target, &r.implementation, &ins, 12).expect("functional");
}
