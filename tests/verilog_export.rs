//! Cross-crate integration: every II = 1 benchmark implementation can be
//! exported as structural Verilog with coherent structure.

use std::time::Duration;

use pipemap::bench_suite::all;
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::netlist::{schedule_report, to_verilog};

#[test]
fn all_ii1_benchmarks_export_verilog() {
    let opts = FlowOptions {
        time_limit: Duration::from_secs(2),
        ..FlowOptions::default()
    };
    let mut exported = 0;
    for bench in all() {
        let r =
            run_flow(&bench.dfg, &bench.target, Flow::HlsTool, &opts).expect("baseline flow runs");
        if r.ii != 1 {
            continue; // exporter is II = 1 only
        }
        let rtl =
            to_verilog(&bench.dfg, &bench.target, &r.implementation, bench.name).expect("exports");
        exported += 1;
        assert!(
            rtl.contains(&format!("module {}", bench.name)),
            "{}",
            bench.name
        );
        assert!(rtl.trim_end().ends_with("endmodule"));
        // Port coverage: every primary input and output appears.
        for id in bench.dfg.inputs().iter().chain(&bench.dfg.outputs()) {
            let label = bench.dfg.label(*id);
            let mangled: String = label
                .chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect();
            assert!(
                rtl.contains(&mangled),
                "{}: port {label} missing from RTL",
                bench.name
            );
        }
        // One ROM declaration per memory.
        assert_eq!(
            rtl.matches("] rom").count(),
            bench.dfg.memories().len(),
            "{}: ROM count mismatch",
            bench.name
        );
        // A registered output block exists.
        assert!(rtl.contains("always @(posedge clk)"), "{}", bench.name);
    }
    assert!(exported >= 8, "only {exported} benchmarks exported");
}

#[test]
fn reports_render_for_all_benchmarks() {
    let opts = FlowOptions {
        time_limit: Duration::from_secs(2),
        ..FlowOptions::default()
    };
    for bench in all() {
        let r =
            run_flow(&bench.dfg, &bench.target, Flow::HlsTool, &opts).expect("baseline flow runs");
        let report = schedule_report(&bench.dfg, &bench.target, &r.implementation);
        assert!(report.contains("cycle 0:"), "{}", bench.name);
        assert!(report.contains("LUTs"), "{}", bench.name);
    }
}
