//! 200-seed random-graph soundness sweep over the priority-cut
//! analysis: every dominance/liveness certificate the pruning emits is
//! re-derived by the independent `P06xx` audit in `pipemap-verify`, and
//! on graphs small enough to solve both ways the mapping-aware MILP's
//! optimum over the certified-pruned cut database is identical to the
//! optimum over the raw K-feasible pool. This is the cut-space end of
//! the "analysis aggressiveness never outruns soundness" contract.

use std::time::Duration;

use pipemap::analyze::Analysis;
use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::cuts::{priority_cuts, CutConfig, PruneConfig};
use pipemap::ir::{random_dfg, RandomDfgConfig, Target};
use pipemap::milp::Status;
use pipemap::verify::check_priority_cuts;

/// Every certificate audited, across varied caps and liveness inputs.
///
/// The cap and raw-pool knobs are swept with the seed so truncation
/// binds on some seeds and not others, and every third seed feeds the
/// pruner real dead-bit facts from `pipemap-analyze` to exercise the
/// `DeadRoot` certificate path (`P0603`).
#[test]
fn two_hundred_seeds_certificates_audit_clean() {
    let target = Target::default();
    let shape = RandomDfgConfig {
        min_ops: 3,
        max_ops: 14,
        ..RandomDfgConfig::default()
    };
    let mut certified = 0usize;
    for seed in 0..200u64 {
        let g = random_dfg(seed, &shape);
        let live = (seed % 3 == 0)
            .then(|| Analysis::run(&g).ok())
            .flatten()
            .map(|a| g.node_ids().map(|v| a.live(v)).collect::<Vec<u64>>());
        let pcfg = PruneConfig {
            max_cuts_per_root: 1 + (seed % 6) as usize,
            raw_cuts: 8 + (seed % 24) as usize,
            live_bits: live,
        };
        let out = priority_cuts(&g, &CutConfig::for_target(&target), &pcfg);
        let diags = check_priority_cuts(&g, &out);
        assert!(
            diags.is_empty(),
            "seed {seed}: priority-cut audit found violations:\n{}",
            diags.render_human(g.name())
        );
        if !out.certificates.is_empty() {
            certified += 1;
        }
    }
    // The sweep must actually exercise the certificate machinery, not
    // vacuously pass on graphs where nothing is ever pruned.
    assert!(
        certified >= 40,
        "only {certified}/200 seeds produced pruning certificates"
    );
}

/// Certified pruning never moves the optimum: on small graphs, solve the
/// mapping-aware MILP over the raw K-feasible pool and over the
/// certified-pruned database with a cap generous enough that the
/// heuristic rank truncation never binds — statuses and objectives must
/// agree exactly.
#[test]
fn pruned_and_unpruned_optima_agree_on_small_graphs() {
    let target = Target::default();
    let shape = RandomDfgConfig {
        min_ops: 3,
        max_ops: 10,
        ..RandomDfgConfig::default()
    };
    // `analyze: false` keeps liveness out of both runs (dead-root drops
    // reason about bits the raw model cannot see), and `max_cuts ==
    // max_cuts_per_root == raw pool cap` means every certified survivor
    // is kept — only certificate-carrying drops distinguish the models.
    let pruned_opts = FlowOptions {
        priority_cuts: true,
        max_cuts: 32,
        max_cuts_per_root: 32,
        analyze: false,
        time_limit: Duration::from_secs(20),
        ..FlowOptions::default()
    };
    let raw_opts = FlowOptions {
        priority_cuts: false,
        filter_dominated: false,
        max_cuts: 32,
        analyze: false,
        time_limit: Duration::from_secs(20),
        ..FlowOptions::default()
    };
    let mut compared = 0usize;
    for seed in 0..40u64 {
        let g = random_dfg(seed, &shape);
        let pruned = run_flow(&g, &target, Flow::MilpMap, &pruned_opts)
            .unwrap_or_else(|e| panic!("seed {seed}: pruned flow failed: {e}"));
        let raw = run_flow(&g, &target, Flow::MilpMap, &raw_opts)
            .unwrap_or_else(|e| panic!("seed {seed}: raw flow failed: {e}"));
        let (sp, sr) = (pruned.milp.expect("stats"), raw.milp.expect("stats"));
        assert_eq!(
            sp.status, sr.status,
            "seed {seed}: status {} pruned vs {} raw",
            sp.status, sr.status
        );
        if sp.status == Status::Optimal {
            assert!(
                (sp.objective - sr.objective).abs() < 1e-6,
                "seed {seed}: objective {} pruned vs {} raw",
                sp.objective,
                sr.objective
            );
            compared += 1;
        }
        assert!(
            sp.variables <= sr.variables,
            "seed {seed}: pruning grew the model ({} vs {} vars)",
            sp.variables,
            sr.variables
        );
    }
    assert!(
        compared >= 30,
        "only {compared}/40 seeds solved to optimality both ways"
    );
}
