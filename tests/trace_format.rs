//! Golden trace-format tests: a traced flow run must export Chrome
//! trace-event JSON that is structurally valid (parses, every `E`
//! closes its lane's matching `B` in LIFO order) and whose merged
//! phase-time tree reconciles with the wall clock.
//!
//! The obs recorder is process-global, so every test in this binary
//! serializes on one lock and drains the sink before starting.

use std::sync::Mutex;
use std::time::Duration;

use pipemap::core::{run_flow, Flow, FlowOptions};
use pipemap::obs;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn opts(jobs: usize) -> FlowOptions {
    FlowOptions {
        max_cuts: 2,
        max_cone: 6,
        analyze: false,
        time_limit: Duration::from_secs(20),
        jobs,
        ..FlowOptions::default()
    }
}

#[test]
fn traced_flow_exports_valid_chrome_json() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    let _ = obs::take();

    // GSM's trimmed model proves optimality in well under a second, so
    // the trace stays small enough to re-parse with the validator.
    let b = pipemap::bench_suite::by_name("GSM").expect("GSM benchmark");
    obs::enable();
    let r = run_flow(&b.dfg, &b.target, Flow::MilpMap, &opts(2)).expect("flow");
    obs::disable();
    let trace = obs::take();
    assert!(r.milp.is_some());
    assert!(!trace.events.is_empty(), "traced run recorded no events");
    assert_eq!(trace.dropped, 0, "small run must not overflow the sink");

    let json = obs::chrome::to_chrome_trace(&trace);
    let check = obs::validate::validate_chrome_trace(&json).expect("valid Chrome trace");
    assert_eq!(check.events, trace.events.len());
    assert!(check.spans > 0, "no completed spans");
    assert!(
        check.lanes >= 3,
        "expected the flow lane plus two solver worker lanes, got {}",
        check.lanes
    );
    assert!(check.max_depth >= 2, "phases must nest under the flow span");
    assert!(
        json.contains("bb-worker-0") && json.contains("bb-worker-1"),
        "solver worker lanes must be named"
    );
    for phase in ["flow:milp-map", "cut-enum", "milp-solve", "presolve"] {
        assert!(json.contains(phase), "trace lost phase {phase:?}");
    }

    // Phase totals reconcile: children fit in parents, nothing exceeds
    // the trace wall.
    let tree = obs::tree::phase_tree(&trace);
    tree.check().expect("phase tree reconciles with wall clock");
    assert!(tree.wall_us as f64 / 1e3 <= 25_000.0, "wall within budget");
}

#[test]
fn disabled_recorder_emits_nothing() {
    let _l = OBS_LOCK.lock().expect("obs lock");
    let _ = obs::take();

    let b = pipemap::bench_suite::by_name("XORR").expect("XORR benchmark");
    assert!(!obs::enabled());
    // No optimality needed here — a short budget keeps the test fast.
    let o = FlowOptions {
        time_limit: Duration::from_secs(2),
        ..opts(1)
    };
    let r = run_flow(&b.dfg, &b.target, Flow::MilpMap, &o).expect("flow");
    assert!(r.milp.is_some());
    let trace = obs::take();
    assert!(
        trace.events.is_empty() && trace.dropped == 0,
        "disabled run leaked {} event(s)",
        trace.events.len()
    );
}
