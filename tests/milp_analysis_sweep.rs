//! 200-seed random-model soundness sweep over the MILP structural
//! analysis: every certified fixing, implication, clique, orbit, and cut
//! the analysis emits is re-verified by the independent `P05xx` audit in
//! `pipemap-verify`, and the solver's optimum is identical with the
//! analysis on and off. This is the machine-checkable end of the
//! "solver aggressiveness never outruns soundness" contract.

use pipemap::milp::analysis::{analyze, root_cut_loop, AnalysisConfig, CutLoopConfig};
use pipemap::milp::{LinExpr, Model, Sense, SolverOptions, Status};
use pipemap::verify::{check_certified_cuts, check_milp_analysis};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// A small random MILP over binaries (with an occasional general integer
/// or fixed column) and packing/covering/equality rows — the row shapes
/// the probing, clique, cover, and symmetry machinery all react to.
fn random_model(seed: u64) -> Model {
    let mut rng = Rng::new(seed);
    let n_bin = rng.range(2, 9) as usize;
    let mut m = Model::new(format!("sweep-{seed}"));
    let mut vars = Vec::new();
    for _ in 0..n_bin {
        vars.push(m.add_binary(rng.range(-5, 6) as f64));
    }
    if rng.range(0, 3) == 0 {
        vars.push(m.add_integer(0.0, rng.range(1, 4) as f64, rng.range(-3, 4) as f64));
    }
    if rng.range(0, 4) == 0 {
        let v = rng.range(0, 3) as f64;
        vars.push(m.add_integer(v, v, rng.range(-3, 4) as f64));
    }
    let n_rows = rng.range(1, 7) as usize;
    for _ in 0..n_rows {
        let mut e = LinExpr::new();
        let mut terms = 0;
        for &v in &vars {
            if rng.range(0, 100) < 60 {
                let c = rng.range(-3, 4);
                if c != 0 {
                    e.add_term(c as f64, v);
                    terms += 1;
                }
            }
        }
        if terms == 0 {
            continue;
        }
        let sense = match rng.range(0, 10) {
            0 => Sense::Eq,
            1..=4 => Sense::Ge,
            _ => Sense::Le,
        };
        m.add_constraint(e, sense, rng.range(-2, 5) as f64);
    }
    m
}

#[test]
fn two_hundred_seeds_certificates_audit_clean_and_optimum_invariant() {
    let mut nontrivial = 0usize;
    for seed in 0..200u64 {
        let m = random_model(seed);

        // Audit every certificate the analysis produces.
        let sa = analyze(&m, &AnalysisConfig::default());
        let diags = check_milp_analysis(&m, &sa);
        assert!(
            diags.is_empty(),
            "seed {seed}: analysis audit found violations:\n{}",
            diags.render_human(m.name())
        );
        if sa.infeasible.is_none() {
            let out = root_cut_loop(&m, &sa, &CutLoopConfig::default(), None);
            let diags = check_certified_cuts(&m, &sa, &out.cuts);
            assert!(
                diags.is_empty(),
                "seed {seed}: cut audit found violations:\n{}",
                diags.render_human(m.name())
            );
            if !sa.fixings.is_empty() || !out.cuts.is_empty() || !sa.orbits.is_empty() {
                nontrivial += 1;
            }
        } else {
            nontrivial += 1;
        }

        // The analysis must not move the optimum (or the status).
        let on = m
            .solve(&SolverOptions::default())
            .expect("solve with analysis");
        let off = m
            .solve(&SolverOptions {
                probing: false,
                cuts: false,
                symmetry: false,
                ..SolverOptions::default()
            })
            .expect("solve without analysis");
        assert_eq!(
            on.status, off.status,
            "seed {seed}: status {:?} with analysis vs {:?} without",
            on.status, off.status
        );
        if on.status == Status::Optimal {
            assert!(
                (on.objective - off.objective).abs() < 1e-6,
                "seed {seed}: objective {} with analysis vs {} without",
                on.objective,
                off.objective
            );
        }
    }
    // The sweep must actually exercise the machinery, not vacuously pass
    // on models where the analysis finds nothing.
    assert!(
        nontrivial >= 40,
        "only {nontrivial}/200 seeds produced fixings, cuts, orbits, or proofs"
    );
}
