//! 200-seed random-model soundness sweep over the Gomory mixed-integer
//! cut separator: every shipped cut's derivation certificate (tableau
//! multipliers + bound shifts) is re-verified by the independent `P07xx`
//! audit in `pipemap-verify`, and the solver's status and optimum are
//! identical with Gomory separation on and off. Cutting planes tighten
//! the relaxation — they must never cut off an integer-feasible point.

use pipemap::milp::analysis::{analyze, root_cut_loop, AnalysisConfig, CutLoopConfig, CutProof};
use pipemap::milp::{LinExpr, Model, Sense, SolverOptions, Status};
use pipemap::verify::check_certified_cuts;

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

/// A small random MILP biased toward fractional LP relaxations: general
/// integers with odd-coefficient rows (where plain bound rounding leaves
/// a fractional vertex), a sprinkle of binaries, and an occasional
/// continuous column so the mixed-integer branch of the derivation runs.
fn random_model(seed: u64) -> Model {
    let mut rng = Rng::new(seed);
    let mut m = Model::new(format!("gomory-sweep-{seed}"));
    let mut vars = Vec::new();
    let n_int = rng.range(2, 6) as usize;
    for _ in 0..n_int {
        vars.push(m.add_integer(0.0, rng.range(2, 8) as f64, rng.range(-5, 6) as f64));
    }
    for _ in 0..rng.range(0, 3) {
        vars.push(m.add_binary(rng.range(-4, 5) as f64));
    }
    if rng.range(0, 3) == 0 {
        vars.push(m.add_continuous(0.0, rng.range(3, 9) as f64, rng.range(-3, 4) as f64));
    }
    let n_rows = rng.range(2, 7) as usize;
    for _ in 0..n_rows {
        let mut e = LinExpr::new();
        let mut terms = 0;
        for &v in &vars {
            if rng.range(0, 100) < 70 {
                let c = rng.range(-4, 5);
                if c != 0 {
                    e.add_term(c as f64, v);
                    terms += 1;
                }
            }
        }
        if terms == 0 {
            continue;
        }
        let sense = match rng.range(0, 10) {
            0 => Sense::Eq,
            1..=3 => Sense::Ge,
            _ => Sense::Le,
        };
        m.add_constraint(e, sense, rng.range(1, 12) as f64);
    }
    m
}

#[test]
fn two_hundred_seeds_gomory_certificates_audit_clean_and_optimum_invariant() {
    let mut gomory_total = 0usize;
    let mut seeds_with_gomory = 0usize;
    for seed in 0..200u64 {
        let m = random_model(seed);

        // Separate with Gomory cuts on and audit every certificate —
        // including the clique/cover/implication cuts sharing the pool.
        let sa = analyze(&m, &AnalysisConfig::default());
        if sa.infeasible.is_none() {
            let cfg = CutLoopConfig {
                gomory: true,
                ..CutLoopConfig::default()
            };
            let out = root_cut_loop(&m, &sa, &cfg, None);
            let diags = check_certified_cuts(&m, &sa, &out.cuts);
            assert!(
                diags.is_empty(),
                "seed {seed}: cut audit found violations:\n{}",
                diags.render_human(m.name())
            );
            let n_gomory = out
                .cuts
                .iter()
                .filter(|c| matches!(c.proof, CutProof::Gomory { .. }))
                .count();
            gomory_total += n_gomory;
            if n_gomory > 0 {
                seeds_with_gomory += 1;
            }
        }

        // Gomory separation must not move the optimum (or the status).
        let on = m
            .solve(&SolverOptions {
                gomory_cuts: true,
                ..SolverOptions::default()
            })
            .expect("solve with gomory cuts");
        let off = m
            .solve(&SolverOptions::default())
            .expect("solve without gomory cuts");
        assert_eq!(
            on.status, off.status,
            "seed {seed}: status {:?} with gomory cuts vs {:?} without",
            on.status, off.status
        );
        if on.status == Status::Optimal {
            assert!(
                (on.objective - off.objective).abs() < 1e-6,
                "seed {seed}: objective {} with gomory cuts vs {} without",
                on.objective,
                off.objective
            );
        }
    }
    // The sweep must actually ship Gomory cuts, not vacuously pass on
    // models whose relaxations are already integral.
    assert!(
        seeds_with_gomory >= 20,
        "only {seeds_with_gomory}/200 seeds shipped a Gomory cut ({gomory_total} total)"
    );
}
