use pipemap_analyze::simplify;
use pipemap_ir::{execute, DfgBuilder, InputStreams, Op, Port};

#[test]
fn narrow_const_with_dist_repro() {
    let mut b = DfgBuilder::new("r");
    let x = b.input("x", 16);
    let cm = b.const_(0x0F, 16);
    let lo = b.and(x, cm); // [0, 15]
    let c3 = b.const_(3, 16);
    // add reads the const at distance 1: pre-window sees init(c3) = 0.
    let s = b.raw_node(Op::Add, 16, vec![lo.into(), Port::prev_iter(c3, 1)]);
    b.output("o", s);
    let g = b.finish().expect("valid");
    let out = simplify(&g).expect("simplifies");
    let ins = InputStreams::random(&g, 4, 9);
    let t1 = execute(&g, &ins, 4).expect("orig");
    let t2 = execute(&out.dfg, &InputStreams::random(&out.dfg, 4, 9), 4).expect("opt");
    for it in 0..4 {
        assert_eq!(
            t1.value(it, g.outputs()[0]),
            t2.value(it, out.dfg.outputs()[0]),
            "iteration {it}; rewrites: {:?}",
            out.rewrites
        );
    }
}
