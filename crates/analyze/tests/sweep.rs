//! Soundness sweep: over 200 random CDFGs and the full DAC15 benchmark
//! suite, the dataflow facts must agree with the reference interpreter
//! on every executed value, and the proof-carrying simplification must
//! preserve the observable output streams bit-exactly.
//!
//! Graphs come from the deterministic [`pipemap_ir::random_dfg`]
//! generator, so any failure reproduces from its seed alone.

use pipemap_analyze::{simplify, Analysis, SimplifyOutcome};
use pipemap_ir::{execute, random_dfg, Dfg, DfgBuilder, InputStreams, Op, Port, RandomDfgConfig};

const SWEEP_SEEDS: u64 = 200;
const ITERS: usize = 12;

/// Original and simplified graph produce identical output streams under
/// seed-matched random inputs (DCE keeps every input, so the positional
/// stream correspondence is preserved).
fn assert_equivalent(label: &str, orig: &Dfg, out: &SimplifyOutcome, seed: u64) {
    let t1 = execute(orig, &InputStreams::random(orig, ITERS, seed), ITERS)
        .unwrap_or_else(|e| panic!("{label}: original graph: {e}"));
    let t2 = execute(
        &out.dfg,
        &InputStreams::random(&out.dfg, ITERS, seed),
        ITERS,
    )
    .unwrap_or_else(|e| panic!("{label}: simplified graph: {e}"));
    let (o1, o2) = (orig.outputs(), out.dfg.outputs());
    assert_eq!(o1.len(), o2.len(), "{label}: output count changed");
    for it in 0..ITERS {
        for (a, b) in o1.iter().zip(o2.iter()) {
            assert_eq!(
                t1.value(it, *a),
                t2.value(it, *b),
                "{label}: iteration {it}, output {a} diverged after simplify"
            );
        }
    }
}

/// Facts on `dfg` are consistent with one simulated execution.
fn assert_facts_sound(label: &str, dfg: &Dfg, analysis: &Analysis, seed: u64) {
    let trace = execute(dfg, &InputStreams::random(dfg, ITERS, seed), ITERS)
        .unwrap_or_else(|e| panic!("{label}: execute: {e}"));
    analysis
        .check_against_trace(dfg, &trace, ITERS)
        .unwrap_or_else(|e| panic!("{label}: unsound fact: {e}"));
}

#[test]
fn random_sweep_facts_sound_and_simplify_preserves_semantics() {
    let cfg = RandomDfgConfig::default();
    for seed in 0..SWEEP_SEEDS {
        let label = format!("seed {seed}");
        let dfg = random_dfg(seed, &cfg);
        let analysis = Analysis::run(&dfg).expect("analysis");
        assert_facts_sound(&label, &dfg, &analysis, seed ^ 0xA5A5);

        let out = simplify(&dfg).expect("simplify");
        assert!(
            out.stats.nodes_after <= out.stats.nodes_before,
            "{label}: simplify grew the graph"
        );
        assert_equivalent(&label, &dfg, &out, seed ^ 0x5A5A);

        // Facts re-derived on the simplified graph are sound too, and a
        // second round is a fixpoint-ish sanity check: it must still be
        // semantics-preserving.
        let after = Analysis::run(&out.dfg).expect("analysis after");
        assert_facts_sound(&label, &out.dfg, &after, seed ^ 0x1234);
    }
}

/// Regression: range narrowing must not re-intern a loop-carried
/// constant read at distance 0. The pre-window value of a distance-1
/// read is the producer's *init* (0 here), not the constant itself, so
/// folding `Port::prev_iter(const 3, 1)` into a plain `const 3` changed
/// iteration 0 of the narrowed adder.
#[test]
fn narrowing_preserves_loop_carried_constant_window() {
    let mut b = DfgBuilder::new("narrow_const_dist");
    let x = b.input("x", 16);
    let cm = b.const_(0x0F, 16);
    let lo = b.and(x, cm); // range [0, 15] -> triggers add narrowing
    let c3 = b.const_(3, 16);
    // The add reads the constant at distance 1: iteration 0 sees init(c3) = 0.
    let s = b.raw_node(Op::Add, 16, vec![lo.into(), Port::prev_iter(c3, 1)]);
    b.output("o", s);
    let g = b.finish().expect("valid");
    let out = simplify(&g).expect("simplifies");
    assert_equivalent("narrow_const_dist", &g, &out, 9);
}

#[test]
fn bench_suite_facts_sound_and_simplify_preserves_semantics() {
    for b in pipemap_bench_suite::all() {
        let analysis = Analysis::run(&b.dfg).expect("analysis");
        assert_facts_sound(b.name, &b.dfg, &analysis, 0xDAC1_5000);

        let out = simplify(&b.dfg).expect("simplify");
        assert_equivalent(b.name, &b.dfg, &out, 0xDAC1_5001);

        let after = Analysis::run(&out.dfg).expect("analysis after");
        assert_facts_sound(b.name, &out.dfg, &after, 0xDAC1_5002);
    }
}
