//! Bit-level dataflow analysis and proof-carrying simplification for
//! pipemap IR.
//!
//! This crate derives three families of facts over a [`pipemap_ir::Dfg`]
//! by fixpoint iteration:
//!
//! * **known bits** — per-bit three-valued abstraction (`0`/`1`/unknown)
//!   pushed forward through every operation, including carry propagation
//!   through `add`/`sub` and decided comparisons;
//! * **value ranges** — unsigned intervals `[lo, hi]`, mutually refined
//!   against the known bits;
//! * **dead-bit liveness** — a backward demand mask per node: which bits
//!   can still influence a primary output or memory address.
//!
//! On top of the facts, [`simplify`] performs a conservative,
//! *proof-carrying* rewrite of the graph: constant folding, identity
//! forwarding, dead-operand pruning, range-based width narrowing, and
//! dead-code elimination. Every rewrite records a [`Justification`] that
//! an independent checker (see `pipemap-verify`) can re-derive from the
//! original graph, and the contract — rewrites preserve every *known*
//! bit and may change only *dead* bits — makes the composition
//! output-equivalent by construction.
//!
//! # Example
//!
//! ```
//! use pipemap_ir::DfgBuilder;
//! use pipemap_analyze::{Analysis, simplify};
//!
//! let mut b = DfgBuilder::new("demo");
//! let x = b.input("x", 8);
//! let c = b.const_(0x0F, 8);
//! let lo = b.and(x, c);
//! b.output("o", lo);
//! let dfg = b.finish().unwrap();
//!
//! let a = Analysis::run(&dfg).unwrap();
//! assert_eq!(a.fact(lo).bits.zeros, 0xF0); // high nibble proven zero
//!
//! let out = simplify(&dfg).unwrap();
//! assert!(out.rewrites.is_empty() || out.dfg.len() <= dfg.len());
//! ```

#![warn(missing_docs)]

mod dataflow;
mod facts;
mod simplify;

pub use dataflow::Analysis;
pub use facts::{Fact, KnownBits, Range};
pub use simplify::{
    simplify, simplify_with, Justification, Rewrite, RewriteKind, SimplifyOutcome, SimplifyStats,
};
