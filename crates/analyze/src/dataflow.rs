//! Fixpoint driver for the three dataflow analyses.
//!
//! Forward pass: [`Fact`]s (known bits + range) are computed in
//! topological order and iterated to a least fixpoint over loop-carried
//! edges; a loop-carried read joins the producer's fact with the
//! constant fact of the node's initial value, so the result covers every
//! iteration including the pre-loop window. Ranges are widened to the
//! full interval after a few rounds to bound the chain length; known
//! bits form a finite lattice and need no widening.
//!
//! Backward pass: per-node liveness masks are seeded at `Output` nodes
//! and propagated against the edges with per-operand *demand* transfer
//! functions (see [`Analysis::operand_demand`]), refined by the forward
//! facts (e.g. an `and` with a known-zero bit on one side demands
//! nothing from the other side at that position, a `mux` with a known
//! select demands only the chosen leg, a load from a power-of-two-sized
//! memory demands only the low address bits).

use pipemap_ir::{mask, CmpPred, Dfg, IrError, Memory, Node, NodeId, NodeStyle, Op, Port, Trace};

use crate::facts::{add_known, Fact, KnownBits, Range, Trit};

/// Rounds before ranges are widened to full intervals.
const WIDEN_AT: usize = 8;
/// Hard cap on fixpoint rounds (defense in depth; the lattice is finite).
const MAX_ROUNDS: usize = 200;

/// The results of running all three analyses over one graph.
#[derive(Debug, Clone)]
pub struct Analysis {
    facts: Vec<Fact>,
    live: Vec<u64>,
}

impl Analysis {
    /// Run known-bits, range, and liveness analysis to fixpoint.
    ///
    /// # Errors
    ///
    /// Returns an error if the graph fails [`Dfg::validate`] — the
    /// transfer functions rely on the width invariants it establishes.
    pub fn run(dfg: &Dfg) -> Result<Analysis, IrError> {
        dfg.validate()?;
        let order = dfg.topo_order()?;
        let n = dfg.len();

        // Forward: known bits + ranges.
        let mut facts: Vec<Option<Fact>> = vec![None; n];
        let mut fwd_rounds = 0usize;
        for round in 0..MAX_ROUNDS {
            fwd_rounds = round + 1;
            let mut changed = false;
            for &v in &order {
                let node = dfg.node(v);
                let new = transfer(dfg, node, &facts);
                match facts[v.index()] {
                    None => {
                        facts[v.index()] = Some(new);
                        changed = true;
                    }
                    Some(old) => {
                        let mut j = old.join(new);
                        if round >= WIDEN_AT && j.range != old.range {
                            j.range = Range::full(node.width);
                        }
                        let j = j.refine(node.width);
                        if j != old {
                            facts[v.index()] = Some(j);
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let facts: Vec<Fact> = facts
            .into_iter()
            .zip(dfg.iter())
            .map(|(f, (_, n))| f.unwrap_or_else(|| Fact::top(n.width)))
            .collect();

        // Backward: liveness. Monotone (masks only gain bits), finite.
        let mut live = vec![0u64; n];
        for (id, node) in dfg.iter() {
            if node.op == Op::Output {
                live[id.index()] = mask(node.width);
            }
        }
        let mut bwd_rounds = 0usize;
        loop {
            bwd_rounds += 1;
            let mut changed = false;
            for &v in order.iter().rev() {
                let node = dfg.node(v);
                let l = live[v.index()];
                for (k, p) in node.ins.iter().enumerate() {
                    let d =
                        operand_demand_impl(dfg, node, k, l, &facts) & mask(dfg.node(p.node).width);
                    let cell = &mut live[p.node.index()];
                    if *cell | d != *cell {
                        *cell |= d;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        if pipemap_obs::enabled() {
            pipemap_obs::instant_with(
                "dataflow-fixpoint",
                vec![
                    ("forward_rounds", fwd_rounds.into()),
                    ("backward_rounds", bwd_rounds.into()),
                    ("nodes", n.into()),
                ],
            );
        }

        Ok(Analysis { facts, live })
    }

    /// The forward fact for a node (covers every iteration).
    pub fn fact(&self, v: NodeId) -> Fact {
        self.facts[v.index()]
    }

    /// The fact observed through a port: for a loop-carried read this
    /// joins the producer's fact with the node's initial value, which is
    /// what reads before iteration `dist` actually see.
    pub fn port_fact(&self, dfg: &Dfg, p: Port) -> Fact {
        let w = dfg.node(p.node).width;
        let f = self.facts[p.node.index()];
        if p.dist == 0 {
            f
        } else {
            f.join(Fact::constant(dfg.init_value(p.node) & mask(w), w))
                .refine(w)
        }
    }

    /// Mask of bits of `v` that can reach a primary output (demand).
    pub fn live(&self, v: NodeId) -> u64 {
        self.live[v.index()]
    }

    /// Mask of provably dead bits of `v`.
    pub fn dead(&self, dfg: &Dfg, v: NodeId) -> u64 {
        mask(dfg.node(v).width) & !self.live[v.index()]
    }

    /// Demand mask operand `k` of node `v` must satisfy so that the live
    /// bits of `v` keep their values. Bits outside the mask may change
    /// without any live bit of `v` (and hence any output) changing, as
    /// long as every *known* bit in the graph keeps its value — the
    /// invariant all `simplify` rewrites maintain.
    pub fn operand_demand(&self, dfg: &Dfg, v: NodeId, k: usize) -> u64 {
        let node = dfg.node(v);
        operand_demand_impl(dfg, node, k, self.live[v.index()], &self.facts)
            & mask(dfg.node(node.ins[k].node).width)
    }

    /// Per-bit pattern of a node's fact, MSB first: `0`/`1` for known
    /// bits, `-` for live-but-unknown, `x` for provably dead.
    pub fn pattern(&self, dfg: &Dfg, v: NodeId) -> String {
        let w = dfg.node(v).width;
        let f = self.facts[v.index()];
        let live = self.live[v.index()];
        (0..w)
            .rev()
            .map(|j| {
                let b = 1u64 << j;
                if live & b == 0 && dfg.node(v).op != Op::Output {
                    'x'
                } else if f.bits.ones & b != 0 {
                    '1'
                } else if f.bits.zeros & b != 0 {
                    '0'
                } else {
                    '-'
                }
            })
            .collect()
    }

    /// A DOT [`NodeStyle`] visualizing the facts: green fill for nodes
    /// proven constant, grey dashed for fully dead nodes, and the bit
    /// pattern from [`Analysis::pattern`] as a note when anything is
    /// known or dead.
    pub fn dot_style(&self, dfg: &Dfg, v: NodeId) -> NodeStyle {
        let node = dfg.node(v);
        let mut s = NodeStyle::default();
        if matches!(node.op, Op::Input | Op::Const(_) | Op::Output) {
            return s;
        }
        let w = node.width;
        let f = self.facts[v.index()];
        let live = self.live[v.index()];
        if live == 0 {
            s.fill = Some("#dddddd".to_string());
            s.dashed = true;
            s.note = Some("dead".to_string());
        } else if let Some(c) = f.constant_value(w) {
            s.fill = Some("#d8f2d0".to_string());
            s.dashed = true;
            s.note = Some(format!("= 0x{c:x}"));
        } else if f.bits.known() != 0 || live != mask(w) {
            s.fill = Some("#fff3b0".to_string());
            s.note = Some(self.pattern(dfg, v));
        }
        s
    }

    /// Check every forward fact against an executed [`Trace`]: a bit
    /// claimed known or a range bound must never disagree with any
    /// simulated value.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated fact.
    pub fn check_against_trace(
        &self,
        dfg: &Dfg,
        trace: &Trace,
        iterations: usize,
    ) -> Result<(), String> {
        for iter in 0..iterations.min(trace.iterations()) {
            for (id, node) in dfg.iter() {
                let v = trace.value(iter, id) & mask(node.width);
                let f = self.facts[id.index()];
                if !f.bits.covers(v) {
                    return Err(format!(
                        "node {id} ({}) iteration {iter}: value {v:#x} violates known bits \
                         zeros={:#x} ones={:#x}",
                        node.op.mnemonic(),
                        f.bits.zeros,
                        f.bits.ones
                    ));
                }
                if !f.range.contains(v) {
                    return Err(format!(
                        "node {id} ({}) iteration {iter}: value {v:#x} outside range \
                         [{:#x}, {:#x}]",
                        node.op.mnemonic(),
                        f.range.lo,
                        f.range.hi
                    ));
                }
            }
        }
        Ok(())
    }
}

/// [`Analysis::port_fact`] over a completed fact vector.
fn port_fact_complete(dfg: &Dfg, p: Port, facts: &[Fact]) -> Fact {
    let w = dfg.node(p.node).width;
    let f = facts[p.node.index()];
    if p.dist == 0 {
        f
    } else {
        f.join(Fact::constant(dfg.init_value(p.node) & mask(w), w))
            .refine(w)
    }
}

fn port_fact_partial(dfg: &Dfg, p: Port, facts: &[Option<Fact>]) -> Fact {
    let w = dfg.node(p.node).width;
    let producer = facts[p.node.index()];
    if p.dist == 0 {
        // Distance-0 producers precede the consumer in topological order,
        // so the fact is present from round one.
        producer.unwrap_or_else(|| Fact::top(w))
    } else {
        let init = Fact::constant(dfg.init_value(p.node) & mask(w), w);
        match producer {
            // Before the producer's fact exists, loop-carried reads are
            // modeled by the initial value alone; later rounds join in the
            // producer and the fixpoint covers both.
            None => init,
            Some(f) => f.join(init).refine(w),
        }
    }
}

/// Forward transfer function for one node.
fn transfer(dfg: &Dfg, node: &Node, facts: &[Option<Fact>]) -> Fact {
    let w = node.width;
    let m = mask(w);
    let pf = |k: usize| port_fact_partial(dfg, node.ins[k], facts);
    let in_w = |k: usize| dfg.node(node.ins[k].node).width;

    let f = match node.op {
        Op::Input => Fact::top(w),
        Op::Const(c) => Fact::constant(c & m, w),
        Op::Output => pf(0),
        Op::And => {
            let (a, b) = (pf(0), pf(1));
            Fact {
                bits: KnownBits {
                    ones: a.bits.ones & b.bits.ones,
                    zeros: (a.bits.zeros | b.bits.zeros) & m,
                },
                range: Range {
                    lo: 0,
                    hi: a.range.hi.min(b.range.hi),
                },
            }
        }
        Op::Or => {
            let (a, b) = (pf(0), pf(1));
            Fact {
                bits: KnownBits {
                    ones: (a.bits.ones | b.bits.ones) & m,
                    zeros: a.bits.zeros & b.bits.zeros,
                },
                range: Range {
                    lo: a.range.lo.max(b.range.lo),
                    hi: smear(a.range.hi) | smear(b.range.hi),
                },
            }
        }
        Op::Xor => {
            let (a, b) = (pf(0), pf(1));
            Fact {
                bits: KnownBits {
                    ones: (a.bits.ones & b.bits.zeros) | (a.bits.zeros & b.bits.ones),
                    zeros: (a.bits.ones & b.bits.ones) | (a.bits.zeros & b.bits.zeros),
                },
                range: Range {
                    lo: 0,
                    hi: smear(a.range.hi) | smear(b.range.hi),
                },
            }
        }
        Op::Not => {
            let a = pf(0);
            Fact {
                bits: a.bits.not(w),
                range: Range {
                    lo: m - a.range.hi.min(m),
                    hi: m - a.range.lo.min(m),
                },
            }
        }
        Op::Mux => {
            let sel = pf(0);
            match sel.bits.trit(0) {
                Trit::One => pf(1),
                Trit::Zero => pf(2),
                Trit::Top => pf(1).join(pf(2)),
            }
        }
        Op::Shl(s) => {
            let a = pf(0);
            if s >= 64 {
                Fact::constant(0, w)
            } else {
                // Shifted-in low bits are zero; out bit j (j >= s) copies
                // in bit j-s.
                let mut zeros = ((1u64 << s) - 1) & m;
                let mut ones = 0u64;
                for j in s..w {
                    let src = 1u64 << (j - s);
                    if a.bits.zeros & src != 0 {
                        zeros |= 1u64 << j;
                    } else if a.bits.ones & src != 0 {
                        ones |= 1u64 << j;
                    }
                }
                let range = if (a.range.hi as u128) << s <= m as u128 {
                    Range {
                        lo: a.range.lo << s,
                        hi: a.range.hi << s,
                    }
                } else {
                    Range::full(w)
                };
                Fact {
                    bits: KnownBits { zeros, ones },
                    range,
                }
            }
        }
        Op::Shr(s) => {
            let a = pf(0);
            if s >= 64 {
                Fact::constant(0, w)
            } else {
                // Out bit j reads in bit j+s; bits past the producer width
                // are zero.
                let iw = in_w(0);
                let mut zeros = 0u64;
                let mut ones = 0u64;
                for j in 0..w {
                    let src = j + s;
                    if src >= iw || a.bits.zeros & (1u64 << src) != 0 {
                        zeros |= 1u64 << j;
                    } else if a.bits.ones & (1u64 << src) != 0 {
                        ones |= 1u64 << j;
                    }
                }
                Fact {
                    bits: KnownBits { zeros, ones },
                    range: Range {
                        lo: a.range.lo >> s,
                        hi: a.range.hi >> s,
                    },
                }
            }
        }
        Op::Slice { lo } => {
            let a = pf(0);
            let bits = KnownBits {
                ones: (a.bits.ones >> lo) & m,
                zeros: (a.bits.zeros >> lo) & m,
            };
            let range = if a.range.hi >> lo <= m {
                Range {
                    lo: a.range.lo >> lo,
                    hi: a.range.hi >> lo,
                }
            } else {
                Range::full(w)
            };
            Fact { bits, range }
        }
        Op::Concat => {
            let (hi, lo) = (pf(0), pf(1));
            let wl = in_w(1);
            Fact {
                bits: KnownBits {
                    ones: ((hi.bits.ones << wl) | lo.bits.ones) & m,
                    zeros: ((hi.bits.zeros << wl) | lo.bits.zeros) & m,
                },
                // Fields are disjoint: exact interval arithmetic.
                range: Range {
                    lo: (hi.range.lo << wl) | lo.range.lo,
                    hi: (hi.range.hi << wl) | lo.range.hi,
                },
            }
        }
        Op::Add => {
            let (a, b) = (pf(0), pf(1));
            let bits = add_known(a.bits, b.bits, Trit::Zero, w);
            let range = match (a.range.hi as u128) + (b.range.hi as u128) {
                s if s <= m as u128 => Range {
                    lo: a.range.lo + b.range.lo,
                    hi: a.range.hi + b.range.hi,
                },
                _ => Range::full(w),
            };
            Fact { bits, range }
        }
        Op::Sub => {
            let (a, b) = (pf(0), pf(1));
            let bits = add_known(a.bits, b.bits.not(w), Trit::One, w);
            let range = if a.range.lo >= b.range.hi {
                Range {
                    lo: a.range.lo - b.range.hi,
                    hi: a.range.hi - b.range.lo,
                }
            } else {
                Range::full(w)
            };
            Fact { bits, range }
        }
        Op::Cmp(pred) => {
            let (a, b) = (pf(0), pf(1));
            match cmp_decide(pred, a, b, in_w(0)) {
                Some(t) => Fact::constant(u64::from(t), 1),
                None => Fact::top(1),
            }
        }
        Op::Mul => {
            let (a, b) = (pf(0), pf(1));
            if let (Some(x), Some(y)) = (a.constant_value(in_w(0)), b.constant_value(in_w(1))) {
                Fact::constant(x.wrapping_mul(y) & m, w)
            } else if a.range.hi == 0 || b.range.hi == 0 {
                Fact::constant(0, w)
            } else {
                let range = match (a.range.hi as u128) * (b.range.hi as u128) {
                    p if p <= m as u128 => Range {
                        lo: a.range.lo * b.range.lo,
                        hi: a.range.hi * b.range.hi,
                    },
                    _ => Range::full(w),
                };
                Fact {
                    bits: KnownBits::top(),
                    range,
                }
            }
        }
        Op::Load(mem) => load_fact(dfg.memory(mem), pf(0), w),
    };
    f.refine(w)
}

/// Fact for a memory load given the address fact.
fn load_fact(mem: &Memory, addr: Fact, w: u32) -> Fact {
    let m = mask(w);
    let len = mem.data.len() as u64;
    // Which entries can be addressed? `load` indexes data[addr % len].
    let candidates: Box<dyn Iterator<Item = u64> + '_> =
        if addr.range.hi.saturating_sub(addr.range.lo) + 1 >= len || len > 4096 {
            Box::new(mem.data.iter().copied())
        } else {
            Box::new((addr.range.lo..=addr.range.hi).map(move |i| mem.data[(i % len) as usize]))
        };
    let mut it = candidates.map(|d| d & m);
    let Some(first) = it.next() else {
        return Fact::top(w);
    };
    let mut f = Fact::constant(first, w);
    for d in it {
        f = f.join(Fact::constant(d, w));
    }
    f.refine(w)
}

/// All-ones up to and including the most significant set bit of `x`.
fn smear(x: u64) -> u64 {
    if x == 0 {
        0
    } else {
        u64::MAX >> x.leading_zeros()
    }
}

/// Decide a comparison from the operand facts, if possible.
fn cmp_decide(pred: CmpPred, a: Fact, b: Fact, w: u32) -> Option<bool> {
    // Bit-level disequality: some position is known with opposite values.
    let conflict = ((a.bits.ones & b.bits.zeros) | (a.bits.zeros & b.bits.ones)) != 0;
    let eq = match (a.range.constant_value(), b.range.constant_value()) {
        (Some(x), Some(y)) => Some(x == y),
        _ if conflict || a.range.hi < b.range.lo || b.range.hi < a.range.lo => Some(false),
        _ => None,
    };
    // Unsigned interval ordering.
    let ult = if a.range.hi < b.range.lo {
        Some(true)
    } else if a.range.lo >= b.range.hi {
        Some(false)
    } else {
        None
    };
    let ule = if a.range.hi <= b.range.lo {
        Some(true)
    } else if a.range.lo > b.range.hi {
        Some(false)
    } else {
        None
    };
    match pred {
        CmpPred::Eq => eq,
        CmpPred::Ne => eq.map(|t| !t),
        CmpPred::Ult => ult,
        CmpPred::Uge => ult.map(|t| !t),
        CmpPred::Ule => ule,
        CmpPred::Ugt => ule.map(|t| !t),
        CmpPred::Slt | CmpPred::Sge | CmpPred::Sle | CmpPred::Sgt => {
            // Signed order from sign knowledge + unsigned order within a
            // sign class (two's complement preserves order inside each
            // half). Facts are refined, so a known sign bit is reflected
            // in the range bounds.
            let sa = a.bits.trit(w - 1);
            let sb = b.bits.trit(w - 1);
            let slt = match (sa, sb) {
                (Trit::One, Trit::Zero) => Some(true),
                (Trit::Zero, Trit::One) => Some(false),
                (Trit::One, Trit::One) | (Trit::Zero, Trit::Zero) => ult,
                _ => None,
            };
            let sle = match (sa, sb) {
                (Trit::One, Trit::Zero) => Some(true),
                (Trit::Zero, Trit::One) => Some(false),
                (Trit::One, Trit::One) | (Trit::Zero, Trit::Zero) => ule,
                _ => None,
            };
            match pred {
                CmpPred::Slt => slt,
                CmpPred::Sge => slt.map(|t| !t),
                CmpPred::Sle => sle,
                CmpPred::Sgt => sle.map(|t| !t),
                _ => unreachable!(),
            }
        }
    }
}

/// Demand transfer: which bits of operand `k` must keep their values for
/// the live bits `l` of `node` to keep theirs (given the forward facts).
fn operand_demand_impl(dfg: &Dfg, node: &Node, k: usize, l: u64, facts: &[Fact]) -> u64 {
    let pf = |k: usize| port_fact_complete(dfg, node.ins[k], facts);
    let in_w = |k: usize| dfg.node(node.ins[k].node).width;
    if l == 0 {
        return 0;
    }
    let msb_demand = |k: usize| {
        // Cumulative (arithmetic) ops: output bit j depends on input bits
        // 0..=j, so the demand reaches up to the highest live bit.
        let h = 63 - l.leading_zeros();
        mask((h + 1).min(in_w(k)))
    };
    match node.op {
        Op::Input | Op::Const(_) => 0,
        Op::Output => l,
        Op::And => {
            let other = pf(1 - k);
            l & !other.bits.zeros
        }
        Op::Or => {
            let other = pf(1 - k);
            l & !other.bits.ones
        }
        Op::Xor | Op::Not => l,
        Op::Mux => {
            let sel = pf(0);
            match sel.bits.trit(0) {
                Trit::One => [0, l, 0][k],
                Trit::Zero => [0, 0, l][k],
                Trit::Top => [1, l, l][k],
            }
        }
        Op::Shl(s) => {
            if s >= 64 {
                0
            } else {
                l >> s
            }
        }
        Op::Shr(s) => {
            if s >= 64 {
                0
            } else {
                l << s.min(63)
            }
        }
        Op::Slice { lo } => l << lo.min(63),
        Op::Concat => {
            let wl = in_w(1);
            if k == 0 {
                l >> wl
            } else {
                l & mask(wl)
            }
        }
        Op::Add | Op::Sub | Op::Mul => msb_demand(k),
        Op::Cmp(pred) => {
            let rhs = dfg.node(node.ins[1].node);
            let zero_rhs = matches!(rhs.op, Op::Const(c) if c == 0);
            if pred.msb_test_vs_zero() && zero_rhs {
                if k == 0 {
                    1u64 << (in_w(0) - 1)
                } else {
                    0
                }
            } else {
                mask(in_w(k))
            }
        }
        Op::Load(mem) => {
            let len = dfg.memory(mem).data.len() as u64;
            if len.is_power_of_two() {
                mask((64 - (len - 1).leading_zeros()).clamp(1, in_w(0)))
            } else {
                mask(in_w(0))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, DfgBuilder, InputStreams};

    #[test]
    fn constants_fold_through_logic() {
        let mut b = DfgBuilder::new("c");
        let x = b.input("x", 8);
        let c5 = b.const_(5, 8);
        let c3 = b.const_(3, 8);
        let s = b.add(c5, c3);
        let a = b.and(x, s);
        b.output("o", a);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.fact(s).constant_value(8), Some(8));
        // x & 8: all bits except bit 3 known zero.
        assert_eq!(an.fact(a).bits.zeros, 0xF7);
        assert_eq!(an.fact(a).range, Range { lo: 0, hi: 8 });
    }

    #[test]
    fn shift_and_slice_facts() {
        let mut b = DfgBuilder::new("s");
        let x = b.input("x", 8);
        let sh = b.shr(x, 6); // [0, 3]
        let sl = b.slice(x, 5, 2); // bits 6..5
        b.output("a", sh);
        b.output("b", sl);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.fact(sh).range, Range { lo: 0, hi: 3 });
        assert_eq!(an.fact(sh).bits.zeros, 0xFC);
        assert_eq!(an.fact(sl).range, Range { lo: 0, hi: 3 });
    }

    #[test]
    fn mux_with_known_select_copies_leg() {
        let mut b = DfgBuilder::new("m");
        let x = b.input("x", 4);
        let one = b.const_(1, 1);
        let c9 = b.const_(9, 4);
        let m = b.raw_node(Op::Mux, 4, vec![one.into(), c9.into(), x.into()]);
        b.output("o", m);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.fact(m).constant_value(4), Some(9));
    }

    #[test]
    fn loop_carried_accumulator_joins_init() {
        // q = (q@-1 | 0x3): starts at init 0 so bits accumulate; the fact
        // must cover both 0 (first read) and 3 (steady state).
        let mut b = DfgBuilder::new("l");
        let c3 = b.const_(3, 4);
        let prev = b.placeholder(4);
        let q = b.or(c3, prev);
        b.bind(prev, q, 1).expect("bind");
        b.output("o", q);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        // q itself is always 3 | previous ⊇ 3.
        assert_eq!(an.fact(q).bits.ones & 0x3, 0x3);
        assert_eq!(an.fact(q).bits.zeros, 0xC);
        let ins = InputStreams::random(&g, 8, 7);
        let t = execute(&g, &ins, 8).expect("runs");
        an.check_against_trace(&g, &t, 8).expect("sound");
    }

    #[test]
    fn cmp_decisions() {
        let mut b = DfgBuilder::new("q");
        let x = b.input("x", 8);
        let hi = b.shr(x, 4); // [0, 15]
        let c16 = b.const_(16, 8);
        let lt = b.cmp(CmpPred::Ult, hi, c16); // always true
        let ge = b.cmp(CmpPred::Sge, hi, c16); // 0..15 >= 16 signed: false
        b.output("lt", lt);
        b.output("ge", ge);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.fact(lt).constant_value(1), Some(1));
        assert_eq!(an.fact(ge).constant_value(1), Some(0));
    }

    #[test]
    fn liveness_through_slice_and_masks() {
        let mut b = DfgBuilder::new("lv");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let t = b.xor(x, y);
        let s = b.slice(t, 0, 4); // only low nibble observed
        b.output("o", s);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.live(t), 0x0F);
        assert_eq!(an.live(x), 0x0F);
        assert_eq!(an.dead(&g, y), 0xF0);
        // and with a constant mask kills the other side's bits.
        let mut b = DfgBuilder::new("lv2");
        let x = b.input("x", 8);
        let c = b.const_(0x0F, 8);
        let a = b.and(x, c);
        b.output("o", a);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.live(x), 0x0F);
    }

    #[test]
    fn msb_only_cmp_demand() {
        let mut b = DfgBuilder::new("msb");
        let x = b.input("x", 8);
        let z = b.const_(0, 8);
        let c = b.cmp(CmpPred::Sge, x, z);
        b.output("o", c);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.live(x), 0x80);
        // sle reads every bit (x <= 0 includes x == 0).
        let mut b = DfgBuilder::new("msb2");
        let x = b.input("x", 8);
        let z = b.const_(0, 8);
        let c = b.cmp(CmpPred::Sle, x, z);
        b.output("o", c);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        assert_eq!(an.live(x), 0xFF);
    }

    #[test]
    fn load_facts_join_table_entries() {
        let mut b = DfgBuilder::new("ld");
        let mem = b.add_memory("t", 8, vec![0x10, 0x12, 0x16, 0x14]);
        let x = b.input("x", 2);
        let v = b.load(mem, x);
        b.output("o", v);
        let g = b.finish().expect("valid");
        let an = Analysis::run(&g).expect("runs");
        // All entries share 0b000101?0 pattern: bit 4 set, bits 0,3,5..7
        // clear.
        let f = an.fact(v);
        assert_eq!(f.bits.ones, 0x10);
        assert_eq!(f.bits.zeros, !0x16u64 & 0xFF);
        assert_eq!(f.range, Range { lo: 0x10, hi: 0x16 });
        // Power-of-two table: address demand is the low bits only.
        assert_eq!(an.live(x), 0x3);
    }

    #[test]
    fn facts_sound_on_random_graph() {
        for seed in 0..20 {
            let g = pipemap_ir::random_dfg(seed, &Default::default());
            let an = Analysis::run(&g).expect("runs");
            let ins = InputStreams::random(&g, 16, seed ^ 0xABCD);
            let t = execute(&g, &ins, 16).expect("runs");
            an.check_against_trace(&g, &t, 16)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
