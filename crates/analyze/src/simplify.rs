//! Proof-carrying simplification on top of the analysis facts.
//!
//! Five rewrite families, applied in order:
//!
//! 1. **Constant folding** — a node whose fact pins every bit becomes an
//!    `Op::Const` (its initial value is preserved, so loop-carried reads
//!    of the pre-loop window are unaffected).
//! 2. **Forwarding** — identity operations (`x & 1…1`, `x | 0`, `x ^ 0`,
//!    `x + 0`, `x - 0`, `x * 1`, `shl/shr` by 0, full-width `slice` at 0,
//!    `mux` with a known select) rewire their consumers to the operand.
//! 3. **Dead-operand pruning** — an operand none of whose bits can affect
//!    a live bit of the consumer is replaced by a constant that agrees
//!    with the operand's known bits, unhooking its cone.
//! 4. **Width narrowing** — an `add`/`sub` whose range proves the top
//!    bits zero is re-expressed at the narrow width and zero-extended.
//! 5. **Dead-code elimination** — nodes no longer reachable from an
//!    output are removed (`Input`/`Output` nodes are always kept so the
//!    I/O interface, and hence seeded input streams, line up).
//!
//! Every rewrite carries a [`Justification`] that an independent checker
//! can re-derive from the *original* graph (see `pipemap-verify`'s
//! analyze pass). The global soundness contract: each rewrite preserves
//! the value of every bit the analysis claims **known**, and may change
//! only bits the liveness analysis proves **dead** — by induction no
//! output bit ever changes.

use std::collections::HashMap;

use pipemap_ir::{mask, Dfg, IrError, Node, NodeId, Op, Port};

use crate::dataflow::Analysis;

/// The machine-checkable reason a rewrite is sound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Justification {
    /// The analysis pins every bit of the node to `value`.
    KnownValue {
        /// The proven constant.
        value: u64,
    },
    /// The mux select bit is proven constant.
    KnownSelect {
        /// The proven select value.
        value: bool,
    },
    /// Operand `operand` is proven to be the operation's identity element
    /// `value` (all-ones for `and`, `0` for `or`/`xor`/`add`/`sub`, `1`
    /// for `mul`).
    IdentityOperand {
        /// Index of the identity operand.
        operand: usize,
        /// The identity element it is proven to equal.
        value: u64,
    },
    /// The operation is structurally a wire (`shl 0`, `shr 0`,
    /// full-width `slice` at bit 0).
    IdentityWire,
    /// A comparison of a value with itself decides by reflexivity.
    ReflexiveCmp,
    /// The range analysis bounds the result below `2^kept`.
    RangeNarrow {
        /// Bits that must be kept.
        kept: u32,
    },
    /// No live bit of the node depends on this operand.
    DeadBits {
        /// Index of the dead operand.
        operand: usize,
    },
    /// The node can no longer reach any primary output.
    Unreachable,
}

/// What a rewrite did (node ids refer to the **original** graph; ports
/// are single-hop, pre-resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RewriteKind {
    /// The node was replaced by `Op::Const(value)`.
    ConstFold {
        /// Folded value.
        value: u64,
    },
    /// Consumers of the node were rewired to read `to` instead.
    Forward {
        /// Replacement port (distances compose additively).
        to: Port,
    },
    /// Operand `operand` was replaced by a constant `value`.
    DeadOperand {
        /// Index of the replaced operand.
        operand: usize,
        /// Constant it was replaced with (agrees with all known bits).
        value: u64,
    },
    /// The node was re-expressed at width `to` and zero-extended back to
    /// `from`.
    Narrow {
        /// Original width.
        from: u32,
        /// Narrow width.
        to: u32,
    },
    /// The node was deleted.
    RemoveDead,
}

/// One applied rewrite with its justification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rewrite {
    /// The rewritten node, in original-graph ids.
    pub node: NodeId,
    /// What happened.
    pub kind: RewriteKind,
    /// Why it is sound.
    pub justification: Justification,
}

/// Aggregate statistics of one simplification.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplifyStats {
    /// Nodes before.
    pub nodes_before: usize,
    /// Nodes after (DCE and helper nodes included).
    pub nodes_after: usize,
    /// Constant-folded nodes.
    pub const_folded: usize,
    /// Forwarded (bypassed) nodes.
    pub forwarded: usize,
    /// Operands replaced by constants.
    pub dead_operands: usize,
    /// Narrowed arithmetic nodes.
    pub narrowed: usize,
    /// Nodes removed by DCE.
    pub removed: usize,
    /// Bits proven constant across all non-source nodes.
    pub bits_known: u64,
    /// Bits proven dead across all non-output nodes.
    pub bits_dead: u64,
    /// Bits of logic pruned: widths of removed nodes plus widths saved by
    /// narrowing.
    pub bits_pruned: u64,
}

/// The simplified graph plus the evidence trail.
#[derive(Debug, Clone)]
pub struct SimplifyOutcome {
    /// The simplified, validated graph.
    pub dfg: Dfg,
    /// Every rewrite applied, in application order.
    pub rewrites: Vec<Rewrite>,
    /// Map from original node ids to ids in the simplified graph
    /// (`None` for removed nodes).
    pub node_map: Vec<Option<NodeId>>,
    /// Aggregate statistics.
    pub stats: SimplifyStats,
}

/// Working copy of the graph being rewritten, with a pool of shared
/// helper constants.
struct Work {
    nodes: Vec<Node>,
    names: Vec<Option<String>>,
    inits: Vec<u64>,
    const_pool: HashMap<(u32, u64), NodeId>,
}

impl Work {
    fn intern_const(&mut self, width: u32, value: u64) -> NodeId {
        let c = value & mask(width);
        if let Some(&id) = self.const_pool.get(&(width, c)) {
            return id;
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op: Op::Const(c),
            width,
            ins: vec![],
        });
        self.names.push(None);
        self.inits.push(0);
        self.const_pool.insert((width, c), id);
        id
    }

    /// A `kept`-wide view of `p`: constants are re-interned narrow,
    /// anything else gets a low slice.
    fn narrow_port(&mut self, p: Port, kept: u32) -> Port {
        if let Op::Const(c) = self.nodes[p.node.index()].op {
            // A loop-carried read observes the producer's *initial*
            // value before iteration `dist`; re-interning the constant
            // at distance 0 would erase that window. Shortcut only when
            // the window is invisible in the kept bits.
            if p.dist == 0 || (self.inits[p.node.index()] ^ c) & mask(kept) == 0 {
                return Port::this_iter(self.intern_const(kept, c));
            }
        }
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            op: Op::Slice { lo: 0 },
            width: kept,
            ins: vec![p],
        });
        self.names.push(None);
        self.inits.push(0);
        Port::this_iter(id)
    }
}

/// Run the analyses and simplify `dfg`.
///
/// # Errors
///
/// Fails only if `dfg` itself does not validate (the rewritten graph is
/// re-validated; a failure there would be an internal bug and is also
/// reported as an error rather than a panic).
pub fn simplify(dfg: &Dfg) -> Result<SimplifyOutcome, IrError> {
    let analysis = Analysis::run(dfg)?;
    simplify_with(dfg, &analysis)
}

/// [`simplify`] with a pre-computed analysis.
pub fn simplify_with(dfg: &Dfg, analysis: &Analysis) -> Result<SimplifyOutcome, IrError> {
    let n = dfg.len();
    let mut w = Work {
        nodes: dfg.iter().map(|(_, nd)| nd.clone()).collect(),
        names: dfg
            .node_ids()
            .map(|id| dfg.node_name(id).map(String::from))
            .collect(),
        inits: dfg.node_ids().map(|id| dfg.init_value(id)).collect(),
        const_pool: HashMap::new(),
    };
    let mut rewrites: Vec<Rewrite> = Vec::new();
    let mut stats = SimplifyStats {
        nodes_before: n,
        ..SimplifyStats::default()
    };
    for (id, nd) in dfg.iter() {
        if !matches!(nd.op, Op::Input | Op::Const(_)) {
            stats.bits_known += u64::from(analysis.fact(id).bits.known().count_ones());
        }
        if nd.op != Op::Output {
            stats.bits_dead += u64::from(analysis.dead(dfg, id).count_ones());
        }
    }

    // Pass 1: constant folding (and reflexive compares).
    for id in dfg.node_ids() {
        let nd = &w.nodes[id.index()];
        if matches!(nd.op, Op::Input | Op::Output | Op::Const(_)) {
            continue;
        }
        let width = nd.width;
        if let Some(c) = analysis.fact(id).constant_value(width) {
            rewrites.push(Rewrite {
                node: id,
                kind: RewriteKind::ConstFold { value: c },
                justification: Justification::KnownValue { value: c },
            });
            w.nodes[id.index()] = Node {
                op: Op::Const(c),
                width,
                ins: vec![],
            };
            stats.const_folded += 1;
        } else if let Op::Cmp(p) = nd.op {
            if nd.ins[0] == nd.ins[1] {
                let c = u64::from(p.reflexive_value());
                rewrites.push(Rewrite {
                    node: id,
                    kind: RewriteKind::ConstFold { value: c },
                    justification: Justification::ReflexiveCmp,
                });
                w.nodes[id.index()] = Node {
                    op: Op::Const(c),
                    width: 1,
                    ins: vec![],
                };
                stats.const_folded += 1;
            }
        }
    }

    // Pass 2: forwarding. Candidates are justified against the original
    // facts; chains are resolved per consumer edge with the loop-carried
    // guard (a read at distance > 0 may only hop when the initial values
    // agree, since the pre-loop window switches from the bypassed node's
    // init to the target's).
    let mut fwd: Vec<Option<Port>> = vec![None; n];
    for id in dfg.node_ids() {
        let nd = &w.nodes[id.index()];
        let width = nd.width;
        let known_port = |k: usize| analysis.port_fact(dfg, nd.ins[k]);
        let candidate = match nd.op {
            Op::Mux => known_port(0).bits.constant_value(1).map(|s| {
                let leg = if s == 1 { 1 } else { 2 };
                (nd.ins[leg], Justification::KnownSelect { value: s == 1 })
            }),
            Op::And => [0, 1].into_iter().find_map(|k| {
                (known_port(k).bits.ones == mask(width)).then(|| {
                    (
                        nd.ins[1 - k],
                        Justification::IdentityOperand {
                            operand: k,
                            value: mask(width),
                        },
                    )
                })
            }),
            Op::Or | Op::Xor | Op::Add => [0, 1].into_iter().find_map(|k| {
                (known_port(k).constant_value(width) == Some(0)).then(|| {
                    (
                        nd.ins[1 - k],
                        Justification::IdentityOperand {
                            operand: k,
                            value: 0,
                        },
                    )
                })
            }),
            Op::Sub => (known_port(1).constant_value(width) == Some(0)).then(|| {
                (
                    nd.ins[0],
                    Justification::IdentityOperand {
                        operand: 1,
                        value: 0,
                    },
                )
            }),
            Op::Mul => [0, 1].into_iter().find_map(|k| {
                let kw = dfg.node(nd.ins[k].node).width;
                (known_port(k).constant_value(kw) == Some(1)).then(|| {
                    (
                        nd.ins[1 - k],
                        Justification::IdentityOperand {
                            operand: k,
                            value: 1,
                        },
                    )
                })
            }),
            Op::Shl(0) | Op::Shr(0) => Some((nd.ins[0], Justification::IdentityWire)),
            Op::Slice { lo: 0 } if width == dfg.node(nd.ins[0].node).width => {
                Some((nd.ins[0], Justification::IdentityWire))
            }
            _ => None,
        };
        if let Some((to, justification)) = candidate {
            // A forward must preserve the width seen by consumers.
            if w.nodes[to.node.index()].width != width {
                continue;
            }
            fwd[id.index()] = Some(to);
            rewrites.push(Rewrite {
                node: id,
                kind: RewriteKind::Forward { to },
                justification,
            });
            stats.forwarded += 1;
        }
    }
    for i in 0..w.nodes.len() {
        let mut ins = std::mem::take(&mut w.nodes[i].ins);
        for p in ins.iter_mut() {
            let mut hops = 0;
            while let Some(t) = fwd[p.node.index()] {
                let init_ok = w.inits[p.node.index()] & mask(w.nodes[p.node.index()].width)
                    == w.inits[t.node.index()] & mask(w.nodes[t.node.index()].width);
                if !(p.dist == 0 || (t.dist == 0 && init_ok)) || hops > n {
                    break;
                }
                *p = Port {
                    node: t.node,
                    dist: p.dist + t.dist,
                };
                hops += 1;
            }
        }
        w.nodes[i].ins = ins;
    }

    // Pass 3: dead-operand pruning. The replacement constant agrees with
    // every known bit of the operand (through the port, so loop-carried
    // initial windows are covered), keeping all downstream facts valid.
    for id in dfg.node_ids() {
        let nd = &w.nodes[id.index()];
        if matches!(nd.op, Op::Output | Op::Const(_) | Op::Input) {
            continue;
        }
        for k in 0..w.nodes[id.index()].ins.len() {
            let p = w.nodes[id.index()].ins[k];
            // Helper nodes (>= n) are already constants; skip constants
            // either way.
            if matches!(w.nodes[p.node.index()].op, Op::Const(_)) || p.node.index() >= n {
                continue;
            }
            if analysis.operand_demand(dfg, id, k) != 0 {
                continue;
            }
            let pw = w.nodes[p.node.index()].width;
            let c = analysis.port_fact(dfg, p).bits.ones;
            let cid = w.intern_const(pw, c);
            w.nodes[id.index()].ins[k] = Port::this_iter(cid);
            rewrites.push(Rewrite {
                node: id,
                kind: RewriteKind::DeadOperand {
                    operand: k,
                    value: c & mask(pw),
                },
                justification: Justification::DeadBits { operand: k },
            });
            stats.dead_operands += 1;
        }
    }

    // Pass 4: range-based narrowing of add/sub. The node keeps its id (it
    // becomes the zero-extending concat), so consumers and loop-carried
    // initial values are untouched.
    const NARROW_MIN_SAVED: u32 = 4;
    for id in dfg.node_ids() {
        let nd = w.nodes[id.index()].clone();
        if !matches!(nd.op, Op::Add | Op::Sub) {
            continue;
        }
        let width = nd.width;
        let hi = analysis.fact(id).range.hi;
        let kept = (64 - hi.leading_zeros()).max(1);
        if kept >= width || width - kept < NARROW_MIN_SAVED {
            continue;
        }
        let pa = w.narrow_port(nd.ins[0], kept);
        let pb = w.narrow_port(nd.ins[1], kept);
        let nid = NodeId(w.nodes.len() as u32);
        w.nodes.push(Node {
            op: nd.op,
            width: kept,
            ins: vec![pa, pb],
        });
        w.names.push(None);
        w.inits.push(0);
        let zid = w.intern_const(width - kept, 0);
        w.nodes[id.index()] = Node {
            op: Op::Concat,
            width,
            ins: vec![Port::this_iter(zid), Port::this_iter(nid)],
        };
        rewrites.push(Rewrite {
            node: id,
            kind: RewriteKind::Narrow {
                from: width,
                to: kept,
            },
            justification: Justification::RangeNarrow { kept },
        });
        stats.narrowed += 1;
        stats.bits_pruned += u64::from(width - kept);
    }

    // Pass 5: DCE. Inputs and outputs are interface and always survive.
    let total = w.nodes.len();
    let mut reach = vec![false; total];
    let mut stack: Vec<usize> = (0..total)
        .filter(|&i| matches!(w.nodes[i].op, Op::Output | Op::Input))
        .collect();
    for &i in &stack {
        reach[i] = true;
    }
    while let Some(i) = stack.pop() {
        for p in &w.nodes[i].ins {
            let j = p.node.index();
            if !reach[j] {
                reach[j] = true;
                stack.push(j);
            }
        }
    }
    let mut remap: Vec<Option<NodeId>> = vec![None; total];
    let mut next = 0u32;
    for (i, r) in reach.iter().enumerate() {
        if *r {
            remap[i] = Some(NodeId(next));
            next += 1;
        }
    }
    for (i, r) in reach.iter().enumerate().take(n) {
        if !*r {
            rewrites.push(Rewrite {
                node: NodeId(i as u32),
                kind: RewriteKind::RemoveDead,
                justification: Justification::Unreachable,
            });
            stats.removed += 1;
            stats.bits_pruned += u64::from(dfg.node(NodeId(i as u32)).width);
        }
    }

    let mut new_nodes = Vec::with_capacity(next as usize);
    let mut new_names = Vec::with_capacity(next as usize);
    let mut new_inits = HashMap::new();
    for i in 0..total {
        let Some(new_id) = remap[i] else { continue };
        let mut nd = w.nodes[i].clone();
        for p in nd.ins.iter_mut() {
            p.node = remap[p.node.index()].expect("reachable nodes only point at reachable nodes");
        }
        new_nodes.push(nd);
        new_names.push(w.names[i].clone());
        if w.inits[i] != 0 {
            new_inits.insert(new_id, w.inits[i]);
        }
    }
    let out = Dfg::from_raw(
        dfg.name(),
        new_nodes,
        new_names,
        dfg.memories().to_vec(),
        new_inits,
    );
    out.validate()?;

    stats.nodes_after = out.len();
    Ok(SimplifyOutcome {
        dfg: out,
        rewrites,
        node_map: remap[..n].to_vec(),
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{execute, CmpPred, DfgBuilder, InputStreams};

    fn assert_equivalent(orig: &Dfg, out: &SimplifyOutcome, iters: usize, seed: u64) {
        let t1 = execute(orig, &InputStreams::random(orig, iters, seed), iters).expect("orig");
        let t2 = execute(
            &out.dfg,
            &InputStreams::random(&out.dfg, iters, seed),
            iters,
        )
        .expect("simplified");
        let (o1, o2) = (orig.outputs(), out.dfg.outputs());
        assert_eq!(o1.len(), o2.len(), "output count");
        for it in 0..iters {
            for (a, b) in o1.iter().zip(o2.iter()) {
                assert_eq!(
                    t1.value(it, *a),
                    t2.value(it, *b),
                    "iteration {it}, output {a}"
                );
            }
        }
    }

    #[test]
    fn folds_constant_cone_and_removes_it() {
        let mut b = DfgBuilder::new("f");
        let x = b.input("x", 8);
        let c1 = b.const_(0xF0, 8);
        let c2 = b.const_(0x0F, 8);
        let z = b.and(c1, c2); // = 0
        let o = b.or(x, z); // = x
        b.output("o", o);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert!(out.stats.const_folded >= 1);
        assert!(out.stats.forwarded >= 1, "{:?}", out.stats);
        // The whole and/const cone is gone; x flows straight to the
        // output.
        assert!(out.dfg.len() < g.len());
        assert_equivalent(&g, &out, 8, 11);
        // Rewrites carry justifications referencing original ids.
        assert!(out
            .rewrites
            .iter()
            .any(|r| matches!(r.kind, RewriteKind::ConstFold { value: 0 }) && r.node == z));
    }

    #[test]
    fn mux_with_known_select_bypassed() {
        let mut b = DfgBuilder::new("m");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let z = b.const_(0, 8);
        let t = b.cmp(CmpPred::Uge, x, z); // always true
        let m = b.mux(t, x, y);
        b.output("o", m);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert!(out
            .rewrites
            .iter()
            .any(|r| matches!(r.justification, Justification::KnownSelect { value: true })));
        assert_equivalent(&g, &out, 8, 3);
    }

    #[test]
    fn reflexive_cmp_folds() {
        let mut b = DfgBuilder::new("r");
        let x = b.input("x", 8);
        let s = b.shr(x, 1);
        let c = b.cmp(CmpPred::Sge, s, s);
        let nn = b.cmp(CmpPred::Ult, s, s);
        b.output("a", c);
        b.output("b", nn);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert_eq!(
            out.rewrites
                .iter()
                .filter(|r| r.justification == Justification::ReflexiveCmp)
                .count(),
            2
        );
        assert_equivalent(&g, &out, 8, 5);
    }

    #[test]
    fn narrow_add_with_proven_range() {
        let mut b = DfgBuilder::new("n");
        let x = b.input("x", 16);
        let c = b.const_(0x0F, 16);
        let lo = b.and(x, c); // [0, 15]
        let c3 = b.const_(3, 16);
        let s = b.add(lo, c3); // [3, 18] -> 5 bits
        b.output("o", s);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert!(
            out.rewrites
                .iter()
                .any(|r| matches!(r.kind, RewriteKind::Narrow { from: 16, to: 5 })),
            "{:?}",
            out.rewrites
        );
        assert_equivalent(&g, &out, 12, 17);
    }

    #[test]
    fn dead_operand_pruned_through_shift() {
        // Only the low 3 bits of the or survive the slice, so the shl
        // contributes nothing observable (its low 3 bits are shifted-in
        // zeros) and y's cone unhooks.
        let mut b = DfgBuilder::new("d");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let yy = b.not(y); // give y a cone
        let sh = b.shl(yy, 3);
        let mix = b.or(sh, x);
        let s = b.slice(mix, 0, 3);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert!(
            out.rewrites
                .iter()
                .any(|r| matches!(r.kind, RewriteKind::DeadOperand { .. })),
            "{:?}",
            out.rewrites
        );
        // not(y) is unreachable afterwards.
        assert!(out.node_map[yy.index()].is_none(), "{:?}", out.node_map);
        assert_equivalent(&g, &out, 10, 23);
    }

    #[test]
    fn loop_carried_forward_keeps_init_semantics() {
        // s = add(or(x, 0), prev(s)) with s init 5: the or forwards to x,
        // and the loop-carried read of s keeps seeing init 5 before
        // iteration 1.
        let mut b = DfgBuilder::new("lc");
        let x = b.input("x", 8);
        let prev = b.placeholder(8);
        let z = b.const_(0, 8);
        let q = b.or(x, z); // forwards to x
        let s = b.add(q, prev);
        b.bind(prev, s, 1).expect("bind");
        b.set_init_value(s, 5);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert!(out.stats.forwarded >= 1, "{:?}", out.stats);
        assert_equivalent(&g, &out, 10, 31);
    }

    #[test]
    fn no_rewrites_means_identical_graph() {
        let mut b = DfgBuilder::new("id");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let s = b.add(x, y);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        assert!(out.rewrites.is_empty(), "{:?}", out.rewrites);
        assert_eq!(out.dfg, g);
        assert!(out
            .node_map
            .iter()
            .enumerate()
            .all(|(i, m)| m.map(|id| id.index() == i).unwrap_or(false)));
    }
}
