//! Lattice domains for the bit-level analyses.
//!
//! Two forward domains are tracked per node:
//!
//! * [`KnownBits`] — per-bit three-valued abstraction (`0`, `1`, unknown),
//! * [`Range`] — an unsigned interval `[lo, hi]` over the node's word.
//!
//! Both are *may* abstractions over every executed iteration of the loop:
//! a bit is only "known" if it has that value on **all** iterations
//! (including the initial-value cases of loop-carried reads). The
//! backward liveness domain is a plain `u64` demand mask per node and
//! lives in the driver ([`crate::Analysis`]).

use pipemap_ir::mask;

/// Per-bit knowledge about a word: `zeros` marks bits proven `0`, `ones`
/// bits proven `1`. The two masks are disjoint; bits in neither are
/// unknown (⊤). Both masks are confined to the node's width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KnownBits {
    /// Bits proven `0` on every iteration.
    pub zeros: u64,
    /// Bits proven `1` on every iteration.
    pub ones: u64,
}

/// Three-valued bit used by the ripple-carry transfer function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Trit {
    /// Proven zero.
    Zero,
    /// Proven one.
    One,
    /// Unknown.
    Top,
}

impl KnownBits {
    /// Nothing known.
    pub fn top() -> Self {
        KnownBits { zeros: 0, ones: 0 }
    }

    /// Every bit known: the word is the constant `value`.
    pub fn constant(value: u64, width: u32) -> Self {
        let m = mask(width);
        KnownBits {
            ones: value & m,
            zeros: !value & m,
        }
    }

    /// Mask of known bits (either polarity).
    pub fn known(self) -> u64 {
        self.zeros | self.ones
    }

    /// The constant value, if every bit of `width` is known.
    pub fn constant_value(self, width: u32) -> Option<u64> {
        (self.known() == mask(width)).then_some(self.ones)
    }

    /// `true` if the abstraction admits the concrete value `v`.
    pub fn covers(self, v: u64) -> bool {
        (v & self.ones) == self.ones && (v & self.zeros) == 0
    }

    /// Least upper bound: keep only bits known, with equal polarity, in
    /// both.
    pub fn join(self, other: Self) -> Self {
        KnownBits {
            zeros: self.zeros & other.zeros,
            ones: self.ones & other.ones,
        }
    }

    /// Bitwise complement within `width`.
    pub fn not(self, width: u32) -> Self {
        let m = mask(width);
        KnownBits {
            zeros: self.ones & m,
            ones: self.zeros & m,
        }
    }

    pub(crate) fn trit(self, bit: u32) -> Trit {
        let b = 1u64 << bit;
        if self.zeros & b != 0 {
            Trit::Zero
        } else if self.ones & b != 0 {
            Trit::One
        } else {
            Trit::Top
        }
    }
}

/// Unsigned interval `[lo, hi]` (inclusive) over a node's word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Range {
    /// Least possible value.
    pub lo: u64,
    /// Greatest possible value.
    pub hi: u64,
}

impl Range {
    /// The full interval for a width.
    pub fn full(width: u32) -> Self {
        Range {
            lo: 0,
            hi: mask(width),
        }
    }

    /// The singleton interval.
    pub fn constant(value: u64, width: u32) -> Self {
        let v = value & mask(width);
        Range { lo: v, hi: v }
    }

    /// `true` if the interval admits `v`.
    pub fn contains(self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// The constant value, if the interval is a singleton.
    pub fn constant_value(self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Least upper bound (interval hull).
    pub fn join(self, other: Self) -> Self {
        Range {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }
}

/// The forward facts for one node: known bits and value range, kept
/// mutually refined (see [`Fact::refine`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fact {
    /// Per-bit knowledge.
    pub bits: KnownBits,
    /// Unsigned interval.
    pub range: Range,
}

impl Fact {
    /// Nothing known about a `width`-bit word.
    pub fn top(width: u32) -> Self {
        Fact {
            bits: KnownBits::top(),
            range: Range::full(width),
        }
    }

    /// The word is the constant `value`.
    pub fn constant(value: u64, width: u32) -> Self {
        Fact {
            bits: KnownBits::constant(value, width),
            range: Range::constant(value, width),
        }
    }

    /// The constant value, if either domain pins the word down.
    pub fn constant_value(self, width: u32) -> Option<u64> {
        self.bits
            .constant_value(width)
            .or_else(|| self.range.constant_value())
    }

    /// `true` if both domains admit `v`.
    pub fn covers(self, v: u64) -> bool {
        self.bits.covers(v) && self.range.contains(v)
    }

    /// Least upper bound in both domains.
    pub fn join(self, other: Self) -> Self {
        Fact {
            bits: self.bits.join(other.bits),
            range: self.range.join(other.range),
        }
    }

    /// Exchange information between the two domains:
    ///
    /// * the common binary prefix of `lo` and `hi` is known bit-wise,
    /// * known bits bound the interval by `[ones, mask & !zeros]`.
    ///
    /// The result is sound whenever the input is, and never less precise.
    pub fn refine(mut self, width: u32) -> Self {
        let m = mask(width);
        // Range -> bits: bits above the highest differing bit agree.
        if self.range.lo <= self.range.hi {
            let x = self.range.lo ^ self.range.hi;
            let p = 64 - x.leading_zeros();
            let agree = if p >= 64 { 0 } else { !((1u64 << p) - 1) & m };
            self.bits.ones |= self.range.lo & agree;
            self.bits.zeros |= !self.range.lo & agree;
        }
        // Bits -> range.
        let lo_b = self.bits.ones;
        let hi_b = m & !self.bits.zeros;
        self.range.lo = self.range.lo.max(lo_b);
        self.range.hi = self.range.hi.min(hi_b);
        if self.range.lo > self.range.hi {
            // Contradiction between domains: only reachable through a
            // transfer-function bug. Fall back to the bits-derived hull so
            // downstream consumers still see a well-formed interval.
            debug_assert!(false, "contradictory fact for width {width}: {self:?}");
            self.range = Range { lo: lo_b, hi: hi_b };
        }
        debug_assert_eq!(self.bits.zeros & self.bits.ones, 0, "{self:?}");
        self
    }
}

/// Ripple-carry known-bits addition `a + b + carry` over `width` bits.
///
/// A sum bit is known only when both addend bits and the incoming carry
/// are known; a carry-out is known when at least two of the three summands
/// at that position share a known value (majority).
pub(crate) fn add_known(a: KnownBits, b: KnownBits, mut carry: Trit, width: u32) -> KnownBits {
    let mut out = KnownBits { zeros: 0, ones: 0 };
    for j in 0..width {
        let bit = 1u64 << j;
        let (ta, tb) = (a.trit(j), b.trit(j));
        if let (Trit::Zero | Trit::One, Trit::Zero | Trit::One, Trit::Zero | Trit::One) =
            (ta, tb, carry)
        {
            let s = (ta == Trit::One) ^ (tb == Trit::One) ^ (carry == Trit::One);
            if s {
                out.ones |= bit;
            } else {
                out.zeros |= bit;
            }
        }
        let ones = [ta, tb, carry].iter().filter(|&&t| t == Trit::One).count();
        let zeros = [ta, tb, carry].iter().filter(|&&t| t == Trit::Zero).count();
        carry = if ones >= 2 {
            Trit::One
        } else if zeros >= 2 {
            Trit::Zero
        } else {
            Trit::Top
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_bits_basics() {
        let c = KnownBits::constant(0b1010, 4);
        assert_eq!(c.constant_value(4), Some(0b1010));
        assert!(c.covers(0b1010));
        assert!(!c.covers(0b1000));
        let t = KnownBits::top();
        assert!(t.covers(0));
        assert!(t.covers(u64::MAX));
        assert_eq!(c.join(t), t);
        assert_eq!(c.not(4).constant_value(4), Some(0b0101));
    }

    #[test]
    fn range_basics() {
        let r = Range { lo: 3, hi: 9 };
        assert!(r.contains(3) && r.contains(9) && !r.contains(10));
        assert_eq!(r.join(Range { lo: 0, hi: 4 }), Range { lo: 0, hi: 9 });
        assert_eq!(Range::constant(7, 8).constant_value(), Some(7));
    }

    #[test]
    fn refine_exchanges_domains() {
        // Range [8, 11] over 4 bits: prefix 10?? known.
        let f = Fact {
            bits: KnownBits::top(),
            range: Range { lo: 8, hi: 11 },
        }
        .refine(4);
        assert_eq!(f.bits.ones, 0b1000);
        assert_eq!(f.bits.zeros, 0b0100);
        // Bits 0?01 bound the range.
        let f = Fact {
            bits: KnownBits {
                zeros: 0b1000,
                ones: 0b0001,
            },
            range: Range::full(4),
        }
        .refine(4);
        assert_eq!(f.range, Range { lo: 1, hi: 7 });
    }

    #[test]
    fn add_known_propagates_carries() {
        // Fully known: 5 + 6 = 11 over 4 bits.
        let s = add_known(
            KnownBits::constant(5, 4),
            KnownBits::constant(6, 4),
            Trit::Zero,
            4,
        );
        assert_eq!(s.constant_value(4), Some(11));
        // x + 0 keeps x's known bits.
        let x = KnownBits {
            zeros: 0b0001,
            ones: 0b1000,
        };
        let s = add_known(x, KnownBits::constant(0, 4), Trit::Zero, 4);
        assert_eq!(s, x);
        // Unknown low bit poisons bits above it only through the carry:
        // ?1 + 01 over 2 bits -> low bit known 0 is wrong (1+1=10) — the
        // low sum bit is ?^1^0 = unknown... check the carry logic instead:
        // a = 1?, b = 01: bit0 unknown, carry into bit1 unknown.
        let a = KnownBits {
            zeros: 0,
            ones: 0b10,
        };
        let s = add_known(a, KnownBits::constant(1, 2), Trit::Zero, 2);
        assert_eq!(s.known(), 0);
        // 64-bit wide constant addition wraps correctly.
        let s = add_known(
            KnownBits::constant(u64::MAX, 64),
            KnownBits::constant(1, 64),
            Trit::Zero,
            64,
        );
        assert_eq!(s.constant_value(64), Some(0));
    }

    #[test]
    fn sub_via_add_not_carry_one() {
        // a - b == a + !b + 1: 9 - 3 = 6 over 4 bits.
        let d = add_known(
            KnownBits::constant(9, 4),
            KnownBits::constant(3, 4).not(4),
            Trit::One,
            4,
        );
        assert_eq!(d.constant_value(4), Some(6));
    }
}
