//! Bit-level dependence tracking on the word-level graph (paper §3.1).
//!
//! `DEP(out[j])` enumerates the input bits one output bit depends on, per
//! operation class:
//!
//! * bitwise — the same bit of each input (plus the select bit of a mux),
//! * shifting — one offset bit of the input,
//! * arithmetic — bits `0..=j` of each input, with the paper's special
//!   case that a signed comparison against the constant zero reads only the
//!   sign bit (Fig. 2 node *C*).
//!
//! On top of `DEP`, [`cut_support`] traces a candidate cut's per-output-bit
//! support through the cone: the largest support is the quantity bounded by
//! *K* (each output bit of a root becomes one K-input LUT).

use pipemap_ir::{CmpPred, Dfg, NodeId, Op};
use std::collections::HashMap;

use crate::cut::Signal;

/// Invoke `f(port_index, input_bit)` for every input bit that `out[j]` of
/// node `n` depends on.
///
/// Out-of-range bits produced by shifts/slices are skipped (they read
/// constant zeros). Black boxes and sources report no dependences — their
/// outputs are opaque signals.
pub fn for_each_dep<F: FnMut(usize, u32)>(dfg: &Dfg, n: NodeId, j: u32, mut f: F) {
    let node = dfg.node(n);
    let in_width = |k: usize| dfg.node(node.ins[k].node).width;
    match node.op {
        Op::Input | Op::Const(_) | Op::Mul | Op::Load(_) => {}
        Op::Output => f(0, j),
        Op::And | Op::Or | Op::Xor | Op::Not => {
            for k in 0..node.ins.len() {
                f(k, j);
            }
        }
        Op::Mux => {
            f(0, 0);
            f(1, j);
            f(2, j);
        }
        Op::Shl(s) => {
            if j >= s {
                f(0, j - s);
            }
        }
        Op::Shr(s) => {
            if j + s < in_width(0) {
                f(0, j + s);
            }
        }
        Op::Slice { lo } => {
            if j + lo < in_width(0) {
                f(0, j + lo);
            }
        }
        Op::Concat => {
            let w_lo = in_width(1);
            if j < w_lo {
                f(1, j);
            } else if j - w_lo < in_width(0) {
                f(0, j - w_lo);
            }
        }
        Op::Add | Op::Sub => {
            for b in 0..=j.min(in_width(0) - 1) {
                f(0, b);
            }
            for b in 0..=j.min(in_width(1) - 1) {
                f(1, b);
            }
        }
        Op::Cmp(pred) => {
            // Sign test against a constant zero: only the MSB matters.
            // This holds for `slt`/`sge` but NOT for `sle`/`sgt`, which
            // also test whether the low bits are all zero (x <= 0 is
            // "negative or exactly zero"), so `is_signed()` would be wrong
            // here.
            let rhs = dfg.node(node.ins[1].node);
            let zero_rhs = matches!(rhs.op, Op::Const(c) if c == 0);
            if pred.msb_test_vs_zero() && zero_rhs {
                f(0, in_width(0) - 1);
                return;
            }
            let _ = CmpPred::Eq; // (all predicates below read every bit)
            for b in 0..in_width(0) {
                f(0, b);
            }
            for b in 0..in_width(1) {
                f(1, b);
            }
        }
    }
}

/// Result of tracing a candidate cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Support {
    /// Feasible: largest per-output-bit support, and cone size in nodes
    /// (root included).
    Feasible { max_bits: u32, cone: u32 },
    /// Some output bit needs more than the limit.
    TooWide,
    /// The cut does not cover the cone (a register edge or unmappable node
    /// was reached that is not a cut signal).
    Uncovered,
}

#[derive(Clone)]
enum BitSup {
    /// Bit masks per cut-signal index.
    Masks(Vec<u64>),
    Over,
    Uncovered,
}

/// Compute the per-output-bit support of `root` under the candidate
/// `cut_signals` (must be sorted), bailing once any bit exceeds `limit`.
pub(crate) fn cut_support(dfg: &Dfg, root: NodeId, cut_signals: &[Signal], limit: u32) -> Support {
    debug_assert!(cut_signals.windows(2).all(|w| w[0] < w[1]));
    let mut memo: HashMap<(NodeId, u32), BitSup> = HashMap::new();
    let mut cone: std::collections::HashSet<NodeId> = std::collections::HashSet::new();
    cone.insert(root);
    let width = dfg.node(root).width;
    let mut max_bits = 0u32;
    for j in 0..width {
        match bit_support(dfg, root, j, cut_signals, limit, &mut memo, &mut cone) {
            BitSup::Masks(masks) => {
                let bits: u32 = masks.iter().map(|m| m.count_ones()).sum();
                if bits > limit {
                    return Support::TooWide;
                }
                max_bits = max_bits.max(bits);
            }
            BitSup::Over => return Support::TooWide,
            BitSup::Uncovered => return Support::Uncovered,
        }
    }
    Support::Feasible {
        max_bits,
        cone: cone.len() as u32,
    }
}

fn bit_support(
    dfg: &Dfg,
    n: NodeId,
    j: u32,
    cut: &[Signal],
    limit: u32,
    memo: &mut HashMap<(NodeId, u32), BitSup>,
    cone: &mut std::collections::HashSet<NodeId>,
) -> BitSup {
    if let Some(s) = memo.get(&(n, j)) {
        return s.clone();
    }
    // Collect this bit's direct deps first (no recursion inside the
    // callback, which only records).
    let mut deps: Vec<(usize, u32)> = Vec::new();
    for_each_dep(dfg, n, j, |port, bit| deps.push((port, bit)));

    let mut masks = vec![0u64; cut.len()];
    let node = dfg.node(n);
    let mut result = None;
    'deps: for (port_idx, bit) in deps {
        let port = node.ins[port_idx];
        let sig = Signal {
            node: port.node,
            dist: port.dist,
        };
        if let Ok(idx) = cut.binary_search(&sig) {
            masks[idx] |= 1u64 << bit;
            continue;
        }
        let sub = dfg.node(port.node);
        if matches!(sub.op, Op::Const(_)) {
            continue; // absorbed into the truth table
        }
        if port.dist != 0 || !sub.op.is_lut_mappable() {
            result = Some(BitSup::Uncovered);
            break 'deps;
        }
        cone.insert(port.node);
        match bit_support(dfg, port.node, bit, cut, limit, memo, cone) {
            BitSup::Masks(sub_masks) => {
                for (m, s) in masks.iter_mut().zip(&sub_masks) {
                    *m |= s;
                }
            }
            other => {
                result = Some(other);
                break 'deps;
            }
        }
        let bits: u32 = masks.iter().map(|m| m.count_ones()).sum();
        if bits > limit {
            result = Some(BitSup::Over);
            break 'deps;
        }
    }
    let result = result.unwrap_or(BitSup::Masks(masks));
    memo.insert((n, j), result.clone());
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::DfgBuilder;

    fn deps_of(dfg: &Dfg, n: NodeId, j: u32) -> Vec<(usize, u32)> {
        let mut v = Vec::new();
        for_each_dep(dfg, n, j, |p, b| v.push((p, b)));
        v.sort();
        v
    }

    #[test]
    fn bitwise_dep_is_same_bit() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let a = b.xor(x, y);
        b.output("o", a);
        let g = b.finish().expect("valid");
        assert_eq!(deps_of(&g, a, 2), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn shift_dep_is_offset_bit() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 4);
        let s = b.shr(x, 1);
        let l = b.shl(x, 2);
        b.output("o", s);
        b.output("o2", l);
        let g = b.finish().expect("valid");
        assert_eq!(deps_of(&g, s, 0), vec![(0, 1)]);
        assert_eq!(deps_of(&g, s, 3), vec![]); // shifted-in zero
        assert_eq!(deps_of(&g, l, 1), vec![]); // below the shift amount
        assert_eq!(deps_of(&g, l, 3), vec![(0, 1)]);
    }

    #[test]
    fn arithmetic_dep_is_cumulative() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let a = b.add(x, y);
        b.output("o", a);
        let g = b.finish().expect("valid");
        assert_eq!(deps_of(&g, a, 1), vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
        assert_eq!(deps_of(&g, a, 0), vec![(0, 0), (1, 0)]);
    }

    #[test]
    fn signed_zero_compare_reads_only_msb() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 8);
        let c = b.is_non_negative(x);
        b.output("o", c);
        let g = b.finish().expect("valid");
        // Only (port 0, bit 7): the constant-zero rhs contributes nothing.
        assert_eq!(deps_of(&g, c, 0), vec![(0, 7)]);
    }

    #[test]
    fn unsigned_compare_reads_all_bits() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 3);
        let y = b.input("y", 3);
        let c = b.cmp(CmpPred::Ult, x, y);
        b.output("o", c);
        let g = b.finish().expect("valid");
        assert_eq!(deps_of(&g, c, 0).len(), 6);
    }

    #[test]
    fn mux_reads_select_and_data() {
        let mut b = DfgBuilder::new("t");
        let s = b.input("s", 1);
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let m = b.mux(s, x, y);
        b.output("o", m);
        let g = b.finish().expect("valid");
        assert_eq!(deps_of(&g, m, 2), vec![(0, 0), (1, 2), (2, 2)]);
    }

    #[test]
    fn support_traces_through_cone() {
        // B = t ^ (s >> 1): support of B under cut {t, s} is 2 bits/bit.
        let mut b = DfgBuilder::new("t");
        let s = b.input("s", 2);
        let t = b.input("t", 2);
        let a = b.shr(s, 1);
        let bb = b.xor(t, a);
        b.output("o", bb);
        let g = b.finish().expect("valid");
        let cut = {
            let mut v = vec![Signal::now(s), Signal::now(t)];
            v.sort();
            v
        };
        match cut_support(&g, bb, &cut, 4) {
            Support::Feasible { max_bits, cone } => {
                assert_eq!(max_bits, 2);
                assert_eq!(cone, 2); // xor + shr
            }
            other => panic!("expected feasible, got {other:?}"),
        }
    }

    #[test]
    fn support_rejects_wide_cones() {
        // 8-bit add absorbed into a consumer exceeds K=4.
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let a = b.add(x, y);
        let n = b.not(a);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let cut = {
            let mut v = vec![Signal::now(x), Signal::now(y)];
            v.sort();
            v
        };
        assert_eq!(cut_support(&g, n, &cut, 4), Support::TooWide);
    }

    #[test]
    fn support_reports_uncovered_register_edges() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 4);
        let prev = b.placeholder(4);
        let a = b.add(x, prev);
        b.bind(prev, a, 1).expect("bind");
        b.output("o", a);
        let g = b.finish().expect("valid");
        // Cut {x} misses the loop-carried input a@-1.
        let cut = vec![Signal::now(x)];
        assert_eq!(cut_support(&g, a, &cut, 8), Support::Uncovered);
        // Cut {x, a@-1} covers.
        let mut cov = vec![Signal::now(x), Signal { node: a, dist: 1 }];
        cov.sort();
        assert!(matches!(
            cut_support(&g, a, &cov, 8),
            Support::Feasible { .. }
        ));
    }
}
