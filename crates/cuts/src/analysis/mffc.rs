//! Maximal fanout-free cones (MFFCs).
//!
//! The MFFC of a root `r` is the largest cone of combinational logic
//! whose every node is consumed *only* inside the cone — i.e. the set of
//! nodes `r` post-dominates in the consumption graph (see
//! [`crate::analysis::domtree`]). MFFCs matter for cut ranking because a
//! cut whose cone stays inside the root's MFFC absorbs logic "for free":
//! nothing in the cone is needed elsewhere, so covering it at `r` never
//! forces duplication. Conversely, cone nodes *outside* the MFFC are
//! shared with other consumers and will be materialised again by
//! whichever cut covers them there — the priority ranking charges such
//! cuts a duplication penalty.

use crate::analysis::domtree::DomTree;
use pipemap_ir::{Dfg, NodeId};

/// Per-node MFFC facts, built once per DFG from the post-dominator tree.
#[derive(Debug, Clone)]
pub struct MffcDb {
    pdom: DomTree,
    /// Number of LUT-mappable nodes in each node's MFFC (including the
    /// root itself); 0 for non-mappable nodes.
    size: Vec<u32>,
}

impl MffcDb {
    /// Compute MFFC membership and sizes for every node of `dfg`.
    pub fn compute(dfg: &Dfg) -> MffcDb {
        let pdom = DomTree::post_dominators(dfg);
        // size[r] = mappable nodes post-dominated by r. Accumulate each
        // mappable node's +1 up its immediate-post-dominator chain; the
        // chain is short in practice (bounded by logic depth).
        let mut size = vec![0u32; dfg.len()];
        for (id, node) in dfg.iter() {
            if !node.op.is_lut_mappable() {
                continue;
            }
            let mut v = id;
            loop {
                size[v.index()] += 1;
                match pdom.ipdom(v) {
                    Some(p) => v = p,
                    None => break,
                }
            }
        }
        MffcDb { pdom, size }
    }

    /// Is `u` inside the MFFC of `r`? True iff `r` post-dominates `u`
    /// (reflexively) — every consumption path of `u` flows through `r`.
    pub fn contains(&self, r: NodeId, u: NodeId) -> bool {
        self.pdom.post_dominates(r, u)
    }

    /// Number of LUT-mappable nodes in `r`'s MFFC (including `r`); 0 for
    /// non-mappable nodes.
    pub fn size(&self, r: NodeId) -> u32 {
        self.size[r.index()]
    }

    /// The underlying post-dominator tree.
    pub fn pdom(&self) -> &DomTree {
        &self.pdom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::DfgBuilder;

    #[test]
    fn chain_mffc_accumulates() {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x", 1);
        let n1 = b.not(x);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        b.output("o", n3);
        let g = b.finish().expect("valid");
        let m = MffcDb::compute(&g);
        assert_eq!(m.size(n1), 1);
        assert_eq!(m.size(n2), 2);
        assert_eq!(m.size(n3), 3);
        assert!(m.contains(n3, n1));
        assert!(!m.contains(n2, n3));
        assert_eq!(m.size(x), 0, "inputs are not mappable");
    }

    #[test]
    fn shared_node_excluded_from_mffc() {
        // a feeds both r1 and r2: a belongs to neither root's MFFC.
        let mut b = DfgBuilder::new("shared");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let a = b.xor(x, y);
        let r1 = b.not(a);
        let r2 = b.and(a, y);
        b.output("o1", r1);
        b.output("o2", r2);
        let g = b.finish().expect("valid");
        let m = MffcDb::compute(&g);
        assert!(!m.contains(r1, a));
        assert!(!m.contains(r2, a));
        assert_eq!(m.size(r1), 1);
        assert_eq!(m.size(r2), 1);
        assert_eq!(m.size(a), 1, "a's own MFFC is just itself");
    }

    #[test]
    fn diamond_join_owns_both_branches() {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x", 1);
        let y = b.input("y", 1);
        let a = b.xor(x, y);
        let n1 = b.not(a);
        let n2 = b.xor(a, y);
        let r = b.xor(n1, n2);
        b.output("o", r);
        let g = b.finish().expect("valid");
        let m = MffcDb::compute(&g);
        assert!(m.contains(r, a) && m.contains(r, n1) && m.contains(r, n2));
        assert_eq!(m.size(r), 4);
    }
}
