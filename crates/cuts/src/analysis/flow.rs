//! Per-node dataflow scores for priority-cut ranking.
//!
//! Mirrors the classic technology-mapping heuristics ("Mapping Fusion",
//! priority cuts): for every LUT-mappable node we compute
//!
//! * **depth** — the minimum LUT level at which the node's value can be
//!   produced (register and primary-input boundaries are level 0),
//! * **fanout** — the number of distance-0 consumer edges,
//! * **area flow** — estimated LUT area per consumer if the node is
//!   implemented with its best cut: `(area(cut) + Σ leaf flows) / fanout`,
//! * **edge flow** — the same recurrence over cut edge counts, a
//!   tie-breaker that tracks routing/register pressure.
//!
//! The per-cut variants ([`FlowScores::cut_depth`],
//! [`FlowScores::cut_area_flow`], [`FlowScores::cut_edge_flow`]) are what
//! the certified pruning pass ranks candidate cuts by; the per-node
//! values are the fixpoint-free single topological sweep over those
//! cuts (sound on DFGs because combinational edges are acyclic).
//!
//! Area mirrors the MILP objective: a cone made purely of wire ops
//! (shifts, slices, concats) costs nothing; any other cone costs the
//! root's word width in LUTs.

use crate::cut::{cone_nodes, Cut};
use crate::enumerate::CutDb;
use pipemap_ir::{Dfg, NodeId};

/// Depth, fanout, area-flow and edge-flow facts for one DFG under one
/// enumerated cut database.
#[derive(Debug, Clone)]
pub struct FlowScores {
    depth: Vec<u32>,
    fanout: Vec<u32>,
    area_flow: Vec<f64>,
    edge_flow: Vec<f64>,
}

impl FlowScores {
    /// Single topological sweep computing all four score vectors.
    pub fn compute(dfg: &Dfg, db: &CutDb) -> FlowScores {
        let n = dfg.len();
        let mut scores = FlowScores {
            depth: vec![0; n],
            fanout: vec![0; n],
            area_flow: vec![0.0; n],
            edge_flow: vec![0.0; n],
        };
        let consumers = dfg.consumers();
        for (id, _) in dfg.iter() {
            scores.fanout[id.index()] = consumers[id.index()]
                .iter()
                .filter(|&&(c, port)| dfg.node(c).ins[port].dist == 0)
                .count() as u32;
        }

        let order = dfg.topo_order().expect("validated graph");
        for v in order {
            let set = db.cuts(v);
            if set.is_empty() {
                continue; // sources, outputs, black boxes stay at 0
            }
            let mut best_depth = u32::MAX;
            let mut best_af = f64::INFINITY;
            let mut best_ef = f64::INFINITY;
            for cut in set.cuts() {
                best_depth = best_depth.min(scores.cut_depth(cut));
                let af = scores.cut_area_flow(dfg, v, cut);
                if af < best_af {
                    best_af = af;
                    best_ef = scores.cut_edge_flow(cut);
                } else if af == best_af {
                    best_ef = best_ef.min(scores.cut_edge_flow(cut));
                }
            }
            let refs = scores.fanout[v.index()].max(1) as f64;
            scores.depth[v.index()] = best_depth;
            scores.area_flow[v.index()] = best_af / refs;
            scores.edge_flow[v.index()] = best_ef / refs;
        }
        scores
    }

    /// Minimum LUT level of a node (0 for boundaries and non-mappable
    /// nodes).
    pub fn depth(&self, v: NodeId) -> u32 {
        self.depth[v.index()]
    }

    /// Number of distance-0 consumer edges of a node.
    pub fn fanout(&self, v: NodeId) -> u32 {
        self.fanout[v.index()]
    }

    /// Fanout-discounted area flow of a node.
    pub fn area_flow(&self, v: NodeId) -> f64 {
        self.area_flow[v.index()]
    }

    /// Fanout-discounted edge flow of a node.
    pub fn edge_flow(&self, v: NodeId) -> f64 {
        self.edge_flow[v.index()]
    }

    /// LUT level if the root is implemented with this cut: one more than
    /// the deepest current-iteration leaf (registered leaves are level 0).
    pub fn cut_depth(&self, cut: &Cut) -> u32 {
        1 + cut
            .inputs()
            .iter()
            .map(|s| {
                if s.dist == 0 {
                    self.depth[s.node.index()]
                } else {
                    0
                }
            })
            .max()
            .unwrap_or(0)
    }

    /// Area flow of one cut (not fanout-discounted): the cone's LUT area
    /// plus the accumulated flow of its current-iteration leaves.
    pub fn cut_area_flow(&self, dfg: &Dfg, root: NodeId, cut: &Cut) -> f64 {
        let mut af = cut_area(dfg, root, cut);
        for s in cut.inputs() {
            if s.dist == 0 {
                af += self.area_flow[s.node.index()];
            }
        }
        af
    }

    /// Edge flow of one cut (not fanout-discounted): its boundary edge
    /// count plus the accumulated edge flow of current-iteration leaves.
    pub fn cut_edge_flow(&self, cut: &Cut) -> f64 {
        let mut ef = cut.len() as f64;
        for s in cut.inputs() {
            if s.dist == 0 {
                ef += self.edge_flow[s.node.index()];
            }
        }
        ef
    }
}

/// LUT area of implementing `root` with `cut`, mirroring the MILP
/// objective: pure-wire cones are free, everything else costs the root's
/// word width (one K-LUT per output bit).
pub fn cut_area(dfg: &Dfg, root: NodeId, cut: &Cut) -> f64 {
    let pure_wire = cone_nodes(dfg, root, cut)
        .iter()
        .all(|&n| dfg.node(n).op.is_wire());
    if pure_wire {
        0.0
    } else {
        f64::from(dfg.node(root).width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::CutConfig;
    use pipemap_ir::DfgBuilder;

    #[test]
    fn depth_counts_lut_levels() {
        // 8-leaf xor tree at K=4: levels 1 and 2.
        let mut b = DfgBuilder::new("tree");
        let leaves: Vec<_> = (0..8).map(|i| b.input(format!("x{i}"), 1)).collect();
        let l1: Vec<_> = leaves.chunks(2).map(|p| b.xor(p[0], p[1])).collect();
        let l2: Vec<_> = l1.chunks(2).map(|p| b.xor(p[0], p[1])).collect();
        let root = b.xor(l2[0], l2[1]);
        b.output("o", root);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        let f = FlowScores::compute(&g, &db);
        assert_eq!(f.depth(leaves[0]), 0, "inputs are level 0");
        assert_eq!(f.depth(l1[0]), 1);
        // l2 nodes absorb their whole 4-leaf subtree into one 4-LUT.
        assert_eq!(f.depth(l2[0]), 1);
        assert_eq!(f.depth(root), 2, "8 leaves don't fit one 4-LUT");
    }

    #[test]
    fn fanout_counts_dist0_edges() {
        let mut b = DfgBuilder::new("fan");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let a = b.xor(x, y);
        let r1 = b.not(a);
        let r2 = b.and(a, y);
        b.output("o1", r1);
        b.output("o2", r2);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        let f = FlowScores::compute(&g, &db);
        assert_eq!(f.fanout(a), 2);
        assert_eq!(f.fanout(r1), 1, "the output marker consumes r1");
    }

    #[test]
    fn area_flow_discounts_shared_logic() {
        // Shared node a (fanout 2, width 2): each consumer is charged
        // half of a's area through the flow recurrence.
        let mut b = DfgBuilder::new("share");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let a = b.xor(x, y);
        let r1 = b.not(a);
        let r2 = b.and(a, y);
        b.output("o1", r1);
        b.output("o2", r2);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        let f = FlowScores::compute(&g, &db);
        assert!(f.area_flow(a) > 0.0);
        assert!(
            f.area_flow(a) <= 1.0 + 1e-9,
            "width 2 split across fanout 2: {}",
            f.area_flow(a)
        );
        assert!(f.edge_flow(r1) > 0.0);
    }

    #[test]
    fn wire_cones_are_free() {
        let mut b = DfgBuilder::new("wire");
        let x = b.input("x", 4);
        let s = b.shr(x, 1);
        let n = b.not(s);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        let f = FlowScores::compute(&g, &db);
        let unit = db.cuts(s).unit().expect("unit").clone();
        assert_eq!(cut_area(&g, s, &unit), 0.0, "a lone shift is wiring");
        assert_eq!(f.area_flow(s), 0.0);
        assert!(f.area_flow(n) > 0.0);
    }
}
