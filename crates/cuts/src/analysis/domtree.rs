//! Dominator trees over the DFG's consumption graph.
//!
//! The priority-cut analysis needs *post*-dominators of the dataflow
//! graph: node `r` post-dominates `u` when every combinational
//! consumption path from `u` ends up flowing through `r` before it
//! escapes (to a primary output, a black box, or across a register).
//! That is exactly the membership test of a maximal fanout-free cone
//! (see [`crate::analysis::mffc`]): logic post-dominated by `r` can be
//! absorbed into a LUT rooted at `r` without duplicating it anywhere
//! else.
//!
//! The tree is computed with the Cooper–Harvey–Kennedy iterative
//! algorithm over an explicit *consumption graph* `H`:
//!
//! * one vertex per DFG node plus a virtual **sink**,
//! * an edge `u → c` for every distance-0 edge whose consumer `c` is
//!   LUT-mappable (the only edges a cone may cross),
//! * an edge `u → sink` whenever `u`'s value escapes: a register
//!   (distance > 0) consumer, a non-mappable consumer (output, black
//!   box), no consumers at all, or `u` itself not being mappable.
//!
//! Dominators of the *reversed* graph rooted at the sink are the
//! post-dominators of `H`. DFS in/out numbering over the resulting tree
//! gives O(1) ancestor queries.

use pipemap_ir::{Dfg, NodeId};

/// A post-dominator tree over a DFG's consumption graph (virtual sink
/// at index `dfg.len()`).
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate post-dominator per vertex (tree parent); the sink maps
    /// to itself, unreachable vertices to `usize::MAX`.
    idom: Vec<usize>,
    /// DFS entry index per vertex in the dominator tree.
    tin: Vec<usize>,
    /// DFS exit index per vertex in the dominator tree.
    tout: Vec<usize>,
    /// The virtual sink vertex (`dfg.len()`).
    sink: usize,
}

impl DomTree {
    /// Post-dominators of `dfg`'s consumption graph.
    pub fn post_dominators(dfg: &Dfg) -> DomTree {
        let n = dfg.len();
        let sink = n;
        // `h[u]` = consumption successors of u; `r[v]` = the reversal
        // (predecessors in H = successors in the rooted flow graph).
        let mut h: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        let consumers = dfg.consumers();
        for (id, node) in dfg.iter() {
            let u = id.index();
            if !node.op.is_lut_mappable() {
                h[u].push(sink);
                continue;
            }
            let mut escapes = consumers[u].is_empty();
            for &(c, port) in &consumers[u] {
                let cn = dfg.node(c);
                if cn.ins[port].dist == 0 && cn.op.is_lut_mappable() {
                    h[u].push(c.index());
                } else {
                    escapes = true;
                }
            }
            if escapes {
                h[u].push(sink);
            }
        }
        for succs in &mut h {
            succs.sort_unstable();
            succs.dedup();
        }
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for (u, succs) in h.iter().enumerate() {
            for &c in succs {
                rev[c].push(u);
            }
        }

        // Reverse postorder of the reversed graph from the sink.
        let order = reverse_postorder(&rev, sink);
        let mut order_of = vec![usize::MAX; n + 1];
        for (i, &v) in order.iter().enumerate() {
            order_of[v] = i;
        }

        // Cooper–Harvey–Kennedy fixpoint. Predecessors in the rooted
        // (reversed) graph are H's successors.
        let mut idom = vec![usize::MAX; n + 1];
        idom[sink] = sink;
        let mut changed = true;
        while changed {
            changed = false;
            for &v in order.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &h[v] {
                    if idom[p] == usize::MAX {
                        continue; // not processed yet
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        intersect(&idom, &order_of, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[v] != new_idom {
                    idom[v] = new_idom;
                    changed = true;
                }
            }
        }

        // DFS numbering over the dominator tree for ancestor queries.
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
        for v in 0..=n {
            if v != sink && idom[v] != usize::MAX {
                children[idom[v]].push(v);
            }
        }
        let mut tin = vec![usize::MAX; n + 1];
        let mut tout = vec![usize::MAX; n + 1];
        let mut clock = 0usize;
        let mut stack: Vec<(usize, usize)> = vec![(sink, 0)];
        tin[sink] = clock;
        clock += 1;
        while let Some(&mut (v, ref mut next)) = stack.last_mut() {
            if *next < children[v].len() {
                let c = children[v][*next];
                *next += 1;
                tin[c] = clock;
                clock += 1;
                stack.push((c, 0));
            } else {
                tout[v] = clock;
                clock += 1;
                stack.pop();
            }
        }

        DomTree {
            idom,
            tin,
            tout,
            sink,
        }
    }

    /// The virtual sink vertex index (`dfg.len()`).
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Immediate post-dominator of a node: `None` when the node escapes
    /// directly (its immediate post-dominator is the virtual sink) or is
    /// disconnected.
    pub fn ipdom(&self, v: NodeId) -> Option<NodeId> {
        let p = self.idom[v.index()];
        if p == usize::MAX || p == self.sink {
            None
        } else {
            Some(NodeId(p as u32))
        }
    }

    /// Does `r` post-dominate `u` (reflexively)? Equivalent to `u` lying
    /// in `r`'s subtree of the post-dominator tree.
    pub fn post_dominates(&self, r: NodeId, u: NodeId) -> bool {
        let (r, u) = (r.index(), u.index());
        self.tin[r] != usize::MAX
            && self.tin[u] != usize::MAX
            && self.tin[r] <= self.tin[u]
            && self.tout[u] <= self.tout[r]
    }
}

/// First common dominator of two processed vertices, walking up by
/// reverse-postorder number (CHK `intersect`).
fn intersect(idom: &[usize], order_of: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while order_of[a] > order_of[b] {
            a = idom[a];
        }
        while order_of[b] > order_of[a] {
            b = idom[b];
        }
    }
    a
}

/// Iterative DFS reverse postorder from `root` over `succs`.
fn reverse_postorder(succs: &[Vec<usize>], root: usize) -> Vec<usize> {
    let mut visited = vec![false; succs.len()];
    let mut post = Vec::with_capacity(succs.len());
    let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
    visited[root] = true;
    while let Some(&mut (v, ref mut next)) = stack.last_mut() {
        if *next < succs[v].len() {
            let c = succs[v][*next];
            *next += 1;
            if !visited[c] {
                visited[c] = true;
                stack.push((c, 0));
            }
        } else {
            post.push(v);
            stack.pop();
        }
    }
    post.reverse();
    post
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::DfgBuilder;

    #[test]
    fn chain_post_dominates_downward() {
        // x -> n1 -> n2 -> out: n2 post-dominates n1 (single consumer
        // path), and nothing post-dominates n2 but itself.
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x", 1);
        let n1 = b.not(x);
        let n2 = b.not(n1);
        b.output("o", n2);
        let g = b.finish().expect("valid");
        let t = DomTree::post_dominators(&g);
        assert!(t.post_dominates(n2, n1));
        assert!(t.post_dominates(n2, n2));
        assert!(!t.post_dominates(n1, n2));
        assert_eq!(t.ipdom(n1), Some(n2));
        assert_eq!(t.ipdom(n2), None, "n2 feeds the output: escapes");
    }

    #[test]
    fn fanout_breaks_post_dominance() {
        // a feeds both r and the primary output: r does not post-dominate a.
        let mut b = DfgBuilder::new("fan");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let a = b.xor(x, y);
        let r = b.and(a, y);
        b.output("o1", a);
        b.output("o2", r);
        let g = b.finish().expect("valid");
        let t = DomTree::post_dominators(&g);
        assert!(!t.post_dominates(r, a));
        assert_eq!(t.ipdom(a), None);
    }

    #[test]
    fn reconvergent_diamond_post_dominated_by_join() {
        // a -> (n1, n2) -> r: both branches rejoin at r, so r
        // post-dominates a, n1, and n2.
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x", 1);
        let y = b.input("y", 1);
        let a = b.xor(x, y);
        let n1 = b.not(a);
        let n2 = b.xor(a, y);
        let r = b.xor(n1, n2);
        b.output("o", r);
        let g = b.finish().expect("valid");
        let t = DomTree::post_dominators(&g);
        for v in [a, n1, n2] {
            assert!(t.post_dominates(r, v), "r should post-dominate {v:?}");
        }
    }

    #[test]
    fn register_consumer_escapes() {
        // e is consumed at distance 1 (loop): the register edge escapes,
        // so its combinational consumer does not post-dominate it.
        let mut b = DfgBuilder::new("loop");
        let x = b.input("x", 2);
        let ph = b.placeholder(2);
        let e = b.xor(x, ph);
        let r = b.not(e);
        b.bind(ph, e, 1).expect("feedback");
        b.output("o", r);
        let g = b.finish().expect("valid");
        let t = DomTree::post_dominators(&g);
        assert!(!t.post_dominates(r, e));
    }
}
