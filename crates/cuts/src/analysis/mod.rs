//! Cut-space static analysis: priority cuts with certified pruning.
//!
//! This layer sits between raw cut enumeration ([`crate::CutDb::enumerate`])
//! and the MILP formulation. It computes structural facts about the DFG
//! and its cut database —
//!
//! * [`flow`]: per-node logic depth, fanout, area-flow and edge-flow
//!   scores (the classic priority-cut ranking signals),
//! * [`domtree`]: a post-dominator tree over the consumption graph,
//! * [`mffc`]: maximal fanout-free cones built on the dominator tree,
//!
//! — and uses them in [`prune`] to shrink the cut database the MILP
//! sees: dominated and provably-dead cuts are dropped with
//! machine-checkable certificates (audited by `pipemap-verify`'s
//! `P0601`–`P0606` pass), and the survivors are ranked and bounded to
//! `max_cuts_per_root` priority cuts per node. Fewer cuts means fewer
//! MILP variables (one cover binary per cut) and fewer Eq. 4/9 rows,
//! which is the lever the ROADMAP names for the benchmarks that still
//! time out.

pub mod domtree;
pub mod flow;
pub mod mffc;
pub mod prune;

pub use domtree::DomTree;
pub use flow::{cut_area, FlowScores};
pub use mffc::MffcDb;
pub use prune::{priority_cuts, CutCertificate, PriorityCuts, PruneConfig, PruneStats};
