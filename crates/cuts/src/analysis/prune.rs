//! Certified priority-cut pruning.
//!
//! [`priority_cuts`] shrinks an enumerated cut database in three layers,
//! each with a different soundness story:
//!
//! 1. **Liveness pruning** — a root whose `analyze` dead-bit mask is all
//!    zero cannot influence any primary output; every non-unit cut is
//!    dropped with a [`CutCertificate::DeadRoot`] proof (the unit cut
//!    stays so the node remains coverable).
//! 2. **Dominance pruning** — a cut whose boundary signals are a subset
//!    of another cut of the *same root*, **at no higher LUT cost**, is
//!    never worse in the MILP: a subset of the cover-forcing rows
//!    (Eq. 4), a subset of the timing rows (Eq. 9), and a subset of the
//!    lifetime lower bounds. The cost condition matters: the objective
//!    charges a pure-wire cone nothing, so a small cut whose larger
//!    cone absorbs real logic can cost more than the superset cut it
//!    input-dominates — such pairs are *not* pruned. Each certified
//!    drop carries a [`CutCertificate::Dominated`] naming the retained
//!    dominating cut for the `P06xx` audit to re-derive.
//! 3. **Priority ranking** — the surviving non-unit cuts are ranked by
//!    area flow (with a duplication penalty for cone nodes outside the
//!    root's MFFC), edge flow, and LUT depth, and truncated to
//!    `max_cuts_per_root`. Truncation is a *heuristic* bound — exactly
//!    like the pre-existing `max_cuts` cap — so ranked-out cuts carry no
//!    optimality certificate; they are reported in
//!    [`PriorityCuts::ranked_out`] and the audit checks the cap really
//!    was binding.
//!
//! The raw pool is enumerated with subset-dominance filtering **off**
//! and without liveness masks, so layers 1–2 do real, certifiable work
//! instead of re-discovering what the enumerator silently dropped.

use crate::analysis::flow::{cut_area, FlowScores};
use crate::analysis::mffc::MffcDb;
use crate::cut::{cone_nodes, Cut, CutSet};
use crate::enumerate::{CutConfig, CutDb};
use pipemap_ir::{Dfg, NodeId};

/// Tunables for [`priority_cuts`].
#[derive(Debug, Clone, PartialEq)]
pub struct PruneConfig {
    /// Cuts kept per root after ranking, unit cut included (≥ 1).
    pub max_cuts_per_root: usize,
    /// Raw candidate pool enumerated per node before pruning (the
    /// effective enumeration cap is the max of this and the base
    /// config's `max_cuts`).
    pub raw_cuts: usize,
    /// Per-node liveness masks from `pipemap-analyze`; a root with mask
    /// 0 keeps only its unit cut, certified by a dead-root proof.
    pub live_bits: Option<Vec<u64>>,
}

impl Default for PruneConfig {
    fn default() -> Self {
        PruneConfig {
            max_cuts_per_root: 4,
            raw_cuts: 16,
            live_bits: None,
        }
    }
}

/// A machine-checkable proof that dropping one cut cannot change the
/// MILP's optimum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutCertificate {
    /// `pruned` was dropped because `retained` (a cut of the same root
    /// that survives into the final database) uses a subset of its
    /// boundary signals.
    Dominated {
        /// The root both cuts belong to.
        root: NodeId,
        /// The dropped superset cut.
        pruned: Cut,
        /// The kept subset cut that dominates it.
        retained: Cut,
    },
    /// `pruned` was dropped because the root's liveness mask is zero: no
    /// bit of the root reaches a primary output, so no optimal cover
    /// implements it with anything but its free unit cut.
    DeadRoot {
        /// The fully-dead root.
        root: NodeId,
        /// The dropped non-unit cut.
        pruned: Cut,
    },
}

impl CutCertificate {
    /// The root node this certificate talks about.
    pub fn root(&self) -> NodeId {
        match self {
            CutCertificate::Dominated { root, .. } | CutCertificate::DeadRoot { root, .. } => *root,
        }
    }

    /// The cut this certificate prunes.
    pub fn pruned(&self) -> &Cut {
        match self {
            CutCertificate::Dominated { pruned, .. } | CutCertificate::DeadRoot { pruned, .. } => {
                pruned
            }
        }
    }
}

/// Counters for one [`priority_cuts`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Cuts in the raw (unfiltered) enumeration.
    pub cuts_enumerated: usize,
    /// Cuts dropped with a dominance certificate.
    pub cuts_dominated: usize,
    /// Cuts dropped with a dead-root certificate.
    pub cuts_dead: usize,
    /// Cuts dropped by the heuristic priority cap (no certificate).
    pub cuts_ranked_out: usize,
    /// Cuts surviving into the final database.
    pub cuts_kept: usize,
}

impl PruneStats {
    /// Total cuts removed from the raw pool, certified or not.
    pub fn cuts_pruned(&self) -> usize {
        self.cuts_dominated + self.cuts_dead + self.cuts_ranked_out
    }
}

/// Result of [`priority_cuts`]: the pruned database plus everything the
/// `P06xx` audit needs to re-check it.
#[derive(Debug, Clone)]
pub struct PriorityCuts {
    /// The raw database the pruner started from (unfiltered enumeration,
    /// no liveness masks).
    pub raw: CutDb,
    /// The pruned, ranked database to hand to the MILP.
    pub db: CutDb,
    /// One certificate per optimality-preserving drop.
    pub certificates: Vec<CutCertificate>,
    /// Cuts dropped by the heuristic priority cap, per root — reported
    /// (not certified) so the audit can confirm the cap was binding.
    pub ranked_out: Vec<(NodeId, Cut)>,
    /// The cap the ranking truncated to (unit cut included).
    pub max_cuts_per_root: usize,
    /// Aggregate counters.
    pub stats: PruneStats,
}

/// Enumerate a raw cut pool and shrink it with certified liveness and
/// dominance pruning followed by priority ranking. See the module docs
/// for the three layers and their soundness guarantees.
pub fn priority_cuts(dfg: &Dfg, cfg: &CutConfig, pcfg: &PruneConfig) -> PriorityCuts {
    let _span = pipemap_obs::span("priority-cuts");
    let raw_cfg = CutConfig {
        filter_dominated: false,
        max_cuts: cfg.max_cuts.max(pcfg.raw_cuts),
        live_bits: None,
        ..cfg.clone()
    };
    let raw = CutDb::enumerate(dfg, &raw_cfg);
    let flows = FlowScores::compute(dfg, &raw);
    let mffc = MffcDb::compute(dfg);

    let cap = pcfg.max_cuts_per_root.max(1);
    let is_dead = |v: NodeId| {
        pcfg.live_bits
            .as_ref()
            .is_some_and(|l| l.get(v.index()).copied() == Some(0))
    };

    let mut sets: Vec<CutSet> = vec![CutSet::default(); dfg.len()];
    let mut certificates = Vec::new();
    let mut ranked_out = Vec::new();
    let mut stats = PruneStats::default();
    // Hoisted registry lookup: one mutex hit per analysis, not per node.
    let size_hist =
        pipemap_obs::metrics::enabled().then(|| pipemap_obs::metrics::histogram("cuts.kept_size"));

    for v in dfg.node_ids() {
        let raw_set = raw.cuts(v);
        if raw_set.is_empty() {
            continue;
        }
        stats.cuts_enumerated += raw_set.len();
        let unit = raw_set
            .unit()
            .expect("non-empty set has a unit cut")
            .clone();
        let rest = &raw_set.cuts()[1..];

        if is_dead(v) {
            stats.cuts_dead += rest.len();
            for cut in rest {
                certificates.push(CutCertificate::DeadRoot {
                    root: v,
                    pruned: cut.clone(),
                });
            }
            stats.cuts_kept += 1;
            sets[v.index()] = CutSet { cuts: vec![unit] };
            continue;
        }

        // Layer 2: dominance sweep. Smaller cuts first so any dominator
        // of a candidate has already been decided; kept cuts (including
        // the unit cut) are the only admissible dominators. A dominator
        // must be both an input subset AND no more expensive — a
        // pure-wire superset cone is free while the subset's deeper cone
        // may absorb real logic, and pruning the free option would move
        // the optimum.
        let dominates =
            |k: &Cut, c: &Cut| k.dominates(c) && cut_area(dfg, v, k) <= cut_area(dfg, v, c);
        let mut order: Vec<&Cut> = rest.iter().collect();
        order.sort_by(|a, b| (a.len(), a.inputs()).cmp(&(b.len(), b.inputs())));
        let mut survivors: Vec<Cut> = Vec::new();
        let mut dominated: Vec<Cut> = Vec::new();
        for cut in order {
            if dominates(&unit, cut) || survivors.iter().any(|k| dominates(k, cut)) {
                dominated.push(cut.clone());
            } else {
                survivors.push(cut.clone());
            }
        }

        // Layer 3: priority ranking. Area flow with a duplication
        // penalty for cone nodes shared outside the root's MFFC, then
        // edge flow, LUT depth, and lexicographic tie-breaks so the
        // result is independent of enumeration order.
        let mut ranked: Vec<(f64, f64, u32, Cut)> = survivors
            .into_iter()
            .map(|cut| {
                let mut af = flows.cut_area_flow(dfg, v, &cut);
                for &n in &cone_nodes(dfg, v, &cut) {
                    if n != v && !mffc.contains(v, n) {
                        af += f64::from(dfg.node(n).width);
                    }
                }
                (af, flows.cut_edge_flow(&cut), flows.cut_depth(&cut), cut)
            })
            .collect();
        ranked.sort_by(|a, b| {
            a.0.total_cmp(&b.0)
                .then_with(|| a.1.total_cmp(&b.1))
                .then_with(|| a.2.cmp(&b.2))
                .then_with(|| (a.3.len(), a.3.inputs()).cmp(&(b.3.len(), b.3.inputs())))
        });
        let mut kept = vec![unit];
        for (_, _, _, cut) in ranked {
            if kept.len() < cap {
                kept.push(cut);
            } else {
                stats.cuts_ranked_out += 1;
                ranked_out.push((v, cut));
            }
        }

        // Certificates must name dominators that survive into the final
        // database. A dominator lost to the rank cap re-routes its
        // dominated cuts to any kept dominator, or — when the whole
        // dominance class was truncated — reclassifies them as
        // ranked-out (legal only because the cap was binding).
        for cut in dominated {
            match kept.iter().find(|k| dominates(k, &cut)) {
                Some(retained) => {
                    stats.cuts_dominated += 1;
                    certificates.push(CutCertificate::Dominated {
                        root: v,
                        pruned: cut,
                        retained: retained.clone(),
                    });
                }
                None => {
                    debug_assert_eq!(kept.len(), cap, "dominator can only vanish by rank cap");
                    stats.cuts_ranked_out += 1;
                    ranked_out.push((v, cut));
                }
            }
        }

        stats.cuts_kept += kept.len();
        if let Some(h) = size_hist {
            for cut in &kept {
                h.record(cut.len() as f64);
            }
        }
        sets[v.index()] = CutSet { cuts: kept };
    }

    // Deterministic report order regardless of per-node processing.
    ranked_out.sort_by(|a, b| (a.0, a.1.len(), a.1.inputs()).cmp(&(b.0, b.1.len(), b.1.inputs())));

    if pipemap_obs::enabled() {
        pipemap_obs::instant_with(
            "priority-cuts-stats",
            vec![
                ("enumerated", stats.cuts_enumerated.into()),
                ("dominated", stats.cuts_dominated.into()),
                ("dead", stats.cuts_dead.into()),
                ("ranked_out", stats.cuts_ranked_out.into()),
                ("kept", stats.cuts_kept.into()),
            ],
        );
    }

    PriorityCuts {
        raw,
        db: CutDb::from_sets(cfg.k, sets),
        certificates,
        ranked_out,
        max_cuts_per_root: cap,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::DfgBuilder;

    fn diamond() -> (pipemap_ir::Dfg, NodeId) {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x", 1);
        let y = b.input("y", 1);
        let a = b.xor(x, y);
        let n1 = b.not(a);
        let n2 = b.xor(a, y);
        let r = b.xor(n1, n2);
        b.output("o", r);
        (b.finish().expect("valid"), r)
    }

    #[test]
    fn every_raw_cut_is_accounted_for() {
        let (g, _) = diamond();
        let out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        assert_eq!(
            out.stats.cuts_enumerated,
            out.stats.cuts_kept + out.stats.cuts_pruned(),
            "kept + pruned must cover the raw pool"
        );
        assert_eq!(
            out.stats.cuts_dominated,
            out.certificates
                .iter()
                .filter(|c| matches!(c, CutCertificate::Dominated { .. }))
                .count()
        );
        // Every kept set respects the cap and starts with the unit cut.
        for v in g.node_ids() {
            let kept = out.db.cuts(v);
            assert!(kept.len() <= out.max_cuts_per_root);
            if !kept.is_empty() {
                assert_eq!(kept.unit(), out.raw.cuts(v).unit());
            }
        }
    }

    #[test]
    fn dominance_certificates_name_kept_subsets() {
        let (g, _) = diamond();
        let out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        for cert in &out.certificates {
            if let CutCertificate::Dominated {
                root,
                pruned,
                retained,
            } = cert
            {
                assert!(retained.dominates(pruned));
                assert!(
                    out.db.cuts(*root).cuts().contains(retained),
                    "retained cut must survive into the final db"
                );
                assert!(
                    !out.db.cuts(*root).cuts().contains(pruned),
                    "pruned cut must not survive"
                );
            }
        }
    }

    #[test]
    fn dead_root_keeps_unit_only_with_certificates() {
        let (g, r) = diamond();
        let mut live = vec![u64::MAX; g.len()];
        live[r.index()] = 0;
        let out = priority_cuts(
            &g,
            &CutConfig::default(),
            &PruneConfig {
                live_bits: Some(live),
                ..PruneConfig::default()
            },
        );
        assert_eq!(out.db.cuts(r).len(), 1);
        let dead: Vec<_> = out
            .certificates
            .iter()
            .filter(|c| matches!(c, CutCertificate::DeadRoot { .. }))
            .collect();
        assert!(!dead.is_empty(), "non-unit cuts of r need dead-root proofs");
        assert!(dead.iter().all(|c| c.root() == r));
    }

    #[test]
    fn cap_of_one_reduces_to_unit_cuts() {
        let (g, _) = diamond();
        let out = priority_cuts(
            &g,
            &CutConfig::default(),
            &PruneConfig {
                max_cuts_per_root: 1,
                ..PruneConfig::default()
            },
        );
        for v in g.node_ids() {
            let kept = out.db.cuts(v);
            if !kept.is_empty() {
                assert_eq!(kept.len(), 1, "cap 1 keeps exactly the unit cut");
            }
        }
        // Everything else was either certified away or ranked out.
        assert_eq!(
            out.stats.cuts_enumerated,
            out.stats.cuts_kept + out.stats.cuts_pruned()
        );
    }

    #[test]
    fn generous_cap_prunes_only_with_certificates() {
        // With caps far above the pool size the heuristic layer never
        // binds: every drop is certified, so pruned-vs-unpruned MILPs
        // must share an optimum (checked end-to-end by the sweep test).
        let (g, _) = diamond();
        let out = priority_cuts(
            &g,
            &CutConfig {
                max_cuts: 32,
                ..CutConfig::default()
            },
            &PruneConfig {
                max_cuts_per_root: 64,
                raw_cuts: 64,
                ..PruneConfig::default()
            },
        );
        assert_eq!(out.stats.cuts_ranked_out, 0);
        assert!(out.ranked_out.is_empty());
        assert_eq!(
            out.stats.cuts_pruned(),
            out.certificates.len(),
            "uncapped pruning is fully certified"
        );
    }
}
