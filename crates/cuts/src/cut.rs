//! Cuts, cut sets, and cone extraction.

use pipemap_ir::{Dfg, NodeId, Op};
use std::fmt;

/// A datapath signal: a node's value at a given iteration distance.
///
/// Distance 0 is the combinational output of `node` this iteration;
/// distance `d > 0` is the output of the register chain holding the value
/// `d` iterations back — the paper's `E@-1` boundary in Fig. 2. Cones never
/// cross registers, so loop-carried inputs always appear as cut signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Signal {
    /// Producing node.
    pub node: NodeId,
    /// Iteration distance of the value (0 = current iteration).
    pub dist: u32,
}

impl Signal {
    /// The current-iteration signal of a node.
    pub fn now(node: NodeId) -> Self {
        Signal { node, dist: 0 }
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.dist == 0 {
            write!(f, "{}", self.node)
        } else {
            write!(f, "{}@-{}", self.node, self.dist)
        }
    }
}

/// A K-feasible cut of some root node: the set of boundary signals feeding
/// the root's cone, plus cached feasibility data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Sorted, deduplicated boundary signals. Constants are absorbed into
    /// the LUT truth table and never appear here.
    inputs: Vec<Signal>,
    /// Largest per-output-bit support (bits) over the root's output bits —
    /// the quantity bounded by K.
    max_bit_support: u32,
    /// Number of word-level nodes covered by the cone (root included).
    cone: u32,
}

impl Cut {
    pub(crate) fn new(mut inputs: Vec<Signal>, max_bit_support: u32, cone: u32) -> Self {
        inputs.sort();
        inputs.dedup();
        Cut {
            inputs,
            max_bit_support,
            cone,
        }
    }

    /// The boundary signals, sorted.
    pub fn inputs(&self) -> &[Signal] {
        &self.inputs
    }

    /// Number of boundary signals (word-level).
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// `true` for a cut with no inputs (a cone of constants).
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Largest single-output-bit input count; a cut is K-feasible iff this
    /// is ≤ K (each output bit of the root becomes one K-input LUT).
    pub fn max_bit_support(&self) -> u32 {
        self.max_bit_support
    }

    /// Number of word-level nodes the root's bit-level support traces
    /// through (root included) — the logic absorbed into this LUT. This
    /// can be smaller than the structural cone returned by
    /// [`cone_nodes`] when some bits are shifted out or masked away.
    pub fn cone_size(&self) -> u32 {
        self.cone
    }

    /// Set inclusion: `self` dominates `other` if every signal of `self`
    /// also appears in `other` (smaller cuts dominate).
    pub fn dominates(&self, other: &Cut) -> bool {
        if self.inputs.len() > other.inputs.len() {
            return false;
        }
        // Both sorted: subset check by merge.
        let mut it = other.inputs.iter();
        'outer: for s in &self.inputs {
            for o in it.by_ref() {
                if o == s {
                    continue 'outer;
                }
                if o > s {
                    return false;
                }
            }
            return false;
        }
        true
    }
}

impl fmt::Display for Cut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, s) in self.inputs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, "}}")
    }
}

/// All enumerated cuts of one node. The **unit cut** (direct fan-in
/// boundary — what the paper calls the trivial cut in its MILP-base flow)
/// is always present at index 0.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CutSet {
    pub(crate) cuts: Vec<Cut>,
}

impl CutSet {
    /// The cuts, unit cut first.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// The unit (direct fan-in) cut, if this node has cuts at all.
    pub fn unit(&self) -> Option<&Cut> {
        self.cuts.first()
    }

    /// Number of cuts.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// `true` when the node has no cuts (sources, black boxes, outputs).
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }
}

/// The interior of a cone: all nodes evaluated inside the root's LUT for a
/// given cut, in topological (inputs-first) order, root last.
///
/// Traversal starts at `root` and walks distance-0 fan-in edges, stopping
/// at cut signals and constants.
///
/// # Panics
///
/// Panics if the cut does not actually cover the cone (a non-constant,
/// non-boundary source or register edge is reached) — enumerated cuts
/// always cover by construction.
pub fn cone_nodes(dfg: &Dfg, root: NodeId, cut: &Cut) -> Vec<NodeId> {
    let mut order = Vec::new();
    let mut visited = std::collections::HashSet::new();
    // Iterative post-order DFS.
    let mut stack: Vec<(NodeId, usize)> = vec![(root, 0)];
    while let Some(&mut (n, ref mut child)) = stack.last_mut() {
        let node = dfg.node(n);
        if *child < node.ins.len() {
            let port = node.ins[*child];
            *child += 1;
            let sig = Signal {
                node: port.node,
                dist: port.dist,
            };
            if cut.inputs.binary_search(&sig).is_ok() {
                continue; // boundary
            }
            let sub = dfg.node(port.node);
            if matches!(sub.op, Op::Const(_)) {
                continue; // absorbed constant
            }
            assert_eq!(
                port.dist, 0,
                "cone of {root} crosses a register edge not in the cut"
            );
            assert!(
                sub.op.is_lut_mappable(),
                "cone of {root} reaches unmappable node {} not in the cut",
                port.node
            );
            if visited.insert(port.node) {
                stack.push((port.node, 0));
            }
        } else {
            order.push(n);
            stack.pop();
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signal_ordering_and_display() {
        let a = Signal::now(NodeId(1));
        let b = Signal {
            node: NodeId(1),
            dist: 2,
        };
        assert!(a < b);
        assert_eq!(a.to_string(), "n1");
        assert_eq!(b.to_string(), "n1@-2");
    }

    #[test]
    fn cut_dedups_and_sorts() {
        let c = Cut::new(
            vec![
                Signal::now(NodeId(3)),
                Signal::now(NodeId(1)),
                Signal::now(NodeId(3)),
            ],
            2,
            1,
        );
        assert_eq!(c.len(), 2);
        assert_eq!(c.inputs()[0].node, NodeId(1));
        assert_eq!(c.to_string(), "{n1, n3}");
    }

    #[test]
    fn dominance_is_subset() {
        let small = Cut::new(vec![Signal::now(NodeId(1))], 1, 1);
        let big = Cut::new(vec![Signal::now(NodeId(1)), Signal::now(NodeId(2))], 2, 1);
        let other = Cut::new(vec![Signal::now(NodeId(3))], 1, 1);
        assert!(small.dominates(&big));
        assert!(!big.dominates(&small));
        assert!(!other.dominates(&big));
        assert!(small.dominates(&small));
    }
}
