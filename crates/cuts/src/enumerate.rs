//! Word-level K-feasible cut enumeration — Algorithm 1 of the paper.
//!
//! Every LUT-mappable node starts with its **unit cut** (direct fan-in
//! boundary; the paper's "trivial cut" in MILP-base). A work list then
//! repeatedly merges fan-in cut sets (Eq. 1): each fan-in either stays a
//! boundary signal or is absorbed together with one of its own cuts.
//! Candidates survive if every output bit of the root keeps a bit-level
//! support of at most K. Loop-carried (register) edges and black boxes are
//! always boundaries; constants are absorbed for free.

use pipemap_ir::{Dfg, NodeId, Op, Target};
use std::collections::BTreeSet;

use crate::cut::{Cut, CutSet, Signal};
use crate::dep::{cut_support, Support};

/// Tunables for [`CutDb::enumerate`].
#[derive(Debug, Clone, PartialEq)]
pub struct CutConfig {
    /// LUT input count K (paper uses K ≤ 6; Fig. 1 uses 4).
    pub k: u32,
    /// Cuts kept per node after dominance filtering (unit cut included).
    pub max_cuts: usize,
    /// Largest cone (in word-level nodes) a cut may cover.
    pub max_cone: u32,
    /// Optional per-node liveness masks (indexed by `NodeId`), as computed
    /// by `pipemap-analyze`. A node whose mask is `0` cannot influence any
    /// primary output: it keeps only its unit cut and is skipped by the
    /// merge work list, shrinking the cut database (and hence the MILP)
    /// without changing the mapping of live logic.
    pub live_bits: Option<Vec<u64>>,
    /// Drop subset-dominated cuts during the merge (on by default). The
    /// priority-cut analysis ([`crate::analysis`]) turns this **off** so
    /// the raw candidate pool still contains dominated cuts; its certified
    /// pruning pass then removes them *with* machine-checkable dominance
    /// certificates instead of silently.
    pub filter_dominated: bool,
}

impl Default for CutConfig {
    fn default() -> Self {
        CutConfig {
            k: 4,
            max_cuts: 8,
            max_cone: 24,
            live_bits: None,
            filter_dominated: true,
        }
    }
}

impl CutConfig {
    /// Configuration matching a device model's K.
    pub fn for_target(target: &Target) -> Self {
        CutConfig {
            k: target.k,
            ..CutConfig::default()
        }
    }

    /// The mapping-agnostic configuration: only unit cuts are produced, so
    /// the MILP degenerates to the paper's **MILP-base** flow.
    pub fn trivial_only(target: &Target) -> Self {
        CutConfig {
            k: target.k,
            max_cuts: 1,
            max_cone: 1,
            ..CutConfig::default()
        }
    }
}

/// The enumerated cut sets of every node of one graph.
#[derive(Debug, Clone, PartialEq)]
pub struct CutDb {
    k: u32,
    sets: Vec<CutSet>,
}

impl CutDb {
    /// Run cut enumeration (Algorithm 1) over a graph.
    pub fn enumerate(dfg: &Dfg, cfg: &CutConfig) -> CutDb {
        let mut sets: Vec<CutSet> = vec![CutSet::default(); dfg.len()];

        // Unit cuts for every LUT-mappable node. Unit cuts are kept even if
        // their bit support exceeds K: they model the op's native
        // implementation (e.g. a carry chain for a wide adder).
        for (id, node) in dfg.iter() {
            if !node.op.is_lut_mappable() {
                continue;
            }
            let signals = unit_signals(dfg, id);
            let support = match cut_support(dfg, id, &sorted(&signals), u32::MAX - 1) {
                Support::Feasible { max_bits, .. } => max_bits,
                _ => u32::MAX,
            };
            sets[id.index()] = CutSet {
                cuts: vec![Cut::new(signals, support, 1)],
            };
        }

        if cfg.max_cuts <= 1 {
            return CutDb { k: cfg.k, sets };
        }

        // Fully-dead nodes (no live bit reaches an output) keep only their
        // unit cut: enumerating deeper cuts for them would only inflate
        // the MILP with variables the objective cannot profit from.
        let is_dead = |v: NodeId| {
            cfg.live_bits
                .as_ref()
                .is_some_and(|l| l.get(v.index()).copied() == Some(0))
        };

        // Work list over distance-0 consumer edges, as in Algorithm 1.
        let consumers = dfg.consumers();
        let mut queue: Vec<NodeId> = dfg
            .topo_order()
            .expect("validated graph")
            .into_iter()
            .filter(|&v| dfg.node(v).op.is_lut_mappable() && !is_dead(v))
            .collect();
        let mut in_queue = vec![false; dfg.len()];
        for &v in &queue {
            in_queue[v.index()] = true;
        }
        let mut head = 0;
        let budget = dfg.len().saturating_mul(50).max(1000);
        let mut processed = 0usize;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            in_queue[v.index()] = false;
            processed += 1;
            if processed > budget {
                break; // capped fixpoint; cut sets are valid at any prefix
            }
            let new_set = merge_cuts(dfg, v, &sets, cfg);
            if new_set != sets[v.index()] {
                sets[v.index()] = new_set;
                for &(c, port) in &consumers[v.index()] {
                    let cn = dfg.node(c);
                    if cn.ins[port].dist == 0
                        && cn.op.is_lut_mappable()
                        && !in_queue[c.index()]
                        && !is_dead(c)
                    {
                        in_queue[c.index()] = true;
                        queue.push(c);
                    }
                }
            }
            // Keep the queue from growing without bound.
            if head > 4096 && head == queue.len() {
                queue.clear();
                head = 0;
            }
        }
        if pipemap_obs::enabled() {
            pipemap_obs::instant_with(
                "cut-fixpoint",
                vec![
                    ("steps", processed.into()),
                    ("nodes", dfg.len().into()),
                    ("budget", budget.into()),
                ],
            );
        }

        CutDb { k: cfg.k, sets }
    }

    /// Rebuild a database from per-node cut sets, indexed by `NodeId`
    /// (used by the certified pruning pass in [`crate::analysis`] to
    /// materialize its kept sets, and by audits to construct adversarial
    /// databases).
    pub fn from_sets(k: u32, sets: Vec<CutSet>) -> CutDb {
        CutDb { k, sets }
    }

    /// The K this database was enumerated for.
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Cut set of one node (empty for sources, outputs and black boxes).
    pub fn cuts(&self, v: NodeId) -> &CutSet {
        &self.sets[v.index()]
    }

    /// Total number of cuts across all nodes (drives MILP size — the
    /// paper's Table 2 runtime discussion).
    pub fn total_cuts(&self) -> usize {
        self.sets.iter().map(|s| s.len()).sum()
    }

    /// Human-readable dump of every node's cuts (the Fig. 2 illustration).
    pub fn dump(&self, dfg: &Dfg) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (id, node) in dfg.iter() {
            let set = self.cuts(id);
            if set.is_empty() {
                continue;
            }
            let _ = write!(out, "{} ({}):", dfg.label(id), node.op);
            for cut in set.cuts() {
                let names: Vec<String> = cut
                    .inputs()
                    .iter()
                    .map(|s| {
                        if s.dist == 0 {
                            dfg.label(s.node)
                        } else {
                            format!("{}@-{}", dfg.label(s.node), s.dist)
                        }
                    })
                    .collect();
                let _ = write!(out, "  {{{}}}", names.join(", "));
            }
            out.push('\n');
        }
        out
    }
}

fn sorted(signals: &[Signal]) -> Vec<Signal> {
    let mut v = signals.to_vec();
    v.sort();
    v.dedup();
    v
}

/// Boundary signals of the unit (direct fan-in) cut; constants absorbed.
fn unit_signals(dfg: &Dfg, v: NodeId) -> Vec<Signal> {
    dfg.node(v)
        .ins
        .iter()
        .filter(|p| !matches!(dfg.node(p.node).op, Op::Const(_)))
        .map(|p| Signal {
            node: p.node,
            dist: p.dist,
        })
        .collect()
}

/// One `mergeCuts` step (Eq. 1): cross product of per-fan-in choices.
fn merge_cuts(dfg: &Dfg, v: NodeId, sets: &[CutSet], cfg: &CutConfig) -> CutSet {
    let node = dfg.node(v);
    // Choices per input port: each choice is a set of boundary signals.
    let mut port_choices: Vec<Vec<Vec<Signal>>> = Vec::with_capacity(node.ins.len());
    for p in &node.ins {
        let sub = dfg.node(p.node);
        if matches!(sub.op, Op::Const(_)) {
            port_choices.push(vec![Vec::new()]);
            continue;
        }
        let mut choices = vec![vec![Signal {
            node: p.node,
            dist: p.dist,
        }]];
        if p.dist == 0 && sub.op.is_lut_mappable() {
            for cut in sets[p.node.index()].cuts() {
                choices.push(cut.inputs().to_vec());
            }
        }
        port_choices.push(choices);
    }

    // Enumerate combinations; collect unique candidate signal sets.
    let mut candidates: BTreeSet<Vec<Signal>> = BTreeSet::new();
    let mut idx = vec![0usize; port_choices.len()];
    const COMBO_CAP: usize = 4096;
    'combos: loop {
        let mut signals: Vec<Signal> = Vec::new();
        for (p, &i) in idx.iter().enumerate() {
            signals.extend_from_slice(&port_choices[p][i]);
        }
        signals.sort();
        signals.dedup();
        candidates.insert(signals);
        if candidates.len() >= COMBO_CAP {
            break;
        }
        // Advance the mixed-radix counter.
        for p in 0..idx.len() {
            idx[p] += 1;
            if idx[p] < port_choices[p].len() {
                continue 'combos;
            }
            idx[p] = 0;
        }
        break;
    }

    // Validate candidates; the unit cut is exempt from the K check.
    let unit = sorted(&unit_signals(dfg, v));
    let mut cuts: Vec<Cut> = Vec::new();
    for signals in candidates {
        if signals == unit {
            continue; // re-added below, unconditionally
        }
        match cut_support(dfg, v, &signals, cfg.k) {
            Support::Feasible { max_bits, cone } if cone <= cfg.max_cone => {
                cuts.push(Cut::new(signals, max_bits, cone));
            }
            _ => {}
        }
    }

    // Dominance filter: smaller cuts first so supersets are dropped. The
    // priority-cut analysis keeps dominated candidates (filter off) and
    // prunes them later with certificates.
    cuts.sort_by(|a, b| (a.len(), a.inputs()).cmp(&(b.len(), b.inputs())));
    let mut kept: Vec<Cut> = Vec::new();
    for c in cuts {
        if !cfg.filter_dominated || !kept.iter().any(|k| k.dominates(&c)) {
            kept.push(c);
        }
    }
    // Rank for the per-node cap: prefer cuts that absorb more logic (the
    // MILP minimizes roots, so bigger cones are the area-saving options),
    // then fewer inputs; lexicographic for determinism.
    kept.sort_by(|a, b| {
        b.cone_size()
            .cmp(&a.cone_size())
            .then_with(|| a.len().cmp(&b.len()))
            .then_with(|| a.inputs().cmp(b.inputs()))
    });
    kept.truncate(cfg.max_cuts.saturating_sub(1));

    let (unit_support, unit_cone) = match cut_support(dfg, v, &unit, u32::MAX - 1) {
        Support::Feasible { max_bits, cone } => (max_bits, cone),
        _ => (u32::MAX, 1),
    };
    let mut out = vec![Cut::new(unit.clone(), unit_support, unit_cone)];
    out.extend(kept);
    CutSet { cuts: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{DfgBuilder, Target};

    /// The paper's Fig. 1/2 Reed-Solomon kernel at 2-bit width.
    fn rs_mini() -> (Dfg, [NodeId; 5]) {
        let mut b = DfgBuilder::new("rs_mini");
        let s = b.input("s", 2);
        let t = b.input("t", 2);
        let e_prev = b.placeholder(2);
        let a = b.shr(s, 1);
        b.name_node(a, "A");
        let bb = b.xor(t, a);
        b.name_node(bb, "B");
        let c = b.is_non_negative(bb);
        b.name_node(c, "C");
        let d = b.mux(c, bb, e_prev);
        b.name_node(d, "D");
        let e = b.xor(d, a);
        b.name_node(e, "E");
        b.bind(e_prev, e, 1).expect("feedback");
        b.output("out", e);
        (b.finish().expect("valid"), [a, bb, c, d, e])
    }

    #[test]
    fn unit_cuts_always_present() {
        let (g, [a, bb, c, d, e]) = rs_mini();
        let db = CutDb::enumerate(&g, &CutConfig::default());
        for v in [a, bb, c, d, e] {
            let set = db.cuts(v);
            assert!(!set.is_empty(), "{} has no cuts", g.label(v));
            let unit = set.unit().expect("unit cut");
            assert_eq!(unit, &set.cuts()[0]);
        }
    }

    #[test]
    fn trivial_only_config_gives_single_cut() {
        let (g, _) = rs_mini();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&Target::fig1()));
        for (id, n) in g.iter() {
            if n.op.is_lut_mappable() {
                assert_eq!(db.cuts(id).len(), 1, "{}", g.label(id));
            }
        }
    }

    #[test]
    fn deep_cuts_absorb_the_fig2_cone() {
        let (g, [_, bb, c, _, e]) = rs_mini();
        let db = CutDb::enumerate(&g, &CutConfig::default());
        // B should own a cut {t, s} (absorbing the shift).
        let b_cuts = db.cuts(bb);
        assert!(
            b_cuts.cuts().iter().any(|cut| cut.len() == 2
                && cut.inputs().iter().all(|s| s.dist == 0)
                && cut
                    .inputs()
                    .iter()
                    .all(|s| matches!(g.node(s.node).op, Op::Input))),
            "B cuts: {:?}",
            b_cuts
                .cuts()
                .iter()
                .map(|c| c.to_string())
                .collect::<Vec<_>>()
        );
        // C (the MSB-only compare) can absorb everything down to {t, s}.
        assert!(db.cuts(c).cuts().iter().any(|cut| cut.len() == 2
            && cut
                .inputs()
                .iter()
                .all(|s| matches!(g.node(s.node).op, Op::Input))));
        // E sees the loop: some cut contains the registered signal E@-1.
        assert!(db
            .cuts(e)
            .cuts()
            .iter()
            .any(|cut| cut.inputs().iter().any(|s| s.node == e && s.dist == 1)));
    }

    #[test]
    fn every_enumerated_cut_is_k_feasible() {
        let (g, _) = rs_mini();
        let cfg = CutConfig::default();
        let db = CutDb::enumerate(&g, &cfg);
        for (id, n) in g.iter() {
            if !n.op.is_lut_mappable() {
                continue;
            }
            for (i, cut) in db.cuts(id).cuts().iter().enumerate() {
                if i == 0 {
                    continue; // unit cut: exempt (native implementation)
                }
                assert!(
                    cut.max_bit_support() <= cfg.k,
                    "{} cut {} exceeds K",
                    g.label(id),
                    cut
                );
            }
        }
    }

    #[test]
    fn wide_adders_keep_only_unit_cut_shapes() {
        let mut b = DfgBuilder::new("wide");
        let x = b.input("x", 32);
        let y = b.input("y", 32);
        let z = b.input("z", 32);
        let a = b.add(x, y);
        let s = b.add(a, z);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        // The second adder cannot absorb the first: its merged support
        // would be 96 bits.
        assert_eq!(db.cuts(s).len(), 1);
    }

    #[test]
    fn xor_chains_collapse_into_wide_cuts() {
        // A depth-3 xor tree of 1-bit values fits in one 4-LUT under K=4
        // but needs K=8 for depth 3 with 8 leaves.
        let mut b = DfgBuilder::new("xortree");
        let leaves: Vec<_> = (0..8).map(|i| b.input(format!("x{i}"), 1)).collect();
        let l1: Vec<_> = leaves.chunks(2).map(|p| b.xor(p[0], p[1])).collect();
        let l2: Vec<_> = l1.chunks(2).map(|p| b.xor(p[0], p[1])).collect();
        let root = b.xor(l2[0], l2[1]);
        b.output("o", root);
        let g = b.finish().expect("valid");

        let db4 = CutDb::enumerate(
            &g,
            &CutConfig {
                k: 4,
                ..CutConfig::default()
            },
        );
        let best4 = db4
            .cuts(root)
            .cuts()
            .iter()
            .map(Cut::len)
            .max()
            .expect("cuts");
        assert_eq!(best4, 4, "4 leaves reachable at K=4");

        let db8 = CutDb::enumerate(
            &g,
            &CutConfig {
                k: 8,
                ..CutConfig::default()
            },
        );
        assert!(
            db8.cuts(root).cuts().iter().any(|c| c.len() == 8),
            "all 8 leaves in one cut at K=8"
        );
    }

    #[test]
    fn black_boxes_are_never_absorbed() {
        let mut b = DfgBuilder::new("bb");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let p = b.mul(x, y);
        let n = b.not(p);
        let o = b.xor(n, x);
        b.output("o", o);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        assert!(db.cuts(p).is_empty(), "black box has no cuts");
        // n's only input is the multiplier: it can never be absorbed, so
        // every cut of n is exactly {p}.
        for cut in db.cuts(n).cuts() {
            assert_eq!(cut.inputs(), &[Signal::now(p)], "cut of n: {cut}");
        }
        // o may absorb n (boundary moves to p) but never expands past the
        // multiplier to reach y.
        for cut in db.cuts(o).cuts() {
            assert!(
                !cut.inputs().contains(&Signal::now(y)),
                "cut of o expanded through the black box: {cut}"
            );
        }
    }

    #[test]
    fn dead_nodes_keep_only_unit_cuts() {
        let (g, [a, bb, c, d, e]) = rs_mini();
        // Pretend B's cone is dead: it and nodes merging through it stay at
        // the unit cut, while untouched nodes still enumerate deep cuts.
        let mut live = vec![u64::MAX; g.len()];
        live[bb.index()] = 0;
        let db = CutDb::enumerate(
            &g,
            &CutConfig {
                live_bits: Some(live),
                ..CutConfig::default()
            },
        );
        assert_eq!(db.cuts(bb).len(), 1, "dead node only keeps its unit cut");
        let full = CutDb::enumerate(&g, &CutConfig::default());
        assert!(db.total_cuts() < full.total_cuts());
        for v in [a, c, d, e] {
            assert!(!db.cuts(v).is_empty());
        }
    }

    #[test]
    fn single_node_dfg_has_exactly_the_unit_cut() {
        // The smallest mappable graph: one op between an input and the
        // output marker. Its only cut is the unit cut {x}.
        let mut b = DfgBuilder::new("single");
        let x = b.input("x", 4);
        let n = b.not(x);
        b.output("o", n);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        assert_eq!(db.cuts(n).len(), 1);
        assert_eq!(db.cuts(n).unit().expect("unit").inputs(), &[Signal::now(x)]);
        assert_eq!(db.total_cuts(), 1);
    }

    #[test]
    fn k1_target_keeps_only_single_input_merges() {
        // At K=1 no multi-input cut is feasible: every node keeps its
        // unit cut, and only pure single-input chains may merge.
        let mut b = DfgBuilder::new("k1");
        let x = b.input("x", 1);
        let y = b.input("y", 1);
        let a = b.not(x);
        let c = b.xor(a, y);
        b.output("o", c);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(
            &g,
            &CutConfig {
                k: 1,
                ..CutConfig::default()
            },
        );
        // `a` is single-input: its cut {x} is 1-feasible.
        assert!(db.cuts(a).cuts().iter().all(|c| c.len() == 1));
        // `c` needs two bits of support; only the (exempt) unit cut stays.
        assert_eq!(db.cuts(c).len(), 1, "{:?}", db.cuts(c));
        for cut in db.cuts(c).cuts().iter().skip(1) {
            assert!(cut.max_bit_support() <= 1);
        }
    }

    #[test]
    fn fanout_free_chain_collapses_to_the_leaf() {
        // not(not(not(x))) at 1 bit: a fanout-free chain where every node
        // can absorb everything below it down to the primary input.
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x", 1);
        let n1 = b.not(x);
        let n2 = b.not(n1);
        let n3 = b.not(n2);
        b.output("o", n3);
        let g = b.finish().expect("valid");
        let db = CutDb::enumerate(&g, &CutConfig::default());
        assert!(
            db.cuts(n3)
                .cuts()
                .iter()
                .any(|c| c.inputs() == [Signal::now(x)]),
            "deepest cut should reach the input: {:?}",
            db.cuts(n3)
        );
        // Dominance: {x} ⊆ any other cut of n3, so only one cut besides
        // (possibly equal to) the unit cut survives per intermediate node.
        for v in [n1, n2, n3] {
            for cut in db.cuts(v).cuts() {
                assert_eq!(cut.len(), 1, "chain cuts are single-input: {cut}");
            }
        }
    }

    #[test]
    fn fully_dead_root_with_live_bits_keeps_unit_cut_only() {
        // A live_bits vector whose *root* (output-feeding node) is fully
        // dead: enumeration must still keep its unit cut (the node remains
        // coverable) but never merge deeper cuts for it.
        let mut b = DfgBuilder::new("deadroot");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let a = b.xor(x, y);
        let r = b.and(a, y);
        b.output("o", r);
        let g = b.finish().expect("valid");
        let mut live = vec![u64::MAX; g.len()];
        live[r.index()] = 0;
        let db = CutDb::enumerate(
            &g,
            &CutConfig {
                live_bits: Some(live),
                ..CutConfig::default()
            },
        );
        assert_eq!(db.cuts(r).len(), 1, "dead root keeps only its unit cut");
        let unit = db.cuts(r).unit().expect("unit cut present");
        assert_eq!(unit.inputs(), &[Signal::now(y), Signal::now(a)]);
        // The live interior node still enumerates normally.
        assert!(!db.cuts(a).is_empty());
    }

    #[test]
    fn unfiltered_enumeration_keeps_dominated_cuts() {
        let (g, _) = rs_mini();
        let filtered = CutDb::enumerate(&g, &CutConfig::default());
        let raw = CutDb::enumerate(
            &g,
            &CutConfig {
                filter_dominated: false,
                max_cuts: 32,
                ..CutConfig::default()
            },
        );
        assert!(raw.total_cuts() >= filtered.total_cuts());
        // Some node must now hold a dominated pair (that is the point of
        // the raw pool: the certified pruner gets to remove it).
        let has_dominated_pair = g.node_ids().any(|v| {
            let cuts = raw.cuts(v).cuts();
            cuts.iter().enumerate().any(|(i, a)| {
                cuts.iter()
                    .enumerate()
                    .any(|(j, b)| i != j && a.dominates(b) && a.inputs() != b.inputs())
            })
        });
        assert!(has_dominated_pair, "raw pool should contain dominated cuts");
    }

    #[test]
    fn dump_mentions_labels() {
        let (g, _) = rs_mini();
        let db = CutDb::enumerate(&g, &CutConfig::default());
        let text = db.dump(&g);
        assert!(text.contains('B'));
        assert!(text.contains("E@-1"));
    }

    #[test]
    fn total_cuts_counts_everything() {
        let (g, _) = rs_mini();
        let db = CutDb::enumerate(&g, &CutConfig::default());
        let manual: usize = g.node_ids().map(|v| db.cuts(v).len()).sum();
        assert_eq!(db.total_cuts(), manual);
        assert!(db.total_cuts() >= 5);
    }
}
