//! # pipemap-cuts
//!
//! Word-level K-feasible cut enumeration with bit-level dependence
//! tracking — §3.1 and Algorithm 1 of *"Area-Efficient Pipelining for
//! FPGA-Targeted High-Level Synthesis"* (DAC 2015).
//!
//! Technology mapping covers a logic network with K-input LUTs; a *cut* of
//! a node is the input boundary of one candidate LUT rooted at that node.
//! The paper lifts cut enumeration from bit-level netlists to the
//! word-level CDFG so the scheduling MILP stays tractable: dependences are
//! tracked per output **bit** (so an `x >= 0` comparison is recognized as a
//! function of the sign bit alone) while cuts stay word-level objects.
//!
//! ```
//! use pipemap_cuts::{CutConfig, CutDb};
//! use pipemap_ir::DfgBuilder;
//!
//! # fn main() -> Result<(), pipemap_ir::IrError> {
//! // B = t ^ (s >> 1): with 4-input LUTs the shift folds into B's LUT.
//! let mut b = DfgBuilder::new("demo");
//! let s = b.input("s", 2);
//! let t = b.input("t", 2);
//! let a = b.shr(s, 1);
//! let x = b.xor(t, a);
//! b.output("o", x);
//! let dfg = b.finish()?;
//!
//! let db = CutDb::enumerate(&dfg, &CutConfig::default());
//! assert!(db.cuts(x).cuts().iter().any(|c| c.len() == 2)); // {s, t}
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod cut;
mod dep;
mod enumerate;

pub use analysis::{priority_cuts, CutCertificate, PriorityCuts, PruneConfig, PruneStats};
pub use cut::{cone_nodes, Cut, CutSet, Signal};
pub use dep::for_each_dep;
pub use enumerate::{CutConfig, CutDb};
