//! Regenerate the paper's **Figure 1**: the Reed-Solomon encoder kernel
//! scheduled by the additive flow (3 pipeline stages, 3 LUTs) versus the
//! mapping-aware flow (1 stage, 2 LUTs). Target period 5 ns; every logic
//! operation or LUT costs 2 ns, as in the paper's illustration.

use std::time::Duration;

use pipemap_bench_suite::rs_encoder_fig1;
use pipemap_core::{run_flow, Flow, FlowOptions};
use pipemap_cuts::cone_nodes;
use pipemap_ir::{InputStreams, Target};
use pipemap_netlist::verify_functional;

fn main() {
    let (dfg, _) = rs_encoder_fig1();
    let target = Target::fig1();
    let opts = FlowOptions {
        time_limit: Duration::from_secs(30),
        ..FlowOptions::default()
    };

    println!("Figure 1: pipeline schedule for the Reed-Solomon encoder kernel");
    println!("(T_cp = 5 ns; each logic operation or LUT incurs 2 ns; II = 1)\n");
    println!("{dfg}\n");

    for (flow, label) in [
        (Flow::HlsTool, "(a) additive-delay schedule (suboptimal)"),
        (Flow::MilpMap, "(b) mapping-aware schedule (optimal)"),
    ] {
        let r = run_flow(&dfg, &target, flow, &opts).expect("flow runs");
        println!("{label}");
        println!(
            "  stages: {}   LUTs: {}   FFs: {}   CP: {:.2} ns",
            r.qor.depth, r.qor.luts, r.qor.ffs, r.qor.cp_ns
        );
        for (id, node) in dfg.iter() {
            if matches!(
                node.op,
                pipemap_ir::Op::Input | pipemap_ir::Op::Const(_) | pipemap_ir::Op::Output
            ) {
                continue;
            }
            let cycle = r.implementation.schedule.cycle(id);
            match r.implementation.cover.cut(id) {
                Some(cut) => {
                    let cone: Vec<String> = cone_nodes(&dfg, id, cut)
                        .iter()
                        .map(|&n| dfg.label(n))
                        .collect();
                    println!(
                        "    cycle {cycle}: LUT root {} <- cut {} (cone: {})",
                        dfg.label(id),
                        cut,
                        cone.join(", ")
                    );
                }
                None => println!(
                    "    cycle {cycle}: {} absorbed into a consumer's LUT",
                    dfg.label(id)
                ),
            }
        }
        let ins = InputStreams::random(&dfg, 64, 7);
        let ok = verify_functional(&dfg, &target, &r.implementation, &ins, 64).is_ok();
        println!("  functional check vs reference interpreter: {}\n", if ok { "ok" } else { "FAIL" });
    }
    println!(
        "Paper reference: (a) 3 LUTs / 3 pipeline stages, (b) 2 LUTs / 1 stage."
    );
}
