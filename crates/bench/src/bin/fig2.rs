//! Regenerate the paper's **Figure 2**: word-level cut enumeration for the
//! Reed-Solomon encoder kernel, including the MSB-only signed-compare
//! special case (node C) and the loop-carried boundary signal `E@-1`.

use pipemap_bench_suite::rs_encoder_fig1;
use pipemap_cuts::{CutConfig, CutDb};
use pipemap_ir::Target;

fn main() {
    let (dfg, [a, b, c, d, e]) = rs_encoder_fig1();
    let target = Target::fig1();
    let db = CutDb::enumerate(&dfg, &CutConfig::for_target(&target));

    println!("Figure 2: cut enumeration for the Reed-Solomon encoder (K = {}, 2-bit ops)\n", target.k);
    println!("{dfg}\n");
    println!("Enumerated K-feasible cuts per node (unit cut first):");
    print!("{}", db.dump(&dfg));
    println!();

    // Per-bit dependence highlights the paper calls out.
    println!("Bit-level dependence highlights:");
    println!("  A = s >> 1         : A[j] depends on s[j+1] (shifted single bit)");
    println!("  B = t ^ A          : B[j] depends on t[j], A[j] (bitwise)");
    println!("  C = (B >= 0) signed: C depends on B[1] only (MSB sign test)");
    let c_cuts = db.cuts(c);
    println!(
        "  -> deepest cut of C reaches the primary inputs: {}",
        c_cuts
            .cuts()
            .iter()
            .map(|cut| cut.to_string())
            .collect::<Vec<_>>()
            .join("  ")
    );
    let e_cuts = db.cuts(e);
    let has_loop = e_cuts
        .cuts()
        .iter()
        .any(|cut| cut.inputs().iter().any(|s| s.node == e && s.dist == 1));
    println!(
        "  E's cuts include the registered feedback signal E@-1: {}",
        if has_loop { "yes" } else { "no" }
    );
    println!("  total cuts enumerated: {}", db.total_cuts());
    let _ = (a, b, d);
}
