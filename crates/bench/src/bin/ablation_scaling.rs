//! Ablation D: MILP scalability — the paper's Table 2 discussion notes
//! that solver runtime scales with the number of unique constraints,
//! which is driven by the number of enumerated cuts. Sweep the XORR
//! reduction-tree size and report model size and solve time for both MILP
//! variants.
//!
//! ```text
//! cargo run --release -p pipemap-bench --bin ablation_scaling -- [--limit SECS]
//! ```

use pipemap_bench::arg_limit;
use pipemap_bench_suite::xorr;
use pipemap_core::{run_flow, Flow, FlowOptions};

fn main() {
    let limit = arg_limit(30);
    println!("Ablation D: MILP model size and runtime vs problem size (XORR trees)\n");
    println!(
        "{:>5} {:>6} | {:>8} {:>8} {:>9} {:>10} | {:>8} {:>8} {:>8} {:>9} {:>10}",
        "n", "nodes", "b.vars", "b.rows", "b.status", "b.time", "m.vars", "m.rows", "m.cuts", "m.status", "m.time"
    );
    for n in [8usize, 16, 32, 64] {
        let bench = xorr(n, 2);
        let opts = FlowOptions {
            time_limit: limit,
            ..FlowOptions::default()
        };
        let mut cells = Vec::new();
        for flow in [Flow::MilpBase, Flow::MilpMap] {
            match run_flow(&bench.dfg, &bench.target, flow, &opts) {
                Ok(r) => {
                    let s = r.milp.expect("stats");
                    if flow == Flow::MilpBase {
                        cells.push(format!(
                            "{:>8} {:>8} {:>9} {:>9.2}s",
                            s.variables,
                            s.constraints,
                            s.status.to_string(),
                            s.solve_time.as_secs_f64()
                        ));
                    } else {
                        cells.push(format!(
                            "{:>8} {:>8} {:>8} {:>9} {:>9.2}s",
                            s.variables,
                            s.constraints,
                            s.total_cuts,
                            s.status.to_string(),
                            s.solve_time.as_secs_f64()
                        ));
                    }
                }
                Err(e) => cells.push(format!("error: {e}")),
            }
        }
        println!(
            "{:>5} {:>6} | {} | {}",
            n,
            bench.dfg.stats().nodes,
            cells[0],
            cells[1]
        );
    }
    println!("\nExpectation: MILP-map rows/cuts and runtime grow much faster than MILP-base,");
    println!("mirroring the paper's Table 2 (base finishes in seconds, map hits the limit).");
}
