//! Regenerate the paper's **Table 1**: CP / LUT / FF for the three flows
//! on all nine benchmarks, percentages relative to the HLS-tool row.
//!
//! ```text
//! cargo run --release -p pipemap-bench --bin table1 -- [--limit SECS] [--bench NAME]
//! ```

use pipemap_bench::{arg_bench_filter, arg_limit, pct, run_benchmark};
use pipemap_bench_suite::all;

fn main() {
    let limit = arg_limit(60);
    let filter = arg_bench_filter();
    println!(
        "Table 1: resource usage comparison. Target clock period 10 ns, II = 1 (bumped if infeasible)."
    );
    println!(
        "MILP time limit {:?} per flow; percentages relative to the HLS Tool row.",
        limit
    );
    println!();
    println!(
        "{:<8} {:<22} {:<10} {:>7} {:>6} {:>9} {:>6} {:>9}  {:>3} {:>5} {:>4}",
        "Design", "Domain", "Method", "CP(ns)", "LUT", "%", "FF", "%", "II", "Depth", "Sim"
    );
    println!("{}", "-".repeat(100));

    for bench in all() {
        if let Some(f) = &filter {
            if !bench.name.eq_ignore_ascii_case(f) {
                continue;
            }
        }
        match run_benchmark(&bench, limit) {
            Ok(rows) => {
                let base = &rows[0].result.qor;
                let (bl, bf) = (base.luts, base.ffs);
                for (i, row) in rows.iter().enumerate() {
                    let q = &row.result.qor;
                    let (lp, fp) = if i == 0 {
                        (String::new(), String::new())
                    } else {
                        (pct(q.luts, bl), pct(q.ffs, bf))
                    };
                    println!(
                        "{:<8} {:<22} {:<10} {:>7.2} {:>6} {:>9} {:>6} {:>9}  {:>3} {:>5} {:>4}",
                        if i == 0 { bench.name } else { "" },
                        if i == 0 { bench.domain } else { "" },
                        row.result.flow.label(),
                        q.cp_ns,
                        q.luts,
                        lp,
                        q.ffs,
                        fp,
                        q.ii,
                        q.depth,
                        if row.functional { "ok" } else { "FAIL" },
                    );
                }
                println!();
            }
            Err(e) => println!("{:<8} ERROR: {e}\n", bench.name),
        }
    }
}
