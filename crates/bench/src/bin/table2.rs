//! Regenerate the paper's **Table 2**: MILP solver runtime per benchmark
//! for MILP-base vs MILP-map, plus the model sizes driving it (the paper
//! notes runtime scales with the number of unique constraints, which is
//! driven by the number of enumerated cuts).
//!
//! ```text
//! cargo run --release -p pipemap-bench --bin table2 -- [--limit SECS]
//! ```

use pipemap_bench::arg_limit;
use pipemap_bench_suite::all;
use pipemap_core::{run_flow, Flow, FlowOptions};

fn main() {
    let limit = arg_limit(60);
    let opts = FlowOptions {
        time_limit: limit,
        ..FlowOptions::default()
    };
    println!("Table 2: MILP solver runtime per benchmark (limit {limit:?}).");
    println!("\"Ops\" is the CDFG node count — the analog of the paper's LLVM-instruction column.");
    println!();
    println!(
        "{:<8} {:>5} | {:>10} {:>7} {:>7} {:>9} | {:>10} {:>7} {:>7} {:>7} {:>9}",
        "Design", "Ops", "base(s)", "vars", "rows", "status", "map(s)", "vars", "rows", "cuts", "status"
    );
    println!("{}", "-".repeat(108));

    let mut base_sum = 0.0;
    let mut map_sum = 0.0;
    let mut n = 0u32;
    for bench in all() {
        let ops = bench.dfg.stats().nodes;
        let mut cells: Vec<String> = Vec::new();
        let mut times = [0.0f64; 2];
        for (k, flow) in [Flow::MilpBase, Flow::MilpMap].into_iter().enumerate() {
            match run_flow(&bench.dfg, &bench.target, flow, &opts) {
                Ok(r) => {
                    let s = r.milp.expect("milp stats on milp flows");
                    times[k] = s.solve_time.as_secs_f64();
                    if k == 0 {
                        cells.push(format!(
                            "{:>10.1} {:>7} {:>7} {:>9}",
                            times[k], s.variables, s.constraints, s.status
                        ));
                    } else {
                        cells.push(format!(
                            "{:>10.1} {:>7} {:>7} {:>7} {:>9}",
                            times[k], s.variables, s.constraints, s.total_cuts, s.status
                        ));
                    }
                }
                Err(e) => cells.push(format!("error: {e}")),
            }
        }
        base_sum += times[0];
        map_sum += times[1];
        n += 1;
        println!("{:<8} {:>5} | {} | {}", bench.name, ops, cells[0], cells[1]);
    }
    println!("{}", "-".repeat(108));
    println!(
        "{:<8} {:>5} | {:>10.1} | {:>10.1}   (mean seconds, base vs map)",
        "Mean",
        "",
        base_sum / f64::from(n),
        map_sum / f64::from(n)
    );
}
