//! Ablation B: sweep the LUT input count K (the paper notes cut
//! enumeration is exponential in K but fast for the practical K ≤ 6) and
//! report cut counts, enumeration time, and MILP-map QoR.
//!
//! ```text
//! cargo run --release -p pipemap-bench --bin ablation_k -- [--limit SECS]
//! ```

use std::time::Instant;

use pipemap_bench::arg_limit;
use pipemap_bench_suite::by_name;
use pipemap_core::{run_flow, Flow, FlowOptions};
use pipemap_cuts::{CutConfig, CutDb};

fn main() {
    let limit = arg_limit(20);
    println!("Ablation B: LUT input count K sweep\n");
    for name in ["GFMUL", "XORR", "RS"] {
        let bench = by_name(name).expect("benchmark exists");
        println!("{name}:");
        println!(
            "{:>3} | {:>7} {:>12} | {:>6} {:>6} {:>6}",
            "K", "cuts", "enum time", "LUT", "FF", "depth"
        );
        for k in [2u32, 4, 6] {
            let mut target = bench.target.clone();
            target.k = k;
            let t0 = Instant::now();
            let db = CutDb::enumerate(
                &bench.dfg,
                &CutConfig {
                    k,
                    ..CutConfig::default()
                },
            );
            let enum_time = t0.elapsed();
            let opts = FlowOptions {
                time_limit: limit,
                ..FlowOptions::default()
            };
            match run_flow(&bench.dfg, &target, Flow::MilpMap, &opts) {
                Ok(r) => println!(
                    "{:>3} | {:>7} {:>12?} | {:>6} {:>6} {:>6}",
                    k,
                    db.total_cuts(),
                    enum_time,
                    r.qor.luts,
                    r.qor.ffs,
                    r.qor.depth
                ),
                Err(e) => println!("{k:>3} | {:>7} {enum_time:>12?} | error: {e}", db.total_cuts()),
            }
        }
        println!();
    }
    println!("Expectation: cut counts grow with K; bigger K absorbs more logic (fewer LUTs/stages).");
}
