//! Ablation C: sweep the initiation interval and watch the register
//! objective fold (Eq. 13 folds liveness modulo II; larger II shares
//! registers across fewer concurrent iterations).
//!
//! ```text
//! cargo run --release -p pipemap-bench --bin ablation_ii -- [--limit SECS]
//! ```

use pipemap_bench::arg_limit;
use pipemap_bench_suite::by_name;
use pipemap_core::{run_flow, Flow, FlowOptions};

fn main() {
    let limit = arg_limit(20);
    println!("Ablation C: initiation interval sweep (MILP-map)\n");
    for name in ["CORDIC", "GSM", "AES"] {
        let bench = by_name(name).expect("benchmark exists");
        println!("{name}:");
        println!("{:>9} | {:>4} {:>6} {:>6} {:>6}", "target II", "II", "LUT", "FF", "depth");
        for ii in [1u32, 2, 4] {
            let opts = FlowOptions {
                ii,
                time_limit: limit,
                ..FlowOptions::default()
            };
            match run_flow(&bench.dfg, &bench.target, Flow::MilpMap, &opts) {
                Ok(r) => println!(
                    "{:>9} | {:>4} {:>6} {:>6} {:>6}",
                    ii, r.ii, r.qor.luts, r.qor.ffs, r.qor.depth
                ),
                Err(e) => println!("{ii:>9} | error: {e}"),
            }
        }
        println!();
    }
    println!("Expectation: relaxing the throughput constraint cannot increase the optimum's area.");
}
