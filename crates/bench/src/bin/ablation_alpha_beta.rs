//! Ablation A: sweep the Eq. 15 weights α (LUTs) vs β (registers) and
//! watch the LUT/FF trade-off move — the knob the paper exposes but only
//! evaluates at α = β = 0.5.
//!
//! ```text
//! cargo run --release -p pipemap-bench --bin ablation_alpha_beta -- [--limit SECS]
//! ```

use pipemap_bench::arg_limit;
use pipemap_bench_suite::by_name;
use pipemap_core::{run_flow, Flow, FlowOptions};

fn main() {
    let limit = arg_limit(20);
    println!("Ablation A: alpha/beta sweep of the MILP-map objective (Eq. 15)\n");
    for name in ["CLZ", "GFMUL"] {
        let bench = by_name(name).expect("benchmark exists");
        println!("{name}:");
        println!("{:>6} {:>6} | {:>6} {:>6} {:>6}", "alpha", "beta", "LUT", "FF", "depth");
        for step in 0..=4 {
            let alpha = f64::from(step) / 4.0;
            let beta = 1.0 - alpha;
            let opts = FlowOptions {
                alpha,
                beta,
                time_limit: limit,
                ..FlowOptions::default()
            };
            match run_flow(&bench.dfg, &bench.target, Flow::MilpMap, &opts) {
                Ok(r) => println!(
                    "{:>6.2} {:>6.2} | {:>6} {:>6} {:>6}",
                    alpha, beta, r.qor.luts, r.qor.ffs, r.qor.depth
                ),
                Err(e) => println!("{alpha:>6.2} {beta:>6.2} | error: {e}"),
            }
        }
        println!();
    }
    println!("Expectation: growing beta trades LUTs for fewer registers and vice versa.");
}
