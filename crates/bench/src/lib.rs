//! # pipemap-bench
//!
//! Harness that regenerates every table and figure of the paper's
//! evaluation:
//!
//! | artifact | binary |
//! |---|---|
//! | Table 1 (CP/LUT/FF, three flows × nine benchmarks) | `table1` |
//! | Table 2 (MILP runtimes and model sizes) | `table2` |
//! | Figure 1 (RS encoder: additive vs mapped schedule) | `fig1` |
//! | Figure 2 (word-level cut enumeration on the same kernel) | `fig2` |
//! | Ablation A (α/β LUT-vs-FF trade-off sweep) | `ablation_alpha_beta` |
//! | Ablation B (LUT input count K sweep) | `ablation_k` |
//! | Ablation C (initiation interval sweep) | `ablation_ii` |
//!
//! Criterion benches (`cargo bench`) cover the runtime-shaped claims:
//! cut-enumeration speed, scheduler throughput, and MILP solve time
//! scaling.

#![warn(missing_docs)]

use std::time::Duration;

use pipemap_bench_suite::Benchmark;
use pipemap_core::{run_flow, Flow, FlowOptions, FlowResult};
use pipemap_ir::InputStreams;
use pipemap_netlist::verify_functional;

/// Iterations used for the functional cross-check of every produced
/// implementation.
pub const VERIFY_ITERS: usize = 32;

/// One flow's outcome on one benchmark, plus the functional check result.
#[derive(Debug)]
pub struct FlowRow {
    /// The flow outcome.
    pub result: FlowResult,
    /// Whether the cycle-accurate simulation matched the reference
    /// interpreter.
    pub functional: bool,
}

/// Run all three flows on a benchmark and functionally verify each.
///
/// # Errors
///
/// Propagates the first flow failure.
pub fn run_benchmark(
    bench: &Benchmark,
    time_limit: Duration,
) -> Result<Vec<FlowRow>, pipemap_core::CoreError> {
    let opts = FlowOptions {
        time_limit,
        ..FlowOptions::default()
    };
    let ins = InputStreams::random(&bench.dfg, VERIFY_ITERS, 0xC0FFEE);
    Flow::ALL
        .iter()
        .map(|&flow| {
            let result = run_flow(&bench.dfg, &bench.target, flow, &opts)?;
            let functional = verify_functional(
                &bench.dfg,
                &bench.target,
                &result.implementation,
                &ins,
                VERIFY_ITERS,
            )
            .is_ok();
            Ok(FlowRow { result, functional })
        })
        .collect()
}

/// `(value - base) / base` as a percentage string like the paper's Table 1.
pub fn pct(value: u64, base: u64) -> String {
    if base == 0 {
        return if value == 0 {
            "(+0.0%)".into()
        } else {
            "(n/a)".into()
        };
    }
    let p = (value as f64 - base as f64) / base as f64 * 100.0;
    format!("({p:+.1}%)")
}

/// Parse `--limit <secs>` style arguments shared by the table binaries.
pub fn arg_limit(default_secs: u64) -> Duration {
    let mut args = std::env::args().skip(1);
    let mut limit = default_secs;
    while let Some(a) = args.next() {
        if a == "--limit" {
            if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                limit = v;
            }
        }
    }
    Duration::from_secs(limit)
}

/// Parse `--bench <name>` filter.
pub fn arg_bench_filter() -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--bench" {
            return args.next();
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(99, 171), "(-42.1%)");
        assert_eq!(pct(226, 221), "(+2.3%)");
        assert_eq!(pct(0, 257), "(-100.0%)");
        assert_eq!(pct(0, 0), "(+0.0%)");
    }

    #[test]
    fn quick_flow_on_smallest_kernel() {
        let b = pipemap_bench_suite::by_name("GFMUL").expect("exists");
        let rows = run_benchmark(&b, Duration::from_secs(2)).expect("flows run");
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.functional, "{} not functional", r.result.flow);
        }
    }
}
