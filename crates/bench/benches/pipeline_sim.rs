//! Criterion bench: cycle-accurate pipeline simulation + QoR evaluation
//! throughput (the substitute for Vivado's implementation step).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_bench_suite::all;
use pipemap_core::{schedule_baseline, Flow};
use pipemap_cuts::{CutConfig, CutDb};
use pipemap_ir::InputStreams;
use pipemap_netlist::{simulate, Qor};

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline_sim");
    for bench in all() {
        let db = CutDb::enumerate(&bench.dfg, &CutConfig::for_target(&bench.target));
        let base = schedule_baseline(&bench.dfg, &bench.target, 1, &db).expect("baseline");
        let ins = InputStreams::random(&bench.dfg, 64, 1);
        g.bench_with_input(BenchmarkId::new("simulate64", bench.name), &bench, |b, bench| {
            b.iter(|| {
                simulate(&bench.dfg, &bench.target, &base.implementation, &ins, 64)
                    .expect("simulates")
            });
        });
        g.bench_with_input(BenchmarkId::new("qor", bench.name), &bench, |b, bench| {
            b.iter(|| Qor::evaluate(&bench.dfg, &bench.target, &base.implementation));
        });
    }
    g.finish();
    let _ = Flow::HlsTool;
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
