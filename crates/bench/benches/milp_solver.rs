//! Criterion bench: MILP solve throughput (Table 2's runtime column, in
//! microcosm). Node-limited so each sample is bounded; the full-length
//! solves are produced by the `table2` binary.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_milp::{LinExpr, Model, Sense, SolverOptions};

/// A deterministic knapsack family.
fn knapsack(n: usize, seed: u64) -> Model {
    let mut m = Model::new(format!("ks{n}"));
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    };
    let mut w = LinExpr::new();
    for _ in 0..n {
        let v = (next() % 50 + 1) as f64;
        let wt = (next() % 40 + 1) as f64;
        let x = m.add_binary(-v);
        w.add_term(wt, x);
    }
    m.add_constraint(w, Sense::Le, 10.0 * n as f64 / 4.0);
    m
}

fn bench_milp(c: &mut Criterion) {
    let mut g = c.benchmark_group("milp_solver");
    g.sample_size(10);
    for n in [10usize, 20, 30] {
        let model = knapsack(n, 0xBEEF);
        g.bench_with_input(BenchmarkId::new("knapsack", n), &model, |b, model| {
            let opts = SolverOptions {
                time_limit: Duration::from_secs(10),
                ..SolverOptions::default()
            };
            b.iter(|| model.solve(&opts).expect("solves"));
        });
    }
    // Warm-started dual simplex + presolve vs the cold primal-only path.
    // The optimized variant is the default; `cold` disables both knobs so
    // the delta isolates the PR's single-thread wins.
    for (label, presolve, warm_start) in [("optimized", true, true), ("cold", false, false)] {
        let model = knapsack(24, 0xBEEF);
        g.bench_with_input(
            BenchmarkId::new("warm_vs_cold", label),
            &model,
            |b, model| {
                let opts = SolverOptions {
                    time_limit: Duration::from_secs(10),
                    presolve,
                    warm_start,
                    ..SolverOptions::default()
                };
                b.iter(|| model.solve(&opts).expect("solves"));
            },
        );
    }
    // Parallel tree search: identical objectives by the determinism
    // contract, so the thread sweep measures pure throughput scaling.
    for jobs in [1usize, 2, 4] {
        let model = knapsack(26, 0xBEEF);
        g.bench_with_input(BenchmarkId::new("jobs", jobs), &model, |b, model| {
            let opts = SolverOptions {
                time_limit: Duration::from_secs(10),
                jobs,
                ..SolverOptions::default()
            };
            b.iter(|| model.solve(&opts).expect("solves"));
        });
    }
    // Scheduling-model root solves: base vs map on the smallest kernel
    // (the Table 2 base≪map runtime relationship).
    for (label, trivial) in [("gfmul_base", true), ("gfmul_map", false)] {
        let bench = pipemap_bench_suite::by_name("GFMUL").expect("exists");
        let cfg = if trivial {
            pipemap_cuts::CutConfig::trivial_only(&bench.target)
        } else {
            pipemap_cuts::CutConfig::for_target(&bench.target)
        };
        let db = pipemap_cuts::CutDb::enumerate(&bench.dfg, &cfg);
        let base =
            pipemap_core::schedule_baseline(&bench.dfg, &bench.target, 1, &db).expect("baseline");
        let m = base.implementation.schedule.depth();
        let model =
            pipemap_core::debug_build_model(&bench.dfg, &bench.target, &db, base.ii, m, 0.5, 0.5);
        g.bench_function(BenchmarkId::new("root_lp", label), |b| {
            b.iter(|| pipemap_milp::debug_solve_root_lp(&model));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_milp);
criterion_main!(benches);
