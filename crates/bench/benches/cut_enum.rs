//! Criterion bench: word-level cut enumeration (Algorithm 1) across the
//! benchmark suite — the paper's claim that enumeration "is typically very
//! fast as the value of K is small in practice" (§3.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_bench_suite::all;
use pipemap_cuts::{CutConfig, CutDb};

fn bench_cut_enum(c: &mut Criterion) {
    let mut g = c.benchmark_group("cut_enumeration");
    for bench in all() {
        let cfg = CutConfig::for_target(&bench.target);
        g.bench_with_input(BenchmarkId::new("k4", bench.name), &bench, |b, bench| {
            b.iter(|| CutDb::enumerate(&bench.dfg, &cfg));
        });
    }
    // K sweep on one kernel (exponential-in-K claim).
    let gf = pipemap_bench_suite::by_name("GFMUL").expect("exists");
    for k in [2u32, 4, 6] {
        let cfg = CutConfig { k, ..CutConfig::default() };
        g.bench_with_input(BenchmarkId::new("gfmul_k", k), &k, |b, _| {
            b.iter(|| CutDb::enumerate(&gf.dfg, &cfg));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_cut_enum);
criterion_main!(benches);
