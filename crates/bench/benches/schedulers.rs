//! Criterion bench: the heuristic schedulers (the "commercial tool
//! finishes in seconds" side of the paper's Table 2 discussion).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pipemap_bench_suite::all;
use pipemap_core::{schedule_baseline, schedule_mapped_heuristic};
use pipemap_cuts::{CutConfig, CutDb};

fn bench_schedulers(c: &mut Criterion) {
    let mut g = c.benchmark_group("schedulers");
    for bench in all() {
        let db = CutDb::enumerate(&bench.dfg, &CutConfig::for_target(&bench.target));
        g.bench_with_input(
            BenchmarkId::new("baseline", bench.name),
            &bench,
            |b, bench| {
                b.iter(|| schedule_baseline(&bench.dfg, &bench.target, 1, &db).expect("schedules"));
            },
        );
        g.bench_with_input(
            BenchmarkId::new("mapped_heuristic", bench.name),
            &bench,
            |b, bench| {
                b.iter(|| schedule_mapped_heuristic(&bench.dfg, &bench.target, 1, &db));
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
