//! Modulo schedules, LUT covers, and legality verification.

use pipemap_cuts::{Cut, Signal};
use pipemap_ir::{Dfg, NodeId, Op, Target};
use std::error::Error;
use std::fmt;

/// A modulo schedule for one graph: per-node start cycles and intra-cycle
/// start times, at a fixed initiation interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    ii: u32,
    cycles: Vec<u32>,
    starts: Vec<f64>,
}

impl Schedule {
    /// Build a schedule from per-node cycles and intra-cycle start times
    /// (ns). Both vectors are indexed by node id.
    ///
    /// # Panics
    ///
    /// Panics if the vector lengths differ or `ii == 0`.
    pub fn new(ii: u32, cycles: Vec<u32>, starts: Vec<f64>) -> Self {
        assert!(ii >= 1, "initiation interval must be at least 1");
        assert_eq!(cycles.len(), starts.len());
        Schedule { ii, cycles, starts }
    }

    /// The initiation interval in cycles.
    pub fn ii(&self) -> u32 {
        self.ii
    }

    /// Start cycle of a node (relative to its iteration's start).
    pub fn cycle(&self, v: NodeId) -> u32 {
        self.cycles[v.index()]
    }

    /// Intra-cycle start time of a node in ns (the paper's `L_v`).
    pub fn start(&self, v: NodeId) -> f64 {
        self.starts[v.index()]
    }

    /// Number of pipeline cycles from iteration start to the last
    /// scheduled operation (the latency bound actually used).
    pub fn depth(&self) -> u32 {
        self.cycles.iter().copied().max().unwrap_or(0) + 1
    }

    /// Number of nodes this schedule covers (length of the per-node
    /// vectors). Accessing a node at or beyond this index panics.
    pub fn len(&self) -> usize {
        self.cycles.len()
    }

    /// `true` when the schedule covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.cycles.is_empty()
    }
}

/// The LUT cover: which nodes are cone roots, and with which cut.
///
/// Nodes that are not LUT-mappable (inputs, black boxes) produce signals
/// natively and are implicit roots; `Output` markers and constants are
/// neither roots nor registered values.
#[derive(Debug, Clone, PartialEq)]
pub struct Cover {
    selected: Vec<Option<Cut>>,
}

impl Cover {
    /// Build from a per-node selection (indexed by node id); `None` means
    /// the node is absorbed into some other cone (or is not mappable).
    pub fn new(selected: Vec<Option<Cut>>) -> Self {
        Cover { selected }
    }

    /// The selected cut of a LUT root.
    pub fn cut(&self, v: NodeId) -> Option<&Cut> {
        self.selected[v.index()].as_ref()
    }

    /// `true` if `v` produces a physical signal: a mapped LUT root or a
    /// natively implemented value (input / black box).
    pub fn produces_signal(&self, dfg: &Dfg, v: NodeId) -> bool {
        let op = &dfg.node(v).op;
        if op.is_lut_mappable() {
            self.selected[v.index()].is_some()
        } else {
            !matches!(op, Op::Output)
        }
    }

    /// Number of nodes this cover describes (length of the selection
    /// vector).
    pub fn len(&self) -> usize {
        self.selected.len()
    }

    /// `true` when the cover describes no nodes.
    pub fn is_empty(&self) -> bool {
        self.selected.is_empty()
    }

    /// Ids of all LUT roots.
    pub fn roots(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.selected
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_some())
            .map(|(i, _)| NodeId(i as u32))
    }
}

/// A complete pipelined implementation: schedule plus cover.
#[derive(Debug, Clone, PartialEq)]
pub struct Implementation {
    /// The modulo schedule.
    pub schedule: Schedule,
    /// The LUT cover.
    pub cover: Cover,
}

/// Everything a consumer reads: `(consumer node, signal consumed)`.
///
/// Consumers are LUT roots (via their cut signals), black boxes and
/// outputs (via their direct ports). Constants are dropped — they are
/// baked into LUTs and never registered.
pub fn consumed_signals(dfg: &Dfg, cover: &Cover) -> Vec<(NodeId, Signal)> {
    let mut out = Vec::new();
    for (id, node) in dfg.iter() {
        if node.op.is_lut_mappable() {
            if let Some(cut) = cover.cut(id) {
                for &s in cut.inputs() {
                    out.push((id, s));
                }
            }
        } else if !matches!(node.op, Op::Input | Op::Const(_)) {
            // Black boxes and outputs read their ports directly.
            for p in &node.ins {
                if matches!(dfg.node(p.node).op, Op::Const(_)) {
                    continue;
                }
                out.push((
                    id,
                    Signal {
                        node: p.node,
                        dist: p.dist,
                    },
                ));
            }
        }
    }
    out
}

/// A violated implementation invariant.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ImplError {
    /// A consumed signal's producer is not a signal-producing root.
    MissingRoot {
        /// The consumer.
        consumer: NodeId,
        /// The producer that should have been a root.
        producer: NodeId,
    },
    /// A primary output's source is not a root (paper Eq. 3).
    OutputNotRoot {
        /// The output marker node.
        output: NodeId,
    },
    /// A dependence is violated: the producer finishes after the consumer
    /// starts (paper Eq. 7, with latency).
    DependenceViolated {
        /// The consumer.
        consumer: NodeId,
        /// The producer.
        producer: NodeId,
    },
    /// The critical path of some cycle exceeds the target period (Eqs. 8–9).
    CycleTimeExceeded {
        /// Worst path delay found, ns.
        path_ns: f64,
        /// Target period, ns.
        t_cp: f64,
    },
    /// A modulo resource class is oversubscribed (Eq. 14).
    ResourceOversubscribed {
        /// Human-readable resource name.
        resource: String,
        /// The congruence class (cycle mod II).
        slot: u32,
        /// Number of concurrent uses.
        used: u32,
        /// The limit.
        limit: u32,
    },
}

impl fmt::Display for ImplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ImplError::MissingRoot { consumer, producer } => write!(
                f,
                "consumer {consumer} reads {producer}, which is not a mapped root"
            ),
            ImplError::OutputNotRoot { output } => {
                write!(f, "primary output {output} is fed by a non-root")
            }
            ImplError::DependenceViolated { consumer, producer } => write!(
                f,
                "dependence violated: {producer} not ready when {consumer} starts"
            ),
            ImplError::CycleTimeExceeded { path_ns, t_cp } => write!(
                f,
                "cycle time exceeded: critical path {path_ns:.3} ns > target {t_cp:.3} ns"
            ),
            ImplError::ResourceOversubscribed {
                resource,
                slot,
                used,
                limit,
            } => write!(
                f,
                "resource {resource} oversubscribed in modulo slot {slot}: {used} > {limit}"
            ),
        }
    }
}

impl Error for ImplError {}

/// Verify all legality invariants of an implementation against its graph
/// and device model: cover legality (Eqs. 2–4), dependences (Eq. 7), cycle
/// time (Eqs. 8–9 via static timing), and modulo resources (Eq. 14).
///
/// # Errors
///
/// Returns the first violated invariant.
pub fn verify(dfg: &Dfg, target: &Target, imp: &Implementation) -> Result<(), ImplError> {
    let sched = &imp.schedule;
    let cover = &imp.cover;
    let ii = sched.ii();

    // Cover legality: every consumed signal's producer must produce it.
    for (consumer, sig) in consumed_signals(dfg, cover) {
        if !cover.produces_signal(dfg, sig.node) {
            return Err(ImplError::MissingRoot {
                consumer,
                producer: sig.node,
            });
        }
    }
    // Primary outputs are roots (Eq. 3).
    for o in dfg.outputs() {
        let src = dfg.node(o).ins[0].node;
        if !cover.produces_signal(dfg, src) && !matches!(dfg.node(src).op, Op::Const(_)) {
            return Err(ImplError::OutputNotRoot { output: o });
        }
    }

    // Dependences with latency (Eq. 7 generalized): the producer's result
    // must exist by the consumer's start cycle.
    for (consumer, sig) in consumed_signals(dfg, cover) {
        let u = sig.node;
        let un = dfg.node(u);
        let lat = target.op_latency(&un.op, un.width);
        let avail = sched.cycle(u) + lat;
        let need = sched.cycle(consumer) + ii * sig.dist;
        if avail > need {
            return Err(ImplError::DependenceViolated {
                consumer,
                producer: u,
            });
        }
    }

    // Cycle time via static timing analysis.
    let sta = crate::qor::arrival_times(dfg, target, imp);
    let worst = sta.iter().cloned().fold(0.0, f64::max);
    if worst > target.t_cp + 1e-6 {
        return Err(ImplError::CycleTimeExceeded {
            path_ns: worst,
            t_cp: target.t_cp,
        });
    }

    // Modulo resource constraints.
    let mut usage: std::collections::HashMap<(pipemap_ir::Resource, u32), u32> =
        std::collections::HashMap::new();
    for (id, node) in dfg.iter() {
        if let Some(res) = node.op.resource() {
            let slot = sched.cycle(id) % ii;
            *usage.entry((res, slot)).or_insert(0) += 1;
        }
    }
    for ((res, slot), used) in usage {
        if let Some(limit) = target.resource_limit(res) {
            if used > limit {
                return Err(ImplError::ResourceOversubscribed {
                    resource: res.to_string(),
                    slot,
                    used,
                    limit,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::DfgBuilder;

    /// x ^ y -> & x, all unit-covered, one cycle each.
    fn simple() -> (Dfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new("s");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let t = b.xor(x, y);
        let u = b.and(t, x);
        let o = b.output("o", u);
        (b.finish().expect("valid"), vec![x, y, t, u, o])
    }

    fn unit_cover(dfg: &Dfg) -> Cover {
        let db = CutDb::enumerate(dfg, &CutConfig::trivial_only(&Target::default()));
        let selected = dfg.node_ids().map(|v| db.cuts(v).unit().cloned()).collect();
        Cover::new(selected)
    }

    #[test]
    fn legal_implementation_verifies() {
        let (g, ids) = simple();
        let target = Target::default();
        let cover = unit_cover(&g);
        // Everything combinational in cycle 0, chained.
        let d = target.lut_level_delay();
        let mut starts = vec![0.0; g.len()];
        starts[ids[3].index()] = d;
        let sched = Schedule::new(1, vec![0; g.len()], starts);
        let imp = Implementation {
            schedule: sched,
            cover,
        };
        verify(&g, &target, &imp).expect("legal");
    }

    #[test]
    fn dependence_violation_detected() {
        let (g, ids) = simple();
        let target = Target::default();
        let cover = unit_cover(&g);
        let mut cycles = vec![0; g.len()];
        cycles[ids[2].index()] = 1; // xor later than its consumer
        let sched = Schedule::new(1, cycles, vec![0.0; g.len()]);
        let imp = Implementation {
            schedule: sched,
            cover,
        };
        assert!(matches!(
            verify(&g, &target, &imp),
            Err(ImplError::DependenceViolated { .. })
        ));
    }

    #[test]
    fn missing_root_detected() {
        let (g, ids) = simple();
        let target = Target::default();
        let mut cover = unit_cover(&g);
        cover.selected[ids[2].index()] = None; // xor absorbed by nobody
        let sched = Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]);
        let imp = Implementation {
            schedule: sched,
            cover,
        };
        assert!(matches!(
            verify(&g, &target, &imp),
            Err(ImplError::MissingRoot { .. })
        ));
    }

    #[test]
    fn cycle_time_violation_detected() {
        let (g, ids) = simple();
        // One LUT level (1.37 ns) fits, two chained levels (2.74 ns) do not.
        let target = Target {
            t_cp: 2.0,
            ..Target::default()
        };
        let cover = unit_cover(&g);
        let d = target.lut_level_delay();
        let mut starts = vec![0.0; g.len()];
        starts[ids[3].index()] = d;
        let sched = Schedule::new(1, vec![0; g.len()], starts);
        let imp = Implementation {
            schedule: sched,
            cover,
        };
        assert!(matches!(
            verify(&g, &target, &imp),
            Err(ImplError::CycleTimeExceeded { .. })
        ));
    }

    #[test]
    fn resource_oversubscription_detected() {
        let mut b = DfgBuilder::new("mul2");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let p1 = b.mul(x, y);
        let p2 = b.mul(y, x);
        let s = b.xor(p1, p2);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let target = Target {
            mult_limit: Some(1),
            ..Target::default()
        };
        let cover = unit_cover(&g);
        // Both multipliers in the same cycle with II=1: slot 0 has 2 > 1.
        let mut starts = vec![0.0; g.len()];
        starts[s.index()] = target.delays.mul;
        let sched = Schedule::new(1, vec![0; g.len()], starts);
        let imp = Implementation {
            schedule: sched,
            cover,
        };
        assert!(matches!(
            verify(&g, &target, &imp),
            Err(ImplError::ResourceOversubscribed { .. })
        ));
    }
}
