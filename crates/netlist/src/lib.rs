//! # pipemap-netlist
//!
//! Physical-model back end for `pipemap`: turns a modulo schedule plus a
//! LUT cover into area/timing numbers and a cycle-accurate simulation.
//! This crate plays the role Xilinx Vivado's post-place-and-route report
//! plays in the DAC'15 paper — all three scheduling flows are lowered
//! through the same model so their relative LUT/FF/CP numbers are
//! comparable (paper Table 1).
//!
//! * [`Schedule`], [`Cover`], [`Implementation`] — the interface between
//!   schedulers and the physical model,
//! * [`verify`] — legality checks (cover, dependences, cycle time, modulo
//!   resources; paper Eqs. 2–14),
//! * [`Qor`] — LUT / FF / achieved-CP evaluation (Table 1's columns),
//! * [`simulate`] / [`verify_functional`] — cycle-accurate execution with
//!   register-lifetime enforcement, checked against the reference
//!   interpreter.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod qor;
mod report;
mod schedule;
mod sim;
mod verilog;

pub use qor::{arrival_times, dsp_count, ff_count, liveness, lut_count, Qor};
pub use report::schedule_report;
pub use schedule::{consumed_signals, verify, Cover, ImplError, Implementation, Schedule};
pub use sim::{simulate, simulate_with_stats, verify_functional, OutputTrace, SimError, SimStats};
pub use verilog::{to_verilog, VerilogError};
