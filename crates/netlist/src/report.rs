//! Human-readable schedule reports, in the spirit of an HLS tool's
//! scheduling report.

use std::fmt::Write as _;

use pipemap_ir::{Dfg, Op, Target};

use crate::qor::{arrival_times, Qor};
use crate::schedule::Implementation;

/// Render a per-cycle schedule report: which operations run in each
/// cycle, which are LUT roots (with their cuts) and which are absorbed,
/// plus the QoR summary line.
pub fn schedule_report(dfg: &Dfg, target: &Target, imp: &Implementation) -> String {
    let q = Qor::evaluate(dfg, target, imp);
    let arrival = arrival_times(dfg, target, imp);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "schedule `{}`: II={} depth={} | {} LUTs, {} FFs, CP {:.2} ns (target {:.2})",
        dfg.name(),
        q.ii,
        q.depth,
        q.luts,
        q.ffs,
        q.cp_ns,
        target.t_cp
    );
    for cycle in 0..q.depth {
        let _ = writeln!(out, "cycle {cycle}:");
        for (id, node) in dfg.iter() {
            if imp.schedule.cycle(id) != cycle {
                continue;
            }
            match &node.op {
                Op::Input | Op::Const(_) => continue,
                Op::Output => {
                    let _ = writeln!(out, "  output  {}", dfg.label(id));
                }
                op if op.is_black_box() => {
                    let _ = writeln!(
                        out,
                        "  bb      {:<12} {:<10} done {:>5.2} ns",
                        dfg.label(id),
                        op.mnemonic(),
                        arrival[id.index()]
                    );
                }
                op => match imp.cover.cut(id) {
                    Some(cut) => {
                        let _ = writeln!(
                            out,
                            "  root    {:<12} {:<10} cut {:<24} done {:>5.2} ns",
                            dfg.label(id),
                            op.mnemonic(),
                            cut.to_string(),
                            arrival[id.index()]
                        );
                    }
                    None => {
                        let _ = writeln!(
                            out,
                            "  interior {:<11} {:<10} (absorbed)",
                            dfg.label(id),
                            op.mnemonic()
                        );
                    }
                },
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Cover, Schedule};
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::DfgBuilder;

    #[test]
    fn report_mentions_roots_and_cycles() {
        let mut b = DfgBuilder::new("rep");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let t = b.xor(x, y);
        b.name_node(t, "t");
        b.output("o", t);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&target));
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
            cover: Cover::new(g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect()),
        };
        let r = schedule_report(&g, &target, &imp);
        assert!(r.contains("cycle 0:"));
        assert!(r.contains("root"));
        assert!(r.contains("t"));
        assert!(r.contains("LUTs"));
    }
}
