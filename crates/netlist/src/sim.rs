//! Cycle-accurate simulation of a pipelined implementation.
//!
//! The simulator executes the schedule the way the synthesized datapath
//! would: one iteration enters every II cycles, LUT cones evaluate
//! combinationally within their scheduled cycle, and produced values are
//! held in registers **only for their computed lifetime** (the same
//! liveness that prices flip-flops in [`crate::qor`]). A read of an
//! expired or not-yet-ready value is a hard error — so a schedule whose
//! register accounting is wrong cannot silently simulate correctly.
//!
//! Functional correctness is then established by comparing outputs against
//! the reference interpreter ([`pipemap_ir::execute`]).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use pipemap_cuts::{cone_nodes, Signal};
use pipemap_ir::{eval_op, execute, Dfg, EvalError, InputStreams, NodeId, Op, Target};

use crate::qor::liveness;
use crate::schedule::Implementation;

/// Simulation failure.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A consumer read a value before the producer finished.
    ReadBeforeReady {
        /// The producer whose value was not ready.
        producer: NodeId,
        /// The producing iteration.
        iteration: i64,
        /// Global cycle of the read.
        cycle: u64,
    },
    /// A consumer read a value after its retention window expired — the
    /// register lifetime accounting is too small for this schedule.
    ValueNotRetained {
        /// The producer whose value expired.
        producer: NodeId,
        /// The producing iteration.
        iteration: i64,
        /// Global cycle of the read.
        cycle: u64,
    },
    /// Input streams missing or too short.
    Input(EvalError),
    /// Pipelined outputs diverged from the reference interpreter.
    Mismatch {
        /// The output node.
        output: NodeId,
        /// Iteration at which the divergence occurred.
        iteration: usize,
        /// Pipelined value.
        got: u64,
        /// Reference value.
        expected: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ReadBeforeReady {
                producer,
                iteration,
                cycle,
            } => write!(
                f,
                "value of {producer} (iteration {iteration}) read before ready at cycle {cycle}"
            ),
            SimError::ValueNotRetained {
                producer,
                iteration,
                cycle,
            } => write!(
                f,
                "value of {producer} (iteration {iteration}) already expired at cycle {cycle}"
            ),
            SimError::Input(e) => write!(f, "input stream error: {e}"),
            SimError::Mismatch {
                output,
                iteration,
                got,
                expected,
            } => write!(
                f,
                "output {output} diverged at iteration {iteration}: pipeline {got:#x}, reference {expected:#x}"
            ),
        }
    }
}

impl Error for SimError {}

impl From<EvalError> for SimError {
    fn from(e: EvalError) -> Self {
        SimError::Input(e)
    }
}

/// Occupancy statistics gathered during simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimStats {
    /// Largest number of register bits simultaneously held across all
    /// cycle boundaries. Bounded above by [`crate::ff_count`] minus the
    /// input-holding registers (inputs are fed externally here).
    pub peak_register_bits: u64,
    /// Total clock cycles simulated.
    pub cycles: u64,
}

/// Per-iteration primary-output values, in output-id order, as returned
/// by [`simulate`].
pub type OutputTrace = Vec<Vec<(NodeId, u64)>>;

/// Pipelined execution of `iterations` loop iterations; returns each
/// iteration's primary-output values in output-id order.
///
/// # Errors
///
/// Returns [`SimError`] on missing inputs, premature reads, or expired
/// register reads.
pub fn simulate(
    dfg: &Dfg,
    target: &Target,
    imp: &Implementation,
    inputs: &InputStreams,
    iterations: usize,
) -> Result<OutputTrace, SimError> {
    simulate_with_stats(dfg, target, imp, inputs, iterations).map(|(o, _)| o)
}

/// [`simulate`] plus occupancy statistics.
///
/// # Errors
///
/// Returns [`SimError`] on missing inputs, premature reads, or expired
/// register reads.
pub fn simulate_with_stats(
    dfg: &Dfg,
    target: &Target,
    imp: &Implementation,
    inputs: &InputStreams,
    iterations: usize,
) -> Result<(OutputTrace, SimStats), SimError> {
    let ii = u64::from(imp.schedule.ii());
    let depth = imp.schedule.depth();
    let (avail, last_use) = liveness(dfg, target, imp);
    let order = dfg.topo_order().expect("validated graph");

    // Nodes executed per stage cycle, in topological order.
    let mut per_stage: Vec<Vec<NodeId>> = vec![Vec::new(); depth as usize];
    for &v in &order {
        per_stage[imp.schedule.cycle(v) as usize].push(v);
    }

    // Register file: (node, iteration) -> value, pruned on expiry.
    let mut regs: HashMap<(NodeId, i64), u64> = HashMap::new();
    let mut outputs: OutputTrace = vec![Vec::new(); iterations];

    // Reference streams: pre-resolve the values of every primary input.
    let input_ids = dfg.inputs();
    let mut input_vals: HashMap<(NodeId, i64), u64> = HashMap::new();
    {
        // Reuse the interpreter's masking by executing inputs through it.
        let trace = execute_inputs(dfg, inputs, iterations)?;
        for (k, row) in trace.iter().enumerate() {
            for (&id, &v) in input_ids.iter().zip(row) {
                input_vals.insert((id, k as i64), v);
            }
        }
    }

    let read = |regs: &HashMap<(NodeId, i64), u64>,
                sig: Signal,
                k: i64,
                g: u64|
     -> Result<u64, SimError> {
        let src_iter = k - i64::from(sig.dist);
        let u = sig.node;
        if src_iter < 0 {
            return Ok(dfg.init_value(u) & pipemap_ir::mask(dfg.node(u).width));
        }
        if matches!(dfg.node(u).op, Op::Const(_)) {
            let Op::Const(c) = dfg.node(u).op else {
                unreachable!()
            };
            return Ok(c & pipemap_ir::mask(dfg.node(u).width));
        }
        if matches!(dfg.node(u).op, Op::Input) {
            return Ok(input_vals[&(u, src_iter)]);
        }
        let produced = src_iter as u64 * ii + u64::from(avail[u.index()]);
        if g < produced {
            return Err(SimError::ReadBeforeReady {
                producer: u,
                iteration: src_iter,
                cycle: g,
            });
        }
        match regs.get(&(u, src_iter)) {
            Some(&v) => Ok(v),
            None => Err(SimError::ValueNotRetained {
                producer: u,
                iteration: src_iter,
                cycle: g,
            }),
        }
    };

    let mut stats = SimStats::default();
    let total_cycles = (iterations as u64).saturating_sub(1) * ii + u64::from(depth);
    for g in 0..total_cycles {
        // Iterations active this cycle, oldest (deepest stage) first, so
        // cross-stage combinational forwarding sees fresh values.
        let k_min = if g >= u64::from(depth) - 1 {
            ((g - (u64::from(depth) - 1)) / ii) as i64
        } else {
            0
        };
        for k in k_min..iterations as i64 {
            let k_u = k as u64;
            if k_u * ii > g {
                break;
            }
            let t = g - k_u * ii;
            if t >= u64::from(depth) {
                continue;
            }
            for &v in &per_stage[t as usize] {
                let node = dfg.node(v);
                match &node.op {
                    Op::Input | Op::Const(_) => {}
                    Op::Output => {
                        let p = node.ins[0];
                        let val = read(
                            &regs,
                            Signal {
                                node: p.node,
                                dist: p.dist,
                            },
                            k,
                            g,
                        )?;
                        outputs[k as usize].push((v, val));
                    }
                    op if op.is_black_box() => {
                        let mut args = Vec::new();
                        let mut widths = Vec::new();
                        for p in &node.ins {
                            args.push(read(
                                &regs,
                                Signal {
                                    node: p.node,
                                    dist: p.dist,
                                },
                                k,
                                g,
                            )?);
                            widths.push(dfg.node(p.node).width);
                        }
                        let val = eval_op(&node.op, node.width, &args, &widths, dfg.memories());
                        regs.insert((v, k), val);
                    }
                    _ => {
                        // LUT-mappable: evaluate the cone if v is a root.
                        let Some(cut) = imp.cover.cut(v) else {
                            continue; // interior node: computed inside a root
                        };
                        let mut boundary: HashMap<Signal, u64> = HashMap::new();
                        for &s in cut.inputs() {
                            boundary.insert(s, read(&regs, s, k, g)?);
                        }
                        let cone = cone_nodes(dfg, v, cut);
                        let mut local: HashMap<NodeId, u64> = HashMap::new();
                        for &n in &cone {
                            let nn = dfg.node(n);
                            let mut args = Vec::new();
                            let mut widths = Vec::new();
                            for p in &nn.ins {
                                let sig = Signal {
                                    node: p.node,
                                    dist: p.dist,
                                };
                                let val = if let Some(&b) = boundary.get(&sig) {
                                    b
                                } else if let Op::Const(c) = dfg.node(p.node).op {
                                    c & pipemap_ir::mask(dfg.node(p.node).width)
                                } else {
                                    local[&p.node]
                                };
                                args.push(val);
                                widths.push(dfg.node(p.node).width);
                            }
                            let val = eval_op(&nn.op, nn.width, &args, &widths, dfg.memories());
                            local.insert(n, val);
                        }
                        regs.insert((v, k), local[&v]);
                    }
                }
            }
        }
        // Expire values whose retention window ended at this cycle.
        regs.retain(|&(u, k_src), _| match last_use[u.index()] {
            Some(last) => k_src as u64 * ii + u64::from(last) > g,
            None => false,
        });
        // What survives the cycle boundary occupies physical registers.
        let bits: u64 = regs
            .keys()
            .map(|&(u, _)| u64::from(dfg.node(u).width))
            .sum();
        stats.peak_register_bits = stats.peak_register_bits.max(bits);
    }
    stats.cycles = total_cycles;

    Ok((outputs, stats))
}

/// Resolve input streams (masked) without running the full interpreter.
fn execute_inputs(
    dfg: &Dfg,
    inputs: &InputStreams,
    iterations: usize,
) -> Result<Vec<Vec<u64>>, EvalError> {
    // The reference interpreter already validates and masks inputs; run it
    // and extract the input rows.
    let trace = execute(dfg, inputs, iterations)?;
    let ids = dfg.inputs();
    Ok((0..iterations)
        .map(|k| ids.iter().map(|&i| trace.value(k, i)).collect())
        .collect())
}

/// End-to-end functional verification: simulate the pipeline and compare
/// every primary output of every iteration against the reference
/// interpreter.
///
/// # Errors
///
/// Returns the first [`SimError`], including [`SimError::Mismatch`] on
/// divergence.
pub fn verify_functional(
    dfg: &Dfg,
    target: &Target,
    imp: &Implementation,
    inputs: &InputStreams,
    iterations: usize,
) -> Result<(), SimError> {
    let piped = simulate(dfg, target, imp, inputs, iterations)?;
    let reference = execute(dfg, inputs, iterations)?;
    for (k, outs) in piped.iter().enumerate() {
        for &(o, got) in outs {
            let expected = reference.value(k, o);
            if got != expected {
                return Err(SimError::Mismatch {
                    output: o,
                    iteration: k,
                    got,
                    expected,
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Cover, Schedule};
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::DfgBuilder;

    fn unit_cover(dfg: &Dfg, target: &Target) -> Cover {
        let db = CutDb::enumerate(dfg, &CutConfig::trivial_only(target));
        Cover::new(dfg.node_ids().map(|v| db.cuts(v).unit().cloned()).collect())
    }

    #[test]
    fn combinational_pipeline_matches_reference() {
        let mut b = DfgBuilder::new("comb");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let t = b.xor(x, y);
        let u = b.and(t, x);
        let s = b.add(u, y);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let cover = unit_cover(&g, &target);
        let d = target.lut_level_delay();
        let mut starts = vec![0.0; g.len()];
        starts[u.index()] = d;
        starts[s.index()] = 2.0 * d;
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], starts),
            cover,
        };
        let ins = InputStreams::random(&g, 20, 7);
        verify_functional(&g, &target, &imp, &ins, 20).expect("functional");
    }

    #[test]
    fn multi_stage_pipeline_matches_reference() {
        let mut b = DfgBuilder::new("staged");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let t = b.xor(x, y);
        let u = b.and(t, x);
        let s = b.add(u, y);
        let o = b.output("o", s);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let cover = unit_cover(&g, &target);
        let mut cycles = vec![0; g.len()];
        cycles[u.index()] = 1;
        cycles[s.index()] = 2;
        cycles[o.index()] = 2;
        let imp = Implementation {
            schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
            cover,
        };
        crate::schedule::verify(&g, &target, &imp).expect("legal");
        let ins = InputStreams::random(&g, 30, 11);
        verify_functional(&g, &target, &imp, &ins, 30).expect("functional");
    }

    #[test]
    fn recurrence_pipeline_matches_reference() {
        // Running sum with the add and an extra stage for the output.
        let mut b = DfgBuilder::new("acc");
        let x = b.input("x", 16);
        let prev = b.placeholder(16);
        let acc = b.add(x, prev);
        b.bind(prev, acc, 1).expect("bind");
        let n = b.not(acc);
        let o = b.output("o", n);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let cover = unit_cover(&g, &target);
        let mut cycles = vec![0; g.len()];
        cycles[n.index()] = 1;
        cycles[o.index()] = 1;
        let imp = Implementation {
            schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
            cover,
        };
        crate::schedule::verify(&g, &target, &imp).expect("legal");
        let ins = InputStreams::random(&g, 25, 3);
        verify_functional(&g, &target, &imp, &ins, 25).expect("functional");
    }

    #[test]
    fn mapped_cones_match_reference() {
        // Fig. 1 style: mapped 2-LUT implementation of the RS mini kernel.
        let mut b = DfgBuilder::new("rs_mini");
        let s = b.input("s", 2);
        let t = b.input("t", 2);
        let e_prev = b.placeholder(2);
        let a = b.shr(s, 1);
        let bb = b.xor(t, a);
        let c = b.is_non_negative(bb);
        let d = b.mux(c, bb, e_prev);
        let e = b.xor(d, a);
        b.bind(e_prev, e, 1).expect("feedback");
        let o = b.output("out", e);
        let g = b.finish().expect("valid");
        let target = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&target));

        // Pick for E the deepest cut (absorbing as much as possible) and
        // for its remaining boundary nodes their unit cuts.
        let deep = db
            .cuts(e)
            .cuts()
            .iter()
            .max_by_key(|c| c.cone_size())
            .expect("cuts of E")
            .clone();
        let mut selected: Vec<Option<pipemap_cuts::Cut>> = vec![None; g.len()];
        for sig in deep.inputs() {
            if sig.dist == 0 && g.node(sig.node).op.is_lut_mappable() {
                // Boundary roots keep the deepest cut they own.
                let bc = db
                    .cuts(sig.node)
                    .cuts()
                    .iter()
                    .max_by_key(|c| c.cone_size())
                    .expect("cuts")
                    .clone();
                selected[sig.node.index()] = Some(bc);
            }
        }
        selected[e.index()] = Some(deep);
        // Chase boundaries of boundaries until closed.
        loop {
            let mut added = false;
            for v in g.node_ids().collect::<Vec<_>>() {
                if let Some(cut) = selected[v.index()].clone() {
                    for sig in cut.inputs() {
                        if sig.dist == 0
                            && g.node(sig.node).op.is_lut_mappable()
                            && selected[sig.node.index()].is_none()
                        {
                            selected[sig.node.index()] =
                                Some(db.cuts(sig.node).unit().expect("unit").clone());
                            added = true;
                        }
                    }
                }
            }
            if !added {
                break;
            }
        }
        let cover = Cover::new(selected);
        // Everything in cycle 0 with L ordering; starts left at 0 since
        // verify() uses STA, not the stored starts.
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
            cover,
        };
        let ins = InputStreams::random(&g, 40, 17);
        verify_functional(&g, &target, &imp, &ins, 40).expect("functional");
        let _ = o;
    }

    #[test]
    fn expired_values_are_detected() {
        // Deliberately lie about the cover: a consumer two cycles away
        // whose producer lifetime is honest still works, but a hand-built
        // inconsistent schedule (consumer earlier than lifetime math) is
        // caught. Here we force a read-before-ready.
        let mut b = DfgBuilder::new("bad");
        let x = b.input("x", 8);
        let n1 = b.not(x);
        let n2 = b.not(n1);
        let o = b.output("o", n2);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let cover = unit_cover(&g, &target);
        let mut cycles = vec![0; g.len()];
        // n2 scheduled BEFORE n1 completes (n1 in cycle 1, n2 in cycle 0).
        cycles[n1.index()] = 1;
        cycles[n2.index()] = 0;
        cycles[o.index()] = 1;
        let imp = Implementation {
            schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
            cover,
        };
        let ins = InputStreams::random(&g, 3, 5);
        let err = simulate(&g, &target, &imp, &ins, 3).expect_err("must fail");
        assert!(matches!(err, SimError::ReadBeforeReady { .. }), "{err}");
    }
}
