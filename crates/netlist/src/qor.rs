//! Quality-of-results evaluation: LUTs, flip-flops and achieved clock
//! period — the role Vivado's post-place-and-route report plays in the
//! paper's Table 1.
//!
//! All three scheduling flows (heuristic baseline, MILP-base, MILP-map)
//! are evaluated through this single model so their *relative* numbers are
//! directly comparable:
//!
//! * **LUT** — `Σ Bits(v)` over mapped roots (one LUT per output bit, the
//!   paper's `Bits(v)·root_v`), except pure wiring roots (constant shifts,
//!   slices, concats), which cost nothing in fabric.
//! * **FF** — liveness-based (paper Eqs. 10–13): a value occupies
//!   `Bits(v)` registers for every cycle between its availability and its
//!   last consumption, with loop-carried consumers extending the range by
//!   `II · dist`.
//! * **CP** — static timing: longest combinational arrival within any
//!   cycle, accumulating characterized delays along same-cycle chains.

use pipemap_ir::{Dfg, NodeId, Op, Target};

use crate::schedule::{consumed_signals, Implementation};

/// Area/timing summary of one implementation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Qor {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flops (pipeline registers).
    pub ffs: u64,
    /// Hard multipliers (DSP blocks): the largest number of concurrent
    /// multiplies in any modulo slot — multiplies in different slots
    /// time-share one DSP (the extension the paper's §3.2 invites).
    pub dsps: u64,
    /// Achieved clock period (critical path), ns.
    pub cp_ns: f64,
    /// Pipeline depth in cycles (schedule latency).
    pub depth: u32,
    /// Initiation interval.
    pub ii: u32,
}

impl Qor {
    /// Evaluate an implementation.
    pub fn evaluate(dfg: &Dfg, target: &Target, imp: &Implementation) -> Qor {
        let luts = lut_count(dfg, imp);
        let ffs = ff_count(dfg, target, imp);
        let cp_ns = arrival_times(dfg, target, imp)
            .into_iter()
            .fold(0.0, f64::max);
        Qor {
            luts,
            ffs,
            dsps: dsp_count(dfg, imp),
            cp_ns,
            depth: imp.schedule.depth(),
            ii: imp.schedule.ii(),
        }
    }
}

/// Hard-multiplier (DSP) usage: multiplies in the same modulo slot run
/// concurrently; across slots they time-share one block.
pub fn dsp_count(dfg: &Dfg, imp: &Implementation) -> u64 {
    let ii = imp.schedule.ii();
    let mut per_slot = vec![0u64; ii as usize];
    for (id, node) in dfg.iter() {
        if matches!(node.op, Op::Mul) {
            per_slot[(imp.schedule.cycle(id) % ii) as usize] += 1;
        }
    }
    per_slot.into_iter().max().unwrap_or(0)
}

/// LUT usage: `Bits(v)` per mapped root, wiring roots free.
pub fn lut_count(dfg: &Dfg, imp: &Implementation) -> u64 {
    let mut luts = 0u64;
    for (id, node) in dfg.iter() {
        if !node.op.is_lut_mappable() {
            continue;
        }
        if let Some(cut) = imp.cover.cut(id) {
            // A root whose whole cone is wiring costs no fabric; a cone
            // with any logic inside costs one LUT per output bit.
            let cone = pipemap_cuts::cone_nodes(dfg, id, cut);
            let pure_wire = cone.iter().all(|&n| dfg.node(n).op.is_wire());
            if !pure_wire {
                luts += u64::from(node.width);
            }
        }
    }
    luts
}

/// Per-value liveness: availability cycle and last-consumption cycle of
/// every signal-producing node (`None` when never consumed).
pub fn liveness(dfg: &Dfg, target: &Target, imp: &Implementation) -> (Vec<u32>, Vec<Option<u32>>) {
    let ii = imp.schedule.ii();
    let mut avail = vec![0u32; dfg.len()];
    for (id, node) in dfg.iter() {
        avail[id.index()] = imp.schedule.cycle(id) + target.op_latency(&node.op, node.width);
    }
    let mut last_use: Vec<Option<u32>> = vec![None; dfg.len()];
    for (consumer, sig) in consumed_signals(dfg, &imp.cover) {
        let t = imp.schedule.cycle(consumer) + ii * sig.dist;
        let slot = &mut last_use[sig.node.index()];
        *slot = Some(slot.map_or(t, |x| x.max(t)));
    }
    (avail, last_use)
}

/// Flip-flop usage from liveness (paper Eqs. 10–13 folded over II).
pub fn ff_count(dfg: &Dfg, target: &Target, imp: &Implementation) -> u64 {
    let (avail, last_use) = liveness(dfg, target, imp);
    let mut ffs = 0u64;
    for (id, node) in dfg.iter() {
        if matches!(node.op, Op::Const(_) | Op::Output) {
            continue;
        }
        if !imp.cover.produces_signal(dfg, id) {
            continue;
        }
        if let Some(last) = last_use[id.index()] {
            let lifetime = last.saturating_sub(avail[id.index()]);
            ffs += u64::from(node.width) * u64::from(lifetime);
        }
    }
    ffs
}

/// Static timing: completion time (ns) of every signal within its cycle.
///
/// A root's arrival is the latest same-cycle arrival among its cut inputs
/// plus its own characterized delay; values arriving from earlier cycles or
/// through registers contribute zero (they are stable at the cycle start).
pub fn arrival_times(dfg: &Dfg, target: &Target, imp: &Implementation) -> Vec<f64> {
    let ii = imp.schedule.ii();
    let mut arrival = vec![0.0f64; dfg.len()];
    let order = dfg.topo_order().expect("validated graph");
    for &v in &order {
        let node = dfg.node(v);
        if matches!(node.op, Op::Input | Op::Const(_)) {
            continue;
        }
        // Which signals feed this node's physical cell?
        let feeds: Vec<(NodeId, u32)> = if node.op.is_lut_mappable() {
            match imp.cover.cut(v) {
                Some(cut) => cut.inputs().iter().map(|s| (s.node, s.dist)).collect(),
                None => continue, // interior: timed inside its root's LUT
            }
        } else {
            node.ins.iter().map(|p| (p.node, p.dist)).collect()
        };
        let mut start: f64 = 0.0;
        for (u, dist) in feeds {
            if matches!(dfg.node(u).op, Op::Const(_)) {
                continue;
            }
            let un = dfg.node(u);
            let u_done = imp.schedule.cycle(u) + target.op_latency(&un.op, un.width);
            // Same effective cycle and not through a register: chained.
            if dist == 0 && u_done == imp.schedule.cycle(v) {
                start = start.max(arrival[u.index()]);
            }
            let _ = ii;
        }
        let d = target.op_delay(&node.op, node.width);
        let lat = target.op_latency(&node.op, node.width);
        // Multi-cycle ops contribute their remainder in the completion
        // cycle; the preceding cycles are fully occupied.
        let local = if lat > 0 {
            d - f64::from(lat) * target.t_cp
        } else {
            d
        };
        arrival[v.index()] = start + local.max(0.0);
    }
    arrival
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{Cover, Schedule};
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::{DfgBuilder, Target};

    /// Chain x -> not -> not -> out, unit cover, with a configurable split.
    fn chain(split_cycle: bool) -> (Dfg, Implementation, Target) {
        let mut b = DfgBuilder::new("chain");
        let x = b.input("x", 8);
        let n1 = b.not(x);
        let n2 = b.not(n1);
        b.output("o", n2);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&target));
        let cover = Cover::new(g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect());
        let d = target.lut_level_delay();
        let (cycles, starts) = if split_cycle {
            let mut c = vec![0; g.len()];
            c[n2.index()] = 1;
            c[g.outputs()[0].index()] = 1;
            (c, vec![0.0; g.len()])
        } else {
            let mut s = vec![0.0; g.len()];
            s[n2.index()] = d;
            (vec![0; g.len()], s)
        };
        let imp = Implementation {
            schedule: Schedule::new(1, cycles, starts),
            cover,
        };
        (g, imp, target)
    }

    #[test]
    fn lut_count_is_bits_per_root() {
        let (g, imp, _) = chain(false);
        // Two 8-bit NOT roots = 16 LUTs.
        assert_eq!(lut_count(&g, &imp), 16);
    }

    #[test]
    fn combinational_chain_has_no_ffs() {
        let (g, imp, t) = chain(false);
        assert_eq!(ff_count(&g, &t, &imp), 0);
        let q = Qor::evaluate(&g, &t, &imp);
        assert_eq!(q.depth, 1);
        assert!((q.cp_ns - 2.0 * t.lut_level_delay()).abs() < 1e-9);
    }

    #[test]
    fn split_pipeline_pays_registers() {
        let (g, imp, t) = chain(true);
        // n1's value crosses one cycle boundary: 8 FFs.
        assert_eq!(ff_count(&g, &t, &imp), 8);
        let q = Qor::evaluate(&g, &t, &imp);
        assert_eq!(q.depth, 2);
        assert!((q.cp_ns - t.lut_level_delay()).abs() < 1e-9);
    }

    #[test]
    fn wire_roots_cost_nothing() {
        let mut b = DfgBuilder::new("w");
        let x = b.input("x", 8);
        let s = b.shr(x, 3);
        b.output("o", s);
        let g = b.finish().expect("valid");
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&t));
        let cover = Cover::new(g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect());
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
            cover,
        };
        assert_eq!(lut_count(&g, &imp), 0);
    }

    #[test]
    fn loop_carried_consumption_extends_lifetime() {
        // acc = x + acc@-1 at II = 1: acc is consumed one iteration later,
        // i.e. one cycle later → held for 1 cycle → width FFs.
        let mut b = DfgBuilder::new("acc");
        let x = b.input("x", 16);
        let prev = b.placeholder(16);
        let acc = b.add(x, prev);
        b.bind(prev, acc, 1).expect("bind");
        b.output("o", acc);
        let g = b.finish().expect("valid");
        let t = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&t));
        let cover = Cover::new(g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect());
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
            cover,
        };
        // acc live from avail 0 to consumption at 0 + II*1 = 1 → 16 FFs;
        // x is consumed in its own cycle → 0 FFs.
        assert_eq!(ff_count(&g, &t, &imp), 16);
        crate::schedule::verify(&g, &t, &imp).expect("legal");
    }

    #[test]
    fn absorbed_interior_nodes_cost_nothing() {
        // y = (s >> 1) ^ t with a mapped cut {s, t}: the shift is interior.
        let mut b = DfgBuilder::new("m");
        let s = b.input("s", 2);
        let t_in = b.input("t", 2);
        let a = b.shr(s, 1);
        let y = b.xor(t_in, a);
        b.output("o", y);
        let g = b.finish().expect("valid");
        let t = Target::fig1();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&t));
        let deep = db
            .cuts(y)
            .cuts()
            .iter()
            .find(|c| c.len() == 2 && c.inputs().iter().all(|sg| sg.node != a))
            .expect("cut {s, t} exists")
            .clone();
        let mut selected: Vec<Option<pipemap_cuts::Cut>> = vec![None; g.len()];
        selected[y.index()] = Some(deep);
        let cover = Cover::new(selected);
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
            cover,
        };
        crate::schedule::verify(&g, &t, &imp).expect("legal");
        // One 2-bit LUT root.
        assert_eq!(lut_count(&g, &imp), 2);
        assert_eq!(ff_count(&g, &t, &imp), 0);
        // CP is a single LUT level.
        let q = Qor::evaluate(&g, &t, &imp);
        assert!((q.cp_ns - 2.0).abs() < 1e-9);
    }
}
