//! Pass 3: structural lint over emitted Verilog.
//!
//! A text-level sanity pass for the RTL produced by
//! [`pipemap_netlist::to_verilog`] (or any structurally similar netlist):
//! declaration/use discipline, single-driver nets, width-preserving direct
//! copies, `begin`/`end` balance, and combinational-loop detection over
//! continuous assignments. This is deliberately *not* a Verilog parser —
//! it understands exactly the restricted structural subset the exporter
//! emits, which is what makes it small enough to trust.

use std::collections::{HashMap, HashSet};

use pipemap_ir::SourceSpan;

use crate::diag::{Code, Diagnostic, Diagnostics};

#[derive(Debug, Default)]
struct Net {
    width: Option<u32>,
    span: SourceSpan,
    is_port: bool,
    is_mem: bool,
    cont_drivers: u32,
    proc_drivers: u32,
    used: bool,
    /// Identifiers read by this net's continuous assignment, for loop
    /// detection.
    rhs: Vec<String>,
}

const KEYWORDS: &[&str] = &[
    "module",
    "endmodule",
    "input",
    "output",
    "inout",
    "wire",
    "reg",
    "always",
    "initial",
    "posedge",
    "negedge",
    "begin",
    "end",
    "assign",
    "if",
    "else",
];

/// Lint a structural Verilog netlist, reporting every finding with a
/// line/column span into `src`.
pub fn lint_verilog(src: &str) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let mut nets: HashMap<String, Net> = HashMap::new();
    let mut order: Vec<String> = Vec::new(); // declaration order for stable reports
    let mut undeclared_reported: HashSet<String> = HashSet::new();
    let mut copies: Vec<(String, String, SourceSpan)> = Vec::new(); // lhs <= rhs direct copies
    let mut has_module = false;
    let mut has_endmodule = false;
    let mut begins = 0usize;
    let mut ends = 0usize;

    // First sweep: declarations only, so uses on early lines of nets
    // declared later (ports!) resolve.
    for (lno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim_start();
        if let Some((name, net)) = parse_decl(trimmed, lno + 1, indent(raw)) {
            if let Some(prev) = nets.get_mut(&name) {
                // Redeclaration: treat as an extra driver site.
                prev.cont_drivers += net.cont_drivers.max(1);
            } else {
                order.push(name.clone());
                nets.insert(name, net);
            }
        }
    }

    // Second sweep: structure, drivers, and uses.
    for (lno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw);
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        for (tok, _, _) in tokens(trimmed) {
            match tok {
                "module" => has_module = true,
                "endmodule" => has_endmodule = true,
                "begin" => begins += 1,
                "end" => ends += 1,
                _ => {}
            }
        }
        if trimmed.starts_with("module") || trimmed == ");" || trimmed.starts_with("endmodule") {
            continue;
        }

        let span_at = |col: usize, len: usize| SourceSpan {
            line: lno + 1,
            col,
            len,
        };
        macro_rules! mark_uses {
            ($segment:expr, $base_col:expr) => {
                mark_uses(
                    $segment,
                    $base_col,
                    lno + 1,
                    &mut nets,
                    &mut undeclared_reported,
                    &mut ds,
                )
            };
        }

        if let Some(decl) = decl_body(trimmed) {
            // Declaration line: the name itself is not a use; anything on
            // the right of `=` is.
            if let Some(eq) = decl.find('=') {
                let rhs = &decl[eq + 1..];
                let base = indent(raw) + (line.trim_start().len() - decl.len()) + eq + 1;
                mark_uses!(rhs, base);
                // Record direct copies and the rhs identifier set.
                if let Some((name, _)) = first_ident(decl) {
                    let rhs_ids: Vec<String> = tokens(rhs)
                        .filter(|(t, _, p)| {
                            !t.chars().next().is_some_and(|c| c.is_ascii_digit())
                                && *p != Some('\'')
                                && *p != Some('$')
                                && !KEYWORDS.contains(t)
                        })
                        .map(|(t, _, _)| t.to_string())
                        .collect();
                    if let Some(net) = nets.get_mut(&name) {
                        net.rhs = rhs_ids;
                    }
                    if let Some(rhs_name) = bare_ident(rhs) {
                        copies.push((
                            name.clone(),
                            rhs_name.to_string(),
                            nets.get(&name).map(|n| n.span).unwrap_or_default(),
                        ));
                    }
                }
            } else if let Some(idx) = decl.find('[') {
                // memory bounds: no uses
                let _ = idx;
            }
            continue;
        }

        if let Some(pos) = trimmed.find("<=") {
            let (lhs, rhs) = (&trimmed[..pos], &trimmed[pos + 2..]);
            let base = indent(raw);
            if let Some((name, col)) = first_ident(lhs) {
                match nets.get_mut(&name) {
                    Some(net) => net.proc_drivers += 1,
                    None => {
                        if undeclared_reported.insert(name.clone()) {
                            ds.push(
                                Diagnostic::new(
                                    Code::UndeclaredIdentifier,
                                    format!("`{name}` is assigned but never declared"),
                                )
                                .with_span(span_at(base + col, name.chars().count())),
                            );
                        }
                    }
                }
                if let Some(rhs_name) = bare_ident(rhs) {
                    copies.push((
                        name,
                        rhs_name.to_string(),
                        span_at(base + col, lhs.trim().chars().count()),
                    ));
                }
            }
            // Index expressions on the LHS are uses too.
            if let Some(br) = lhs.find('[') {
                mark_uses!(&lhs[br..], base + br);
            }
            mark_uses!(rhs, base + pos + 2);
            continue;
        }

        if let Some(pos) = trimmed.find('=') {
            // Blocking assignment inside an `initial` block: the target
            // must exist, but initialization is not a driver.
            let (lhs, rhs) = (&trimmed[..pos], &trimmed[pos + 1..]);
            let base = indent(raw);
            if let Some((name, col)) = first_ident(lhs) {
                if !nets.contains_key(&name) && undeclared_reported.insert(name.clone()) {
                    ds.push(
                        Diagnostic::new(
                            Code::UndeclaredIdentifier,
                            format!("`{name}` is initialized but never declared"),
                        )
                        .with_span(span_at(base + col, name.chars().count())),
                    );
                }
            }
            if let Some(br) = lhs.find('[') {
                mark_uses!(&lhs[br..], base + br);
            }
            mark_uses!(rhs, base + pos + 1);
            continue;
        }

        // Structural line (`always @(posedge clk) begin`, `end`, …): plain
        // identifier mentions still count as uses.
        mark_uses!(trimmed, indent(raw));
    }

    if !has_module || !has_endmodule {
        ds.push(Diagnostic::new(
            Code::MissingModule,
            if has_module {
                "netlist has no `endmodule`"
            } else {
                "netlist has no `module` header"
            },
        ));
    }
    // `endmodule` is a distinct token and is never counted as `end`.
    if begins != ends {
        ds.push(Diagnostic::new(
            Code::BeginEndImbalance,
            format!("{begins} `begin` token(s) but {ends} `end` token(s)"),
        ));
    }

    for name in &order {
        let net = &nets[name];
        let drivers = net.cont_drivers + net.proc_drivers;
        if drivers > 1 {
            ds.push(
                Diagnostic::new(
                    Code::MultiplyDrivenNet,
                    format!("net `{name}` has {drivers} drivers"),
                )
                .with_span(net.span),
            );
        }
        if !net.used && !net.is_port && !net.is_mem {
            ds.push(
                Diagnostic::new(Code::UnusedNet, format!("net `{name}` is never read"))
                    .with_span(net.span),
            );
        }
    }

    for (lhs, rhs, span) in &copies {
        let (Some(l), Some(r)) = (nets.get(lhs), nets.get(rhs)) else {
            continue;
        };
        if let (Some(lw), Some(rw)) = (l.width, r.width) {
            if lw != rw && !r.is_mem {
                ds.push(
                    Diagnostic::new(
                        Code::NetWidthMismatch,
                        format!("`{lhs}` ({lw} bits) copied directly from `{rhs}` ({rw} bits)"),
                    )
                    .with_span(*span),
                );
            }
        }
    }

    // Combinational loops over continuous assignments: edge u -> v when
    // wire v's expression reads wire u.
    let cont: HashSet<&String> = order
        .iter()
        .filter(|n| nets[*n].cont_drivers > 0 && !nets[*n].is_mem)
        .collect();
    let mut indeg: HashMap<&String, usize> = cont.iter().map(|&n| (n, 0)).collect();
    let mut fanout: HashMap<&String, Vec<&String>> = HashMap::new();
    for name in &order {
        if !cont.contains(name) {
            continue;
        }
        for dep in &nets[name].rhs {
            if let Some(&dep_key) = cont.get(dep) {
                if dep_key != name {
                    *indeg.get_mut(name).expect("cont net") += 1;
                    fanout.entry(dep_key).or_default().push(name);
                } else {
                    // direct self-loop
                    *indeg.get_mut(name).expect("cont net") += 1;
                }
            }
        }
    }
    let mut queue: Vec<&String> = order
        .iter()
        .filter(|n| indeg.get(n).is_some_and(|&d| d == 0))
        .collect();
    let mut resolved = queue.len();
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        if let Some(outs) = fanout.get(v) {
            for &c in outs {
                let d = indeg.get_mut(c).expect("cont net");
                *d -= 1;
                if *d == 0 {
                    queue.push(c);
                    resolved += 1;
                }
            }
        }
    }
    if resolved < cont.len() {
        let mut looped: Vec<&str> = indeg
            .iter()
            .filter(|(_, &d)| d > 0)
            .map(|(n, _)| n.as_str())
            .collect();
        looped.sort();
        ds.push(Diagnostic::new(
            Code::CombinationalNetLoop,
            format!(
                "combinational loop through continuous assignment(s): {}",
                looped.join(", ")
            ),
        ));
    }

    ds
}

/// Mark identifier uses in a line fragment, reporting undeclared names.
fn mark_uses(
    segment: &str,
    base_col: usize,
    line: usize,
    nets: &mut HashMap<String, Net>,
    undeclared_reported: &mut HashSet<String>,
    ds: &mut Diagnostics,
) {
    for (tok, col, prev) in tokens(segment) {
        if tok.chars().next().is_some_and(|c| c.is_ascii_digit()) {
            continue; // numeric literal
        }
        if prev == Some('\'') || prev == Some('$') {
            continue; // literal base (8'hFF) or system function
        }
        if KEYWORDS.contains(&tok) {
            continue;
        }
        if let Some(net) = nets.get_mut(tok) {
            net.used = true;
        } else if undeclared_reported.insert(tok.to_string()) {
            ds.push(
                Diagnostic::new(
                    Code::UndeclaredIdentifier,
                    format!("`{tok}` is used but never declared"),
                )
                .with_span(SourceSpan {
                    line,
                    col: base_col + col,
                    len: tok.chars().count(),
                }),
            );
        }
    }
}

fn strip_comment(line: &str) -> &str {
    match line.find("//") {
        Some(i) => &line[..i],
        None => line,
    }
}

fn indent(raw: &str) -> usize {
    raw.len() - raw.trim_start().len()
}

/// Iterate `(identifier, byte offset, previous non-space char)` over a
/// line fragment.
fn tokens(s: &str) -> impl Iterator<Item = (&str, usize, Option<char>)> {
    let bytes = s.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    let mut prev: Option<char> = None;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_alphanumeric() || c == '_' {
            let start = i;
            while i < bytes.len()
                && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
            {
                i += 1;
            }
            out.push((&s[start..i], start, prev));
            prev = Some('x');
        } else {
            if !c.is_whitespace() {
                prev = Some(c);
            }
            i += 1;
        }
    }
    out.into_iter()
}

/// The body of a declaration line (after the `input wire` / `output reg`
/// / `wire` / `reg` prefix and optional `[msb:lsb]`), or `None`.
fn decl_body(trimmed: &str) -> Option<&str> {
    for prefix in [
        "input wire ",
        "output reg ",
        "output wire ",
        "wire ",
        "reg ",
    ] {
        if let Some(rest) = trimmed.strip_prefix(prefix) {
            let rest = rest.trim_start();
            let rest = match rest.strip_prefix('[') {
                Some(r) => r.split_once(']')?.1.trim_start(),
                None => rest,
            };
            return Some(rest);
        }
    }
    None
}

/// Parse a declaration into `(name, Net)`.
fn parse_decl(trimmed: &str, line: usize, base_col: usize) -> Option<(String, Net)> {
    let is_port = trimmed.starts_with("input ") || trimmed.starts_with("output ");
    let width = match trimmed.find('[') {
        Some(i) if trimmed[..i].find('=').is_none() => {
            let inner = &trimmed[i + 1..trimmed.find(']')?];
            let msb: u32 = inner.split(':').next()?.trim().parse().ok()?;
            Some(msb + 1)
        }
        _ => Some(1),
    };
    let body = decl_body(trimmed)?;
    let (name, col) = first_ident(body)?;
    let after = body[col + name.len()..].trim_start();
    let is_mem = after.starts_with('[');
    let cont_drivers = u32::from(after.starts_with('='));
    // `input wire clk,` has no bracket: width defaults to 1 above.
    let name_col = base_col + (trimmed.len() - body.len()) + col + 1;
    Some((
        name.clone(),
        Net {
            width,
            span: SourceSpan {
                line,
                col: name_col,
                len: name.chars().count(),
            },
            is_port,
            is_mem,
            cont_drivers,
            proc_drivers: 0,
            used: false,
            rhs: Vec::new(),
        },
    ))
}

/// The first identifier in a fragment and its byte offset.
fn first_ident(s: &str) -> Option<(String, usize)> {
    tokens(s)
        .find(|(t, _, _)| !t.chars().next().is_some_and(|c| c.is_ascii_digit()))
        .map(|(t, c, _)| (t.to_string(), c))
}

/// `Some(name)` when the fragment is exactly one identifier (a direct
/// net-to-net copy), ignoring whitespace and a trailing `;` or `,`.
fn bare_ident(s: &str) -> Option<&str> {
    let s = s.trim().trim_end_matches([';', ',']).trim_end();
    let ok = !s.is_empty()
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        && !s.starts_with(|c: char| c.is_ascii_digit());
    ok.then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_exported_netlist_is_lint_free() {
        use pipemap_cuts::{CutConfig, CutDb};
        use pipemap_ir::{DfgBuilder, Target};
        use pipemap_netlist::{to_verilog, Cover, Implementation, Schedule};

        let mut b = DfgBuilder::new("t");
        let m = b.add_memory("tbl", 8, vec![1, 2, 3, 4]);
        let a = b.input("a", 2);
        let x = b.input("x", 8);
        let l = b.load(m, a);
        let n1 = b.not(x);
        let n2 = b.xor(n1, l);
        let o = b.output("o", n2);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&target));
        let cover = Cover::new(g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect());
        let mut cycles = vec![0; g.len()];
        cycles[n2.index()] = 1;
        cycles[o.index()] = 1;
        let imp = Implementation {
            schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
            cover,
        };
        let v = to_verilog(&g, &target, &imp, "clean").expect("exports");
        let ds = lint_verilog(&v);
        assert!(ds.is_empty(), "{}\n{v}", ds.render_human("clean.v"));
    }

    #[test]
    fn multiply_driven_net() {
        let src = "module m (\n  input wire clk,\n  output reg [3:0] o\n);\n\
                   wire [3:0] a = 4'h1;\nwire [3:0] a = 4'h2;\n\
                   always @(posedge clk) begin\n  o <= a;\nend\nendmodule\n";
        let ds = lint_verilog(src);
        assert!(ds.has_code(Code::MultiplyDrivenNet), "{:?}", ds);
    }

    #[test]
    fn undeclared_identifier_with_span() {
        let src = "module m (\n  input wire clk,\n  output reg [3:0] o\n);\n\
                   always @(posedge clk) begin\n  o <= ghost;\nend\nendmodule\n";
        let ds = lint_verilog(src);
        let d = ds
            .iter()
            .find(|d| d.code == Code::UndeclaredIdentifier)
            .expect("reported");
        assert!(d.message.contains("ghost"));
        assert_eq!(d.span.expect("has span").line, 6);
    }

    #[test]
    fn unused_net_is_warning() {
        let src = "module m (\n  input wire clk,\n  output reg [3:0] o\n);\n\
                   wire [3:0] dead = 4'h0;\n\
                   always @(posedge clk) begin\n  o <= 4'h1;\nend\nendmodule\n";
        let ds = lint_verilog(src);
        assert!(ds.has_code(Code::UnusedNet));
        assert!(!ds.has_errors(), "{:?}", ds);
    }

    #[test]
    fn width_mismatch_on_direct_copy() {
        let src = "module m (\n  input wire [7:0] x,\n  output reg [3:0] o\n);\n\
                   always @(posedge clk) begin\n  o <= x;\nend\nendmodule\n";
        let ds = lint_verilog(src);
        assert!(ds.has_code(Code::NetWidthMismatch), "{:?}", ds);
    }

    #[test]
    fn begin_end_imbalance_and_missing_endmodule() {
        let src = "module m (\n  input wire clk\n);\nalways @(posedge clk) begin\n";
        let ds = lint_verilog(src);
        assert!(ds.has_code(Code::BeginEndImbalance));
        assert!(ds.has_code(Code::MissingModule));
    }

    #[test]
    fn combinational_loop_detected() {
        let src = "module m (\n  output reg [0:0] o\n);\n\
                   wire [0:0] a = b;\nwire [0:0] b = a;\n\
                   always @(posedge clk) begin\n  o <= a;\nend\nendmodule\n";
        let ds = lint_verilog(src);
        assert!(ds.has_code(Code::CombinationalNetLoop), "{:?}", ds);
    }
}
