//! MILP structural-analysis certificate audit (`P05xx`).
//!
//! `pipemap-milp`'s static analysis ships every conclusion with a
//! certificate: fixings and implications carry replayable propagation
//! chains, clique edges carry a witness row or implication, cover cuts
//! name their witness row and members, and symmetry orbits carry explicit
//! column-transposition witnesses. This pass re-derives all of them
//! **independently** — using only the model's public accessors, never the
//! solver's own propagation code — so a bug in the analysis cannot
//! silently vouch for itself.
//!
//! * [`check_milp_analysis`] audits a [`StructuralAnalysis`]: every
//!   fixing/implication chain is replayed step by step from the model's
//!   pristine bounds (`P0501`, `P0502`), every clique edge witness is
//!   re-checked (`P0503`), and every orbit's transpositions are re-applied
//!   to the full model (`P0505`).
//! * [`check_certified_cuts`] audits a cut pool: clique cuts must match
//!   their embedded (re-verified) clique inequality, cover cuts must
//!   genuinely exceed their witness row's capacity (`P0504`),
//!   implication cuts must match the linear expansion of a sound,
//!   replayable implication (`P0506`), and Gomory cuts must survive a
//!   full independent replay of their derivation certificate —
//!   aggregation multipliers, bound shifts, GMI rounding, and
//!   back-substitution (`P0701`–`P0706`).

use crate::diag::{Code, Diagnostic, Diagnostics};
use pipemap_milp::analysis::{
    implication_expression, CertifiedCut, Clique, Conflict, CutProof, EdgeWitness, GomoryShift,
    Implication, ProbeChain, StructuralAnalysis, Transposition,
};
use pipemap_milp::{Model, RowId, Sense, VarId, VarKind};
use std::collections::{BTreeMap, BTreeSet};

/// Slack allowed when comparing a claimed bound against the re-derived
/// implied bound (matches the solver's recording tolerance).
const STEP_TOL: f64 = 1e-6;
/// Violation margin a contradiction or conflict edge must clear.
const VIOL_TOL: f64 = 1e-6;
/// Bound width below which a column counts as pinned.
const PIN_TOL: f64 = 1e-6;

fn is_binary(model: &Model, j: usize) -> bool {
    let v = VarId::from_index(j);
    model.var_kind(v) == VarKind::Integer && model.bounds(v) == (0.0, 1.0)
}

/// Minimum and maximum activity of a row's terms under working bounds,
/// excluding the columns in `skip`.
fn activity(model: &Model, ri: usize, lb: &[f64], ub: &[f64], skip: &[usize]) -> (f64, f64) {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &(v, a) in model.row_coeffs(RowId::from_index(ri)) {
        let j = v.index();
        if skip.contains(&j) {
            continue;
        }
        if a > 0.0 {
            lo += a * lb[j];
            hi += a * ub[j];
        } else {
            lo += a * ub[j];
            hi += a * lb[j];
        }
    }
    (lo, hi)
}

/// Replay a probe chain from the model's pristine bounds, checking that
/// every step is justified by its recorded row under the working bounds
/// of the chain's prefix. On success returns the final working bounds.
fn replay(model: &Model, chain: &ProbeChain) -> Result<(Vec<f64>, Vec<f64>), String> {
    let n = model.num_vars();
    if chain.col >= n {
        return Err(format!("probed column x{} out of range", chain.col));
    }
    let mut lb: Vec<f64> = (0..n)
        .map(|j| model.bounds(VarId::from_index(j)).0)
        .collect();
    let mut ub: Vec<f64> = (0..n)
        .map(|j| model.bounds(VarId::from_index(j)).1)
        .collect();
    if chain.value < lb[chain.col] - STEP_TOL || chain.value > ub[chain.col] + STEP_TOL {
        return Err(format!(
            "tentative value {} outside x{}'s bounds",
            chain.value, chain.col
        ));
    }
    lb[chain.col] = chain.value;
    ub[chain.col] = chain.value;

    for (si, step) in chain.steps.iter().enumerate() {
        if step.row >= model.num_rows() || step.col >= n {
            return Err(format!("step {si} references row/column out of range"));
        }
        let rid = RowId::from_index(step.row);
        let a = model
            .row_coeffs(rid)
            .iter()
            .find(|&&(v, _)| v.index() == step.col)
            .map(|&(_, a)| a)
            .unwrap_or(0.0);
        if a.abs() < 1e-9 {
            return Err(format!(
                "step {si}: row r{} has no x{} term",
                step.row, step.col
            ));
        }
        let (rlo, rhi) = activity(model, step.row, &lb, &ub, &[step.col]);
        let sense = model.row_sense(rid);
        let rhs = model.row_rhs(rid);
        let le_like = matches!(sense, Sense::Le | Sense::Eq);
        let ge_like = matches!(sense, Sense::Ge | Sense::Eq);

        // Strongest bound on step.col this row can justify.
        let mut implied: Option<f64> = None;
        let mut consider = |b: f64| {
            implied = Some(match implied {
                None => b,
                Some(prev) if step.upper => prev.min(b),
                Some(prev) => prev.max(b),
            });
        };
        if le_like && rlo.is_finite() {
            let b = (rhs - rlo) / a;
            if (a > 0.0) == step.upper {
                consider(b);
            }
        }
        if ge_like && rhi.is_finite() {
            let b = (rhs - rhi) / a;
            if (a < 0.0) == step.upper {
                consider(b);
            }
        }
        let Some(mut implied) = implied else {
            return Err(format!(
                "step {si}: row r{} implies no {} bound on x{}",
                step.row,
                if step.upper { "upper" } else { "lower" },
                step.col
            ));
        };
        if model.var_kind(VarId::from_index(step.col)) == VarKind::Integer && implied.is_finite() {
            implied = if step.upper {
                (implied + 1e-6).floor()
            } else {
                (implied - 1e-6).ceil()
            };
        }
        let sound = if step.upper {
            step.value >= implied - STEP_TOL
        } else {
            step.value <= implied + STEP_TOL
        };
        if !sound {
            return Err(format!(
                "step {si}: claimed {} bound {} on x{} stronger than implied {}",
                if step.upper { "upper" } else { "lower" },
                step.value,
                step.col,
                implied
            ));
        }
        if step.upper {
            ub[step.col] = ub[step.col].min(step.value);
        } else {
            lb[step.col] = lb[step.col].max(step.value);
        }
    }
    Ok((lb, ub))
}

/// Check that the recorded contradiction actually holds under the
/// replayed final bounds.
fn conflict_holds(model: &Model, lb: &[f64], ub: &[f64], conflict: Conflict) -> Result<(), String> {
    match conflict {
        Conflict::RowInfeasible { row } => {
            if row >= model.num_rows() {
                return Err(format!("conflict row r{row} out of range"));
            }
            let (minact, maxact) = activity(model, row, lb, ub, &[]);
            let rid = RowId::from_index(row);
            let rhs = model.row_rhs(rid);
            let infeasible = match model.row_sense(rid) {
                Sense::Le => minact > rhs + VIOL_TOL,
                Sense::Ge => maxact < rhs - VIOL_TOL,
                Sense::Eq => minact > rhs + VIOL_TOL || maxact < rhs - VIOL_TOL,
            };
            if infeasible {
                Ok(())
            } else {
                Err(format!("row r{row} is satisfiable under the final bounds"))
            }
        }
        Conflict::BoundsCrossed { col } => {
            if col >= model.num_vars() {
                return Err(format!("conflict column x{col} out of range"));
            }
            if lb[col] > ub[col] + VIOL_TOL {
                Ok(())
            } else {
                Err(format!("x{col}'s bounds do not cross"))
            }
        }
    }
}

/// Replay a chain that must end in the given contradiction.
fn check_refutation(model: &Model, chain: &ProbeChain, conflict: Conflict) -> Result<(), String> {
    let (lb, ub) = replay(model, chain)?;
    conflict_holds(model, &lb, &ub, conflict)
}

/// Check one clique-edge witness: the pair `(a, b)` (both binary) cannot
/// both be 1.
fn edge_justified(
    model: &Model,
    analysis: &StructuralAnalysis,
    a: usize,
    b: usize,
    witness: EdgeWitness,
) -> Result<(), String> {
    if a >= model.num_vars() || b >= model.num_vars() || a == b {
        return Err(format!("edge endpoints x{a}, x{b} invalid"));
    }
    if !is_binary(model, a) || !is_binary(model, b) {
        return Err(format!("edge endpoints x{a}, x{b} are not both binary"));
    }
    match witness {
        EdgeWitness::Row { row } => {
            if row >= model.num_rows() {
                return Err(format!("witness row r{row} out of range"));
            }
            let rid = RowId::from_index(row);
            let s = if model.row_sense(rid) == Sense::Ge {
                -1.0
            } else {
                1.0
            };
            let coeff = |j: usize| {
                model
                    .row_coeffs(rid)
                    .iter()
                    .find(|&&(v, _)| v.index() == j)
                    .map(|&(_, c)| s * c)
                    .unwrap_or(0.0)
            };
            let (ca, cb) = (coeff(a), coeff(b));
            if ca.abs() < 1e-9 || cb.abs() < 1e-9 {
                return Err(format!("row r{row} misses an endpoint term"));
            }
            // Minimum activity of the remaining terms, in ≤-normalization,
            // under the model's pristine bounds.
            let mut minact = 0.0f64;
            for &(v, c) in model.row_coeffs(rid) {
                let j = v.index();
                if j == a || j == b {
                    continue;
                }
                let c = s * c;
                let (l, u) = model.bounds(v);
                minact += if c > 0.0 { c * l } else { c * u };
            }
            let rhs = s * model.row_rhs(rid);
            if ca + cb + minact > rhs + VIOL_TOL {
                Ok(())
            } else {
                Err(format!(
                    "row r{row} admits x{a} = x{b} = 1 (activity {} ≤ rhs {})",
                    ca + cb + minact,
                    rhs
                ))
            }
        }
        EdgeWitness::Implication { index } => {
            let Some(imp) = analysis.implications.get(index) else {
                return Err(format!("implication witness #{index} out of range"));
            };
            let pair_matches =
                (imp.col == a && imp.target == b) || (imp.col == b && imp.target == a);
            if !pair_matches || !imp.value || imp.target_value.abs() > PIN_TOL {
                return Err(format!(
                    "implication #{index} is not `x = 1 ⇒ y = 0` over the pair"
                ));
            }
            // The chain itself is audited by `check_milp_analysis`; here the
            // shape suffices.
            Ok(())
        }
    }
}

/// Re-verify a clique: members ascending, every pair witnessed, every
/// witness justified. Returns the failures as messages.
fn clique_failures(model: &Model, analysis: &StructuralAnalysis, cl: &Clique) -> Vec<String> {
    let mut errs = Vec::new();
    if cl.members.len() < 2 {
        errs.push("clique has fewer than two members".to_string());
        return errs;
    }
    if cl.members.windows(2).any(|w| w[0] >= w[1]) {
        errs.push("clique members are not strictly ascending".to_string());
    }
    let mut witnessed: BTreeSet<(usize, usize)> = BTreeSet::new();
    for &(a, b, w) in &cl.edges {
        if !cl.members.contains(&a) || !cl.members.contains(&b) {
            errs.push(format!("edge (x{a}, x{b}) endpoints outside the clique"));
            continue;
        }
        if let Err(e) = edge_justified(model, analysis, a, b, w) {
            errs.push(format!("edge (x{a}, x{b}): {e}"));
        }
        witnessed.insert((a.min(b), a.max(b)));
    }
    for (i, &a) in cl.members.iter().enumerate() {
        for &b in &cl.members[i + 1..] {
            if !witnessed.contains(&(a.min(b), a.max(b))) {
                errs.push(format!("pair (x{a}, x{b}) has no witness"));
            }
        }
    }
    errs
}

/// Row content as comparable data: `(sense, rhs bits, sorted coeffs)`
/// with an optional `i ↔ j` column relabeling applied first.
fn row_content(
    model: &Model,
    ri: usize,
    swap: Option<(usize, usize)>,
) -> (u8, u64, Vec<(usize, u64)>) {
    let rid = RowId::from_index(ri);
    let mut coeffs: Vec<(usize, u64)> = model
        .row_coeffs(rid)
        .iter()
        .map(|&(v, a)| {
            let mut j = v.index();
            if let Some((x, y)) = swap {
                if j == x {
                    j = y;
                } else if j == y {
                    j = x;
                }
            }
            (j, a.to_bits())
        })
        .collect();
    coeffs.sort_unstable();
    (
        model.row_sense(rid) as u8,
        model.row_rhs(rid).to_bits(),
        coeffs,
    )
}

/// Check one transposition witness: swapping the two columns and applying
/// the row permutation must map the model onto itself exactly.
fn transposition_valid(model: &Model, t: &Transposition) -> Result<(), String> {
    let (i, j) = t.cols;
    let n = model.num_vars();
    if i >= n || j >= n || i == j {
        return Err(format!("columns x{i}, x{j} invalid"));
    }
    let (vi, vj) = (VarId::from_index(i), VarId::from_index(j));
    if model.bounds(vi) != model.bounds(vj)
        || model.objective_coeff(vi) != model.objective_coeff(vj)
        || model.var_kind(vi) != model.var_kind(vj)
    {
        return Err(format!(
            "columns x{i}, x{j} differ in bounds/objective/kind"
        ));
    }

    // Rows touching either column must be permuted; everything else must
    // be fixed — so the map's domain and range must both equal that set.
    let mut touched: BTreeSet<usize> = BTreeSet::new();
    for ri in 0..model.num_rows() {
        if model
            .row_coeffs(RowId::from_index(ri))
            .iter()
            .any(|&(v, _)| v.index() == i || v.index() == j)
        {
            touched.insert(ri);
        }
    }
    let froms: BTreeSet<usize> = t.row_map.iter().map(|&(f, _)| f).collect();
    let tos: BTreeSet<usize> = t.row_map.iter().map(|&(_, d)| d).collect();
    if froms.len() != t.row_map.len() || tos.len() != t.row_map.len() {
        return Err("row map is not a bijection".to_string());
    }
    if !touched.iter().all(|r| froms.contains(r)) || !froms.iter().all(|r| touched.contains(r)) {
        return Err("row map domain differs from the touched-row set".to_string());
    }
    if froms != tos {
        return Err("row map range differs from its domain".to_string());
    }
    for &(from, to) in &t.row_map {
        if from >= model.num_rows() || to >= model.num_rows() {
            return Err(format!("row map entry r{from} → r{to} out of range"));
        }
        if row_content(model, from, Some((i, j))) != row_content(model, to, None) {
            return Err(format!(
                "row r{from} relabeled by x{i} ↔ x{j} does not equal row r{to}"
            ));
        }
    }
    Ok(())
}

/// Audit every certificate of a [`StructuralAnalysis`] against its model.
///
/// Independently re-derive one implication: its chain must probe the
/// antecedent, both endpoints must be binary columns, and replaying the
/// chain from pristine bounds must pin the target to the claimed value.
fn implication_sound(model: &Model, imp: &Implication) -> Result<(), String> {
    if imp.chain.col != imp.col || (imp.chain.value - (imp.value as u8 as f64)).abs() > PIN_TOL {
        return Err("chain does not probe the antecedent".to_string());
    }
    if imp.col >= model.num_vars() || !is_binary(model, imp.col) {
        return Err("antecedent is not a binary column".to_string());
    }
    if imp.target >= model.num_vars() || !is_binary(model, imp.target) {
        return Err("target is not a binary column".to_string());
    }
    let (lb, ub) = replay(model, &imp.chain)?;
    if lb[imp.target] < imp.target_value - PIN_TOL || ub[imp.target] > imp.target_value + PIN_TOL {
        return Err(format!(
            "final bounds [{}, {}] do not pin the target",
            lb[imp.target], ub[imp.target]
        ));
    }
    Ok(())
}

/// Emits `P0501` (fixing or infeasibility chain fails replay), `P0502`
/// (implication chain unsound), `P0503` (clique edge unjustified), and
/// `P0505` (automorphism witness invalid). An empty, error-free result
/// means every fixing, implication, clique, and orbit was independently
/// re-derived.
pub fn check_milp_analysis(model: &Model, analysis: &StructuralAnalysis) -> Diagnostics {
    let mut diags = Diagnostics::new();

    for (fi, f) in analysis.fixings.iter().enumerate() {
        let mut fail = |why: String| {
            diags.push(Diagnostic::new(
                Code::FixingUnjustified,
                format!("fixing #{fi} (x{} = {}): {why}", f.col, f.value),
            ));
        };
        if f.chain.col != f.col || (f.chain.value - (1.0 - f.value)).abs() > PIN_TOL {
            fail("chain does not probe the opposite polarity".to_string());
            continue;
        }
        if !is_binary(model, f.col) {
            fail("fixed column is not binary".to_string());
            continue;
        }
        if let Err(e) = check_refutation(model, &f.chain, f.conflict) {
            fail(e);
        }
    }

    if let Some(proof) = &analysis.infeasible {
        for (name, (chain, conflict), want) in [("down", &proof.down, 0.0), ("up", &proof.up, 1.0)]
        {
            if chain.col != proof.col || (chain.value - want).abs() > PIN_TOL {
                diags.push(Diagnostic::new(
                    Code::FixingUnjustified,
                    format!(
                        "infeasibility proof: {name} chain does not probe x{} = {want}",
                        proof.col
                    ),
                ));
            } else if let Err(e) = check_refutation(model, chain, *conflict) {
                diags.push(Diagnostic::new(
                    Code::FixingUnjustified,
                    format!("infeasibility proof ({name} chain of x{}): {e}", proof.col),
                ));
            }
        }
    }

    for (ii, imp) in analysis.implications.iter().enumerate() {
        if let Err(why) = implication_sound(model, imp) {
            diags.push(Diagnostic::new(
                Code::ImplicationUnsound,
                format!(
                    "implication #{ii} (x{} = {} ⇒ x{} = {}): {why}",
                    imp.col, imp.value as u8, imp.target, imp.target_value
                ),
            ));
        }
    }

    for (ci, cl) in analysis.cliques.iter().enumerate() {
        for why in clique_failures(model, analysis, cl) {
            diags.push(Diagnostic::new(
                Code::CliqueEdgeUnjustified,
                format!("clique #{ci}: {why}"),
            ));
        }
    }

    for (oi, orbit) in analysis.orbits.iter().enumerate() {
        let mut fail = |why: String| {
            diags.push(Diagnostic::new(
                Code::SymmetryWitnessInvalid,
                format!("orbit #{oi}: {why}"),
            ));
        };
        if orbit.members.len() < 2 {
            fail("orbit has fewer than two members".to_string());
            continue;
        }
        // Union-find over members: the witness pairs must connect them all.
        let mut parent: BTreeMap<usize, usize> = orbit.members.iter().map(|&m| (m, m)).collect();
        fn find(parent: &mut BTreeMap<usize, usize>, mut x: usize) -> usize {
            while parent[&x] != x {
                let up = parent[&parent[&x]];
                parent.insert(x, up);
                x = up;
            }
            x
        }
        let mut ok = true;
        for (wi, t) in orbit.witnesses.iter().enumerate() {
            let (a, b) = t.cols;
            if !parent.contains_key(&a) || !parent.contains_key(&b) {
                fail(format!("witness #{wi} swaps columns outside the orbit"));
                ok = false;
                continue;
            }
            if let Err(e) = transposition_valid(model, t) {
                fail(format!("witness #{wi} (x{a} ↔ x{b}): {e}"));
                ok = false;
                continue;
            }
            let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
            parent.insert(ra, rb);
        }
        if ok {
            let root = find(&mut parent, orbit.members[0]);
            let members = orbit.members.clone();
            if members.iter().any(|&m| find(&mut parent, m) != root) {
                fail("witness pairs do not connect all members".to_string());
            }
        }
    }

    diags
}

/// Is `v` integral to the Gomory derivation's tolerance?
fn gmi_is_int(v: f64) -> bool {
    (v - v.round()).abs() <= 1e-9
}

/// Is a row's slack integral at every integer-feasible point? Requires
/// an integral rhs, integral coefficients, and integer-kind variables —
/// re-derived here from the model's public accessors, independent of
/// the separator's own classification.
fn gmi_row_integral(model: &Model, ri: usize) -> bool {
    let rid = RowId::from_index(ri);
    gmi_is_int(model.row_rhs(rid))
        && model
            .row_coeffs(rid)
            .iter()
            .all(|&(v, c)| gmi_is_int(c) && model.var_kind(v) == VarKind::Integer)
}

/// Coefficient threshold below which an aggregated column may go
/// unshifted without invalidating a Gomory certificate.
const GMI_ALPHA_TOL: f64 = 1e-7;
/// Relative tolerance when comparing the re-derived cut against the
/// shipped one (the separator's own safety margin is `1e-9`-relative).
const GMI_CMP_TOL: f64 = 1e-6;

/// Independently replay one Gomory certificate from the model alone.
///
/// The certificate supplies only the aggregation multipliers and, per
/// aggregated column, *which bound side* it was shifted onto and whether
/// integer rounding was claimed. Everything else — bound values
/// (model bounds with the certified fixings baked in, exactly as the cut
/// loop applies them), slack bounds, integrality, the GMI coefficients,
/// and the back-substituted inequality — is re-derived here. Returns the
/// first failure as `(code, message)`.
fn audit_gomory(
    model: &Model,
    analysis: &StructuralAnalysis,
    cut: &CertifiedCut,
    multipliers: &[(usize, f64)],
    shifts: &[GomoryShift],
) -> Result<(), (Code, String)> {
    let n = model.num_vars();
    let m = model.num_rows();

    // P0701: multiplier list shape.
    if multipliers.is_empty() {
        return Err((
            Code::GomoryMultipliersMalformed,
            "multiplier list is empty".to_string(),
        ));
    }
    if multipliers.windows(2).any(|w| w[0].0 >= w[1].0) {
        return Err((
            Code::GomoryMultipliersMalformed,
            "multiplier rows are not strictly ascending".to_string(),
        ));
    }
    for &(ri, v) in multipliers {
        if ri >= m {
            return Err((
                Code::GomoryMultipliersMalformed,
                format!("multiplier row r{ri} out of range"),
            ));
        }
        if !v.is_finite() {
            return Err((
                Code::GomoryMultipliersMalformed,
                format!("multiplier of r{ri} is not finite"),
            ));
        }
    }

    // Effective structural bounds: pristine model bounds with the
    // certified fixings applied in order, mirroring the cut loop. The
    // fixings themselves are audited separately by `check_milp_analysis`.
    let mut lb: Vec<f64> = (0..n)
        .map(|j| model.bounds(VarId::from_index(j)).0)
        .collect();
    let mut ub: Vec<f64> = (0..n)
        .map(|j| model.bounds(VarId::from_index(j)).1)
        .collect();
    for f in &analysis.fixings {
        if f.col < n {
            lb[f.col] = lb[f.col].max(f.value);
            ub[f.col] = ub[f.col].min(f.value);
        }
    }

    // Aggregated row over the extended columns (n structural + m
    // slacks): α = ρᵀ[A | I], β₀ = ρᵀb. Scattering multipliers in
    // ascending-row order accumulates each structural column's terms in
    // the same order the separator summed them.
    let mut alpha = vec![0.0f64; n + m];
    let mut beta = 0.0f64;
    for &(ri, v) in multipliers {
        let rid = RowId::from_index(ri);
        for &(var, a) in model.row_coeffs(rid) {
            alpha[var.index()] += v * a;
        }
        alpha[n + ri] = v;
        beta += v * model.row_rhs(rid);
    }
    if !beta.is_finite() {
        return Err((
            Code::GomoryMultipliersMalformed,
            "aggregated right-hand side is not finite".to_string(),
        ));
    }

    // P0702: shift list shape and completeness — every aggregated
    // column with a significant coefficient must carry a shift.
    if shifts.windows(2).any(|w| w[0].index >= w[1].index) {
        return Err((
            Code::GomoryShiftsMalformed,
            "shift indices are not strictly ascending".to_string(),
        ));
    }
    if let Some(s) = shifts.iter().find(|s| s.index >= n + m) {
        return Err((
            Code::GomoryShiftsMalformed,
            format!("shift index {} out of range", s.index),
        ));
    }
    let mut shifted = vec![false; n + m];
    for s in shifts {
        shifted[s.index] = true;
    }
    for (j, &a) in alpha.iter().enumerate() {
        if a.abs() > GMI_ALPHA_TOL && !shifted[j] {
            return Err((
                Code::GomoryShiftsMalformed,
                format!("aggregated column {j} (coefficient {a}) has no shift"),
            ));
        }
    }

    // Replay the shifts: move every listed column onto its recorded
    // bound side, re-deriving the bound value and integrality claim.
    let mut abar: Vec<f64> = Vec::with_capacity(shifts.len());
    for s in shifts {
        let a = alpha[s.index];
        let (lo, hi) = if s.index < n {
            (lb[s.index], ub[s.index])
        } else {
            // Slack bounds follow the row sense: `a·x + s = b` with
            // s ≥ 0 for ≤-rows, s ≤ 0 for ≥-rows, s = 0 for equalities.
            match model.row_sense(RowId::from_index(s.index - n)) {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            }
        };
        let bound = if s.upper { hi } else { lo };
        if !bound.is_finite() {
            return Err((
                Code::GomoryBoundUnusable,
                format!(
                    "shift of column {} onto its {} bound, which is not finite",
                    s.index,
                    if s.upper { "upper" } else { "lower" }
                ),
            ));
        }
        if s.integer {
            let provable = if s.index < n {
                model.var_kind(VarId::from_index(s.index)) == VarKind::Integer && gmi_is_int(bound)
            } else {
                gmi_row_integral(model, s.index - n)
            };
            if !provable {
                return Err((
                    Code::GomoryIntegralityUnproven,
                    format!("integer treatment of column {} is not provable", s.index),
                ));
            }
        }
        beta -= a * bound;
        abar.push(if s.upper { -a } else { a });
    }

    // P0705: the recombined fractional part must be usable.
    let f0 = beta - beta.floor();
    if !f0.is_finite() || !(1e-6..=1.0 - 1e-6).contains(&f0) {
        return Err((
            Code::GomoryFractionalityDegenerate,
            format!("recombined fractional part f0 = {f0} is degenerate"),
        ));
    }
    let one_minus = 1.0 - f0;

    // GMI rounding in the shifted space, then back-substitution to a
    // structural `≥` inequality — step for step the separator's own
    // derivation, but from independently re-derived data.
    let gamma: Vec<f64> = abar
        .iter()
        .zip(shifts)
        .map(|(&ab, s)| {
            if s.integer {
                let fj = ab - ab.floor();
                if fj <= f0 {
                    fj
                } else {
                    f0 * (1.0 - fj) / one_minus
                }
            } else if ab >= 0.0 {
                ab
            } else {
                -f0 * ab / one_minus
            }
        })
        .collect();
    let mut cx = vec![0.0f64; n];
    let mut r = f0;
    for (s, &g) in shifts.iter().zip(&gamma) {
        if g == 0.0 {
            continue;
        }
        if s.index < n {
            let bound = if s.upper { ub[s.index] } else { lb[s.index] };
            if s.upper {
                cx[s.index] -= g;
                r -= g * bound;
            } else {
                cx[s.index] += g;
                r += g * bound;
            }
        } else {
            let rid = RowId::from_index(s.index - n);
            let sign = if s.upper { 1.0 } else { -1.0 };
            for &(v, c) in model.row_coeffs(rid) {
                cx[v.index()] += sign * g * c;
            }
            r += sign * g * model.row_rhs(rid);
        }
    }

    // P0706: the shipped `≤` cut must match the negated re-derivation.
    let mut dense = vec![0.0f64; n];
    for &(j, c) in &cut.coeffs {
        if j >= n {
            return Err((
                Code::GomoryCutMismatch,
                format!("shipped coefficient column {j} out of range"),
            ));
        }
        dense[j] += c;
    }
    for (j, &c) in cx.iter().enumerate() {
        let want = -c;
        if (dense[j] - want).abs() > GMI_CMP_TOL * (1.0 + want.abs()) {
            return Err((
                Code::GomoryCutMismatch,
                format!(
                    "coefficient of x{j} is {} but re-derivation gives {want}",
                    dense[j]
                ),
            ));
        }
    }
    let want_rhs = -r;
    if (cut.rhs - want_rhs).abs() > GMI_CMP_TOL * (1.0 + want_rhs.abs()) {
        return Err((
            Code::GomoryCutMismatch,
            format!(
                "right-hand side is {} but re-derivation gives {want_rhs}",
                cut.rhs
            ),
        ));
    }
    Ok(())
}

/// Audit a certified cut pool against its model.
///
/// Clique cuts must equal their embedded clique's inequality (the clique
/// itself is re-verified; failures emit `P0503`), cover cuts must name
/// members whose literals genuinely exceed the witness row's capacity
/// with the cut matching the literal expansion (`P0504`), implication
/// cuts must expand a sound, independently replayed implication
/// (`P0506`), and Gomory cuts must survive the full certificate replay
/// of the Gomory audit (`P0701`–`P0706`).
pub fn check_certified_cuts(
    model: &Model,
    analysis: &StructuralAnalysis,
    cuts: &[CertifiedCut],
) -> Diagnostics {
    let mut diags = Diagnostics::new();
    for (ki, cut) in cuts.iter().enumerate() {
        match &cut.proof {
            CutProof::Clique { clique } => {
                for why in clique_failures(model, analysis, clique) {
                    diags.push(Diagnostic::new(
                        Code::CliqueEdgeUnjustified,
                        format!("cut #{ki}: {why}"),
                    ));
                }
                let want: Vec<(usize, f64)> = clique.members.iter().map(|&j| (j, 1.0)).collect();
                if cut.coeffs != want || cut.rhs != 1.0 {
                    diags.push(Diagnostic::new(
                        Code::CliqueEdgeUnjustified,
                        format!("cut #{ki}: coefficients differ from the clique inequality"),
                    ));
                }
            }
            CutProof::Cover { row, members } => {
                let mut fail = |why: String| {
                    diags.push(Diagnostic::new(
                        Code::CoverNotViolated,
                        format!("cut #{ki} (cover on r{row}): {why}"),
                    ));
                };
                if *row >= model.num_rows() {
                    fail("witness row out of range".to_string());
                    continue;
                }
                if members.is_empty() || members.windows(2).any(|w| w[0] >= w[1]) {
                    fail("members are not strictly ascending".to_string());
                    continue;
                }
                let rid = RowId::from_index(*row);
                let s = if model.row_sense(rid) == Sense::Ge {
                    -1.0
                } else {
                    1.0
                };
                let rhs = s * model.row_rhs(rid);
                // Re-derive: minimum activity of the whole row plus the
                // gain from forcing every member literal to 1 must exceed
                // the capacity.
                let mut base = 0.0f64;
                let mut gain = 0.0f64;
                let mut expansion: Vec<(usize, f64)> = Vec::new();
                let mut negs = 0usize;
                let mut bad = None;
                for &j in members {
                    if j >= model.num_vars() || !is_binary(model, j) {
                        bad = Some(format!("member x{j} is not a binary column"));
                        break;
                    }
                    let c = model
                        .row_coeffs(rid)
                        .iter()
                        .find(|&&(v, _)| v.index() == j)
                        .map(|&(_, a)| s * a)
                        .unwrap_or(0.0);
                    if c.abs() < 1e-9 {
                        bad = Some(format!("member x{j} has no term in the witness row"));
                        break;
                    }
                    gain += c.abs();
                    if c > 0.0 {
                        expansion.push((j, 1.0));
                    } else {
                        expansion.push((j, -1.0));
                        negs += 1;
                    }
                }
                if let Some(why) = bad {
                    fail(why);
                    continue;
                }
                for &(v, a) in model.row_coeffs(rid) {
                    let c = s * a;
                    let (l, u) = model.bounds(v);
                    base += if c > 0.0 { c * l } else { c * u };
                }
                if !base.is_finite() {
                    fail("witness row's minimum activity is unbounded".to_string());
                    continue;
                }
                if base + gain <= rhs + VIOL_TOL {
                    fail(format!(
                        "members at 1 reach activity {} ≤ rhs {}",
                        base + gain,
                        rhs
                    ));
                    continue;
                }
                let want_rhs = members.len() as f64 - 1.0 - negs as f64;
                if cut.coeffs != expansion || cut.rhs != want_rhs {
                    fail("cut differs from the members' literal expansion".to_string());
                }
            }
            CutProof::Implication { implication } => {
                let mut fail = |why: String| {
                    diags.push(Diagnostic::new(
                        Code::ImplicationCutMismatch,
                        format!(
                            "cut #{ki} (implication x{} = {} ⇒ x{} = {}): {why}",
                            implication.col,
                            implication.value as u8,
                            implication.target,
                            implication.target_value
                        ),
                    ));
                };
                if let Err(e) = implication_sound(model, implication) {
                    fail(e);
                    continue;
                }
                let (coeffs, rhs) = implication_expression(implication);
                if cut.coeffs != coeffs || cut.rhs != rhs {
                    fail("cut differs from the implication's linear expansion".to_string());
                }
            }
            CutProof::Gomory {
                multipliers,
                shifts,
            } => {
                if let Err((code, why)) = audit_gomory(model, analysis, cut, multipliers, shifts) {
                    diags.push(Diagnostic::new(code, format!("cut #{ki} (gomory): {why}")));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_milp::analysis::{
        analyze, root_cut_loop, AnalysisConfig, CutLoopConfig, Fixing, Implication, Orbit, PropStep,
    };
    use pipemap_milp::LinExpr;

    /// A set-packing model with symmetric binaries and a conflicting pair.
    fn packing_model() -> Model {
        let mut m = Model::new("packing");
        let x: Vec<VarId> = (0..4).map(|_| m.add_binary(-1.0)).collect();
        // x0 + x1 + x2 ≤ 1 (clique), x2 + x3 ≤ 1.
        m.add_constraint(
            LinExpr::term(1.0, x[0]) + LinExpr::term(1.0, x[1]) + LinExpr::term(1.0, x[2]),
            Sense::Le,
            1.0,
        );
        m.add_constraint(
            LinExpr::term(1.0, x[2]) + LinExpr::term(1.0, x[3]),
            Sense::Le,
            1.0,
        );
        m
    }

    #[test]
    fn genuine_analysis_is_clean() {
        let m = packing_model();
        let sa = analyze(&m, &AnalysisConfig::default());
        let diags = check_milp_analysis(&m, &sa);
        assert!(diags.is_empty(), "{}", diags.render_human("packing"));
        let out = root_cut_loop(&m, &sa, &CutLoopConfig::default(), None);
        let diags = check_certified_cuts(&m, &sa, &out.cuts);
        assert!(diags.is_empty(), "{}", diags.render_human("packing"));
    }

    #[test]
    fn genuine_fixing_replays() {
        // x0 = 1 forced: x0 ≥ 1 − x1 and x1 = 0 via x1 ≤ 0.
        let mut m = Model::new("forced");
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        m.add_constraint(LinExpr::term(1.0, b), Sense::Le, 0.0);
        m.add_constraint(
            LinExpr::term(1.0, a) + LinExpr::term(1.0, b),
            Sense::Ge,
            1.0,
        );
        let sa = analyze(&m, &AnalysisConfig::default());
        assert!(!sa.fixings.is_empty());
        let diags = check_milp_analysis(&m, &sa);
        assert!(diags.is_empty(), "{}", diags.render_human("forced"));
    }

    #[test]
    fn tampered_fixing_fires_p0501() {
        let m = packing_model();
        let mut sa = analyze(&m, &AnalysisConfig::default());
        // Claim x3 = 1 with a chain that derives nothing.
        sa.fixings.push(Fixing {
            col: 3,
            value: 1.0,
            chain: ProbeChain {
                col: 3,
                value: 0.0,
                steps: vec![],
            },
            conflict: Conflict::RowInfeasible { row: 0 },
        });
        let diags = check_milp_analysis(&m, &sa);
        assert!(diags.has_code(Code::FixingUnjustified));
    }

    #[test]
    fn tampered_implication_fires_p0502() {
        let m = packing_model();
        let mut sa = analyze(&m, &AnalysisConfig::default());
        sa.implications.push(Implication {
            col: 0,
            value: true,
            target: 3,
            target_value: 0.0,
            chain: ProbeChain {
                col: 0,
                value: 1.0,
                steps: vec![],
            },
        });
        let diags = check_milp_analysis(&m, &sa);
        assert!(diags.has_code(Code::ImplicationUnsound));
    }

    #[test]
    fn overstated_step_fires_p0501() {
        let mut m = Model::new("weak");
        let a = m.add_binary(1.0);
        let b = m.add_binary(1.0);
        // x0 + x1 ≤ 2 implies nothing; a step claiming x1 ≤ 0 from it is
        // stronger than the row justifies.
        let r = m.add_constraint(
            LinExpr::term(1.0, a) + LinExpr::term(1.0, b),
            Sense::Le,
            2.0,
        );
        let mut sa = StructuralAnalysis::default();
        sa.fixings.push(Fixing {
            col: 1,
            value: 0.0,
            chain: ProbeChain {
                col: 1,
                value: 1.0,
                steps: vec![PropStep {
                    row: r.index(),
                    col: 0,
                    upper: true,
                    value: 0.0,
                }],
            },
            conflict: Conflict::BoundsCrossed { col: 0 },
        });
        let diags = check_milp_analysis(&m, &sa);
        assert!(diags.has_code(Code::FixingUnjustified));
    }

    #[test]
    fn tampered_clique_fires_p0503() {
        let m = packing_model();
        let mut sa = analyze(&m, &AnalysisConfig::default());
        // x0 and x3 never conflict; row 1 does not cover the pair.
        sa.cliques.push(Clique {
            members: vec![0, 3],
            edges: vec![(0, 3, EdgeWitness::Row { row: 1 })],
        });
        let diags = check_milp_analysis(&m, &sa);
        assert!(diags.has_code(Code::CliqueEdgeUnjustified));
    }

    #[test]
    fn bogus_cover_fires_p0504() {
        let m = packing_model();
        let sa = analyze(&m, &AnalysisConfig::default());
        // {x2} alone cannot exceed x2 + x3 ≤ 1.
        let cut = CertifiedCut {
            coeffs: vec![(2, 1.0)],
            rhs: 0.0,
            proof: CutProof::Cover {
                row: 1,
                members: vec![2],
            },
        };
        let diags = check_certified_cuts(&m, &sa, &[cut]);
        assert!(diags.has_code(Code::CoverNotViolated));
    }

    #[test]
    fn implication_cuts_audit_genuine_and_tampered_p0506() {
        let m = packing_model();
        let sa = analyze(&m, &AnalysisConfig::default());
        let imp = sa
            .implications
            .iter()
            .find(|i| i.value)
            .expect("probing x=1 in a packing row pins a neighbor");
        let (coeffs, rhs) = implication_expression(imp);
        let genuine = CertifiedCut {
            coeffs: coeffs.clone(),
            rhs,
            proof: CutProof::Implication {
                implication: imp.clone(),
            },
        };
        assert!(!check_certified_cuts(&m, &sa, &[genuine]).has_errors());

        // Claim the opposite consequent: the replay no longer pins it.
        let mut lied = imp.clone();
        lied.target_value = 1.0 - lied.target_value;
        let (coeffs, rhs) = implication_expression(&lied);
        let cut = CertifiedCut {
            coeffs,
            rhs,
            proof: CutProof::Implication { implication: lied },
        };
        let diags = check_certified_cuts(&m, &sa, &[cut]);
        assert!(diags.has_code(Code::ImplicationCutMismatch));
    }

    /// `min −x₂ s.t. 3x₁ + 2x₂ ≤ 6, −3x₁ + 2x₂ ≤ 0` over integers in
    /// [0, 3]: the LP optimum (1, 1.5) is fractional, so the cut loop
    /// ships Gomory cuts.
    fn gomory_model() -> Model {
        let mut m = Model::new("gmi");
        let x1 = m.add_integer(0.0, 3.0, 0.0);
        let x2 = m.add_integer(0.0, 3.0, -1.0);
        m.add_constraint(
            LinExpr::term(3.0, x1) + LinExpr::term(2.0, x2),
            Sense::Le,
            6.0,
        );
        m.add_constraint(
            LinExpr::term(-3.0, x1) + LinExpr::term(2.0, x2),
            Sense::Le,
            0.0,
        );
        m
    }

    fn gomory_cuts(m: &Model) -> (StructuralAnalysis, Vec<CertifiedCut>, usize) {
        let sa = analyze(m, &AnalysisConfig::default());
        let out = root_cut_loop(
            m,
            &sa,
            &CutLoopConfig {
                gomory: true,
                ..CutLoopConfig::default()
            },
            None,
        );
        let gi = out
            .cuts
            .iter()
            .position(|c| matches!(c.proof, CutProof::Gomory { .. }))
            .expect("cut loop ships a gomory cut");
        (sa, out.cuts, gi)
    }

    #[test]
    fn genuine_gomory_certificates_audit_clean() {
        let m = gomory_model();
        let (sa, cuts, _) = gomory_cuts(&m);
        let diags = check_certified_cuts(&m, &sa, &cuts);
        assert!(diags.is_empty(), "{}", diags.render_human("gomory"));
    }

    #[test]
    fn tampered_gomory_multipliers_fire_p0701() {
        let m = gomory_model();
        let (sa, mut cuts, gi) = gomory_cuts(&m);
        if let CutProof::Gomory { multipliers, .. } = &mut cuts[gi].proof {
            multipliers.push((1000, 0.5));
        }
        let diags = check_certified_cuts(&m, &sa, &cuts);
        assert!(diags.has_code(Code::GomoryMultipliersMalformed));
    }

    #[test]
    fn missing_gomory_shift_fires_p0702() {
        let m = gomory_model();
        let (sa, mut cuts, gi) = gomory_cuts(&m);
        if let CutProof::Gomory { shifts, .. } = &mut cuts[gi].proof {
            shifts.clear();
        }
        let diags = check_certified_cuts(&m, &sa, &cuts);
        assert!(diags.has_code(Code::GomoryShiftsMalformed));
    }

    #[test]
    fn tampered_gomory_rhs_fires_p0706() {
        let m = gomory_model();
        let (sa, mut cuts, gi) = gomory_cuts(&m);
        cuts[gi].rhs += 0.5;
        let diags = check_certified_cuts(&m, &sa, &cuts);
        assert!(diags.has_code(Code::GomoryCutMismatch));
    }

    #[test]
    fn tampered_gomory_shift_side_fires_p0703() {
        let m = gomory_model();
        let n = m.num_vars();
        let (sa, mut cuts, gi) = gomory_cuts(&m);
        if let CutProof::Gomory { shifts, .. } = &mut cuts[gi].proof {
            // A `≤`-row slack lives in [0, ∞): pointing its shift at the
            // upper bound references +∞, which no replay can use.
            let s = shifts
                .iter_mut()
                .find(|s| s.index >= n)
                .expect("an aggregated slack is shifted");
            assert!(!s.upper);
            s.upper = true;
        }
        let diags = check_certified_cuts(&m, &sa, &cuts);
        assert!(
            diags.has_code(Code::GomoryBoundUnusable),
            "{}",
            diags.render_human("gomory")
        );
    }

    #[test]
    fn bogus_gomory_integer_claim_fires_p0704() {
        // One integer column, one continuous: the shipped certificate
        // must mark the continuous column's shift non-integer, and
        // claiming otherwise is caught.
        let mut m = Model::new("mixed");
        let x = m.add_integer(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -1.0);
        m.add_constraint(
            LinExpr::term(2.0, x) + LinExpr::term(1.0, y),
            Sense::Le,
            7.0,
        );
        let (sa, mut cuts, gi) = gomory_cuts(&m);
        assert!(check_certified_cuts(&m, &sa, &cuts).is_empty());
        if let CutProof::Gomory { shifts, .. } = &mut cuts[gi].proof {
            let s = shifts
                .iter_mut()
                .find(|s| s.index == y.index())
                .expect("continuous column is shifted");
            assert!(!s.integer);
            s.integer = true;
        }
        let diags = check_certified_cuts(&m, &sa, &cuts);
        assert!(diags.has_code(Code::GomoryIntegralityUnproven));
        let _ = x;
    }

    #[test]
    fn genuine_orbit_verifies_and_tampered_fires_p0505() {
        let m = packing_model();
        let sa = analyze(&m, &AnalysisConfig::default());
        assert!(
            sa.orbits.iter().any(|o| o.members.contains(&0)),
            "x0/x1 should form an orbit"
        );
        assert!(check_milp_analysis(&m, &sa).is_empty());

        // x0 and x3 are not interchangeable: x3's rows differ.
        let mut sa2 = sa.clone();
        sa2.orbits.push(Orbit {
            members: vec![0, 3],
            witnesses: vec![Transposition {
                cols: (0, 3),
                row_map: vec![(0, 0), (1, 1)],
            }],
        });
        let diags = check_milp_analysis(&m, &sa2);
        assert!(diags.has_code(Code::SymmetryWitnessInvalid));
    }
}
