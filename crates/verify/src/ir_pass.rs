//! Pass 1: IR well-formedness.
//!
//! A diagnostics-collecting superset of [`Dfg::validate`]: where `validate`
//! stops at the first violated invariant, this pass is **total** — it walks
//! the whole graph (including graphs built with [`Dfg::from_raw`] that
//! `validate` would reject), never panics, and reports *every* violation
//! plus a set of lints `validate` does not check at all (dead nodes, unused
//! inputs, missing outputs, non-power-of-two memories).

use std::collections::VecDeque;

use pipemap_ir::{parse_dfg_spanned_lenient, Dfg, NodeId, NodeSpans, Op};

use crate::diag::{Code, Diagnostic, Diagnostics};

/// Parse a `.pmir` document and lint the result.
///
/// Parsing is **lenient** ([`parse_dfg_spanned_lenient`]): structural
/// violations — dangling references, width nonsense, combinational
/// cycles — survive into the graph so [`lint_dfg`] can report each with
/// its own code and source span, instead of collapsing into one parse
/// error. Only genuine syntax errors yield a single
/// [`Code::ParseError`] with the graph `None`.
pub fn lint_text(src: &str) -> (Diagnostics, Option<Dfg>) {
    match parse_dfg_spanned_lenient(src) {
        Ok((dfg, spans)) => {
            let diags = lint_dfg(&dfg, Some(&spans));
            (diags, Some(dfg))
        }
        Err(e) => {
            let mut ds = Diagnostics::new();
            ds.push(Diagnostic::new(Code::ParseError, e.to_string()));
            (ds, None)
        }
    }
}

/// Lint a graph, reporting every violated invariant.
///
/// Safe to call on arbitrary graphs, including ones [`Dfg::validate`]
/// rejects: dangling ports, width nonsense, and combinational cycles are
/// reported as diagnostics, never panics. When `spans` is provided (from
/// [`pipemap_ir::parse_dfg_spanned`]), findings carry source locations.
pub fn lint_dfg(dfg: &Dfg, spans: Option<&NodeSpans>) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let n = dfg.len();
    let mut at = |d: Diagnostic, id: NodeId| {
        let d = d.with_node(id);
        match spans.and_then(|s| s.get(id)) {
            Some(sp) => ds.push(d.with_span(sp)),
            None => ds.push(d),
        }
    };

    for (id, node) in dfg.iter() {
        let label = dfg.label(id);
        if node.width == 0 || node.width > 64 {
            at(
                Diagnostic::new(
                    Code::BadWidth,
                    format!("`{label}` has width {}, outside 1..=64", node.width),
                ),
                id,
            );
        }
        if node.ins.len() != node.op.arity() {
            at(
                Diagnostic::new(
                    Code::BadArity,
                    format!(
                        "`{label}` ({}) has {} operand(s), expected {}",
                        node.op,
                        node.ins.len(),
                        node.op.arity()
                    ),
                ),
                id,
            );
        }
        let mut ports_ok = true;
        for (k, p) in node.ins.iter().enumerate() {
            if p.node.index() >= n {
                at(
                    Diagnostic::new(
                        Code::DanglingPort,
                        format!(
                            "operand {k} of `{label}` references {} but the graph has {n} node(s)",
                            p.node
                        ),
                    ),
                    id,
                );
                ports_ok = false;
            } else if dfg.node(p.node).op == Op::Output {
                at(
                    Diagnostic::new(
                        Code::OutputHasConsumer,
                        format!(
                            "`{label}` consumes output marker `{}` as data",
                            dfg.label(p.node)
                        ),
                    ),
                    id,
                );
            }
        }
        // Width rules only make sense once arity and ports are sane.
        if ports_ok && node.ins.len() == node.op.arity() {
            let w = |k: usize| dfg.node(node.ins[k].node).width;
            let bad = match node.op {
                Op::And | Op::Or | Op::Xor | Op::Add | Op::Sub => {
                    w(0) != node.width || w(1) != node.width
                }
                Op::Not | Op::Shl(_) | Op::Shr(_) => w(0) != node.width,
                Op::Mux => w(0) != 1 || w(1) != node.width || w(2) != node.width,
                Op::Cmp(_) => node.width != 1 || w(0) != w(1),
                Op::Slice { lo } => lo + node.width > w(0),
                Op::Concat => w(0) + w(1) != node.width,
                Op::Output => w(0) != node.width,
                Op::Load(_) | Op::Mul | Op::Input | Op::Const(_) => false,
            };
            if bad {
                let ws: Vec<String> = (0..node.ins.len()).map(|k| w(k).to_string()).collect();
                at(
                    Diagnostic::new(
                        Code::WidthMismatch,
                        format!(
                            "`{label}` ({}) of width {} has operand width(s) [{}]",
                            node.op,
                            node.width,
                            ws.join(", ")
                        ),
                    ),
                    id,
                );
            }
            if let Op::Load(m) = node.op {
                if m.0 as usize >= dfg.memories().len() {
                    at(
                        Diagnostic::new(
                            Code::BadMemoryRef,
                            format!(
                                "`{label}` loads from {m} but only {} memories are attached",
                                dfg.memories().len()
                            ),
                        ),
                        id,
                    );
                } else {
                    let mem = dfg.memory(m);
                    if mem.data.is_empty() {
                        at(
                            Diagnostic::new(
                                Code::BadMemoryRef,
                                format!("`{label}` loads from empty memory `{}`", mem.name),
                            ),
                            id,
                        );
                    }
                    if mem.width != node.width {
                        at(
                            Diagnostic::new(
                                Code::WidthMismatch,
                                format!(
                                    "`{label}` has width {} but memory `{}` is {} bits wide",
                                    node.width, mem.name, mem.width
                                ),
                            ),
                            id,
                        );
                    }
                }
            }
        }
    }

    for stuck in combinational_cycle_nodes(dfg) {
        at(
            Diagnostic::new(
                Code::CombinationalCycle,
                format!(
                    "`{}` lies on a distance-0 combinational cycle",
                    dfg.label(stuck)
                ),
            ),
            stuck,
        );
    }

    // Liveness: which nodes reach a primary output over any edge?
    let outputs = dfg.outputs();
    if outputs.is_empty() {
        ds.push(Diagnostic::new(
            Code::NoOutputs,
            format!("graph `{}` has no primary outputs", dfg.name()),
        ));
    } else {
        let mut live = vec![false; n];
        let mut queue: VecDeque<NodeId> = outputs.iter().copied().collect();
        for &o in &outputs {
            live[o.index()] = true;
        }
        while let Some(v) = queue.pop_front() {
            for p in &dfg.node(v).ins {
                if p.node.index() < n && !live[p.node.index()] {
                    live[p.node.index()] = true;
                    queue.push_back(p.node);
                }
            }
        }
        let mut ds2 = Diagnostics::new();
        for (id, node) in dfg.iter() {
            if live[id.index()] {
                continue;
            }
            let d = if node.op == Op::Input {
                Diagnostic::new(
                    Code::UnusedInput,
                    format!("primary input `{}` never reaches an output", dfg.label(id)),
                )
            } else {
                Diagnostic::new(
                    Code::DeadNode,
                    format!(
                        "`{}` ({}) cannot reach any primary output",
                        dfg.label(id),
                        node.op
                    ),
                )
            };
            let d = d.with_node(id);
            match spans.and_then(|s| s.get(id)) {
                Some(sp) => ds2.push(d.with_span(sp)),
                None => ds2.push(d),
            }
        }
        ds.merge(ds2);
    }

    for mem in dfg.memories() {
        if !mem.data.is_empty() && !mem.data.len().is_power_of_two() {
            ds.push(Diagnostic::new(
                Code::NonPow2Memory,
                format!(
                    "memory `{}` has {} entries; modulo indexing of a \
                     non-power-of-two length costs extra logic",
                    mem.name,
                    mem.data.len()
                ),
            ));
        }
    }

    ds
}

/// Nodes stuck on a distance-0 cycle, via Kahn's algorithm over the
/// in-range distance-0 edges. Unlike [`Dfg::topo_order`] this never
/// indexes out of bounds on dangling ports.
fn combinational_cycle_nodes(dfg: &Dfg) -> Vec<NodeId> {
    let n = dfg.len();
    let mut indeg = vec![0usize; n];
    for (id, node) in dfg.iter() {
        indeg[id.index()] = node
            .ins
            .iter()
            .filter(|p| p.dist == 0 && p.node.index() < n)
            .count();
    }
    // consumers over in-range dist-0 edges only
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, node) in dfg.iter() {
        for p in &node.ins {
            if p.dist == 0 && p.node.index() < n {
                consumers[p.node.index()].push(id.index());
            }
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
    let mut seen = queue.len();
    let mut head = 0;
    while head < queue.len() {
        let v = queue[head];
        head += 1;
        for &c in &consumers[v] {
            indeg[c] -= 1;
            if indeg[c] == 0 {
                queue.push(c);
                seen += 1;
            }
        }
    }
    if seen == n {
        Vec::new()
    } else {
        (0..n)
            .filter(|&v| indeg[v] > 0)
            .map(|v| NodeId(v as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_ir::{DfgBuilder, Node, Port};

    fn clean() -> Dfg {
        let mut b = DfgBuilder::new("clean");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let z = b.xor(x, y);
        b.output("z", z);
        b.finish().expect("valid")
    }

    #[test]
    fn clean_graph_has_no_findings() {
        let ds = lint_dfg(&clean(), None);
        assert!(ds.is_empty(), "{:?}", ds);
    }

    #[test]
    fn dangling_port_is_reported_not_panicked() {
        let nodes = vec![
            Node {
                op: Op::Input,
                width: 8,
                ins: vec![],
            },
            Node {
                op: Op::Not,
                width: 8,
                ins: vec![Port::this_iter(NodeId(99))],
            },
            Node {
                op: Op::Output,
                width: 8,
                ins: vec![Port::this_iter(NodeId(1))],
            },
        ];
        let g = Dfg::from_raw("bad", nodes, vec![], vec![], Default::default());
        let ds = lint_dfg(&g, None);
        assert!(ds.has_code(Code::DanglingPort), "{:?}", ds);
        assert!(ds.has_errors());
    }

    #[test]
    fn reports_multiple_violations_at_once() {
        let nodes = vec![
            Node {
                op: Op::Input,
                width: 0, // P0001
                ins: vec![],
            },
            Node {
                op: Op::And, // P0002: arity 2, got 1
                width: 8,
                ins: vec![Port::this_iter(NodeId(0))],
            },
        ];
        let g = Dfg::from_raw("bad", nodes, vec![], vec![], Default::default());
        let ds = lint_dfg(&g, None);
        assert!(ds.has_code(Code::BadWidth));
        assert!(ds.has_code(Code::BadArity));
        assert!(ds.has_code(Code::NoOutputs));
    }

    #[test]
    fn combinational_cycle_found() {
        let nodes = vec![
            Node {
                op: Op::Not,
                width: 4,
                ins: vec![Port::this_iter(NodeId(1))],
            },
            Node {
                op: Op::Not,
                width: 4,
                ins: vec![Port::this_iter(NodeId(0))],
            },
            Node {
                op: Op::Output,
                width: 4,
                ins: vec![Port::this_iter(NodeId(0))],
            },
        ];
        let g = Dfg::from_raw("cyc", nodes, vec![], vec![], Default::default());
        let ds = lint_dfg(&g, None);
        assert!(ds.has_code(Code::CombinationalCycle), "{:?}", ds);
    }

    #[test]
    fn dead_node_and_unused_input_are_warnings() {
        let mut b = DfgBuilder::new("dead");
        let x = b.input("x", 8);
        let y = b.input("y", 8); // unused
        let z = b.not(x);
        let _dead = b.and(z, z); // never consumed
        b.output("z", z);
        let _ = y;
        let g = b.finish().expect("valid");
        let ds = lint_dfg(&g, None);
        assert!(ds.has_code(Code::UnusedInput));
        assert!(ds.has_code(Code::DeadNode));
        assert!(!ds.has_errors(), "{:?}", ds);
    }

    #[test]
    fn lint_text_reports_parse_error() {
        let (ds, dfg) = lint_text("this is not pmir");
        assert!(dfg.is_none());
        assert!(ds.has_code(Code::ParseError));
    }
}
