//! The diagnostics engine: stable lint codes, severities, source spans,
//! and human/JSON renderers — the `rustc`-style reporting layer shared by
//! every analysis pass.

use std::fmt;

use pipemap_ir::{NodeId, SourceSpan};

/// How serious a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Informational note; never affects exit status.
    Info,
    /// Suspicious but legal; the artifact is usable.
    Warning,
    /// A violated invariant; the artifact must not be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Stable lint codes. The numeric ranges partition by pass:
///
/// * `P00xx` — IR well-formedness,
/// * `P01xx` — schedule & cover legality,
/// * `P02xx` — structural netlist (Verilog) lint,
/// * `P03xx` — differential flow checks,
/// * `P04xx` — dataflow-analysis and simplification audit,
/// * `P05xx` — MILP structural-analysis certificate audit,
/// * `P06xx` — priority-cut pruning certificate audit.
///
/// Codes are append-only: a released code never changes meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Code {
    // ---- P00xx: IR well-formedness ----
    /// Node width outside `1..=64`.
    BadWidth,
    /// Wrong number of inputs for the operation.
    BadArity,
    /// Port references a node id outside the graph.
    DanglingPort,
    /// An `Output` marker is consumed as data.
    OutputHasConsumer,
    /// Input/output widths inconsistent for the operation.
    WidthMismatch,
    /// `Load` references an unknown or empty memory.
    BadMemoryRef,
    /// Distance-0 (combinational) cycle.
    CombinationalCycle,
    /// Node cannot reach any primary output.
    DeadNode,
    /// Primary input has no consumers.
    UnusedInput,
    /// Graph has no primary outputs.
    NoOutputs,
    /// Memory length is not a power of two (modulo indexing costs logic).
    NonPow2Memory,
    /// The `.pmir` document failed to parse.
    ParseError,

    // ---- P01xx: schedule & cover legality ----
    /// A consumed signal's producer is not a signal-producing root (Eq. 2).
    MissingRoot,
    /// A primary output's source is not a root (Eq. 3).
    OutputNotRoot,
    /// Dependence violated modulo II (Eq. 7).
    DependenceViolated,
    /// Critical path exceeds the target period (Eqs. 8–9).
    CycleTimeExceeded,
    /// Modulo resource class oversubscribed (Eq. 14).
    ResourceOversubscribed,
    /// A selected cut exceeds the device's K.
    CutNotKFeasible,
    /// A selected cut's cone crosses a register or unmappable node.
    ConeInconsistent,
    /// Reported QoR disagrees with an independent recount.
    QorMismatch,
    /// Schedule/cover vectors do not match the graph's node count.
    ScheduleSizeMismatch,
    /// Intra-cycle start time is NaN, negative, or past the period.
    InvalidStartTime,

    // ---- P02xx: structural netlist lint ----
    /// A net has more than one driver.
    MultiplyDrivenNet,
    /// An identifier is used but never declared.
    UndeclaredIdentifier,
    /// A declared net is never read and is not a port.
    UnusedNet,
    /// Direct copy between nets of different widths.
    NetWidthMismatch,
    /// `begin`/`end` imbalance.
    BeginEndImbalance,
    /// `module`/`endmodule` missing.
    MissingModule,
    /// Combinational loop through continuous assignments.
    CombinationalNetLoop,

    // ---- P03xx: differential flow checks ----
    /// A flow's implementation failed legality verification.
    FlowIllegal,
    /// Two flows (or a flow and the reference interpreter) disagree.
    FlowsDiverge,
    /// Mapping-aware result is worse than the heuristic at the same II.
    ObjectiveRegression,

    // ---- P04xx: dataflow-analysis & simplification audit ----
    /// An analysis fact (known bit or range) is contradicted by simulation.
    FactUnsound,
    /// A rewrite's justification does not re-derive from the original graph.
    JustificationInvalid,
    /// The simplified graph disagrees with the original on some output.
    SimplifyDiverged,
    /// A primary output bit is proven constant (likely over-width or a bug).
    ConstantOutputBit,
    /// A primary input bit can never influence any output.
    DeadInputBit,

    // ---- P05xx: MILP structural-analysis certificate audit ----
    /// A certified fixing's implication chain does not replay to the
    /// recorded contradiction.
    FixingUnjustified,
    /// A certified implication's chain does not pin its target.
    ImplicationUnsound,
    /// A clique edge's witness does not prove the pair conflicting.
    CliqueEdgeUnjustified,
    /// A cover cut's members do not exceed the witness row's capacity.
    CoverNotViolated,
    /// A symmetry orbit's transposition witness is not an automorphism.
    SymmetryWitnessInvalid,
    /// An implication cut does not match its implication's linear
    /// expansion (or the implication itself is unsound).
    ImplicationCutMismatch,

    // ---- P06xx: priority-cut pruning certificate audit ----
    /// A cut missing from the pruned database has neither a certificate
    /// nor a ranked-out record.
    CutPruneUncertified,
    /// A dominance certificate fails re-derivation: the retained cut is
    /// absent, not a subset, deeper, or names a different root.
    CutDominanceInvalid,
    /// A dead-root certificate contradicts the liveness facts.
    CutLivenessInvalid,
    /// A node lost cover feasibility: its pruned cut set is empty or no
    /// longer starts with the unit cut.
    CutCoverInfeasible,
    /// The pruned database is malformed: duplicate cuts, cuts absent
    /// from the raw pool, caps exceeded, or rank-outs without a binding
    /// cap.
    CutSetMalformed,
    /// Pruned and unpruned cover MILPs disagree on the optimum even
    /// though every drop was certified.
    CutObjectiveDrift,

    // ---- P07xx: Gomory cut certificate audit ----
    /// The multiplier list of a Gomory certificate is malformed:
    /// out-of-range row index, non-finite value, or not strictly
    /// ascending.
    GomoryMultipliersMalformed,
    /// The shift list of a Gomory certificate is malformed: unsorted,
    /// duplicated, out-of-range, or a column with significant
    /// aggregated coefficient carries no shift.
    GomoryShiftsMalformed,
    /// A shift references an unusable bound: infinite, or a slack side
    /// inconsistent with the row's sense.
    GomoryBoundUnusable,
    /// A shift claims integer treatment for a column or slack whose
    /// integrality cannot be proven from the model.
    GomoryIntegralityUnproven,
    /// The recombined fractional part f0 is outside the safe interval,
    /// so the GMI derivation is numerically degenerate.
    GomoryFractionalityDegenerate,
    /// The independently re-derived cut disagrees with the shipped
    /// coefficients or right-hand side.
    GomoryCutMismatch,

    // ---- P08xx: incremental re-solve audit ----
    /// An incrementally re-solved model's status diverges from a
    /// from-scratch solve of the identical model and options.
    ResolveStatusDiverged,
    /// An incrementally re-solved model's objective diverges from a
    /// from-scratch solve beyond tolerance.
    ResolveObjectiveDiverged,
    /// The incremental result's assignment fails independent
    /// re-verification (row/bound feasibility or integrality) or does
    /// not reconcile with the from-scratch assignment as a tied optimum.
    ResolveAssignmentInvalid,
    /// Incremental and from-scratch solves returned different members of
    /// a tied optimal set; both re-verified feasible (informational).
    ResolveTiedOptima,
    /// The re-solve engine's reuse counters are internally inconsistent.
    ResolveStatsInconsistent,
}

impl Code {
    /// Every code, in `P`-number order — the registry rendered into docs
    /// and `pipemap lint --codes`.
    pub const ALL: &'static [Code] = &[
        Code::BadWidth,
        Code::BadArity,
        Code::DanglingPort,
        Code::OutputHasConsumer,
        Code::WidthMismatch,
        Code::BadMemoryRef,
        Code::CombinationalCycle,
        Code::DeadNode,
        Code::UnusedInput,
        Code::NoOutputs,
        Code::NonPow2Memory,
        Code::ParseError,
        Code::MissingRoot,
        Code::OutputNotRoot,
        Code::DependenceViolated,
        Code::CycleTimeExceeded,
        Code::ResourceOversubscribed,
        Code::CutNotKFeasible,
        Code::ConeInconsistent,
        Code::QorMismatch,
        Code::ScheduleSizeMismatch,
        Code::InvalidStartTime,
        Code::MultiplyDrivenNet,
        Code::UndeclaredIdentifier,
        Code::UnusedNet,
        Code::NetWidthMismatch,
        Code::BeginEndImbalance,
        Code::MissingModule,
        Code::CombinationalNetLoop,
        Code::FlowIllegal,
        Code::FlowsDiverge,
        Code::ObjectiveRegression,
        Code::FactUnsound,
        Code::JustificationInvalid,
        Code::SimplifyDiverged,
        Code::ConstantOutputBit,
        Code::DeadInputBit,
        Code::FixingUnjustified,
        Code::ImplicationUnsound,
        Code::CliqueEdgeUnjustified,
        Code::CoverNotViolated,
        Code::SymmetryWitnessInvalid,
        Code::ImplicationCutMismatch,
        Code::CutPruneUncertified,
        Code::CutDominanceInvalid,
        Code::CutLivenessInvalid,
        Code::CutCoverInfeasible,
        Code::CutSetMalformed,
        Code::CutObjectiveDrift,
        Code::GomoryMultipliersMalformed,
        Code::GomoryShiftsMalformed,
        Code::GomoryBoundUnusable,
        Code::GomoryIntegralityUnproven,
        Code::GomoryFractionalityDegenerate,
        Code::GomoryCutMismatch,
        Code::ResolveStatusDiverged,
        Code::ResolveObjectiveDiverged,
        Code::ResolveAssignmentInvalid,
        Code::ResolveTiedOptima,
        Code::ResolveStatsInconsistent,
    ];

    /// The stable `P0xxx` identifier.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::BadWidth => "P0001",
            Code::BadArity => "P0002",
            Code::DanglingPort => "P0003",
            Code::OutputHasConsumer => "P0004",
            Code::WidthMismatch => "P0005",
            Code::BadMemoryRef => "P0006",
            Code::CombinationalCycle => "P0007",
            Code::DeadNode => "P0008",
            Code::UnusedInput => "P0009",
            Code::NoOutputs => "P0010",
            Code::NonPow2Memory => "P0011",
            Code::ParseError => "P0012",
            Code::MissingRoot => "P0101",
            Code::OutputNotRoot => "P0102",
            Code::DependenceViolated => "P0103",
            Code::CycleTimeExceeded => "P0104",
            Code::ResourceOversubscribed => "P0105",
            Code::CutNotKFeasible => "P0106",
            Code::ConeInconsistent => "P0107",
            Code::QorMismatch => "P0108",
            Code::ScheduleSizeMismatch => "P0109",
            Code::InvalidStartTime => "P0110",
            Code::MultiplyDrivenNet => "P0201",
            Code::UndeclaredIdentifier => "P0202",
            Code::UnusedNet => "P0203",
            Code::NetWidthMismatch => "P0204",
            Code::BeginEndImbalance => "P0205",
            Code::MissingModule => "P0206",
            Code::CombinationalNetLoop => "P0207",
            Code::FlowIllegal => "P0301",
            Code::FlowsDiverge => "P0302",
            Code::ObjectiveRegression => "P0303",
            Code::FactUnsound => "P0401",
            Code::JustificationInvalid => "P0402",
            Code::SimplifyDiverged => "P0403",
            Code::ConstantOutputBit => "P0404",
            Code::DeadInputBit => "P0405",
            Code::FixingUnjustified => "P0501",
            Code::ImplicationUnsound => "P0502",
            Code::CliqueEdgeUnjustified => "P0503",
            Code::CoverNotViolated => "P0504",
            Code::SymmetryWitnessInvalid => "P0505",
            Code::ImplicationCutMismatch => "P0506",
            Code::CutPruneUncertified => "P0601",
            Code::CutDominanceInvalid => "P0602",
            Code::CutLivenessInvalid => "P0603",
            Code::CutCoverInfeasible => "P0604",
            Code::CutSetMalformed => "P0605",
            Code::CutObjectiveDrift => "P0606",
            Code::GomoryMultipliersMalformed => "P0701",
            Code::GomoryShiftsMalformed => "P0702",
            Code::GomoryBoundUnusable => "P0703",
            Code::GomoryIntegralityUnproven => "P0704",
            Code::GomoryFractionalityDegenerate => "P0705",
            Code::GomoryCutMismatch => "P0706",
            Code::ResolveStatusDiverged => "P0801",
            Code::ResolveObjectiveDiverged => "P0802",
            Code::ResolveAssignmentInvalid => "P0803",
            Code::ResolveTiedOptima => "P0804",
            Code::ResolveStatsInconsistent => "P0805",
        }
    }

    /// Default severity of this code.
    pub fn severity(self) -> Severity {
        match self {
            Code::DeadNode | Code::UnusedInput | Code::NoOutputs | Code::UnusedNet => {
                Severity::Warning
            }
            Code::ObjectiveRegression => Severity::Warning,
            Code::ConstantOutputBit | Code::DeadInputBit => Severity::Warning,
            Code::NonPow2Memory => Severity::Info,
            Code::ResolveTiedOptima => Severity::Info,
            _ => Severity::Error,
        }
    }

    /// One-line summary used in the code registry.
    pub fn summary(self) -> &'static str {
        match self {
            Code::BadWidth => "node width outside 1..=64",
            Code::BadArity => "wrong number of operands for the operation",
            Code::DanglingPort => "operand references a node outside the graph",
            Code::OutputHasConsumer => "output marker consumed as data",
            Code::WidthMismatch => "operand/result widths inconsistent",
            Code::BadMemoryRef => "load from an unknown or empty memory",
            Code::CombinationalCycle => "distance-0 combinational cycle",
            Code::DeadNode => "node unreachable from every primary output",
            Code::UnusedInput => "primary input has no consumers",
            Code::NoOutputs => "graph has no primary outputs",
            Code::NonPow2Memory => "memory length not a power of two",
            Code::ParseError => "the .pmir document failed to parse",
            Code::MissingRoot => "consumed signal's producer is not a mapped root (Eq. 2)",
            Code::OutputNotRoot => "primary output fed by a non-root (Eq. 3)",
            Code::DependenceViolated => "dependence violated modulo II (Eq. 7)",
            Code::CycleTimeExceeded => "critical path exceeds target period (Eqs. 8-9)",
            Code::ResourceOversubscribed => "modulo resource oversubscribed (Eq. 14)",
            Code::CutNotKFeasible => "selected cut exceeds the device's K",
            Code::ConeInconsistent => "cone crosses a register or unmappable node",
            Code::QorMismatch => "QoR report disagrees with independent recount",
            Code::ScheduleSizeMismatch => "schedule/cover size differs from node count",
            Code::InvalidStartTime => "intra-cycle start time NaN, negative, or past period",
            Code::MultiplyDrivenNet => "net driven by more than one assignment",
            Code::UndeclaredIdentifier => "identifier used but never declared",
            Code::UnusedNet => "declared net never read",
            Code::NetWidthMismatch => "direct copy between nets of different widths",
            Code::BeginEndImbalance => "begin/end blocks do not balance",
            Code::MissingModule => "module/endmodule missing",
            Code::CombinationalNetLoop => "combinational loop through continuous assignments",
            Code::FlowIllegal => "flow produced an illegal implementation",
            Code::FlowsDiverge => "flow outputs diverge from the reference model",
            Code::ObjectiveRegression => "mapping-aware flow worse than heuristic at same II",
            Code::FactUnsound => "analysis fact contradicted by simulation",
            Code::JustificationInvalid => "rewrite justification fails independent re-derivation",
            Code::SimplifyDiverged => "simplified graph diverges from the original",
            Code::ConstantOutputBit => "primary output bit proven constant",
            Code::DeadInputBit => "primary input bit cannot influence any output",
            Code::FixingUnjustified => "fixing chain fails independent replay",
            Code::ImplicationUnsound => "implication chain does not pin its target",
            Code::CliqueEdgeUnjustified => "clique edge witness proves no conflict",
            Code::CoverNotViolated => "cover members do not exceed row capacity",
            Code::SymmetryWitnessInvalid => "transposition witness is not an automorphism",
            Code::ImplicationCutMismatch => "implication cut does not match its certificate",
            Code::CutPruneUncertified => "pruned cut has no certificate or ranked-out record",
            Code::CutDominanceInvalid => "dominance certificate fails re-derivation",
            Code::CutLivenessInvalid => "dead-root certificate contradicts liveness facts",
            Code::CutCoverInfeasible => "node lost cover feasibility after pruning",
            Code::CutSetMalformed => "pruned cut database malformed",
            Code::CutObjectiveDrift => "pruned and unpruned cover optima disagree",
            Code::GomoryMultipliersMalformed => "Gomory multiplier list malformed",
            Code::GomoryShiftsMalformed => "Gomory shift list malformed or incomplete",
            Code::GomoryBoundUnusable => "Gomory shift references an unusable bound",
            Code::GomoryIntegralityUnproven => "Gomory integer treatment unproven",
            Code::GomoryFractionalityDegenerate => "Gomory fractional part degenerate",
            Code::GomoryCutMismatch => "Gomory cut fails independent re-derivation",
            Code::ResolveStatusDiverged => "incremental re-solve status diverges from cold",
            Code::ResolveObjectiveDiverged => "incremental re-solve objective diverges from cold",
            Code::ResolveAssignmentInvalid => "incremental assignment fails re-verification",
            Code::ResolveTiedOptima => "incremental and cold solves picked different tied optima",
            Code::ResolveStatsInconsistent => "re-solve reuse counters inconsistent",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One reported finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// The stable lint code.
    pub code: Code,
    /// Severity (usually [`Code::severity`], overridable per finding).
    pub severity: Severity,
    /// Human-readable description of this particular instance.
    pub message: String,
    /// The IR node the finding anchors to, when applicable.
    pub node: Option<NodeId>,
    /// Source location in the `.pmir` (or generated Verilog) text.
    pub span: Option<SourceSpan>,
}

impl Diagnostic {
    /// A diagnostic with the code's default severity and no location.
    pub fn new(code: Code, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            message: message.into(),
            node: None,
            span: None,
        }
    }

    /// Attach the offending node.
    pub fn with_node(mut self, node: NodeId) -> Self {
        self.node = Some(node);
        self
    }

    /// Attach a source span.
    pub fn with_span(mut self, span: SourceSpan) -> Self {
        self.span = Some(span);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)?;
        if let Some(s) = self.span {
            write!(f, " (at {s})")?;
        }
        Ok(())
    }
}

/// An ordered collection of findings produced by one or more passes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Diagnostics {
    diags: Vec<Diagnostic>,
}

impl Diagnostics {
    /// An empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Append one finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Append every finding of another collection.
    pub fn merge(&mut self, other: Diagnostics) {
        self.diags.extend(other.diags);
    }

    /// The findings, in emission order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter()
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.diags.len()
    }

    /// `true` when nothing was reported.
    pub fn is_empty(&self) -> bool {
        self.diags.is_empty()
    }

    /// Number of error-level findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of warning-level findings.
    pub fn warning_count(&self) -> usize {
        self.count(Severity::Warning)
    }

    fn count(&self, s: Severity) -> usize {
        self.diags.iter().filter(|d| d.severity == s).count()
    }

    /// `true` if any finding is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// `true` if some finding carries the given code.
    pub fn has_code(&self, code: Code) -> bool {
        self.diags.iter().any(|d| d.code == code)
    }

    /// The distinct codes present, in `P`-number order.
    pub fn codes(&self) -> Vec<Code> {
        let mut present: Vec<Code> = Code::ALL
            .iter()
            .copied()
            .filter(|c| self.has_code(*c))
            .collect();
        present.dedup();
        present
    }

    /// Sort findings: errors first, then by source position, then code.
    pub fn sort(&mut self) {
        self.diags.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| {
                    let ka = a.span.map(|s| (s.line, s.col)).unwrap_or((usize::MAX, 0));
                    let kb = b.span.map(|s| (s.line, s.col)).unwrap_or((usize::MAX, 0));
                    ka.cmp(&kb)
                })
                .then_with(|| a.code.as_str().cmp(b.code.as_str()))
        });
    }

    /// Render a compiler-style report. `source` names the artifact (file
    /// path, module name…) and prefixes every span.
    pub fn render_human(&self, source: &str) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diags {
            match d.span {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "{source}:{}:{}: {}[{}]: {}",
                        s.line, s.col, d.severity, d.code, d.message
                    );
                }
                None => {
                    let _ = writeln!(out, "{source}: {}[{}]: {}", d.severity, d.code, d.message);
                }
            }
        }
        let _ = writeln!(
            out,
            "{} error(s), {} warning(s), {} finding(s) total",
            self.error_count(),
            self.warning_count(),
            self.len()
        );
        out
    }

    /// Render the findings as a JSON array (no external dependencies;
    /// strings are escaped per RFC 8259).
    pub fn render_json(&self) -> String {
        let mut out = String::from("[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code.as_str());
            out.push_str("\",\"severity\":\"");
            out.push_str(&d.severity.to_string());
            out.push_str("\",\"message\":\"");
            out.push_str(&json_escape(&d.message));
            out.push('"');
            if let Some(n) = d.node {
                out.push_str(&format!(",\"node\":{}", n.0));
            }
            if let Some(s) = d.span {
                out.push_str(&format!(
                    ",\"line\":{},\"col\":{},\"len\":{}",
                    s.line, s.col, s.len
                ));
            }
            out.push('}');
        }
        out.push(']');
        out
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.diags.into_iter()
    }
}

impl FromIterator<Diagnostic> for Diagnostics {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Diagnostics {
            diags: iter.into_iter().collect(),
        }
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_and_sorted() {
        let strs: Vec<&str> = Code::ALL.iter().map(|c| c.as_str()).collect();
        let mut sorted = strs.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(strs, sorted, "registry must be unique and in P-order");
        assert!(strs.len() >= 10);
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn render_human_includes_span() {
        let mut ds = Diagnostics::new();
        ds.push(
            Diagnostic::new(Code::BadWidth, "width 99 out of range").with_span(SourceSpan {
                line: 3,
                col: 5,
                len: 1,
            }),
        );
        let r = ds.render_human("demo.pmir");
        assert!(r.contains("demo.pmir:3:5"), "{r}");
        assert!(r.contains("P0001"), "{r}");
        assert!(r.contains("1 error(s)"), "{r}");
    }

    #[test]
    fn render_json_escapes() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::new(Code::ParseError, "bad \"quote\"\nline"));
        let j = ds.render_json();
        assert!(j.contains("\\\"quote\\\""), "{j}");
        assert!(j.contains("\\n"), "{j}");
        assert!(j.starts_with('[') && j.ends_with(']'));
    }

    #[test]
    fn sort_puts_errors_first() {
        let mut ds = Diagnostics::new();
        ds.push(Diagnostic::new(Code::DeadNode, "warn"));
        ds.push(Diagnostic::new(Code::BadWidth, "err"));
        ds.sort();
        assert_eq!(ds.iter().next().unwrap().code, Code::BadWidth);
    }
}
