//! Pass 5: dataflow-analysis and simplification audit (`P04xx`).
//!
//! `pipemap-analyze` derives facts and rewrites graphs; this pass is the
//! independent judge. [`check_analysis`] confronts every claimed fact
//! with seeded simulation (a known bit or range bound that any executed
//! value violates is a hard error) and lints suspicious-but-sound
//! results (constant output bits, dead input bits). For a rewritten
//! graph, [`check_simplification`] re-derives the analysis from the
//! *original* graph, re-validates every [`Justification`] against the
//! fresh facts, re-runs the simplifier to confirm the recorded outcome is
//! reproducible, and replays seeded input vectors through both graphs to
//! confirm output equivalence.

use pipemap_analyze::{
    simplify_with, Analysis, Justification, Rewrite, RewriteKind, SimplifyOutcome,
};
use pipemap_ir::{execute, mask, Dfg, InputStreams, Op};

use crate::diag::{Code, Diagnostic, Diagnostics};
use crate::ir_pass::lint_dfg;

/// Audit the dataflow analysis of one graph against simulation.
///
/// Runs `pipemap-analyze`, executes `vectors` seeded random input
/// vectors, and reports:
///
/// * [`Code::FactUnsound`] (error) — a known bit or range bound is
///   contradicted by an executed value,
/// * [`Code::ConstantOutputBit`] (warning) — bits of a primary output
///   are proven constant,
/// * [`Code::DeadInputBit`] (warning) — bits of a primary input can
///   never influence any output.
pub fn check_analysis(dfg: &Dfg, vectors: usize, seed: u64) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let graph_ds = lint_dfg(dfg, None);
    if graph_ds.has_errors() {
        ds.merge(graph_ds);
        return ds;
    }

    let analysis = match Analysis::run(dfg) {
        Ok(a) => a,
        Err(e) => {
            ds.push(Diagnostic::new(
                Code::FactUnsound,
                format!("analysis failed on a lint-clean graph: {e}"),
            ));
            return ds;
        }
    };

    let iters = vectors.max(1);
    match execute(dfg, &InputStreams::random(dfg, iters, seed), iters) {
        Ok(trace) => {
            if let Err(msg) = analysis.check_against_trace(dfg, &trace, iters) {
                ds.push(Diagnostic::new(Code::FactUnsound, msg));
            }
        }
        Err(e) => {
            ds.push(Diagnostic::new(
                Code::FactUnsound,
                format!("reference interpreter failed: {e}"),
            ));
            return ds;
        }
    }

    for (id, node) in dfg.iter() {
        match node.op {
            Op::Output => {
                let known = analysis.fact(id).bits.known();
                if known != 0 {
                    ds.push(
                        Diagnostic::new(
                            Code::ConstantOutputBit,
                            format!(
                                "output `{}` has {} constant bit(s): {}",
                                dfg.label(id),
                                known.count_ones(),
                                analysis.pattern(dfg, id)
                            ),
                        )
                        .with_node(id),
                    );
                }
            }
            Op::Input => {
                let dead = analysis.dead(dfg, id);
                if dead != 0 {
                    ds.push(
                        Diagnostic::new(
                            Code::DeadInputBit,
                            format!(
                                "input `{}` has {} bit(s) that cannot reach any output \
                                 (mask {dead:#x})",
                                dfg.label(id),
                                dead.count_ones()
                            ),
                        )
                        .with_node(id),
                    );
                }
            }
            _ => {}
        }
    }
    ds
}

/// Replay `vectors` seeded input vectors through two graphs and report
/// [`Code::SimplifyDiverged`] if any output ever differs. Outputs
/// correspond positionally (simplification preserves the I/O interface).
pub fn check_graph_equivalence(
    label: &str,
    orig: &Dfg,
    opt: &Dfg,
    vectors: usize,
    seed: u64,
) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let (o1, o2) = (orig.outputs(), opt.outputs());
    if o1.len() != o2.len() {
        ds.push(Diagnostic::new(
            Code::SimplifyDiverged,
            format!(
                "{label}: output count changed ({} -> {})",
                o1.len(),
                o2.len()
            ),
        ));
        return ds;
    }
    let iters = vectors.max(1);
    let t1 = execute(orig, &InputStreams::random(orig, iters, seed), iters);
    let t2 = execute(opt, &InputStreams::random(opt, iters, seed), iters);
    let (t1, t2) = match (t1, t2) {
        (Ok(a), Ok(b)) => (a, b),
        (r1, r2) => {
            ds.push(Diagnostic::new(
                Code::SimplifyDiverged,
                format!(
                    "{label}: interpreter failed (original: {:?}, rewritten: {:?})",
                    r1.err(),
                    r2.err()
                ),
            ));
            return ds;
        }
    };
    for iter in 0..iters {
        for (a, b) in o1.iter().zip(o2.iter()) {
            let (va, vb) = (t1.value(iter, *a), t2.value(iter, *b));
            if va != vb {
                ds.push(
                    Diagnostic::new(
                        Code::SimplifyDiverged,
                        format!(
                            "{label}: output `{}` iteration {iter}: original {va:#x}, \
                             rewritten {vb:#x}",
                            orig.label(*a)
                        ),
                    )
                    .with_node(*a),
                );
                return ds; // first divergence is enough
            }
        }
    }
    ds
}

/// Audit a recorded simplification of `dfg`.
///
/// Everything is re-derived from scratch — the recorded outcome is
/// treated as an untrusted claim:
///
/// * every [`Justification`] is re-validated against a fresh analysis of
///   the original graph ([`Code::JustificationInvalid`], error),
/// * the simplifier is re-run and must reproduce the recorded graph
///   ([`Code::JustificationInvalid`], error),
/// * both graphs replay `vectors` seeded input vectors and must agree on
///   every output ([`Code::SimplifyDiverged`], error).
pub fn check_simplification(
    dfg: &Dfg,
    outcome: &SimplifyOutcome,
    vectors: usize,
    seed: u64,
) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let graph_ds = lint_dfg(dfg, None);
    if graph_ds.has_errors() {
        ds.merge(graph_ds);
        return ds;
    }
    let analysis = match Analysis::run(dfg) {
        Ok(a) => a,
        Err(e) => {
            ds.push(Diagnostic::new(
                Code::FactUnsound,
                format!("analysis failed on a lint-clean graph: {e}"),
            ));
            return ds;
        }
    };

    for rw in &outcome.rewrites {
        if let Err(msg) = justification_ok(dfg, &analysis, outcome, rw) {
            ds.push(
                Diagnostic::new(
                    Code::JustificationInvalid,
                    format!("rewrite of node {}: {msg}", rw.node),
                )
                .with_node(rw.node),
            );
        }
    }

    match simplify_with(dfg, &analysis) {
        Ok(fresh) => {
            if fresh.dfg != outcome.dfg {
                ds.push(Diagnostic::new(
                    Code::JustificationInvalid,
                    "independent re-run of the simplifier produces a different graph",
                ));
            }
        }
        Err(e) => {
            ds.push(Diagnostic::new(
                Code::JustificationInvalid,
                format!("independent re-run of the simplifier failed: {e}"),
            ));
        }
    }

    ds.merge(check_graph_equivalence(
        "simplification",
        dfg,
        &outcome.dfg,
        vectors,
        seed,
    ));
    ds
}

/// Re-derive one rewrite's justification from the original graph.
fn justification_ok(
    dfg: &Dfg,
    analysis: &Analysis,
    outcome: &SimplifyOutcome,
    rw: &Rewrite,
) -> Result<(), String> {
    if rw.node.index() >= dfg.len() {
        return Err("node id outside the original graph".into());
    }
    let node = dfg.node(rw.node);
    let w = node.width;
    match (rw.kind, rw.justification) {
        (RewriteKind::ConstFold { value }, Justification::KnownValue { value: v }) => {
            if v != value {
                return Err("folded value disagrees with the justification".into());
            }
            match analysis.fact(rw.node).constant_value(w) {
                Some(c) if c == value & mask(w) => Ok(()),
                Some(c) => Err(format!("facts pin the node to {c:#x}, not {value:#x}")),
                None => Err("facts do not pin the node to a constant".into()),
            }
        }
        (RewriteKind::ConstFold { value }, Justification::ReflexiveCmp) => match node.op {
            Op::Cmp(p) if node.ins[0] == node.ins[1] => {
                if u64::from(p.reflexive_value()) == value {
                    Ok(())
                } else {
                    Err(format!("cmp.{p} over equal operands is not {value}"))
                }
            }
            _ => Err("node is not a compare of a value with itself".into()),
        },
        (RewriteKind::Forward { to }, Justification::KnownSelect { value }) => {
            if node.op != Op::Mux {
                return Err("known-select forwarding on a non-mux".into());
            }
            let sel = analysis.port_fact(dfg, node.ins[0]);
            if sel.bits.constant_value(1) != Some(u64::from(value)) {
                return Err("facts do not pin the select".into());
            }
            let leg = if value { 1 } else { 2 };
            (to == node.ins[leg])
                .then_some(())
                .ok_or_else(|| "forward target is not the selected leg".into())
        }
        (RewriteKind::Forward { to }, Justification::IdentityOperand { operand, value }) => {
            if operand >= node.ins.len() {
                return Err("identity operand index out of range".into());
            }
            let ow = dfg.node(node.ins[operand].node).width;
            if analysis
                .port_fact(dfg, node.ins[operand])
                .constant_value(ow)
                != Some(value)
            {
                return Err("facts do not pin the identity operand".into());
            }
            let identity = match node.op {
                Op::And => value == mask(w),
                Op::Or | Op::Xor | Op::Add => value == 0,
                Op::Sub => operand == 1 && value == 0,
                Op::Mul => value == 1,
                _ => false,
            };
            if !identity {
                return Err(format!(
                    "{value:#x} is not the identity of {}",
                    node.op.mnemonic()
                ));
            }
            let expect = node.ins[if node.op == Op::Sub { 0 } else { 1 - operand }];
            (to == expect)
                .then_some(())
                .ok_or_else(|| "forward target is not the surviving operand".into())
        }
        (RewriteKind::Forward { to }, Justification::IdentityWire) => {
            let wire = match node.op {
                Op::Shl(0) | Op::Shr(0) => true,
                Op::Slice { lo: 0 } => w == dfg.node(node.ins[0].node).width,
                _ => false,
            };
            if !wire {
                return Err(format!("{} is not a wire", node.op.mnemonic()));
            }
            (to == node.ins[0])
                .then_some(())
                .ok_or_else(|| "forward target is not the wired operand".into())
        }
        (RewriteKind::DeadOperand { operand, value }, Justification::DeadBits { operand: k }) => {
            if operand != k || k >= node.ins.len() {
                return Err("dead operand index mismatch".into());
            }
            if analysis.operand_demand(dfg, rw.node, k) != 0 {
                return Err("liveness still demands bits of the operand".into());
            }
            let pf = analysis.port_fact(dfg, node.ins[k]);
            if !pf.bits.covers(value) {
                return Err(format!(
                    "replacement constant {value:#x} contradicts known bits of the operand"
                ));
            }
            Ok(())
        }
        (RewriteKind::Narrow { from, to }, Justification::RangeNarrow { kept }) => {
            if !matches!(node.op, Op::Add | Op::Sub) {
                return Err("narrowing of a non-add/sub".into());
            }
            if from != w || to != kept || kept >= w {
                return Err("narrowing widths inconsistent with the node".into());
            }
            let hi = analysis.fact(rw.node).range.hi;
            if kept >= 64 || hi < (1u64 << kept) {
                Ok(())
            } else {
                Err(format!("range hi {hi:#x} does not fit in {kept} bits"))
            }
        }
        (RewriteKind::RemoveDead, Justification::Unreachable) => {
            match outcome.node_map.get(rw.node.index()) {
                Some(None) => Ok(()),
                _ => Err("removed node still maps into the rewritten graph".into()),
            }
        }
        (k, j) => Err(format!("justification {j:?} cannot support rewrite {k:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_analyze::simplify;
    use pipemap_ir::{CmpPred, DfgBuilder, Node, NodeId, Port};

    fn masked_add() -> Dfg {
        let mut b = DfgBuilder::new("ma");
        let x = b.input("x", 16);
        let c = b.const_(0x0F, 16);
        let lo = b.and(x, c);
        let c3 = b.const_(3, 16);
        let s = b.add(lo, c3);
        b.output("o", s);
        b.finish().expect("valid")
    }

    #[test]
    fn clean_analysis_only_warns_about_constant_output_bits() {
        let g = masked_add();
        let ds = check_analysis(&g, 16, 7);
        assert!(!ds.has_errors(), "{}", ds.render_human("ma"));
        // The high bits of the output are provably zero.
        assert!(ds.has_code(Code::ConstantOutputBit), "{:?}", ds);
        assert!(ds.has_code(Code::DeadInputBit), "{:?}", ds);
    }

    #[test]
    fn recorded_simplification_validates() {
        let g = masked_add();
        let out = simplify(&g).expect("simplifies");
        assert!(!out.rewrites.is_empty());
        let ds = check_simplification(&g, &out, 16, 7);
        assert!(!ds.has_errors(), "{}", ds.render_human("ma"));
    }

    #[test]
    fn tampered_graph_is_caught_by_replay() {
        let g = masked_add();
        let mut out = simplify(&g).expect("simplifies");
        // Flip the rewritten graph's output to read a different node.
        let o = out.dfg.outputs()[0];
        let victim = out.dfg.node(o).ins[0].node;
        let other = out
            .dfg
            .node_ids()
            .find(|&v| v != victim && v != o && out.dfg.node(v).width == out.dfg.node(victim).width)
            .expect("some other node");
        let nodes: Vec<Node> = out
            .dfg
            .iter()
            .map(|(id, nd)| {
                let mut nd = nd.clone();
                if id == o {
                    nd.ins = vec![Port::this_iter(other)];
                }
                nd
            })
            .collect();
        let names = out
            .dfg
            .node_ids()
            .map(|id| out.dfg.node_name(id).map(String::from))
            .collect();
        out.dfg = Dfg::from_raw("ma", nodes, names, vec![], Default::default());
        let ds = check_simplification(&g, &out, 16, 7);
        assert!(ds.has_errors());
        // Either the re-run mismatch or the replay (or both) must fire.
        assert!(
            ds.has_code(Code::SimplifyDiverged) || ds.has_code(Code::JustificationInvalid),
            "{}",
            ds.render_human("ma")
        );
    }

    #[test]
    fn forged_justification_is_rejected() {
        let g = masked_add();
        let mut out = simplify(&g).expect("simplifies");
        // Claim a node folds to a value the facts do not support.
        out.rewrites.push(pipemap_analyze::Rewrite {
            node: NodeId(0),
            kind: RewriteKind::ConstFold { value: 0x42 },
            justification: Justification::KnownValue { value: 0x42 },
        });
        let ds = check_simplification(&g, &out, 8, 7);
        assert!(ds.has_code(Code::JustificationInvalid), "{:?}", ds);
    }

    #[test]
    fn unsound_fact_is_caught() {
        // Build a graph, then audit facts computed for a *different* graph
        // by tampering: easiest is to check a reflexive-cmp mismatch via
        // the justification path with a wrong folded value.
        let mut b = DfgBuilder::new("rc");
        let x = b.input("x", 8);
        let c = b.cmp(CmpPred::Ult, x, x); // always 0
        b.output("o", c);
        let g = b.finish().expect("valid");
        let out = simplify(&g).expect("simplifies");
        let mut forged = out.clone();
        for rw in forged.rewrites.iter_mut() {
            if let RewriteKind::ConstFold { value } = &mut rw.kind {
                *value ^= 1; // lie about the folded constant
            }
        }
        let ds = check_simplification(&g, &forged, 8, 7);
        assert!(ds.has_code(Code::JustificationInvalid), "{:?}", ds);
    }
}
