//! Pass 4: differential flow check.
//!
//! Given the implementations several scheduling flows produced for the
//! *same* graph, assert that every one of them is verifier-clean,
//! simulation-equivalent to the reference interpreter (and therefore to
//! each other), structurally lint-free as RTL, and — for the mapping-aware
//! flows — no worse than the first (baseline) flow on the paper's area
//! objective (Eq. 15) at the same II.
//!
//! This pass takes **pre-produced** implementations rather than invoking
//! the flows itself, so the scheduling crates can depend on this crate for
//! diagnostics without a dependency cycle.

use pipemap_ir::{Dfg, InputStreams, Target};
use pipemap_netlist::{to_verilog, verify_functional, Implementation, Qor};

use crate::diag::{Code, Diagnostic, Diagnostics};
use crate::ir_pass::lint_dfg;
use crate::netlist_pass::lint_verilog;
use crate::sched_pass::check_implementation;

/// Knobs for [`check_flows`].
#[derive(Debug, Clone)]
pub struct FlowCheckOptions {
    /// Random input vectors per differential simulation.
    pub vectors: usize,
    /// Seed for the input streams.
    pub seed: u64,
    /// LUT weight of the objective (paper Eq. 15 α).
    pub alpha: f64,
    /// FF weight of the objective (paper Eq. 15 β).
    pub beta: f64,
    /// DSP weight of the objective (γ, the §3.2 extension).
    pub gamma: f64,
    /// Also export II = 1 implementations to Verilog and lint the RTL.
    pub lint_rtl: bool,
}

impl Default for FlowCheckOptions {
    fn default() -> Self {
        FlowCheckOptions {
            vectors: 24,
            seed: 0xC0FFEE,
            alpha: 0.5,
            beta: 0.5,
            gamma: 0.0,
            lint_rtl: true,
        }
    }
}

/// The paper's area objective (Eq. 15) for one implementation.
pub fn objective(q: &Qor, opts: &FlowCheckOptions) -> f64 {
    opts.alpha * q.luts as f64 + opts.beta * q.ffs as f64 + opts.gamma * q.dsps as f64
}

/// Differentially check a set of labeled flow outputs for one graph.
///
/// The first entry is treated as the baseline for the
/// [`Code::ObjectiveRegression`] comparison (the paper compares its MILP
/// flows against the HLS tool's heuristic). Flows whose implementation
/// fails the legality pass are reported via [`Code::FlowIllegal`] (with
/// the underlying findings merged in, prefixed by the flow label) and are
/// excluded from simulation, which could otherwise panic on corrupt
/// covers.
pub fn check_flows(
    dfg: &Dfg,
    target: &Target,
    flows: &[(&str, &Implementation)],
    opts: &FlowCheckOptions,
) -> Diagnostics {
    let with_graphs: Vec<(&str, &Dfg, &Implementation)> =
        flows.iter().map(|&(l, imp)| (l, dfg, imp)).collect();
    check_flows_with_graphs(dfg, target, &with_graphs, opts)
}

/// [`check_flows`] for flows that may each have scheduled a *rewritten*
/// graph (e.g. the `pipemap-analyze` pre-pass of the MILP-map flow).
///
/// Each implementation is legality-checked and simulated against its own
/// graph; a flow graph differing from `dfg` is additionally linted and
/// replayed against the original via seeded vectors, reporting
/// [`Code::SimplifyDiverged`] on any output mismatch — so the
/// equivalence chain `implementation ≡ flow graph ≡ original` is closed
/// for every flow.
pub fn check_flows_with_graphs(
    dfg: &Dfg,
    target: &Target,
    flows: &[(&str, &Dfg, &Implementation)],
    opts: &FlowCheckOptions,
) -> Diagnostics {
    let mut ds = Diagnostics::new();

    // A broken graph makes every downstream judgment meaningless.
    let graph_ds = lint_dfg(dfg, None);
    if graph_ds.has_errors() {
        ds.merge(graph_ds);
        return ds;
    }

    let mut qors: Vec<Option<Qor>> = Vec::with_capacity(flows.len());

    for &(label, flow_dfg, imp) in flows {
        if flow_dfg != dfg {
            let fg_ds = lint_dfg(flow_dfg, None);
            if fg_ds.has_errors() {
                ds.push(Diagnostic::new(
                    Code::FlowIllegal,
                    format!(
                        "flow `{label}` scheduled a graph with {} lint error(s)",
                        fg_ds.error_count()
                    ),
                ));
                ds.merge(
                    fg_ds
                        .into_iter()
                        .map(|mut d| {
                            d.message = format!("[{label}/graph] {}", d.message);
                            d
                        })
                        .collect(),
                );
                qors.push(None);
                continue;
            }
            ds.merge(crate::analyze_pass::check_graph_equivalence(
                &format!("flow `{label}` pre-pass"),
                dfg,
                flow_dfg,
                opts.vectors,
                opts.seed,
            ));
        }
        let ins = InputStreams::random(flow_dfg, opts.vectors, opts.seed);
        let flow_ds = check_implementation(flow_dfg, target, imp);
        if flow_ds.has_errors() {
            ds.push(Diagnostic::new(
                Code::FlowIllegal,
                format!(
                    "flow `{label}` produced an illegal implementation \
                     ({} error(s) below)",
                    flow_ds.error_count()
                ),
            ));
            ds.merge(
                flow_ds
                    .into_iter()
                    .map(|mut d| {
                        d.message = format!("[{label}] {}", d.message);
                        d
                    })
                    .collect(),
            );
            qors.push(None);
            continue;
        }
        ds.merge(flow_ds); // keep warnings/info

        if let Err(e) = verify_functional(flow_dfg, target, imp, &ins, opts.vectors) {
            ds.push(Diagnostic::new(
                Code::FlowsDiverge,
                format!("flow `{label}` diverges from the reference interpreter: {e}"),
            ));
            qors.push(None);
            continue;
        }

        if opts.lint_rtl && imp.schedule.ii() == 1 {
            if let Ok(rtl) = to_verilog(flow_dfg, target, imp, &format!("{}_{label}", dfg.name())) {
                let rtl_ds = lint_verilog(&rtl);
                if rtl_ds.has_errors() {
                    ds.push(Diagnostic::new(
                        Code::FlowIllegal,
                        format!(
                            "flow `{label}` emits RTL with {} structural error(s)",
                            rtl_ds.error_count()
                        ),
                    ));
                }
                ds.merge(
                    rtl_ds
                        .into_iter()
                        .map(|mut d| {
                            d.message = format!("[{label}/rtl] {}", d.message);
                            d
                        })
                        .collect(),
                );
            }
        }

        qors.push(Some(Qor::evaluate(flow_dfg, target, imp)));
    }

    // Objective comparison against the baseline (first flow), same II only.
    if let Some(Some(base)) = qors.first() {
        let base_obj = objective(base, opts);
        for (i, q) in qors.iter().enumerate().skip(1) {
            let Some(q) = q else { continue };
            if q.ii != base.ii {
                continue;
            }
            let obj = objective(q, opts);
            if obj > base_obj + 1e-9 {
                ds.push(Diagnostic::new(
                    Code::ObjectiveRegression,
                    format!(
                        "flow `{}` scores {obj:.1} on the area objective, worse \
                         than baseline `{}` at {base_obj:.1} (same II = {})",
                        flows[i].0, flows[0].0, q.ii
                    ),
                ));
            }
        }
    }

    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::DfgBuilder;
    use pipemap_netlist::{Cover, Schedule};

    /// x^y -> &x -> +y with two legal implementations: flat (cycle 0) and
    /// split across two stages.
    fn setup() -> (Dfg, Target, Implementation, Implementation) {
        let mut b = DfgBuilder::new("d");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let t = b.xor(x, y);
        let u = b.and(t, x);
        let s = b.add(u, y);
        let o = b.output("o", s);
        let g = b.finish().expect("valid");
        let target = Target::default();
        let db = CutDb::enumerate(&g, &CutConfig::trivial_only(&target));
        let cover = Cover::new(g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect());
        let d = target.lut_level_delay();
        let mut starts = vec![0.0; g.len()];
        starts[u.index()] = d;
        starts[s.index()] = 2.0 * d;
        let flat = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], starts),
            cover: cover.clone(),
        };
        let mut cycles = vec![0; g.len()];
        cycles[s.index()] = 1;
        cycles[o.index()] = 1;
        let split = Implementation {
            schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
            cover,
        };
        (g, target, flat, split)
    }

    #[test]
    fn equivalent_legal_flows_pass_with_regression_warning() {
        let (g, t, flat, split) = setup();
        let opts = FlowCheckOptions::default();
        let ds = check_flows(&g, &t, &[("flat", &flat), ("split", &split)], &opts);
        // The split pipeline pays registers the flat one does not: that is
        // an objective regression (warning), but nothing is an error.
        assert!(!ds.has_errors(), "{}", ds.render_human("d"));
        assert!(ds.has_code(Code::ObjectiveRegression), "{:?}", ds);
    }

    #[test]
    fn illegal_flow_is_reported_and_skipped() {
        let (g, t, flat, mut split) = setup();
        // Corrupt the split flow: shrink its schedule.
        split.schedule = Schedule::new(1, vec![0; 2], vec![0.0; 2]);
        let opts = FlowCheckOptions::default();
        let ds = check_flows(&g, &t, &[("flat", &flat), ("split", &split)], &opts);
        assert!(ds.has_code(Code::FlowIllegal), "{:?}", ds);
        assert!(ds.has_code(Code::ScheduleSizeMismatch));
    }

    #[test]
    fn broken_graph_short_circuits() {
        use pipemap_ir::{Node, NodeId, Op, Port};
        let nodes = vec![Node {
            op: Op::Not,
            width: 8,
            ins: vec![Port::this_iter(NodeId(7))],
        }];
        let g = Dfg::from_raw("broken", nodes, vec![], vec![], Default::default());
        let t = Target::default();
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0], vec![0.0]),
            cover: Cover::new(vec![None]),
        };
        let ds = check_flows(&g, &t, &[("only", &imp)], &FlowCheckOptions::default());
        assert!(ds.has_code(Code::DanglingPort));
        assert!(ds.has_errors());
    }
}
