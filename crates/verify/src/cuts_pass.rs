//! Priority-cut pruning certificate audit (`P06xx`).
//!
//! [`check_priority_cuts`] independently re-checks everything a
//! [`PriorityCuts`] result claims, following the same philosophy as the
//! `P04xx`/`P05xx` passes: never trust the producer's code paths —
//! re-derive each fact from the graph with audit-local helpers.
//!
//! * **P0601** — every cut present in the raw pool but absent from the
//!   pruned database must carry a certificate or a ranked-out record.
//! * **P0602** — each dominance certificate is re-derived: same root,
//!   retained cut survives into the final database, its boundary
//!   signals are a subset of the pruned cut's (hence ⊆ register
//!   pressure), its LUT level is no deeper, and its cone cost is no
//!   higher (a pure-wire cone is free; pruning the free option in
//!   favour of a "smaller" cut that absorbs real logic would move the
//!   optimum).
//! * **P0603** — each dead-root certificate is confronted with a fresh
//!   `pipemap-analyze` liveness run: the root must really have no live
//!   bits.
//! * **P0604** — independent cover-feasibility recount: every
//!   LUT-mappable node keeps a non-empty cut set starting with its unit
//!   cut, and every kept cut's cone still closes against its boundary.
//! * **P0605** — structural integrity of the result: kept cuts come
//!   from the raw pool, respect the per-root cap, contain no
//!   duplicates, and ranked-out records only exist where the cap binds.
//! * **P0606** — objective invariance spot-check: on small graphs where
//!   every drop was certified (no heuristic rank-outs, no liveness
//!   drops), a self-contained covering MILP over the raw and pruned
//!   databases must reach the same optimum.

use std::time::Duration;

use pipemap_analyze::Analysis;
use pipemap_cuts::{Cut, CutCertificate, CutDb, PriorityCuts, Signal};
use pipemap_ir::{Dfg, NodeId, Op};
use pipemap_milp::{LinExpr, Model, Sense, SolverOptions, Status};

use crate::diag::{Code, Diagnostic, Diagnostics};

/// Graphs up to this many nodes get the P0606 cover-MILP spot-check.
const OBJECTIVE_CHECK_MAX_NODES: usize = 48;
/// Wall-clock budget per cover-MILP solve in the spot-check.
const OBJECTIVE_CHECK_TIME_LIMIT: Duration = Duration::from_secs(10);
/// Objective agreement tolerance for P0606.
const OBJ_TOL: f64 = 1e-6;

/// Audit a [`PriorityCuts`] pruning result against its graph. See the
/// module docs for the `P0601`–`P0606` checks performed.
pub fn check_priority_cuts(dfg: &Dfg, out: &PriorityCuts) -> Diagnostics {
    let mut diags = Diagnostics::new();

    if out.db.k() != out.raw.k() {
        diags.push(Diagnostic::new(
            Code::CutSetMalformed,
            format!(
                "pruned database K={} disagrees with raw K={}",
                out.db.k(),
                out.raw.k()
            ),
        ));
    }
    let Ok(topo) = dfg.topo_order() else {
        diags.push(Diagnostic::new(
            Code::CutSetMalformed,
            "graph has no topological order; cannot audit cut pruning",
        ));
        return diags;
    };

    // Audit-local LUT levels over the raw pool (for the P0602 depth
    // re-derivation). Registered and non-mappable boundaries are level 0.
    let mut depth = vec![0u32; dfg.len()];
    for &v in &topo {
        let set = out.raw.cuts(v);
        if set.is_empty() {
            continue;
        }
        depth[v.index()] = set
            .cuts()
            .iter()
            .map(|c| cut_level(c, &depth))
            .min()
            .unwrap_or(0);
    }

    for v in dfg.node_ids() {
        audit_node(dfg, out, v, &mut diags);
    }
    for cert in &out.certificates {
        match cert {
            CutCertificate::Dominated {
                root,
                pruned,
                retained,
            } => audit_dominance(dfg, out, *root, pruned, retained, &depth, &mut diags),
            CutCertificate::DeadRoot { .. } => {}
        }
    }
    audit_dead_roots(dfg, out, &mut diags);
    audit_objective(dfg, out, &mut diags);
    diags
}

/// Per-node structural audit: P0601, P0604, P0605.
fn audit_node(dfg: &Dfg, out: &PriorityCuts, v: NodeId, diags: &mut Diagnostics) {
    let raw = out.raw.cuts(v).cuts();
    let kept = out.db.cuts(v).cuts();
    let label = dfg.label(v);

    // P0604: cover feasibility. Every mappable node must stay coverable:
    // non-empty set headed by an independently recomputed unit cut.
    if dfg.node(v).op.is_lut_mappable() {
        match kept.first() {
            None => {
                diags.push(
                    Diagnostic::new(
                        Code::CutCoverInfeasible,
                        format!("mappable node {label} has no cuts after pruning"),
                    )
                    .with_node(v),
                );
                return;
            }
            Some(first) => {
                let unit = unit_signals(dfg, v);
                if first.inputs() != unit.as_slice() {
                    diags.push(
                        Diagnostic::new(
                            Code::CutCoverInfeasible,
                            format!(
                                "{label}: first kept cut {first} is not the unit cut after pruning"
                            ),
                        )
                        .with_node(v),
                    );
                }
            }
        }
    }

    // P0605: kept cuts must come from the raw pool, without duplicates,
    // within the per-root cap.
    if kept.len() > out.max_cuts_per_root {
        diags.push(
            Diagnostic::new(
                Code::CutSetMalformed,
                format!(
                    "{label}: {} cuts kept, cap is {}",
                    kept.len(),
                    out.max_cuts_per_root
                ),
            )
            .with_node(v),
        );
    }
    for (i, c) in kept.iter().enumerate() {
        if !raw.iter().any(|r| r.inputs() == c.inputs()) {
            diags.push(
                Diagnostic::new(
                    Code::CutSetMalformed,
                    format!("{label}: kept cut {c} does not exist in the raw pool"),
                )
                .with_node(v),
            );
        }
        if kept[..i].iter().any(|p| p.inputs() == c.inputs()) {
            diags.push(
                Diagnostic::new(
                    Code::CutSetMalformed,
                    format!("{label}: duplicate kept cut {c}"),
                )
                .with_node(v),
            );
        }
        // P0604: the cone must still close against the cut's boundary.
        if cone_closes(dfg, v, c).is_none() {
            diags.push(
                Diagnostic::new(
                    Code::CutCoverInfeasible,
                    format!("{label}: kept cut {c} does not cover its cone"),
                )
                .with_node(v),
            );
        }
    }

    // P0601 / P0605: every dropped raw cut is accounted for exactly once
    // as a certificate or a ranked-out record; rank-outs require the cap
    // to bind.
    let ranked_here: Vec<&Cut> = out
        .ranked_out
        .iter()
        .filter(|(r, _)| *r == v)
        .map(|(_, c)| c)
        .collect();
    if !ranked_here.is_empty() && kept.len() < out.max_cuts_per_root {
        diags.push(
            Diagnostic::new(
                Code::CutSetMalformed,
                format!(
                    "{label}: {} cuts ranked out while only {} of {} kept slots are used",
                    ranked_here.len(),
                    kept.len(),
                    out.max_cuts_per_root
                ),
            )
            .with_node(v),
        );
    }
    for r in raw {
        if kept.iter().any(|c| c.inputs() == r.inputs()) {
            continue;
        }
        let certified = out
            .certificates
            .iter()
            .any(|c| c.root() == v && c.pruned().inputs() == r.inputs());
        let ranked = ranked_here.iter().any(|c| c.inputs() == r.inputs());
        if !certified && !ranked {
            diags.push(
                Diagnostic::new(
                    Code::CutPruneUncertified,
                    format!("{label}: cut {r} was dropped without certificate or rank-out record"),
                )
                .with_node(v),
            );
        }
    }
}

/// P0602: re-derive one dominance certificate.
fn audit_dominance(
    dfg: &Dfg,
    out: &PriorityCuts,
    root: NodeId,
    pruned: &Cut,
    retained: &Cut,
    depth: &[u32],
    diags: &mut Diagnostics,
) {
    let label = dfg.label(root);
    if !out
        .db
        .cuts(root)
        .cuts()
        .iter()
        .any(|c| c.inputs() == retained.inputs())
    {
        diags.push(
            Diagnostic::new(
                Code::CutDominanceInvalid,
                format!("{label}: retained cut {retained} is absent from the pruned database"),
            )
            .with_node(root),
        );
        return;
    }
    if !is_subset(retained.inputs(), pruned.inputs()) {
        diags.push(
            Diagnostic::new(
                Code::CutDominanceInvalid,
                format!("{label}: {retained} is not an input subset of pruned cut {pruned}"),
            )
            .with_node(root),
        );
        return;
    }
    if cut_level(retained, depth) > cut_level(pruned, depth) {
        diags.push(
            Diagnostic::new(
                Code::CutDominanceInvalid,
                format!("{label}: retained cut {retained} is deeper than pruned cut {pruned}"),
            )
            .with_node(root),
        );
    }
    match (cut_cost(dfg, root, retained), cut_cost(dfg, root, pruned)) {
        (Some(kc), Some(pc)) if kc <= pc => {}
        (Some(kc), Some(pc)) => {
            diags.push(
                Diagnostic::new(
                    Code::CutDominanceInvalid,
                    format!(
                        "{label}: retained cut {retained} costs {kc} LUT bits but pruned cut \
                         {pruned} costs {pc} — pruning the cheaper option moves the optimum"
                    ),
                )
                .with_node(root),
            );
        }
        _ => {
            diags.push(
                Diagnostic::new(
                    Code::CutDominanceInvalid,
                    format!("{label}: certificate references a cut whose cone does not close"),
                )
                .with_node(root),
            );
        }
    }
}

/// P0603: confront every dead-root certificate with fresh liveness facts.
fn audit_dead_roots(dfg: &Dfg, out: &PriorityCuts, diags: &mut Diagnostics) {
    let dead_roots: Vec<NodeId> = out
        .certificates
        .iter()
        .filter(|c| matches!(c, CutCertificate::DeadRoot { .. }))
        .map(CutCertificate::root)
        .collect();
    if dead_roots.is_empty() {
        return;
    }
    let Ok(analysis) = Analysis::run(dfg) else {
        for root in dead_roots {
            diags.push(
                Diagnostic::new(
                    Code::CutLivenessInvalid,
                    format!(
                        "{}: dead-root certificate but liveness analysis failed on this graph",
                        dfg.label(root)
                    ),
                )
                .with_node(root),
            );
        }
        return;
    };
    for root in dead_roots {
        if analysis.live(root) != 0 {
            diags.push(
                Diagnostic::new(
                    Code::CutLivenessInvalid,
                    format!(
                        "{}: dead-root certificate but liveness mask is {:#x}",
                        dfg.label(root),
                        analysis.live(root)
                    ),
                )
                .with_node(root),
            );
        }
    }
}

/// P0606: on small, fully-certified prunes, the raw and pruned cover
/// MILPs must agree on the optimum.
fn audit_objective(dfg: &Dfg, out: &PriorityCuts, diags: &mut Diagnostics) {
    let fully_certified = out.ranked_out.is_empty()
        && !out
            .certificates
            .iter()
            .any(|c| matches!(c, CutCertificate::DeadRoot { .. }));
    if !fully_certified || dfg.len() > OBJECTIVE_CHECK_MAX_NODES {
        return;
    }
    let Some(raw) = solve_cover(dfg, &out.raw) else {
        return; // budget exhausted — inconclusive, not a finding
    };
    let Some(pruned) = solve_cover(dfg, &out.db) else {
        return;
    };
    match (raw, pruned) {
        ((Status::Optimal, ro), (Status::Optimal, po)) if (ro - po).abs() > OBJ_TOL => {
            diags.push(Diagnostic::new(
                Code::CutObjectiveDrift,
                format!(
                    "cover optimum moved from {ro} (raw) to {po} (pruned) although every \
                     drop was certified"
                ),
            ));
        }
        ((Status::Optimal, _), (Status::Optimal, _)) => {}
        ((rs, _), (ps, _)) if rs != ps => {
            diags.push(Diagnostic::new(
                Code::CutObjectiveDrift,
                format!("cover status {rs:?} (raw) vs {ps:?} (pruned) under certified pruning"),
            ));
        }
        _ => {}
    }
}

/// Minimum-area covering MILP over one cut database: pick at most one
/// cut per node, force roots where values escape to registers, outputs
/// or black boxes, and require every selected boundary signal to be
/// produced by a root. Returns `None` when the solver gives up.
fn solve_cover(dfg: &Dfg, db: &CutDb) -> Option<(Status, f64)> {
    let mut m = Model::new("cut-cover-audit");
    // One binary per (node, cut), objective = independent cone cost.
    let mut vars: Vec<Vec<_>> = Vec::with_capacity(dfg.len());
    for v in dfg.node_ids() {
        let mut row = Vec::new();
        for cut in db.cuts(v).cuts() {
            row.push(m.add_binary(cut_cost(dfg, v, cut)?));
        }
        vars.push(row);
    }
    let consumers = dfg.consumers();
    for (id, node) in dfg.iter() {
        let vi = id.index();
        if vars[vi].is_empty() {
            continue;
        }
        // At most one cut selected per node.
        let mut sum = LinExpr::new();
        for &x in &vars[vi] {
            sum.add_term(1.0, x);
        }
        m.add_constraint(sum.clone(), Sense::Le, 1.0);
        // Forced root: some consumer needs the real signal (register
        // edge, output marker, black box).
        let forced = consumers[vi].iter().any(|&(c, port)| {
            let cn = dfg.node(c);
            cn.ins[port].dist > 0 || !cn.op.is_lut_mappable()
        });
        if forced && node.op.is_lut_mappable() {
            m.add_constraint(sum, Sense::Ge, 1.0);
        }
        // Selecting a cut requires each mappable distance-0 boundary to
        // be produced by a root: sum(u's cuts) - x >= 0.
        for (ci, cut) in db.cuts(id).cuts().iter().enumerate() {
            for s in cut.inputs() {
                if s.dist != 0 || !dfg.node(s.node).op.is_lut_mappable() {
                    continue;
                }
                let mut e = LinExpr::new();
                for &u in &vars[s.node.index()] {
                    e.add_term(1.0, u);
                }
                e.add_term(-1.0, vars[vi][ci]);
                m.add_constraint(e, Sense::Ge, 0.0);
            }
        }
    }
    let r = m
        .solve(&SolverOptions {
            time_limit: OBJECTIVE_CHECK_TIME_LIMIT,
            ..SolverOptions::default()
        })
        .ok()?;
    Some((r.status, r.objective))
}

/// Audit-local unit-cut recount: direct fan-in minus constants, sorted.
fn unit_signals(dfg: &Dfg, v: NodeId) -> Vec<Signal> {
    let mut sigs: Vec<Signal> = dfg
        .node(v)
        .ins
        .iter()
        .filter(|p| !matches!(dfg.node(p.node).op, Op::Const(_)))
        .map(|p| Signal {
            node: p.node,
            dist: p.dist,
        })
        .collect();
    sigs.sort();
    sigs.dedup();
    sigs
}

/// Audit-local subset check over sorted signal slices.
fn is_subset(small: &[Signal], big: &[Signal]) -> bool {
    small.iter().all(|s| big.binary_search(s).is_ok())
}

/// LUT level of a cut given per-node levels (registered leaves are 0).
fn cut_level(cut: &Cut, depth: &[u32]) -> u32 {
    1 + cut
        .inputs()
        .iter()
        .map(|s| {
            if s.dist == 0 {
                depth[s.node.index()]
            } else {
                0
            }
        })
        .max()
        .unwrap_or(0)
}

/// Audit-local cone walk: the interior nodes of `root`'s cone under
/// `cut`, or `None` when the cone fails to close against the boundary
/// (crosses a register, a black box, or leaves the graph).
fn cone_closes(dfg: &Dfg, root: NodeId, cut: &Cut) -> Option<Vec<NodeId>> {
    let mut interior = vec![root];
    let mut stack = vec![root];
    let mut seen = std::collections::HashSet::from([root]);
    while let Some(n) = stack.pop() {
        for p in &dfg.node(n).ins {
            let sig = Signal {
                node: p.node,
                dist: p.dist,
            };
            if cut.inputs().binary_search(&sig).is_ok() {
                continue;
            }
            let sub = dfg.node(p.node);
            if matches!(sub.op, Op::Const(_)) {
                continue;
            }
            if p.dist != 0 || !sub.op.is_lut_mappable() {
                return None;
            }
            if seen.insert(p.node) {
                interior.push(p.node);
                stack.push(p.node);
            }
        }
    }
    Some(interior)
}

/// Audit-local cone cost: pure-wire cones are free, anything else costs
/// the root's width. `None` when the cone does not close.
fn cut_cost(dfg: &Dfg, root: NodeId, cut: &Cut) -> Option<f64> {
    let interior = cone_closes(dfg, root, cut)?;
    if interior.iter().all(|&n| dfg.node(n).op.is_wire()) {
        Some(0.0)
    } else {
        Some(f64::from(dfg.node(root).width))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::{priority_cuts, CutConfig, PruneConfig};
    use pipemap_ir::DfgBuilder;

    fn diamond() -> Dfg {
        let mut b = DfgBuilder::new("diamond");
        let x = b.input("x", 1);
        let y = b.input("y", 1);
        let a = b.xor(x, y);
        let n1 = b.not(a);
        let n2 = b.xor(a, y);
        let r = b.xor(n1, n2);
        b.output("o", r);
        b.finish().expect("valid")
    }

    #[test]
    fn clean_prune_audits_clean() {
        let g = diamond();
        let out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        let diags = check_priority_cuts(&g, &out);
        assert!(
            diags.is_empty(),
            "audit found problems:\n{}",
            diags.render_human("diamond")
        );
    }

    #[test]
    fn fully_certified_prune_passes_objective_check() {
        let g = diamond();
        let out = priority_cuts(
            &g,
            &CutConfig {
                max_cuts: 32,
                ..CutConfig::default()
            },
            &PruneConfig {
                max_cuts_per_root: 64,
                raw_cuts: 64,
                ..PruneConfig::default()
            },
        );
        assert!(out.ranked_out.is_empty(), "caps must not bind here");
        let diags = check_priority_cuts(&g, &out);
        assert!(
            diags.is_empty(),
            "audit found problems:\n{}",
            diags.render_human("diamond")
        );
    }

    #[test]
    fn forged_dominance_certificate_is_caught() {
        let g = diamond();
        let mut out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        // Forge: claim some kept cut dominates a cut it does not subset.
        let root = g
            .node_ids()
            .find(|&v| out.db.cuts(v).len() > 1)
            .expect("a node with a non-unit kept cut");
        let kept = out.db.cuts(root).cuts()[1].clone();
        let unit = out.db.cuts(root).unit().expect("unit").clone();
        out.certificates.push(CutCertificate::Dominated {
            root,
            pruned: unit, // the unit cut is kept, not pruned — malformed
            retained: kept,
        });
        let diags = check_priority_cuts(&g, &out);
        assert!(
            diags.has_code(Code::CutDominanceInvalid) || diags.has_code(Code::CutSetMalformed),
            "forged certificate slipped through:\n{}",
            diags.render_human("diamond")
        );
    }

    #[test]
    fn forged_dead_root_certificate_is_caught() {
        let g = diamond();
        let mut out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        let root = g
            .node_ids()
            .find(|&v| !out.db.cuts(v).is_empty())
            .expect("a mappable node");
        let pruned = out.db.cuts(root).unit().expect("unit").clone();
        out.certificates
            .push(CutCertificate::DeadRoot { root, pruned });
        let diags = check_priority_cuts(&g, &out);
        assert!(
            diags.has_code(Code::CutLivenessInvalid),
            "live node accepted as dead:\n{}",
            diags.render_human("diamond")
        );
    }

    #[test]
    fn secretly_dropped_cut_is_caught() {
        let g = diamond();
        let mut out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        // Drop a certificate so one pruned cut becomes unaccounted for.
        let pos = out
            .certificates
            .iter()
            .position(|c| matches!(c, CutCertificate::Dominated { .. }));
        if let Some(pos) = pos {
            out.certificates.remove(pos);
            let diags = check_priority_cuts(&g, &out);
            assert!(
                diags.has_code(Code::CutPruneUncertified),
                "uncertified drop slipped through:\n{}",
                diags.render_human("diamond")
            );
        }
    }

    #[test]
    fn truncated_database_fails_cover_recount() {
        let g = diamond();
        let mut out = priority_cuts(&g, &CutConfig::default(), &PruneConfig::default());
        // Empty one mappable node's kept set entirely.
        let victim = g
            .node_ids()
            .find(|&v| !out.db.cuts(v).is_empty())
            .expect("mappable node");
        let mut sets: Vec<_> = g.node_ids().map(|v| out.db.cuts(v).clone()).collect();
        sets[victim.index()] = Default::default();
        out.db = CutDb::from_sets(out.db.k(), sets);
        let diags = check_priority_cuts(&g, &out);
        assert!(
            diags.has_code(Code::CutCoverInfeasible),
            "uncoverable node slipped through:\n{}",
            diags.render_human("diamond")
        );
    }
}
