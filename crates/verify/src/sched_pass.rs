//! Pass 2: schedule & cover legality.
//!
//! A diagnostics-collecting superset of
//! [`pipemap_netlist::verify`](pipemap_netlist::verify): where the netlist
//! crate's checker returns the *first* violated invariant as an
//! [`ImplError`](pipemap_netlist::ImplError), this pass reports **every**
//! violation, tolerates malformed inputs (wrong-length schedules/covers)
//! without panicking, and adds checks the fast path omits: cut
//! K-feasibility, cone consistency, intra-cycle start-time sanity, and an
//! independent QoR recount cross-checked against
//! [`pipemap_netlist::Qor`].

use std::collections::HashMap;

use pipemap_cuts::{Cut, Signal};
use pipemap_ir::{Dfg, NodeId, Op, Target};
use pipemap_netlist::{consumed_signals, Implementation, Qor};

use crate::diag::{Code, Diagnostic, Diagnostics};

/// Check every legality invariant of an implementation, collecting all
/// violations.
///
/// The paper-facing invariants mirror the MILP's constraint system:
/// cover legality (Eqs. 2–4), dependences modulo II (Eq. 7), cycle time
/// (Eqs. 8–9), and modulo resources (Eq. 14) — plus structural checks
/// (vector sizes, start times, K-feasibility, cone consistency) and a QoR
/// recount. Never panics, even on corrupted inputs.
pub fn check_implementation(dfg: &Dfg, target: &Target, imp: &Implementation) -> Diagnostics {
    let mut ds = Diagnostics::new();
    let n = dfg.len();
    let sched = &imp.schedule;
    let cover = &imp.cover;

    if sched.len() != n {
        ds.push(Diagnostic::new(
            Code::ScheduleSizeMismatch,
            format!(
                "schedule covers {} node(s) but the graph has {n}",
                sched.len()
            ),
        ));
    }
    if cover.len() != n {
        ds.push(Diagnostic::new(
            Code::ScheduleSizeMismatch,
            format!(
                "cover describes {} node(s) but the graph has {n}",
                cover.len()
            ),
        ));
    }
    // Every later check indexes schedule/cover by node id; with
    // mismatched sizes that would panic, so stop here.
    if sched.len() != n || cover.len() != n {
        return ds;
    }

    let ii = sched.ii();

    for id in dfg.node_ids() {
        let s = sched.start(id);
        if s.is_nan() || s < 0.0 || s > target.t_cp + 1e-6 {
            ds.push(
                Diagnostic::new(
                    Code::InvalidStartTime,
                    format!(
                        "`{}` starts at {s} ns, outside [0, {}]",
                        dfg.label(id),
                        target.t_cp
                    ),
                )
                .with_node(id),
            );
        }
    }

    // Cover legality (Eq. 2): every consumed signal has a producing root.
    let consumed = consumed_signals(dfg, cover);
    for &(consumer, sig) in &consumed {
        if !cover.produces_signal(dfg, sig.node) {
            ds.push(
                Diagnostic::new(
                    Code::MissingRoot,
                    format!(
                        "`{}` reads `{}`, which is neither a mapped root nor a \
                         native signal",
                        dfg.label(consumer),
                        dfg.label(sig.node)
                    ),
                )
                .with_node(consumer),
            );
        }
    }
    // Primary outputs are fed by roots (Eq. 3).
    for o in dfg.outputs() {
        let Some(p) = dfg.node(o).ins.first() else {
            continue; // arity violation: the IR pass reports it
        };
        let src = p.node;
        if src.index() < n
            && !cover.produces_signal(dfg, src)
            && !matches!(dfg.node(src).op, Op::Const(_))
        {
            ds.push(
                Diagnostic::new(
                    Code::OutputNotRoot,
                    format!(
                        "primary output `{}` is fed by `{}`, which is not a root",
                        dfg.label(o),
                        dfg.label(src)
                    ),
                )
                .with_node(o),
            );
        }
    }

    // Cut K-feasibility and cone consistency. Unit cuts (direct fan-in
    // boundary) are exempt from the K bound: they model the op's native
    // implementation — e.g. a carry chain for a wide adder — exactly as
    // cut enumeration keeps them regardless of bit support.
    for root in cover.roots() {
        let cut = cover.cut(root).expect("roots() yields selected nodes");
        if !is_unit_cut(dfg, root, cut) && cut.max_bit_support() > target.k {
            ds.push(
                Diagnostic::new(
                    Code::CutNotKFeasible,
                    format!(
                        "cut {cut} of `{}` needs {} bit inputs but the device \
                         has {}-input LUTs",
                        dfg.label(root),
                        cut.max_bit_support(),
                        target.k
                    ),
                )
                .with_node(root),
            );
        }
        if !dfg.node(root).op.is_lut_mappable() {
            ds.push(
                Diagnostic::new(
                    Code::ConeInconsistent,
                    format!(
                        "`{}` ({}) is not LUT-mappable but carries a cut",
                        dfg.label(root),
                        dfg.node(root).op
                    ),
                )
                .with_node(root),
            );
            continue;
        }
        if let Err(msg) = walk_cone(dfg, root, cut) {
            ds.push(
                Diagnostic::new(
                    Code::ConeInconsistent,
                    format!("cone of `{}` is inconsistent: {msg}", dfg.label(root)),
                )
                .with_node(root),
            );
        }
    }

    // Dependences with latency (Eq. 7 generalized).
    for &(consumer, sig) in &consumed {
        if sig.node.index() >= n {
            continue; // dangling: the IR pass reports it
        }
        let u = sig.node;
        let un = dfg.node(u);
        let lat = target.op_latency(&un.op, un.width);
        let avail = sched.cycle(u) + lat;
        let need = sched.cycle(consumer) + ii * sig.dist;
        if avail > need {
            ds.push(
                Diagnostic::new(
                    Code::DependenceViolated,
                    format!(
                        "`{}` (ready cycle {avail}) not available when `{}` \
                         starts (cycle {need})",
                        dfg.label(u),
                        dfg.label(consumer)
                    ),
                )
                .with_node(consumer),
            );
        }
    }

    // Cycle time (Eqs. 8-9) needs a topological order; on a cyclic graph
    // the IR pass owns the report.
    if dfg.topo_order().is_ok() {
        let sta = pipemap_netlist::arrival_times(dfg, target, imp);
        let worst = sta.iter().cloned().fold(0.0, f64::max);
        if worst > target.t_cp + 1e-6 {
            ds.push(Diagnostic::new(
                Code::CycleTimeExceeded,
                format!(
                    "critical path {worst:.3} ns exceeds the {:.3} ns target period",
                    target.t_cp
                ),
            ));
        }

        // Independent QoR recount, cross-checked against the netlist
        // crate's evaluator — a divergence means one of the two area
        // models is wrong.
        let reported = Qor::evaluate(dfg, target, imp);
        let (luts, ffs) = recount_area(dfg, target, imp);
        if reported.luts != luts {
            ds.push(Diagnostic::new(
                Code::QorMismatch,
                format!(
                    "LUT recount disagrees: evaluator reports {}, recount \
                     finds {luts}",
                    reported.luts
                ),
            ));
        }
        if reported.ffs != ffs {
            ds.push(Diagnostic::new(
                Code::QorMismatch,
                format!(
                    "FF recount disagrees: evaluator reports {}, recount \
                     finds {ffs}",
                    reported.ffs
                ),
            ));
        }
    }

    // Modulo resource constraints (Eq. 14).
    let mut usage: HashMap<(pipemap_ir::Resource, u32), u32> = HashMap::new();
    for (id, node) in dfg.iter() {
        if let Some(res) = node.op.resource() {
            let slot = sched.cycle(id) % ii;
            *usage.entry((res, slot)).or_insert(0) += 1;
        }
    }
    let mut over: Vec<_> = usage
        .into_iter()
        .filter_map(|((res, slot), used)| {
            let limit = target.resource_limit(res)?;
            (used > limit).then_some((res, slot, used, limit))
        })
        .collect();
    over.sort_by_key(|&(res, slot, _, _)| (res, slot));
    for (res, slot, used, limit) in over {
        ds.push(Diagnostic::new(
            Code::ResourceOversubscribed,
            format!("resource {res} used {used} time(s) in modulo slot {slot}, limit {limit}"),
        ));
    }

    ds
}

/// `true` when `cut` is exactly the root's unit cut: its boundary is the
/// direct (non-constant) fan-in signal set.
fn is_unit_cut(dfg: &Dfg, root: NodeId, cut: &Cut) -> bool {
    let mut unit: Vec<Signal> = dfg
        .node(root)
        .ins
        .iter()
        .filter(|p| p.node.index() < dfg.len())
        .filter(|p| !matches!(dfg.node(p.node).op, Op::Const(_)))
        .map(|p| Signal {
            node: p.node,
            dist: p.dist,
        })
        .collect();
    unit.sort();
    unit.dedup();
    unit == cut.inputs()
}

/// Walk a root's cone over distance-0 fan-in edges, stopping at cut
/// signals and constants. Unlike
/// [`pipemap_cuts::cone_nodes`](pipemap_cuts::cone_nodes) this never
/// panics: register crossings, unmappable interiors, and dangling ports
/// are returned as an error description.
fn walk_cone(dfg: &Dfg, root: NodeId, cut: &Cut) -> Result<Vec<NodeId>, String> {
    let n = dfg.len();
    let mut order = Vec::new();
    let mut visited = std::collections::HashSet::new();
    visited.insert(root);
    let mut stack = vec![root];
    while let Some(v) = stack.pop() {
        order.push(v);
        for p in &dfg.node(v).ins {
            let sig = Signal {
                node: p.node,
                dist: p.dist,
            };
            if cut.inputs().binary_search(&sig).is_ok() {
                continue; // boundary signal
            }
            if p.node.index() >= n {
                return Err(format!("reaches dangling node {}", p.node));
            }
            let sub = dfg.node(p.node);
            if matches!(sub.op, Op::Const(_)) {
                continue; // absorbed constant
            }
            if p.dist != 0 {
                return Err(format!(
                    "crosses a register edge `{}@-{}` not in the cut",
                    dfg.label(p.node),
                    p.dist
                ));
            }
            if !sub.op.is_lut_mappable() {
                return Err(format!(
                    "reaches unmappable node `{}` ({}) not in the cut",
                    dfg.label(p.node),
                    sub.op
                ));
            }
            if visited.insert(p.node) {
                stack.push(p.node);
            }
        }
    }
    Ok(order)
}

/// Independent LUT/FF recount — a from-scratch reimplementation of the
/// paper's area model (Bits(v) per non-wiring root; Eqs. 10–13 liveness
/// for registers) sharing no code with `pipemap_netlist::qor`.
fn recount_area(dfg: &Dfg, target: &Target, imp: &Implementation) -> (u64, u64) {
    let ii = imp.schedule.ii();
    let mut luts = 0u64;
    for root in imp.cover.roots() {
        let node = dfg.node(root);
        if !node.op.is_lut_mappable() {
            continue;
        }
        let cut = imp.cover.cut(root).expect("root has a cut");
        let has_logic = match walk_cone(dfg, root, cut) {
            Ok(cone) => cone.iter().any(|&v| !dfg.node(v).op.is_wire()),
            Err(_) => true, // broken cone: counted conservatively
        };
        if has_logic {
            luts += u64::from(node.width);
        }
    }

    // FF recount: a value occupies Bits(v) registers for each cycle
    // between its availability and its last consumption.
    let mut last_use: Vec<Option<u32>> = vec![None; dfg.len()];
    let mut note = |sig: Signal, at: u32| {
        let slot = &mut last_use[sig.node.index()];
        *slot = Some(slot.map_or(at, |x| x.max(at)));
    };
    for (id, node) in dfg.iter() {
        if node.op.is_lut_mappable() {
            if let Some(cut) = imp.cover.cut(id) {
                for &s in cut.inputs() {
                    note(s, imp.schedule.cycle(id) + ii * s.dist);
                }
            }
        } else if !matches!(node.op, Op::Input | Op::Const(_)) {
            for p in &node.ins {
                if matches!(dfg.node(p.node).op, Op::Const(_)) {
                    continue;
                }
                note(
                    Signal {
                        node: p.node,
                        dist: p.dist,
                    },
                    imp.schedule.cycle(id) + ii * p.dist,
                );
            }
        }
    }
    let mut ffs = 0u64;
    for (id, node) in dfg.iter() {
        if matches!(node.op, Op::Const(_) | Op::Output) {
            continue;
        }
        if !imp.cover.produces_signal(dfg, id) {
            continue;
        }
        if let Some(last) = last_use[id.index()] {
            let avail = imp.schedule.cycle(id) + target.op_latency(&node.op, node.width);
            ffs += u64::from(node.width) * u64::from(last.saturating_sub(avail));
        }
    }
    (luts, ffs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_cuts::{CutConfig, CutDb};
    use pipemap_ir::DfgBuilder;
    use pipemap_netlist::{Cover, Schedule};

    fn simple() -> (Dfg, Vec<NodeId>) {
        let mut b = DfgBuilder::new("s");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let t = b.xor(x, y);
        let u = b.and(t, x);
        let o = b.output("o", u);
        (b.finish().expect("valid"), vec![x, y, t, u, o])
    }

    fn unit_cover(dfg: &Dfg, target: &Target) -> Cover {
        let db = CutDb::enumerate(dfg, &CutConfig::trivial_only(target));
        Cover::new(dfg.node_ids().map(|v| db.cuts(v).unit().cloned()).collect())
    }

    fn legal_imp(dfg: &Dfg, target: &Target, ids: &[NodeId]) -> Implementation {
        let d = target.lut_level_delay();
        let mut starts = vec![0.0; dfg.len()];
        starts[ids[3].index()] = d;
        Implementation {
            schedule: Schedule::new(1, vec![0; dfg.len()], starts),
            cover: unit_cover(dfg, target),
        }
    }

    #[test]
    fn legal_implementation_is_clean() {
        let (g, ids) = simple();
        let t = Target::default();
        let imp = legal_imp(&g, &t, &ids);
        let ds = check_implementation(&g, &t, &imp);
        assert!(ds.is_empty(), "{:?}", ds);
    }

    #[test]
    fn wrong_length_schedule_is_rejected_not_panicked() {
        let (g, _) = simple();
        let t = Target::default();
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; 2], vec![0.0; 2]),
            cover: unit_cover(&g, &t),
        };
        let ds = check_implementation(&g, &t, &imp);
        assert!(ds.has_code(Code::ScheduleSizeMismatch), "{:?}", ds);
    }

    #[test]
    fn invalid_start_time_is_reported() {
        let (g, ids) = simple();
        let t = Target::default();
        let mut imp = legal_imp(&g, &t, &ids);
        let mut starts = vec![0.0; g.len()];
        starts[ids[2].index()] = f64::NAN;
        starts[ids[3].index()] = -1.0;
        imp.schedule = Schedule::new(1, vec![0; g.len()], starts);
        let ds = check_implementation(&g, &t, &imp);
        assert!(ds.has_code(Code::InvalidStartTime));
        assert!(
            ds.iter()
                .filter(|d| d.code == Code::InvalidStartTime)
                .count()
                >= 2
        );
    }

    #[test]
    fn collects_multiple_dependence_violations() {
        let (g, ids) = simple();
        let t = Target::default();
        let mut cycles = vec![0; g.len()];
        cycles[ids[2].index()] = 3; // xor after both consumers
        let imp = Implementation {
            schedule: Schedule::new(1, cycles, vec![0.0; g.len()]),
            cover: unit_cover(&g, &t),
        };
        let ds = check_implementation(&g, &t, &imp);
        // and-node and the output both read the late xor transitively;
        // at least the direct consumer must be flagged.
        assert!(ds.has_code(Code::DependenceViolated), "{:?}", ds);
    }

    #[test]
    fn k_infeasible_cut_is_rejected() {
        // Enumerate with K=6, then check against a K=4 device: any
        // selected cut with 5- or 6-bit support must be flagged.
        let mut b = DfgBuilder::new("wide");
        let mut pool = Vec::new();
        for i in 0..6 {
            pool.push(b.input(format!("i{i}"), 1));
        }
        let mut acc = pool[0];
        for &p in &pool[1..] {
            acc = b.xor(acc, p);
        }
        b.output("o", acc);
        let g = b.finish().expect("valid");
        let k6 = Target::k6();
        let db = CutDb::enumerate(&g, &CutConfig::for_target(&k6));
        let wide = db
            .cuts(acc)
            .cuts()
            .iter()
            .find(|c| c.max_bit_support() > 4)
            .expect("a >4-input cut exists under K=6")
            .clone();
        let mut selected: Vec<Option<pipemap_cuts::Cut>> =
            g.node_ids().map(|v| db.cuts(v).unit().cloned()).collect();
        selected[acc.index()] = Some(wide);
        let imp = Implementation {
            schedule: Schedule::new(1, vec![0; g.len()], vec![0.0; g.len()]),
            cover: Cover::new(selected),
        };
        let k4 = Target::default();
        let ds = check_implementation(&g, &k4, &imp);
        assert!(ds.has_code(Code::CutNotKFeasible), "{:?}", ds);
    }

    #[test]
    fn matches_netlist_verify_on_violations() {
        // Where the fast checker finds its first error, this pass must
        // find (at least) the same class.
        let (g, ids) = simple();
        let t = Target::default();
        let mut cover = unit_cover(&g, &t);
        let imp_ok = legal_imp(&g, &t, &ids);
        cover = {
            let mut sel: Vec<Option<pipemap_cuts::Cut>> =
                g.node_ids().map(|v| cover.cut(v).cloned()).collect();
            sel[ids[2].index()] = None; // absorb xor into nothing
            Cover::new(sel)
        };
        let imp = Implementation {
            schedule: imp_ok.schedule.clone(),
            cover,
        };
        assert!(pipemap_netlist::verify(&g, &t, &imp).is_err());
        let ds = check_implementation(&g, &t, &imp);
        assert!(ds.has_code(Code::MissingRoot), "{:?}", ds);
    }
}
