//! # pipemap-verify
//!
//! Diagnostics-driven static verifier and lint passes for the `pipemap`
//! project — a Rust reproduction of *"Area-Efficient Pipelining for
//! FPGA-Targeted High-Level Synthesis"* (Zhao, Tan, Dai, Zhang — DAC
//! 2015).
//!
//! Where the scheduling crates fail fast on the first violated invariant,
//! this crate is the *reporting* layer: every pass walks its whole input,
//! never panics on corrupted artifacts, and returns a [`Diagnostics`]
//! collection of stable-coded findings (`P0xxx`) with severities, optional
//! source spans into the textual `.pmir` format, and human/JSON renderers.
//!
//! Six passes:
//!
//! * [`lint_dfg`] / [`lint_text`] — IR well-formedness (`P00xx`): a total
//!   superset of [`Dfg::validate`](pipemap_ir::Dfg::validate) plus dead
//!   code and memory-shape lints,
//! * [`check_implementation`] — schedule & cover legality (`P01xx`): the
//!   paper's constraint system (Eqs. 2–14) plus K-feasibility, cone
//!   consistency, and an independent QoR recount,
//! * [`lint_verilog`] — structural RTL lint (`P02xx`) over the restricted
//!   subset [`pipemap_netlist::to_verilog`] emits,
//! * [`check_flows`] — differential flow check (`P03xx`): all flow outputs
//!   verifier-clean, simulation-equivalent, and mapping-aware flows no
//!   worse than the baseline on the area objective,
//! * [`check_analysis`] / [`check_simplification`] — dataflow-analysis
//!   audit (`P04xx`): every `pipemap-analyze` fact confronted with seeded
//!   simulation, every proof-carrying rewrite re-derived independently,
//!   and rewritten graphs replayed against their originals,
//! * [`check_milp_analysis`] / [`check_certified_cuts`] — MILP
//!   structural-analysis audit (`P05xx`): every probing fixing and
//!   implication chain replayed from pristine bounds, every clique edge
//!   and cover cut re-checked against its witness row, and every symmetry
//!   orbit's transposition witnesses re-applied to the full model,
//! * [`check_priority_cuts`] — priority-cut pruning audit (`P06xx`):
//!   every dominance/liveness certificate re-derived from the graph, an
//!   independent cover-feasibility recount, and an objective-invariance
//!   spot-check solving raw-vs-pruned covering MILPs on small graphs,
//! * [`check_resolve`] — incremental re-solve audit (`P08xx`): the last
//!   incrementally re-optimized result confronted with a from-scratch
//!   solve of the identical model, an independent feasibility and
//!   integrality recheck of its assignment, and a consistency check of
//!   the engine's reuse counters.
//!
//! ```
//! use pipemap_verify::{lint_text, Code};
//!
//! let (diags, dfg) = lint_text("dfg d {\n  x: 8 = input\n  o: 8 = output x\n}\n");
//! assert!(dfg.is_some());
//! assert!(!diags.has_errors());
//! let (diags, _) = lint_text("not pmir at all");
//! assert!(diags.has_code(Code::ParseError));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analyze_pass;
mod cuts_pass;
mod diag;
mod diff_pass;
mod ir_pass;
mod milp_pass;
mod netlist_pass;
mod resolve_pass;
mod sched_pass;

pub use analyze_pass::{check_analysis, check_graph_equivalence, check_simplification};
pub use cuts_pass::check_priority_cuts;
pub use diag::{Code, Diagnostic, Diagnostics, Severity};
pub use diff_pass::{check_flows, check_flows_with_graphs, objective, FlowCheckOptions};
pub use ir_pass::{lint_dfg, lint_text};
pub use milp_pass::{check_certified_cuts, check_milp_analysis};
pub use netlist_pass::lint_verilog;
pub use resolve_pass::check_resolve;
pub use sched_pass::check_implementation;
