//! P08xx: incremental re-solve audit.
//!
//! The re-solve engine ([`pipemap_milp::ResolveContext`]) promises that
//! an incrementally re-optimized model is indistinguishable — in status
//! and objective — from throwing the edited model at the solver cold,
//! and that whatever assignment it returns is a genuine feasible point.
//! This pass confronts a context with that promise from the outside:
//!
//! * the last incremental result is re-checked against a from-scratch
//!   solve of the *identical* model and options
//!   ([`ResolveContext::audit`]), reporting status, objective, and
//!   assignment divergences as diagnostics instead of booleans;
//! * the incremental assignment is independently re-verified against
//!   the context's current model (row feasibility and integrality),
//!   without trusting the audit's own feasibility check;
//! * the reuse counters are checked for internal consistency, since a
//!   miscounting harness would silently misreport basis-reuse rates in
//!   benchmark artifacts.

use pipemap_milp::{MilpError, ResolveContext, SolverOptions, VarId, VarKind};

use crate::diag::{Code, Diagnostic, Diagnostics};

/// Integrality tolerance for the independent assignment recheck (same
/// as the solver's own).
const INT_TOL: f64 = 1e-6;

/// Audit a re-solve context's last result against a fresh solve and the
/// engine's own bookkeeping (`P08xx`). A context that has not solved
/// anything yet yields no diagnostics.
///
/// The from-scratch comparator re-solves the context's current model,
/// so this pass costs another full MILP solve — it is a verification
/// path, not something to run per sweep point in production.
///
/// # Errors
///
/// Propagates [`MilpError`] when the comparator solve itself fails
/// numerically; that is an infrastructure failure, not a finding.
pub fn check_resolve(cx: &ResolveContext, opts: &SolverOptions) -> Result<Diagnostics, MilpError> {
    let mut diags = Diagnostics::new();
    let Some(last) = cx.last_result() else {
        return Ok(diags);
    };
    let last = last.clone();

    // Independent feasibility/integrality recheck of the incremental
    // assignment against the *current* model (not the audit's copy of
    // the logic — a bug there must not hide a bad assignment here).
    if last.status.has_solution() {
        let model = cx.model();
        if last.values.len() != model.num_vars() {
            diags.push(Diagnostic::new(
                Code::ResolveAssignmentInvalid,
                format!(
                    "incremental assignment has {} values for a model with {} columns",
                    last.values.len(),
                    model.num_vars()
                ),
            ));
        } else {
            if let Some(row) = model.check_feasible(&last.values, INT_TOL) {
                diags.push(Diagnostic::new(
                    Code::ResolveAssignmentInvalid,
                    format!("incremental assignment violates row/bound #{}", row.index()),
                ));
            }
            for j in 0..model.num_vars() {
                let v = VarId::from_index(j);
                if model.var_kind(v) == VarKind::Integer {
                    let x = last.values[j];
                    if (x - x.round()).abs() > INT_TOL {
                        diags.push(Diagnostic::new(
                            Code::ResolveAssignmentInvalid,
                            format!("integer column x{j} holds fractional value {x}"),
                        ));
                        break;
                    }
                }
            }
        }
    }

    // From-scratch comparison on the identical model and options.
    let audit = cx.audit(opts)?;
    if !audit.status_match {
        diags.push(Diagnostic::new(
            Code::ResolveStatusDiverged,
            format!(
                "incremental status {} vs from-scratch {}",
                last.status, audit.cold.status
            ),
        ));
    }
    if !audit.objective_match {
        diags.push(Diagnostic::new(
            Code::ResolveObjectiveDiverged,
            format!(
                "incremental objective {} vs from-scratch {}",
                last.objective, audit.cold.objective
            ),
        ));
    }
    if !audit.values_match && !audit.tied_optima && audit.objective_match && audit.status_match {
        // Status and objective agree, yet the assignments differ and at
        // least one failed the tied-optima feasibility re-verification.
        diags.push(Diagnostic::new(
            Code::ResolveAssignmentInvalid,
            "assignments diverge and do not re-verify as tied optima",
        ));
    }
    if audit.tied_optima {
        diags.push(Diagnostic::new(
            Code::ResolveTiedOptima,
            if audit.budget_capped {
                "both searches stopped at their budget with different feasible \
                 incumbents (objectives incomparable, both re-verified)"
            } else {
                "incremental and from-scratch solves returned different members \
                 of a tied optimal set (both re-verified feasible)"
            },
        ));
    }

    // Counter consistency: a broken harness would misreport reuse rates.
    let s = cx.stats();
    let mut bookkeeping = |why: String| {
        diags.push(Diagnostic::new(Code::ResolveStatsInconsistent, why));
    };
    if s.warm_hits > s.warm_attempts {
        bookkeeping(format!(
            "warm_hits {} exceeds warm_attempts {}",
            s.warm_hits, s.warm_attempts
        ));
    }
    if s.cached_results + s.cold_solves > s.solves {
        bookkeeping(format!(
            "cached_results {} + cold_solves {} exceed total solves {}",
            s.cached_results, s.cold_solves, s.solves
        ));
    }
    if s.frontier_resumes > 0 && s.frontier_nodes_reused == 0 {
        bookkeeping(format!(
            "{} frontier resumes replayed zero nodes",
            s.frontier_resumes
        ));
    }
    if s.incumbent_seeds + s.cold_solves < s.solves.saturating_sub(s.cached_results) {
        // Every non-cached solve either carried an incumbent or was cold.
        bookkeeping(format!(
            "incumbent_seeds {} + cold_solves {} cannot cover {} solver runs",
            s.incumbent_seeds,
            s.cold_solves,
            s.solves - s.cached_results
        ));
    }
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pipemap_milp::{LinExpr, Model, Sense};

    fn knapsack() -> Model {
        // max 5a + 4b + 3c s.t. 2a + 3b + 4c <= 5, binary.
        let mut m = Model::new("vknap");
        let a = m.add_binary(-5.0);
        let b = m.add_binary(-4.0);
        let c = m.add_binary(-3.0);
        m.add_constraint(
            LinExpr::from(a) * 2.0 + LinExpr::from(b) * 3.0 + LinExpr::from(c) * 4.0,
            Sense::Le,
            5.0,
        );
        m
    }

    #[test]
    fn clean_context_yields_no_diagnostics() {
        let opts = SolverOptions::default();
        let mut cx = ResolveContext::new(knapsack());
        cx.solve(&opts).unwrap();
        // Walk an edit and a re-solve, then audit the final state.
        cx.set_objective_coeff(VarId::from_index(2), -6.0);
        cx.solve(&opts).unwrap();
        let diags = check_resolve(&cx, &opts).unwrap();
        assert!(!diags.has_errors(), "{diags:?}");
    }

    #[test]
    fn unsolved_context_is_silent() {
        let cx = ResolveContext::new(knapsack());
        let diags = check_resolve(&cx, &SolverOptions::default()).unwrap();
        assert!(diags.is_empty());
    }
}
