//! Conflict graph construction and the clique table.
//!
//! Edges come from two sources: rows whose `≤`-normalized rhs is
//! exceeded whenever two binary members are both 1 (with all remaining
//! terms at minimum activity), and probing implications of the form
//! `x = 1 ⇒ y = 0`. Greedy extension from each edge yields maximal
//! cliques; every member pair of an emitted [`Clique`] carries its
//! [`EdgeWitness`] so the clique inequality `Σ x ≤ 1` is independently
//! checkable.

use super::{Clique, EdgeWitness, Implication};
use crate::model::{Model, Sense};
use std::collections::{BTreeMap, BTreeSet};

/// Rows longer than this skip pairwise edge enumeration.
const MAX_ROW_LEN: usize = 64;
/// Total conflict edges kept.
const MAX_EDGES: usize = 100_000;

pub(super) fn build_cliques(
    model: &Model,
    binary: &[bool],
    implications: &[Implication],
    max_cliques: usize,
) -> Vec<Clique> {
    let mut edges: BTreeMap<(usize, usize), EdgeWitness> = BTreeMap::new();

    // Row-derived edges. `Ge` rows normalize to `≤` by sign flip; `Eq`
    // rows contribute their `≤` half, which is all the argument needs.
    'rows: for (ri, row) in model.rows.iter().enumerate() {
        if row.coeffs.len() > MAX_ROW_LEN {
            continue;
        }
        let s = if row.sense == Sense::Ge { -1.0 } else { 1.0 };
        let rhs = s * row.rhs;
        let mut mins = Vec::with_capacity(row.coeffs.len());
        let mut total_min = 0.0f64;
        for &(v, a) in &row.coeffs {
            let c = s * a;
            let j = v.index();
            let m = if c > 0.0 {
                c * model.cols[j].lb
            } else {
                c * model.cols[j].ub
            };
            mins.push(m);
            total_min += m;
        }
        if !total_min.is_finite() {
            continue;
        }
        for i in 0..row.coeffs.len() {
            let ji = row.coeffs[i].0.index();
            if !binary[ji] {
                continue;
            }
            let ci = s * row.coeffs[i].1;
            for k in (i + 1)..row.coeffs.len() {
                let jk = row.coeffs[k].0.index();
                if !binary[jk] {
                    continue;
                }
                let ck = s * row.coeffs[k].1;
                let rest = total_min - mins[i] - mins[k];
                if ci + ck + rest > rhs + 1e-6 {
                    edges
                        .entry((ji.min(jk), ji.max(jk)))
                        .or_insert(EdgeWitness::Row { row: ri });
                    if edges.len() >= MAX_EDGES {
                        break 'rows;
                    }
                }
            }
        }
    }

    // Implication-derived edges: `x = 1 ⇒ y = 0` forbids both at 1.
    for (idx, imp) in implications.iter().enumerate() {
        if edges.len() >= MAX_EDGES {
            break;
        }
        if imp.value
            && imp.target_value == 0.0
            && imp.col != imp.target
            && binary[imp.col]
            && binary[imp.target]
        {
            let key = (imp.col.min(imp.target), imp.col.max(imp.target));
            edges
                .entry(key)
                .or_insert(EdgeWitness::Implication { index: idx });
        }
    }

    // Adjacency lists.
    let mut adj: BTreeMap<usize, BTreeSet<usize>> = BTreeMap::new();
    for &(a, b) in edges.keys() {
        adj.entry(a).or_default().insert(b);
        adj.entry(b).or_default().insert(a);
    }

    // Greedy maximal clique from every edge seed, deduplicated.
    let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut cliques = Vec::new();
    for &(a, b) in edges.keys() {
        if cliques.len() >= max_cliques {
            break;
        }
        let mut members: BTreeSet<usize> = [a, b].into_iter().collect();
        let mut cands: BTreeSet<usize> = adj[&a].intersection(&adj[&b]).copied().collect();
        while let Some(&c) = cands.iter().next() {
            members.insert(c);
            cands = cands.intersection(&adj[&c]).copied().collect();
            cands.remove(&c);
        }
        let mvec: Vec<usize> = members.into_iter().collect();
        if !seen.insert(mvec.clone()) {
            continue;
        }
        let mut pair_witnesses = Vec::new();
        for i in 0..mvec.len() {
            for k in (i + 1)..mvec.len() {
                pair_witnesses.push((mvec[i], mvec[k], edges[&(mvec[i], mvec[k])]));
            }
        }
        cliques.push(Clique {
            members: mvec,
            edges: pair_witnesses,
        });
    }
    cliques
}
