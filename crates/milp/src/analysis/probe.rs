//! Probing: tentatively fix binary variables and propagate activity-based
//! bound implications, recording every step so the derivation replays.

use super::{
    AnalysisConfig, Conflict, Fixing, Implication, InfeasibilityProof, ProbeChain, PropStep,
    StructuralAnalysis,
};
use crate::model::{Model, Sense, VarKind};
use std::collections::VecDeque;

/// Minimum bound improvement worth recording (mirrors presolve).
const TIGHTEN_TOL: f64 = 1e-7;
/// Violations larger than this prove a contradiction (mirrors presolve).
const INFEAS_TOL: f64 = 1e-6;
/// Row evaluations allowed per probe before giving up on quiescence.
const WORK_CAP: usize = 2_000;
/// Implications kept across all probes.
const MAX_IMPLICATIONS: usize = 20_000;

/// Running activity bounds of one row's terms under the working bounds.
///
/// Finite contributions are summed; infinite ones are counted, so the
/// bound excluding any single column is recoverable in O(1) instead of
/// re-summing the row (which made propagation quadratic in row length).
struct Activity {
    lo_sum: f64,
    lo_ninf: usize,
    hi_sum: f64,
    hi_pinf: usize,
}

impl Activity {
    fn new(coeffs: &[(crate::model::VarId, f64)], lb: &[f64], ub: &[f64]) -> Self {
        let mut act = Activity {
            lo_sum: 0.0,
            lo_ninf: 0,
            hi_sum: 0.0,
            hi_pinf: 0,
        };
        for &(v, a) in coeffs {
            let j = v.index();
            act.add(a, lb[j], ub[j]);
        }
        act
    }

    /// Per-term contributions: with `lb <= ub`, the minimum-side term is
    /// finite or `-inf`, the maximum-side term finite or `+inf`.
    fn terms(a: f64, lbj: f64, ubj: f64) -> (f64, f64) {
        if a > 0.0 {
            (a * lbj, a * ubj)
        } else {
            (a * ubj, a * lbj)
        }
    }

    fn add(&mut self, a: f64, lbj: f64, ubj: f64) {
        let (t_lo, t_hi) = Self::terms(a, lbj, ubj);
        if t_lo == f64::NEG_INFINITY {
            self.lo_ninf += 1;
        } else {
            self.lo_sum += t_lo;
        }
        if t_hi == f64::INFINITY {
            self.hi_pinf += 1;
        } else {
            self.hi_sum += t_hi;
        }
    }

    fn remove(&mut self, a: f64, lbj: f64, ubj: f64) {
        let (t_lo, t_hi) = Self::terms(a, lbj, ubj);
        if t_lo == f64::NEG_INFINITY {
            self.lo_ninf -= 1;
        } else {
            self.lo_sum -= t_lo;
        }
        if t_hi == f64::INFINITY {
            self.hi_pinf -= 1;
        } else {
            self.hi_sum -= t_hi;
        }
    }

    fn min(&self) -> f64 {
        if self.lo_ninf > 0 {
            f64::NEG_INFINITY
        } else {
            self.lo_sum
        }
    }

    fn max(&self) -> f64 {
        if self.hi_pinf > 0 {
            f64::INFINITY
        } else {
            self.hi_sum
        }
    }

    /// `(min, max)` activity of the row excluding the term `(a, lbj, ubj)`.
    fn residual(&self, a: f64, lbj: f64, ubj: f64) -> (f64, f64) {
        let (t_lo, t_hi) = Self::terms(a, lbj, ubj);
        let rlo = if t_lo == f64::NEG_INFINITY {
            if self.lo_ninf == 1 {
                self.lo_sum
            } else {
                f64::NEG_INFINITY
            }
        } else if self.lo_ninf > 0 {
            f64::NEG_INFINITY
        } else {
            self.lo_sum - t_lo
        };
        let rhi = if t_hi == f64::INFINITY {
            if self.hi_pinf == 1 {
                self.hi_sum
            } else {
                f64::INFINITY
            }
        } else if self.hi_pinf > 0 {
            f64::INFINITY
        } else {
            self.hi_sum - t_hi
        };
        (rlo, rhi)
    }
}

/// Column → incident rows.
pub(super) struct Incidence {
    pub col_rows: Vec<Vec<u32>>,
}

impl Incidence {
    pub fn new(model: &Model) -> Self {
        let mut col_rows = vec![Vec::new(); model.num_vars()];
        for (ri, row) in model.rows.iter().enumerate() {
            for &(v, _) in &row.coeffs {
                col_rows[v.index()].push(ri as u32);
            }
        }
        Incidence { col_rows }
    }
}

/// Outcome of propagating one tentative fixing to quiescence.
pub(super) struct ProbeOutcome {
    pub chain: ProbeChain,
    pub conflict: Option<Conflict>,
    /// Binary columns pinned to a value at quiescence, probed column
    /// excluded; empty when a conflict fired.
    pub pinned: Vec<(usize, f64)>,
    /// Row-term evaluations spent, for the global probing work budget.
    pub work: usize,
}

/// Tentatively fix `col = value` and propagate to quiescence (bounded
/// work), recording each tightening as a replayable [`PropStep`].
pub(super) fn probe(
    model: &Model,
    inc: &Incidence,
    binary: &[bool],
    col: usize,
    value: f64,
    max_steps: usize,
) -> ProbeOutcome {
    let mut lb: Vec<f64> = model.cols.iter().map(|c| c.lb).collect();
    let mut ub: Vec<f64> = model.cols.iter().map(|c| c.ub).collect();
    lb[col] = value;
    ub[col] = value;

    let mut steps: Vec<PropStep> = Vec::new();
    let mut conflict: Option<Conflict> = None;
    let mut queued = vec![false; model.num_rows()];
    let mut queue: VecDeque<u32> = VecDeque::new();
    for &r in &inc.col_rows[col] {
        queued[r as usize] = true;
        queue.push_back(r);
    }

    let mut evals = 0usize;
    let mut work = 0usize;
    'outer: while let Some(ri) = queue.pop_front() {
        let ri = ri as usize;
        queued[ri] = false;
        evals += 1;
        if evals > WORK_CAP {
            break;
        }
        let row = &model.rows[ri];
        work += row.coeffs.len();
        let mut act = Activity::new(&row.coeffs, &lb, &ub);
        let (minact, maxact) = (act.min(), act.max());
        let infeasible = match row.sense {
            Sense::Le => minact > row.rhs + INFEAS_TOL,
            Sense::Ge => maxact < row.rhs - INFEAS_TOL,
            Sense::Eq => minact > row.rhs + INFEAS_TOL || maxact < row.rhs - INFEAS_TOL,
        };
        if infeasible {
            conflict = Some(Conflict::RowInfeasible { row: ri });
            break;
        }
        let le_like = matches!(row.sense, Sense::Le | Sense::Eq);
        let ge_like = matches!(row.sense, Sense::Ge | Sense::Eq);
        for &(v, a) in &row.coeffs {
            let j = v.index();
            if a.abs() < 1e-9 || lb[j] == ub[j] {
                continue;
            }
            let (rlo, rhi) = act.residual(a, lb[j], ub[j]);
            let (mut new_lb, mut new_ub) = (lb[j], ub[j]);
            if le_like && rlo.is_finite() {
                let bound = (row.rhs - rlo) / a;
                if a > 0.0 {
                    new_ub = new_ub.min(bound);
                } else {
                    new_lb = new_lb.max(bound);
                }
            }
            if ge_like && rhi.is_finite() {
                let bound = (row.rhs - rhi) / a;
                if a > 0.0 {
                    new_lb = new_lb.max(bound);
                } else {
                    new_ub = new_ub.min(bound);
                }
            }
            if model.cols[j].kind == VarKind::Integer {
                if new_lb.is_finite() {
                    new_lb = (new_lb - 1e-6).ceil();
                }
                if new_ub.is_finite() {
                    new_ub = (new_ub + 1e-6).floor();
                }
            }
            let mut moved = false;
            if new_ub < ub[j] - TIGHTEN_TOL {
                steps.push(PropStep {
                    row: ri,
                    col: j,
                    upper: true,
                    value: new_ub,
                });
                act.remove(a, lb[j], ub[j]);
                ub[j] = new_ub;
                act.add(a, lb[j], ub[j]);
                moved = true;
            }
            if new_lb > lb[j] + TIGHTEN_TOL {
                steps.push(PropStep {
                    row: ri,
                    col: j,
                    upper: false,
                    value: new_lb,
                });
                act.remove(a, lb[j], ub[j]);
                lb[j] = new_lb;
                act.add(a, lb[j], ub[j]);
                moved = true;
            }
            if lb[j] > ub[j] + INFEAS_TOL {
                conflict = Some(Conflict::BoundsCrossed { col: j });
                break 'outer;
            }
            if moved {
                if steps.len() >= max_steps {
                    break 'outer;
                }
                for &r2 in &inc.col_rows[j] {
                    if !queued[r2 as usize] {
                        queued[r2 as usize] = true;
                        queue.push_back(r2);
                    }
                }
            }
        }
    }

    let pinned = if conflict.is_none() {
        let mut p = Vec::new();
        for (j, &b) in binary.iter().enumerate() {
            if b && j != col && ub[j] - lb[j] <= 1e-9 {
                p.push((j, lb[j]));
            }
        }
        p
    } else {
        Vec::new()
    };

    ProbeOutcome {
        chain: ProbeChain { col, value, steps },
        conflict,
        pinned,
        work,
    }
}

/// Probe every free binary column (up to the config cap), filling the
/// analysis with certified fixings, implications, or an infeasibility
/// proof.
pub(super) fn run_probing(
    model: &Model,
    inc: &Incidence,
    binary: &[bool],
    cfg: &AnalysisConfig,
    out: &mut StructuralAnalysis,
) {
    let candidates: Vec<usize> = (0..model.num_vars())
        .filter(|&j| binary[j] && !inc.col_rows[j].is_empty())
        .take(cfg.max_probe_vars)
        .collect();

    let mut spent = 0usize;
    for &j in &candidates {
        // Deterministic global budget: stop opening new candidates once
        // the term-evaluation count is exhausted, so huge models spend
        // bounded time here and leave the rest to the tree.
        if spent >= cfg.max_probe_work {
            break;
        }
        let down = probe(model, inc, binary, j, 0.0, cfg.max_steps);
        let up = probe(model, inc, binary, j, 1.0, cfg.max_steps);
        spent += down.work + up.work;
        out.probed += 1;
        match (down.conflict, up.conflict) {
            (Some(c0), Some(c1)) => {
                out.infeasible = Some(Box::new(InfeasibilityProof {
                    col: j,
                    down: (down.chain, c0),
                    up: (up.chain, c1),
                }));
                return;
            }
            (Some(c0), None) => out.fixings.push(Fixing {
                col: j,
                value: 1.0,
                chain: down.chain,
                conflict: c0,
            }),
            (None, Some(c1)) => out.fixings.push(Fixing {
                col: j,
                value: 0.0,
                chain: up.chain,
                conflict: c1,
            }),
            (None, None) => {
                for (polarity, o) in [(false, &down), (true, &up)] {
                    for &(t, tv) in &o.pinned {
                        if out.implications.len() >= MAX_IMPLICATIONS {
                            return;
                        }
                        out.implications.push(Implication {
                            col: j,
                            value: polarity,
                            target: t,
                            target_value: tv,
                            chain: o.chain.clone(),
                        });
                    }
                }
            }
        }
    }
}
