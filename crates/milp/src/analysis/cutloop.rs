//! The root cutting-plane loop: solve the root LP relaxation, separate
//! violated certified clique, cover, and implication cuts, append them
//! as rows, and re-solve — with activity-based aging of the pool so
//! slack cuts don't bloat the LP, and a validation discipline that only
//! ships cuts whose augmented root LP actually re-solved within budget.
//! Runs before the branch-and-bound workers spawn, so it is
//! deterministic regardless of the `jobs` setting.

use super::gomory::{separate_gomory, GomoryConfig, GomoryShift};
use super::{binary_mask, Clique, Implication, StructuralAnalysis};
use crate::model::{LinExpr, Model, Sense, VarId, VarKind};
use crate::simplex::{LpProblem, LpStatus};
use pipemap_obs as obs;
use pipemap_obs::metrics;
use std::collections::BTreeSet;
use std::time::Instant;

/// Validity proof of a [`CertifiedCut`].
#[derive(Debug, Clone, PartialEq)]
pub enum CutProof {
    /// The cut is the clique inequality `Σ members ≤ 1`; the embedded
    /// clique carries a witness for every member pair.
    Clique {
        /// The witnessed clique.
        clique: Clique,
    },
    /// The cut is a cover inequality on `row` (in its `≤`
    /// normalization): with every member literal at 1 — literal `x` for
    /// positive member coefficients, `1 - x` for negative — the row's
    /// minimum activity exceeds its rhs, so at most `|members| - 1`
    /// literals can hold in any integer-feasible point.
    Cover {
        /// The witness row.
        row: usize,
        /// The cover member columns, ascending.
        members: Vec<usize>,
    },
    /// The cut is the linear expansion of a probing implication
    /// `x[col] = value ⇒ x[target] = target_value` between binary
    /// columns (see [`implication_expression`]). Unlike a clique edge,
    /// the implication may have propagated through several rows, so the
    /// inequality is *not* implied by any single row of the model — it
    /// genuinely tightens the LP relaxation.
    Implication {
        /// The witnessed implication, with its replayable chain.
        implication: Implication,
    },
    /// The cut is a rank-1 Gomory mixed-integer cut derived from an
    /// optimal simplex tableau row of the root LP. The certificate is
    /// the full derivation: aggregate the original rows with
    /// `multipliers`, shift each listed column onto the recorded bound
    /// side, apply the GMI rounding, and back-substitute — an auditor
    /// replaying these steps from the model alone must land on the
    /// shipped coefficients and right-hand side. Bound *values* are
    /// deliberately re-derived from the model (plus certified fixings),
    /// never trusted from the certificate.
    Gomory {
        /// Sparse row multipliers `(row, ρᵢ)`, ascending by row: the
        /// aggregated equality is `Σᵢ ρᵢ(aᵢᵀx + sᵢ) = Σᵢ ρᵢ bᵢ`.
        multipliers: Vec<(usize, f64)>,
        /// One entry per aggregated column with a nonzero coefficient,
        /// ascending by extended index.
        shifts: Vec<GomoryShift>,
    },
}

/// The linear expansion of an implication between binary columns, as
/// `Σ coeffs · x ≤ rhs` (coefficients ascending by column):
///
/// * `x_c = 1 ⇒ x_t = 0`:  `x_c + x_t ≤ 1`
/// * `x_c = 1 ⇒ x_t = 1`:  `x_c − x_t ≤ 0`
/// * `x_c = 0 ⇒ x_t = 0`:  `x_t − x_c ≤ 0`
/// * `x_c = 0 ⇒ x_t = 1`:  `−x_c − x_t ≤ −1`
///
/// Each holds for every 0/1 assignment satisfying the implication.
pub fn implication_expression(imp: &Implication) -> (Vec<(usize, f64)>, f64) {
    let (c, t) = (imp.col, imp.target);
    let up = imp.target_value > 0.5;
    let (mut coeffs, rhs) = match (imp.value, up) {
        (true, false) => (vec![(c, 1.0), (t, 1.0)], 1.0),
        (true, true) => (vec![(c, 1.0), (t, -1.0)], 0.0),
        (false, false) => (vec![(c, -1.0), (t, 1.0)], 0.0),
        (false, true) => (vec![(c, -1.0), (t, -1.0)], -1.0),
    };
    coeffs.sort_unstable_by_key(|&(j, _)| j);
    (coeffs, rhs)
}

/// A cutting plane `Σ coeffs · x ≤ rhs` valid for every integer-feasible
/// point, packaged with a machine-checkable proof.
#[derive(Debug, Clone, PartialEq)]
pub struct CertifiedCut {
    /// Sparse coefficients over the model's columns, ascending.
    pub coeffs: Vec<(usize, f64)>,
    /// Right-hand side.
    pub rhs: f64,
    /// Validity proof.
    pub proof: CutProof,
}

impl CertifiedCut {
    pub(crate) fn lhs(&self, x: &[f64]) -> f64 {
        self.coeffs.iter().map(|&(j, c)| c * x[j]).sum()
    }

    pub(super) fn key(&self) -> (Vec<(usize, u64)>, u64) {
        (
            self.coeffs.iter().map(|&(j, c)| (j, c.to_bits())).collect(),
            self.rhs.to_bits(),
        )
    }
}

/// Knobs for [`root_cut_loop`].
#[derive(Debug, Clone)]
pub struct CutLoopConfig {
    /// Separation rounds (0 disables separation; certified fixings are
    /// still applied to the bounds).
    pub max_rounds: usize,
    /// Cuts added per round.
    pub max_per_round: usize,
    /// Consecutive slack rounds before a pool cut ages out.
    pub age_limit: usize,
    /// Minimum LP violation for a cut to be worth separating.
    pub min_violation: f64,
    /// Separate rank-1 Gomory mixed-integer cuts from the round-0
    /// tableau (see the `gomory` module).
    pub gomory: bool,
}

impl Default for CutLoopConfig {
    fn default() -> Self {
        CutLoopConfig {
            max_rounds: 8,
            max_per_round: 128,
            age_limit: 2,
            min_violation: 1e-4,
            gomory: false,
        }
    }
}

/// Counters of one [`root_cut_loop`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CutLoopStats {
    /// Separation rounds executed.
    pub rounds: usize,
    /// Clique cuts active in the final pool.
    pub clique_cuts: usize,
    /// Cover cuts active in the final pool.
    pub cover_cuts: usize,
    /// Implication cuts active in the final pool.
    pub implication_cuts: usize,
    /// Gomory mixed-integer cuts active in the final pool.
    pub gomory_cuts: usize,
    /// Cuts dropped by activity-based aging.
    pub aged_out: usize,
    /// Simplex iterations spent on separation LPs.
    pub lp_iterations: usize,
}

/// Result of [`root_cut_loop`].
#[derive(Debug, Clone)]
pub struct CutLoopOutcome {
    /// The strengthened model: certified fixings baked into the bounds,
    /// active pool cuts appended as rows (in `cuts` order).
    pub model: Model,
    /// The active cut pool.
    pub cuts: Vec<CertifiedCut>,
    /// Counters.
    pub stats: CutLoopStats,
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum CutKind {
    Clique,
    Cover,
    Implication,
    Gomory,
}

struct PoolCut {
    cut: CertifiedCut,
    age: usize,
    kind: CutKind,
}

fn build_model(base: &Model, pool: &[PoolCut]) -> Model {
    let mut m = base.clone();
    for pc in pool {
        let mut e = LinExpr::new();
        for &(j, c) in &pc.cut.coeffs {
            e.add_term(c, VarId(j as u32));
        }
        m.add_constraint(e, Sense::Le, pc.cut.rhs);
    }
    m
}

/// Separate a cover cut from one row against the LP point `x`, using
/// the model's original bounds (so the certificate never depends on the
/// probing fixings). Returns the cut and its violation.
fn separate_cover(
    model: &Model,
    binary: &[bool],
    ri: usize,
    x: &[f64],
    min_violation: f64,
) -> Option<(CertifiedCut, f64)> {
    let row = &model.rows[ri];
    let s = if row.sense == Sense::Ge { -1.0 } else { 1.0 };
    let rhs = s * row.rhs;

    // Minimum activity of the whole row plus, per free binary term, the
    // gain from forcing its literal to 1 and that literal's LP value.
    let mut base = 0.0f64;
    let mut lits: Vec<(usize, f64, f64)> = Vec::new();
    for &(v, a) in &row.coeffs {
        let c = s * a;
        let j = v.index();
        base += if c > 0.0 {
            c * model.cols[j].lb
        } else {
            c * model.cols[j].ub
        };
        if binary[j] && c.abs() > 1e-9 {
            let lval = if c > 0.0 { x[j] } else { 1.0 - x[j] };
            lits.push((j, c.abs(), lval));
        }
    }
    if !base.is_finite() || lits.is_empty() {
        return None;
    }

    // Greedy cover: highest literal values first.
    lits.sort_by(|p, q| q.2.partial_cmp(&p.2).unwrap().then(p.0.cmp(&q.0)));
    let mut acc = base;
    let mut members: Vec<usize> = Vec::new();
    let mut lsum = 0.0f64;
    for &(j, gain, lval) in &lits {
        members.push(j);
        acc += gain;
        lsum += lval;
        if acc > rhs + 1e-6 {
            break;
        }
    }
    if acc <= rhs + 1e-6 {
        return None;
    }
    let violation = lsum - (members.len() as f64 - 1.0);
    if violation <= min_violation {
        return None;
    }

    members.sort_unstable();
    let (coeffs, cut_rhs) = cover_expression(model, ri, &members);
    Some((
        CertifiedCut {
            coeffs,
            rhs: cut_rhs,
            proof: CutProof::Cover { row: ri, members },
        },
        violation,
    ))
}

/// The literal expansion of a cover on `row`: `Σ literals ≤ |C| - 1`
/// with `1 - x` literals for negative normalized coefficients, rewritten
/// over plain variables.
pub(crate) fn cover_expression(
    model: &Model,
    ri: usize,
    members: &[usize],
) -> (Vec<(usize, f64)>, f64) {
    let row = &model.rows[ri];
    let s = if row.sense == Sense::Ge { -1.0 } else { 1.0 };
    let mut coeffs = Vec::with_capacity(members.len());
    let mut negs = 0usize;
    for &j in members {
        let c = row
            .coeffs
            .iter()
            .find(|&&(v, _)| v.index() == j)
            .map(|&(_, a)| s * a)
            .unwrap_or(0.0);
        if c > 0.0 {
            coeffs.push((j, 1.0));
        } else {
            coeffs.push((j, -1.0));
            negs += 1;
        }
    }
    (coeffs, members.len() as f64 - 1.0 - negs as f64)
}

/// Apply certified fixings to the bounds and run the root cutting-plane
/// loop. Deterministic: same model, analysis, and config always yield
/// the same strengthened model and pool.
pub fn root_cut_loop(
    model: &Model,
    analysis: &StructuralAnalysis,
    cfg: &CutLoopConfig,
    deadline: Option<Instant>,
) -> CutLoopOutcome {
    let mut base = model.clone();
    for f in &analysis.fixings {
        let c = &mut base.cols[f.col];
        c.lb = c.lb.max(f.value);
        c.ub = c.ub.min(f.value);
    }
    let binary = binary_mask(model);

    // `pool` only ever holds *validated* cuts: cuts that were rows of a
    // root LP this loop solved to optimality. Freshly separated cuts wait
    // in `pending` until the next round's re-solve proves the augmented
    // LP still solves within budget — if that re-solve times out or
    // fails, the pending cuts are dropped rather than shipped, so the
    // tree never inherits a root LP the loop itself could not finish.
    let mut pool: Vec<PoolCut> = Vec::new();
    let mut pending: Vec<PoolCut> = Vec::new();
    let mut seen: BTreeSet<(Vec<(usize, u64)>, u64)> = BTreeSet::new();
    let mut stats = CutLoopStats::default();
    let mut prev_obj = f64::NEG_INFINITY;
    let mut stalled = 0usize;
    let gomory_cfg = GomoryConfig::default();

    for round in 0..cfg.max_rounds {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            break;
        }
        let _span = obs::span("cut-round");
        let validated = pool.len();
        // Per-family counts of the cuts entering the LP this round (last
        // round's pending batch) — these are the cuts whose bound effect
        // this round's re-solve measures, so the flight recorder can
        // attribute the movement to families.
        let mut entering = [0usize; 4];
        for pc in &pending {
            entering[match pc.kind {
                CutKind::Clique => 0,
                CutKind::Cover => 1,
                CutKind::Implication => 2,
                CutKind::Gomory => 3,
            }] += 1;
        }
        pool.append(&mut pending);
        let work = build_model(&base, &pool);
        let lp = LpProblem::from_model(&work);
        // Gomory separation is rank-1 only: the tableau is extracted at
        // round 0, when the pool is empty and `work == base`, so every
        // certificate multiplier references an original model row.
        let mut tableau = None;
        let gomory_here = cfg.gomory && round == 0 && base.num_vars() <= gomory_cfg.max_model_vars;
        let solved = if gomory_here {
            let candidate: Vec<bool> = work
                .cols
                .iter()
                .map(|c| c.kind == VarKind::Integer)
                .collect();
            // Extract more rows than will ship: `separate_gomory` keeps
            // only the most violated `max_cuts` of them.
            lp.solve_primal_tableau(
                &lp.lb,
                &lp.ub,
                deadline,
                &candidate,
                1e-6,
                gomory_cfg.max_cuts * 4,
            )
            .map(|(s, t)| {
                tableau = t;
                s
            })
        } else {
            lp.solve_primal(&lp.lb, &lp.ub, deadline).map(|(s, _)| s)
        };
        let sol = match solved {
            Ok(s) if s.status == LpStatus::Optimal => s,
            other => {
                // The augmented LP did not re-solve: roll back to the
                // last validated pool.
                pool.truncate(validated);
                if let Ok(s) = other {
                    stats.lp_iterations += s.iters;
                }
                break;
            }
        };
        stats.lp_iterations += sol.iters;
        stats.rounds += 1;
        // Cuts are only worth the root-LP re-solves while they move the
        // root bound; two flat rounds in a row and the remaining budget
        // is better spent in the tree.
        if round > 0 {
            if sol.obj <= prev_obj + 1e-7 * prev_obj.abs().max(1.0) {
                stalled += 1;
                if stalled >= 2 {
                    break;
                }
            } else {
                stalled = 0;
            }
        }
        if obs::enabled() {
            // Round 0 has no prior objective; report a zero delta rather
            // than a non-finite sentinel (which JSON cannot carry).
            let obj_before = if prev_obj.is_finite() {
                prev_obj
            } else {
                sol.obj
            };
            obs::instant_with(
                "cut-round-bound",
                vec![
                    ("round", round.into()),
                    ("obj_before", obj_before.into()),
                    ("obj_after", sol.obj.into()),
                    ("clique", entering[0].into()),
                    ("cover", entering[1].into()),
                    ("implication", entering[2].into()),
                    ("gomory", entering[3].into()),
                ],
            );
        }
        prev_obj = sol.obj;
        let x = &sol.x;

        // Age the pool: cuts slack for `age_limit` consecutive rounds
        // leave (and may be re-separated later if they cut again).
        for pc in pool.iter_mut() {
            if pc.cut.rhs - pc.cut.lhs(x) > 1e-7 {
                pc.age += 1;
            } else {
                pc.age = 0;
            }
        }
        let before = pool.len();
        pool.retain(|pc| {
            let keep = pc.age < cfg.age_limit;
            if !keep {
                seen.remove(&pc.cut.key());
            }
            keep
        });
        stats.aged_out += before - pool.len();

        // Separate: clique table, then row covers, then the implication
        // graph (probing implications expand to valid 2-term rows that
        // no single model row implies).
        let mut cands: Vec<(CertifiedCut, f64, CutKind)> = Vec::new();
        for cl in &analysis.cliques {
            let v: f64 = cl.members.iter().map(|&j| x[j]).sum::<f64>() - 1.0;
            if v > cfg.min_violation {
                cands.push((
                    CertifiedCut {
                        coeffs: cl.members.iter().map(|&j| (j, 1.0)).collect(),
                        rhs: 1.0,
                        proof: CutProof::Clique { clique: cl.clone() },
                    },
                    v,
                    CutKind::Clique,
                ));
            }
        }
        for ri in 0..model.num_rows() {
            if let Some((cut, v)) = separate_cover(model, &binary, ri, x, cfg.min_violation) {
                cands.push((cut, v, CutKind::Cover));
            }
        }
        for imp in &analysis.implications {
            let (coeffs, rhs) = implication_expression(imp);
            let lhs: f64 = coeffs.iter().map(|&(j, c)| c * x[j]).sum();
            let v = lhs - rhs;
            if v > cfg.min_violation {
                cands.push((
                    CertifiedCut {
                        coeffs,
                        rhs,
                        proof: CutProof::Implication {
                            implication: imp.clone(),
                        },
                    },
                    v,
                    CutKind::Implication,
                ));
            }
        }
        if let Some(tab) = tableau.as_ref() {
            for (cut, v) in separate_gomory(&base, &lp, tab, x, &gomory_cfg) {
                cands.push((cut, v, CutKind::Gomory));
            }
        }

        if metrics::enabled() {
            let h = metrics::histogram("cuts.violation");
            for &(_, v, _) in &cands {
                h.record(v);
            }
        }
        cands.sort_by(|p, q| {
            q.1.partial_cmp(&p.1)
                .unwrap()
                .then_with(|| p.0.key().cmp(&q.0.key()))
        });
        let mut added = 0usize;
        for (cut, _v, kind) in cands {
            if added >= cfg.max_per_round {
                break;
            }
            if seen.insert(cut.key()) {
                pending.push(PoolCut { cut, age: 0, kind });
                added += 1;
            }
        }
        if obs::enabled() {
            obs::instant_with(
                "cuts-separated",
                vec![("added", added.into()), ("pool", pool.len().into())],
            );
        }
        if added == 0 {
            break;
        }
    }

    for pc in &pool {
        match pc.kind {
            CutKind::Clique => stats.clique_cuts += 1,
            CutKind::Cover => stats.cover_cuts += 1,
            CutKind::Implication => stats.implication_cuts += 1,
            CutKind::Gomory => stats.gomory_cuts += 1,
        }
    }
    let final_model = build_model(&base, &pool);
    CutLoopOutcome {
        model: final_model,
        cuts: pool.into_iter().map(|pc| pc.cut).collect(),
        stats,
    }
}
