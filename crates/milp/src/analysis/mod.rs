//! Static structural analysis of MILP models: probing, a conflict graph
//! with a clique table, symmetry detection, and certified cutting planes.
//!
//! The scheduling MILPs the paper's formulation emits are dominated by
//! binary cut-selection variables tied together by "choose exactly one
//! cut per root" assignment rows and cone-overlap packing rows — exactly
//! the set-packing structure where *static* model analysis pays off
//! before (and during) branch and bound:
//!
//! * [`analyze`] **probes** each binary variable: tentatively fix it to
//!   0 and to 1, propagate activity-based bound implications to
//!   quiescence, and harvest certified [`Fixing`]s (one polarity is
//!   infeasible) and [`Implication`]s (another binary gets pinned),
//! * the probing implications plus pairwise-infeasible row terms form a
//!   **conflict graph**, condensed into a table of [`Clique`]s (every
//!   pair of members carries an [`EdgeWitness`]),
//! * hash-based partition refinement over the constraint matrix proposes
//!   interchangeable columns; each candidate pair is only accepted into
//!   an [`Orbit`] after an explicit automorphism witness
//!   ([`Transposition`]) has been constructed and checked,
//! * [`root_cut_loop`] separates violated **clique cuts** and **cover
//!   cuts** against the root LP relaxation, with activity-based aging of
//!   the pool; every emitted [`CertifiedCut`] carries a
//!   machine-checkable [`CutProof`].
//!
//! Every artifact is a *certificate*: a replayable implication chain, a
//! clique membership proof, or an automorphism witness. The
//! `pipemap-verify` crate re-derives all of them independently (its
//! `P05xx` pass), so solver aggressiveness never outruns soundness. All
//! of the analysis is deterministic — same model in, same certificates
//! out — which the parallel search's determinism contract relies on.

mod clique;
mod cutloop;
mod gomory;
mod probe;
mod symmetry;

pub use cutloop::{
    implication_expression, root_cut_loop, CertifiedCut, CutLoopConfig, CutLoopOutcome,
    CutLoopStats, CutProof,
};
pub use gomory::{GomoryConfig, GomoryShift};

use crate::model::{Model, VarKind};

/// One bound change of a replayable propagation chain.
///
/// Replay semantics: under the working bounds produced by the chain's
/// prefix, row `row` implies a bound on column `col` (the activity
/// argument of presolve's implied-bound tightening); `value` must be no
/// stronger than that implied bound. Integer columns round the implied
/// bound inward before the comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropStep {
    /// Row the bound was derived from.
    pub row: usize,
    /// Column whose bound moved.
    pub col: usize,
    /// `true` when the upper bound moved down, `false` when the lower
    /// bound moved up.
    pub upper: bool,
    /// The new bound value.
    pub value: f64,
}

/// Where a probe's contradiction surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Conflict {
    /// The row cannot be satisfied by any point inside the working
    /// bounds (its minimum activity already exceeds a `≤` rhs, or its
    /// maximum activity cannot reach a `≥` rhs).
    RowInfeasible {
        /// The offending row.
        row: usize,
    },
    /// A column's working bounds crossed.
    BoundsCrossed {
        /// The offending column.
        col: usize,
    },
}

/// A replayable derivation: tentatively fix `col` to `value`, then apply
/// `steps` in order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProbeChain {
    /// The probed column.
    pub col: usize,
    /// The tentative value.
    pub value: f64,
    /// Bound propagations derived from the tentative fixing.
    pub steps: Vec<PropStep>,
}

/// A certified variable fixing: probing `col` at `1 - value` propagates
/// into a contradiction, so every integer-feasible point has
/// `x[col] = value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Fixing {
    /// The fixed column.
    pub col: usize,
    /// The only integer-feasible value.
    pub value: f64,
    /// The chain probing the opposite polarity.
    pub chain: ProbeChain,
    /// The contradiction the chain ends in.
    pub conflict: Conflict,
}

/// A certified implication between binary columns: if `col` takes
/// `value`, then `target` is forced to `target_value` in every
/// integer-feasible point.
#[derive(Debug, Clone, PartialEq)]
pub struct Implication {
    /// The antecedent column.
    pub col: usize,
    /// The antecedent value (`true` = 1).
    pub value: bool,
    /// The consequent column.
    pub target: usize,
    /// The value the consequent is forced to.
    pub target_value: f64,
    /// Replayable derivation; its final working bounds pin `target`.
    pub chain: ProbeChain,
}

/// A certified proof that the model has no integer-feasible point: both
/// polarities of one binary column propagate into contradictions.
#[derive(Debug, Clone, PartialEq)]
pub struct InfeasibilityProof {
    /// The doubly-conflicting column.
    pub col: usize,
    /// Chain and contradiction when probing `col = 0`.
    pub down: (ProbeChain, Conflict),
    /// Chain and contradiction when probing `col = 1`.
    pub up: (ProbeChain, Conflict),
}

/// Why two binary columns cannot both be 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeWitness {
    /// Setting both endpoints to 1 exceeds this row's rhs (in its `≤`
    /// normalization) even with every remaining term at its minimum
    /// activity.
    Row {
        /// The witness row.
        row: usize,
    },
    /// Index into [`StructuralAnalysis::implications`] of an
    /// `x = 1 ⇒ y = 0` implication between the endpoints.
    Implication {
        /// The witness implication.
        index: usize,
    },
}

/// A set of pairwise-conflicting binary columns: `Σ members ≤ 1` holds
/// for every integer-feasible point.
#[derive(Debug, Clone, PartialEq)]
pub struct Clique {
    /// Member columns, ascending.
    pub members: Vec<usize>,
    /// One witness per member pair `(a, b)` with `a < b`.
    pub edges: Vec<(usize, usize, EdgeWitness)>,
}

/// A column transposition together with the row permutation that makes
/// it a model automorphism: swapping the two columns and permuting the
/// listed rows maps the model onto itself exactly (same bounds,
/// objective, senses, right-hand sides, and coefficients).
#[derive(Debug, Clone, PartialEq)]
pub struct Transposition {
    /// The two swapped columns.
    pub cols: (usize, usize),
    /// Rows moved by the permutation as `(from, to)` pairs; every row
    /// not listed maps to itself.
    pub row_map: Vec<(usize, usize)>,
}

/// An orbit of interchangeable binary columns. The witnesses' pair graph
/// connects all members, so the full symmetric group on the orbit maps
/// feasible points to feasible points of equal objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Orbit {
    /// Member columns, ascending.
    pub members: Vec<usize>,
    /// Verified transpositions whose pair graph spans the members.
    pub witnesses: Vec<Transposition>,
}

/// Knobs for [`analyze`].
#[derive(Debug, Clone)]
pub struct AnalysisConfig {
    /// Probe binary variables for fixings and implications.
    pub probing: bool,
    /// Build the conflict graph and clique table.
    pub cliques: bool,
    /// Detect column symmetries.
    pub symmetry: bool,
    /// Probe at most this many binary columns.
    pub max_probe_vars: usize,
    /// Stop opening new probe candidates once this many row-term
    /// evaluations have been spent across all probes. Keeps probing
    /// time bounded on huge models independently of wall-clock, so the
    /// analysis stays deterministic.
    pub max_probe_work: usize,
    /// Record at most this many propagation steps per probe.
    pub max_steps: usize,
    /// Keep at most this many cliques in the table.
    pub max_cliques: usize,
}

impl Default for AnalysisConfig {
    fn default() -> Self {
        AnalysisConfig {
            probing: true,
            cliques: true,
            symmetry: true,
            max_probe_vars: 2048,
            max_probe_work: 20_000_000,
            max_steps: 64,
            max_cliques: 4096,
        }
    }
}

/// Everything the static pass learned about a model, with certificates.
#[derive(Debug, Clone, Default)]
pub struct StructuralAnalysis {
    /// Certified variable fixings (probing one polarity conflicts).
    pub fixings: Vec<Fixing>,
    /// Certified implications between binary columns.
    pub implications: Vec<Implication>,
    /// The clique table over the conflict graph.
    pub cliques: Vec<Clique>,
    /// Verified symmetry orbits over binary columns.
    pub orbits: Vec<Orbit>,
    /// Set when probing proved the whole model integer-infeasible.
    pub infeasible: Option<Box<InfeasibilityProof>>,
    /// Number of binary columns probed.
    pub probed: usize,
}

/// Columns that are free binaries under the model's current bounds.
pub(crate) fn binary_mask(model: &Model) -> Vec<bool> {
    model
        .cols
        .iter()
        .map(|c| c.kind == VarKind::Integer && c.lb == 0.0 && c.ub == 1.0)
        .collect()
}

/// Run the static structural analysis on a model.
///
/// Deterministic: the same model and config always produce the same
/// certificates, in the same order.
pub fn analyze(model: &Model, cfg: &AnalysisConfig) -> StructuralAnalysis {
    let mut out = StructuralAnalysis::default();
    let inc = probe::Incidence::new(model);
    let binary = binary_mask(model);

    if cfg.probing {
        probe::run_probing(model, &inc, &binary, cfg, &mut out);
    }
    if out.infeasible.is_some() {
        return out;
    }
    if cfg.cliques {
        out.cliques = clique::build_cliques(model, &binary, &out.implications, cfg.max_cliques);
    }
    if cfg.symmetry {
        out.orbits = symmetry::detect_orbits(model, &inc, &binary);
    }
    out
}
