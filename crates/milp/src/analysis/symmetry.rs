//! Symmetry detection: hash-based partition refinement over the
//! constraint matrix proposes interchangeable binary columns; every
//! candidate pair must then survive explicit witness construction — a
//! column transposition plus a row permutation that maps the model onto
//! itself exactly — before it enters an [`Orbit`].
//!
//! Regular DFGs (GFMUL, RS) produce isomorphic cones whose cut-selection
//! binaries are literally interchangeable; orbital fixing in branch and
//! bound exploits exactly that.

use super::{Orbit, Transposition};
use crate::model::{Model, VarKind};
use std::collections::BTreeMap;

/// Refinement rounds before the partition is taken as converged.
const ROUNDS: usize = 8;
/// Candidate class size cap (larger classes are truncated).
const MAX_CLASS: usize = 64;
/// Total verified transpositions kept.
const MAX_WITNESSES: usize = 512;

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn mix(h: u64, v: u64) -> u64 {
    splitmix(h ^ splitmix(v))
}

/// Canonical content of a row under an optional `i ↔ j` relabeling.
type RowSig = (u8, u64, Vec<(usize, u64)>);

fn row_sig(model: &Model, r: usize, swap: Option<(usize, usize)>) -> RowSig {
    let row = &model.rows[r];
    let mut coeffs: Vec<(usize, u64)> = row
        .coeffs
        .iter()
        .map(|&(v, a)| {
            let mut j = v.index();
            if let Some((x, y)) = swap {
                if j == x {
                    j = y;
                } else if j == y {
                    j = x;
                }
            }
            (j, a.to_bits())
        })
        .collect();
    coeffs.sort_unstable();
    (row.sense as u8, row.rhs.to_bits(), coeffs)
}

/// Construct the row permutation making the `i ↔ j` column swap an
/// automorphism, or `None` when no such permutation exists. Only rows
/// touching `i` or `j` can move; the returned map lists exactly those.
pub(super) fn verify_transposition(
    model: &Model,
    inc: &super::probe::Incidence,
    i: usize,
    j: usize,
) -> Option<Transposition> {
    let (ci, cj) = (&model.cols[i], &model.cols[j]);
    if ci.obj != cj.obj || ci.lb != cj.lb || ci.ub != cj.ub || ci.kind != cj.kind {
        return None;
    }
    let mut touched: Vec<usize> = inc.col_rows[i]
        .iter()
        .chain(inc.col_rows[j].iter())
        .map(|&r| r as usize)
        .collect();
    touched.sort_unstable();
    touched.dedup();

    let mut buckets: BTreeMap<RowSig, Vec<usize>> = BTreeMap::new();
    for &r in &touched {
        buckets.entry(row_sig(model, r, None)).or_default().push(r);
    }
    let mut used: BTreeMap<usize, bool> = touched.iter().map(|&r| (r, false)).collect();
    let mut row_map = Vec::with_capacity(touched.len());
    for &r in &touched {
        let sw = row_sig(model, r, Some((i, j)));
        let list = buckets.get(&sw)?;
        let s = *list.iter().find(|&&s| !used[&s])?;
        used.insert(s, true);
        row_map.push((r, s));
    }
    Some(Transposition {
        cols: (i, j),
        row_map,
    })
}

/// Detect orbits of interchangeable binary columns.
pub(super) fn detect_orbits(
    model: &Model,
    inc: &super::probe::Incidence,
    binary: &[bool],
) -> Vec<Orbit> {
    let n = model.num_vars();
    let m = model.num_rows();
    if n == 0 {
        return Vec::new();
    }

    // Initial colors from column/row attributes.
    let mut csig: Vec<u64> = model
        .cols
        .iter()
        .map(|c| {
            let mut h = 0x5151_7111u64;
            h = mix(h, c.obj.to_bits());
            h = mix(h, c.lb.to_bits());
            h = mix(h, c.ub.to_bits());
            mix(h, matches!(c.kind, VarKind::Integer) as u64)
        })
        .collect();
    let mut rsig: Vec<u64> = model
        .rows
        .iter()
        .map(|r| mix(r.sense as u8 as u64 + 1, r.rhs.to_bits()))
        .collect();

    // Column → (row, coeff) incidence for the refinement.
    let mut col_terms: Vec<Vec<(usize, u64)>> = vec![Vec::new(); n];
    for (ri, row) in model.rows.iter().enumerate() {
        for &(v, a) in &row.coeffs {
            col_terms[v.index()].push((ri, a.to_bits()));
        }
    }

    let mut distinct = 0usize;
    for _ in 0..ROUNDS {
        let mut new_rsig = Vec::with_capacity(m);
        for (ri, row) in model.rows.iter().enumerate() {
            let mut parts: Vec<u64> = row
                .coeffs
                .iter()
                .map(|&(v, a)| mix(a.to_bits(), csig[v.index()]))
                .collect();
            parts.sort_unstable();
            let mut h = rsig[ri];
            for p in parts {
                h = mix(h, p);
            }
            new_rsig.push(h);
        }
        rsig = new_rsig;
        let mut new_csig = Vec::with_capacity(n);
        for (ci, terms) in col_terms.iter().enumerate() {
            let mut parts: Vec<u64> = terms
                .iter()
                .map(|&(ri, bits)| mix(bits, rsig[ri]))
                .collect();
            parts.sort_unstable();
            let mut h = csig[ci];
            for p in parts {
                h = mix(h, p);
            }
            new_csig.push(h);
        }
        csig = new_csig;
        let mut sorted = csig.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() == distinct {
            break;
        }
        distinct = sorted.len();
    }

    // Candidate classes: free binaries sharing a final color.
    let mut classes: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    for j in 0..n {
        if binary[j] {
            classes.entry(csig[j]).or_default().push(j);
        }
    }

    // Verify consecutive pairs; connected runs become orbits.
    let mut orbits = Vec::new();
    let mut witnesses_total = 0usize;
    for members in classes.values() {
        if members.len() < 2 {
            continue;
        }
        let members = &members[..members.len().min(MAX_CLASS)];
        let mut run: Vec<usize> = vec![members[0]];
        let mut run_witnesses: Vec<Transposition> = Vec::new();
        for w in members.windows(2) {
            let witness = if witnesses_total < MAX_WITNESSES {
                verify_transposition(model, inc, w[0], w[1])
            } else {
                None
            };
            match witness {
                Some(t) => {
                    witnesses_total += 1;
                    run.push(w[1]);
                    run_witnesses.push(t);
                }
                None => {
                    if run.len() >= 2 {
                        orbits.push(Orbit {
                            members: std::mem::take(&mut run),
                            witnesses: std::mem::take(&mut run_witnesses),
                        });
                    }
                    run = vec![w[1]];
                    run_witnesses = Vec::new();
                }
            }
        }
        if run.len() >= 2 {
            orbits.push(Orbit {
                members: run,
                witnesses: run_witnesses,
            });
        }
    }
    orbits
}
