//! Gomory mixed-integer (GMI) separation from the optimal root simplex
//! tableau.
//!
//! Each fractional basic integer variable yields one tableau row
//! `x_B = β − Σ ᾱ_j x_j` (nonbasic `j`), reproduced from the original
//! system by the multiplier vector `ρ = B⁻ᵀ e_r`: the aggregated
//! equality `Σ_j (ρᵀ A)_j x_j + Σ_i ρ_i s_i = ρᵀ b` holds for every
//! point of the LP, slack variables included. Every column with a
//! nonzero aggregated coefficient is shifted onto a finite bound
//! (`y = x − l` or `y = u − x`, both `≥ 0`), the classic GMI rounding is
//! applied in the shifted space, and the resulting inequality is
//! back-substituted to a structural-only `≤` cut.
//!
//! **Rank-1 discipline.** Separation runs only against the *base* model
//! at round 0 of the cut loop, before any pool cut became a row — so
//! certificate row indices always refer to original model rows and stay
//! valid in the final strengthened model no matter which pool cuts
//! survive aging. This is also the numerically well-behaved regime:
//! higher-rank Gomory cuts (derived on top of earlier cuts) are the
//! classic source of tableau-cut instability.
//!
//! **Admission.** A derived cut ships only if it is numerically safe as
//! a whole — support, dynamism, and magnitude caps, a fractionality
//! window on `f₀`, and finite coefficients. A cut failing any check is
//! rejected outright; coefficients are never dropped or repaired, since
//! dropping a (nonnegative-coefficient) shifted term would *strengthen*
//! the inequality and break validity.

use super::cutloop::{CertifiedCut, CutProof};
use crate::model::{Model, VarKind};
use crate::simplex::{LpProblem, TabStat, TableauData, TableauRow};

/// Numerical-safety knobs for GMI admission.
#[derive(Debug, Clone)]
pub struct GomoryConfig {
    /// Maximum cuts separated per invocation (also caps extracted
    /// tableau rows).
    pub max_cuts: usize,
    /// Minimum LP violation for a cut to be worth shipping.
    pub min_violation: f64,
    /// Maximum structural support of a shipped cut.
    pub max_support: usize,
    /// Maximum ratio of largest to smallest |coefficient|.
    pub max_dynamism: f64,
    /// Maximum |coefficient| and |rhs| magnitude.
    pub max_coeff: f64,
    /// `f₀` must lie in `[away, 1 − away]` — rows barely fractional
    /// produce weak, noise-dominated cuts.
    pub away: f64,
    /// Skip separation entirely on models with more columns than this:
    /// every shipped cut is an extra dense row in each warm-started node
    /// LP, and on models too large for the tree to finish within budget
    /// the lost node throughput costs more bound than the cuts add.
    pub max_model_vars: usize,
}

impl Default for GomoryConfig {
    fn default() -> Self {
        GomoryConfig {
            max_cuts: 12,
            min_violation: 1e-3,
            max_support: 64,
            max_dynamism: 1e6,
            max_coeff: 1e7,
            away: 0.01,
            max_model_vars: 256,
        }
    }
}

/// How one aggregated-row column was shifted before GMI rounding.
///
/// The bound *value* is intentionally not stored: the auditor re-derives
/// it from the model bounds (with certified fixings applied), so a
/// tampered certificate cannot smuggle in a convenient bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GomoryShift {
    /// Extended column index: `< n` (model variables) is structural
    /// column `index`; `≥ n` is the slack of row `index − n`.
    pub index: usize,
    /// `true`: shifted from the upper bound (`y = ub − x`); `false`:
    /// from the lower bound (`y = x − lb`).
    pub upper: bool,
    /// `true`: the shifted variable is integral in every
    /// integer-feasible point, so the integer GMI coefficient applies.
    pub integer: bool,
}

/// Is `v` integral to tolerance?
fn is_int(v: f64) -> bool {
    (v - v.round()).abs() <= 1e-9
}

/// Rows whose slack is integral at every integer-feasible point: all
/// coefficients and the rhs integral, and every involved variable
/// integer-kind.
pub(crate) fn integral_slack_rows(model: &Model) -> Vec<bool> {
    model
        .rows
        .iter()
        .map(|r| {
            is_int(r.rhs)
                && r.coeffs
                    .iter()
                    .all(|&(v, c)| is_int(c) && model.cols[v.index()].kind == VarKind::Integer)
        })
        .collect()
}

/// Derive GMI cuts from the extracted tableau rows against the LP point
/// `x` (structural values). `base` must be the exact model `lp` was
/// built from. Returns each admitted cut with its violation at `x`.
///
/// Every extracted row is derived, then only the `max_cuts` *most
/// violated* survivors ship: each shipped cut is an extra dense row in
/// every warm-started node LP of the tree, so on a tight time budget a
/// few strong cuts beat many shallow ones — the shallow ones cost more
/// node throughput than bound.
pub(crate) fn separate_gomory(
    base: &Model,
    lp: &LpProblem,
    tab: &TableauData,
    x: &[f64],
    cfg: &GomoryConfig,
) -> Vec<(CertifiedCut, f64)> {
    let integral_row = integral_slack_rows(base);
    let mut out = Vec::new();
    for row in &tab.rows {
        if let Some(cut) = derive_gmi(base, lp, &tab.status, row, &integral_row, cfg) {
            let violation = cut.lhs(x) - cut.rhs;
            if violation > cfg.min_violation {
                out.push((cut, violation));
            }
        }
    }
    // Most violated first; the sparse-coefficient key breaks ties so the
    // selection is deterministic.
    out.sort_by(|p, q| {
        q.1.partial_cmp(&p.1)
            .unwrap()
            .then_with(|| p.0.key().cmp(&q.0.key()))
    });
    out.truncate(cfg.max_cuts);
    out
}

/// One tableau row → one candidate GMI cut, or `None` when derivation
/// is impossible (an unbounded column blocks shifting) or the result
/// fails admission.
fn derive_gmi(
    base: &Model,
    lp: &LpProblem,
    status: &[TabStat],
    row: &TableauRow,
    integral_row: &[bool],
    cfg: &GomoryConfig,
) -> Option<CertifiedCut> {
    let n = lp.n_struct;
    let m = lp.m;
    let rho = &row.rho;

    // Aggregated row: α_j over structural + slack columns, β₀ = ρᵀb.
    // Structural coefficients accumulate over each column's sparse
    // entries in ascending-row order — the auditor replays the same
    // products in the same order from the certificate multipliers.
    let mut alpha = vec![0.0f64; n + m];
    for (j, a) in alpha.iter_mut().enumerate().take(n) {
        *a = lp.cols[j].iter().map(|&(r, v)| v * rho[r]).sum();
    }
    alpha[n..n + m].copy_from_slice(&rho[..m]);
    let beta0: f64 = rho.iter().zip(&lp.rhs).map(|(r, b)| r * b).sum();
    if !beta0.is_finite() {
        return None;
    }

    // Shift every column with a nonzero aggregated coefficient onto a
    // finite bound. Nonbasic columns shift at the bound they sit at
    // (their y is exactly 0 at the LP vertex); basic columns take any
    // finite bound. A bound-less column with α ≠ 0 kills the row.
    let mut shifts: Vec<GomoryShift> = Vec::new();
    let mut abar: Vec<f64> = Vec::new();
    let mut beta = beta0;
    for (j, &a) in alpha.iter().enumerate() {
        if a == 0.0 {
            continue;
        }
        if !a.is_finite() {
            return None;
        }
        let (lbj, ubj) = (lp.lb[j], lp.ub[j]);
        let upper = match status[j] {
            TabStat::AtLower => {
                if lbj.is_finite() {
                    false
                } else if ubj.is_finite() {
                    true
                } else {
                    return None; // free nonbasic at 0: cannot shift
                }
            }
            TabStat::AtUpper => {
                if ubj.is_finite() {
                    true
                } else {
                    return None;
                }
            }
            TabStat::Basic => {
                if lbj.is_finite() {
                    false
                } else if ubj.is_finite() {
                    true
                } else {
                    return None;
                }
            }
        };
        let bound = if upper { ubj } else { lbj };
        beta -= a * bound;
        let integer = if j < n {
            base.cols[j].kind == VarKind::Integer && is_int(bound)
        } else {
            // Slack bound is 0 by construction; integrality is a row
            // property.
            integral_row[j - n]
        };
        shifts.push(GomoryShift {
            index: j,
            upper,
            integer,
        });
        abar.push(if upper { -a } else { a });
    }

    let f0 = beta - beta.floor();
    if !f0.is_finite() || f0 < cfg.away || f0 > 1.0 - cfg.away {
        return None;
    }
    let one_minus = 1.0 - f0;

    // GMI coefficients in the shifted (y ≥ 0) space: Σ γ_k y_k ≥ f₀.
    let gamma: Vec<f64> = abar
        .iter()
        .zip(&shifts)
        .map(|(&ab, s)| {
            if s.integer {
                let fj = ab - ab.floor();
                if fj <= f0 {
                    fj
                } else {
                    f0 * (1.0 - fj) / one_minus
                }
            } else if ab >= 0.0 {
                ab
            } else {
                -f0 * ab / one_minus
            }
        })
        .collect();

    // Back-substitute to structural x-space: Σ c_j x_j ≥ r, where each
    // shifted slack expands through its defining row s_i = b_i − a_iᵀx.
    let mut cx = vec![0.0f64; n];
    let mut r = f0;
    for (s, &g) in shifts.iter().zip(&gamma) {
        if g == 0.0 {
            continue;
        }
        if s.index < n {
            let bound = if s.upper {
                lp.ub[s.index]
            } else {
                lp.lb[s.index]
            };
            if s.upper {
                cx[s.index] -= g;
                r -= g * bound;
            } else {
                cx[s.index] += g;
                r += g * bound;
            }
        } else {
            let ri = s.index - n;
            if s.upper {
                for &(v, c) in &base.rows[ri].coeffs {
                    cx[v.index()] += g * c;
                }
                r += g * base.rows[ri].rhs;
            } else {
                for &(v, c) in &base.rows[ri].coeffs {
                    cx[v.index()] -= g * c;
                }
                r -= g * base.rows[ri].rhs;
            }
        }
    }

    // Normalize to the pool's `Σ coeffs·x ≤ rhs` form.
    let mut rhs = -r;
    let mut mx = 0.0f64;
    for &c in &cx {
        if !c.is_finite() {
            return None;
        }
        mx = mx.max(c.abs());
    }

    // Coefficients that should have cancelled exactly in the
    // back-substitution survive as ~1e-15-relative residues; left in,
    // they make the dynamism ratio astronomical and reject every cut.
    // A residue `t·x_j` is *dropped soundly* by charging the rhs its
    // minimum possible value over `x_j`'s bounds (the inequality only
    // weakens) — far below both the shipped safety margin and the
    // auditor's 1e-6-relative comparison. A residue on an unbounded
    // column cannot be compensated and keeps the cut rejectable.
    let noise = 1e-12 * mx;
    let budget = 1e-9 * (1.0 + r.abs());
    let mut spent = 0.0f64;
    let mut coeffs: Vec<(usize, f64)> = Vec::new();
    for (j, &c) in cx.iter().enumerate() {
        if c == 0.0 {
            continue;
        }
        let t = -c;
        if t.abs() <= noise {
            let bound = if t > 0.0 { lp.lb[j] } else { lp.ub[j] };
            // The cumulative charge stays three orders below the
            // auditor's comparison tolerance.
            if bound.is_finite() && spent + (t * bound).abs() <= budget {
                spent += (t * bound).abs();
                rhs -= t * bound;
                continue;
            }
        }
        coeffs.push((j, t));
    }
    let rhs = rhs + 1e-9 * (1.0 + rhs.abs());

    // Whole-cut admission.
    if coeffs.is_empty() || coeffs.len() > cfg.max_support {
        return None;
    }
    let mut mx = 0.0f64;
    let mut mn = f64::INFINITY;
    for &(_, c) in &coeffs {
        mx = mx.max(c.abs());
        mn = mn.min(c.abs());
    }
    if !rhs.is_finite() || mx > cfg.max_coeff || rhs.abs() > cfg.max_coeff {
        return None;
    }
    if mx / mn > cfg.max_dynamism {
        return None;
    }

    let multipliers: Vec<(usize, f64)> = rho
        .iter()
        .enumerate()
        .filter(|&(_, &v)| v != 0.0)
        .map(|(i, &v)| (i, v))
        .collect();
    Some(CertifiedCut {
        coeffs,
        rhs,
        proof: CutProof::Gomory {
            multipliers,
            shifts,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::cutloop::{root_cut_loop, CutLoopConfig};
    use crate::analysis::{analyze, AnalysisConfig};
    use crate::model::{Model, Sense};
    use crate::simplex::LpStatus;

    /// `min −x₂ s.t. 3x₁ + 2x₂ ≤ 6, −3x₁ + 2x₂ ≤ 0` over integers in
    /// [0, 3]: the unique LP optimum is (1, 1.5), so x₂ is basic and
    /// fractional.
    fn fractional_model() -> Model {
        let mut m = Model::new("gmi");
        let x1 = m.add_integer(0.0, 3.0, 0.0);
        let x2 = m.add_integer(0.0, 3.0, -1.0);
        let mut e = crate::model::LinExpr::new();
        e.add_term(3.0, x1);
        e.add_term(2.0, x2);
        m.add_constraint(e, Sense::Le, 6.0);
        let mut e = crate::model::LinExpr::new();
        e.add_term(-3.0, x1);
        e.add_term(2.0, x2);
        m.add_constraint(e, Sense::Le, 0.0);
        m
    }

    fn separate_on(model: &Model) -> (Vec<(CertifiedCut, f64)>, Vec<f64>) {
        let lp = LpProblem::from_model(model);
        let candidate: Vec<bool> = model
            .cols
            .iter()
            .map(|c| c.kind == VarKind::Integer)
            .collect();
        let (sol, tab) = lp
            .solve_primal_tableau(&lp.lb, &lp.ub, None, &candidate, 1e-6, 32)
            .expect("lp solves");
        assert_eq!(sol.status, LpStatus::Optimal);
        let tab = tab.expect("tableau extracted");
        assert!(!tab.rows.is_empty(), "a fractional basic integer exists");
        let cuts = separate_gomory(model, &lp, &tab, &sol.x, &GomoryConfig::default());
        (cuts, sol.x)
    }

    /// Every integer-feasible point of the model satisfies every cut
    /// (brute force over the full integer box).
    fn assert_valid_on_integer_box(model: &Model, cuts: &[(CertifiedCut, f64)]) {
        let n = model.num_vars();
        let ranges: Vec<(i64, i64)> = (0..n)
            .map(|j| {
                let c = &model.cols[j];
                (c.lb.ceil() as i64, c.ub.floor() as i64)
            })
            .collect();
        let mut point = vec![0i64; n];
        let mut checked = 0usize;
        loop {
            let xs: Vec<f64> = point
                .iter()
                .zip(&ranges)
                .map(|(&p, &(lo, _))| (lo + p) as f64)
                .collect();
            let feasible = model.rows.iter().all(|r| {
                let lhs: f64 = r.coeffs.iter().map(|&(v, c)| c * xs[v.index()]).sum();
                match r.sense {
                    Sense::Le => lhs <= r.rhs + 1e-9,
                    Sense::Ge => lhs >= r.rhs - 1e-9,
                    Sense::Eq => (lhs - r.rhs).abs() <= 1e-9,
                }
            });
            if feasible {
                checked += 1;
                for (cut, _) in cuts {
                    let lhs: f64 = cut.coeffs.iter().map(|&(j, c)| c * xs[j]).sum();
                    assert!(
                        lhs <= cut.rhs + 1e-7,
                        "cut {:?} ≤ {} violated at {:?} (lhs {})",
                        cut.coeffs,
                        cut.rhs,
                        xs,
                        lhs
                    );
                }
            }
            // Odometer over the box.
            let mut k = 0;
            loop {
                if k == n {
                    assert!(checked > 0, "integer box has feasible points");
                    return;
                }
                point[k] += 1;
                if ranges[k].0 + point[k] <= ranges[k].1 {
                    break;
                }
                point[k] = 0;
                k += 1;
            }
        }
    }

    #[test]
    fn gmi_cuts_fractional_vertex_and_stays_valid() {
        let model = fractional_model();
        let (cuts, x) = separate_on(&model);
        assert!(!cuts.is_empty(), "the fractional vertex yields a cut");
        for (cut, v) in &cuts {
            assert!(*v > 1e-4, "reported violation is real: {v}");
            let lhs: f64 = cut.coeffs.iter().map(|&(j, c)| c * x[j]).sum();
            assert!(lhs > cut.rhs + 1e-4, "cut actually cuts the LP point");
        }
        assert_valid_on_integer_box(&model, &cuts);
    }

    #[test]
    fn gmi_valid_on_mixed_integer_knapsack() {
        // Mixed model: one continuous column participates in the row, so
        // the continuous GMI coefficient path is exercised.
        let mut m = Model::new("mix");
        let x1 = m.add_integer(0.0, 4.0, -5.0);
        let x2 = m.add_integer(0.0, 4.0, -4.0);
        let y = m.add_continuous(0.0, 10.0, -1.0);
        let mut e = crate::model::LinExpr::new();
        e.add_term(6.0, x1);
        e.add_term(4.0, x2);
        e.add_term(1.0, y);
        m.add_constraint(e, Sense::Le, 13.0);
        let mut e = crate::model::LinExpr::new();
        e.add_term(1.0, x1);
        e.add_term(2.0, x2);
        m.add_constraint(e, Sense::Le, 5.0);

        let lp = LpProblem::from_model(&m);
        let candidate: Vec<bool> = m.cols.iter().map(|c| c.kind == VarKind::Integer).collect();
        let (sol, tab) = lp
            .solve_primal_tableau(&lp.lb, &lp.ub, None, &candidate, 1e-6, 32)
            .expect("lp solves");
        assert_eq!(sol.status, LpStatus::Optimal);
        if let Some(tab) = tab {
            let cuts = separate_gomory(&m, &lp, &tab, &sol.x, &GomoryConfig::default());
            // Validity must hold for the continuous column at any value;
            // spot-check y over a grid by brute force on a refined model
            // where y is restricted to integers (a subset of feasible
            // points — validity on the subset is necessary).
            assert_valid_on_integer_box(&m, &cuts);
        }
    }

    #[test]
    fn cut_loop_ships_gomory_cuts_with_certificates() {
        let model = fractional_model();
        let analysis = analyze(&model, &AnalysisConfig::default());
        let cfg = CutLoopConfig {
            gomory: true,
            ..CutLoopConfig::default()
        };
        let out = root_cut_loop(&model, &analysis, &cfg, None);
        assert!(out.stats.gomory_cuts > 0, "loop shipped a gomory cut");
        assert!(out
            .cuts
            .iter()
            .any(|c| matches!(c.proof, CutProof::Gomory { .. })));
        // Integer optimum is unchanged: −2 at (0,1)/(2,0)… brute check.
        assert_valid_on_integer_box(
            &model,
            &out.cuts
                .iter()
                .map(|c| (c.clone(), 0.0))
                .collect::<Vec<_>>(),
        );
    }
}
