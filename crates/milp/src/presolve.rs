//! Presolve: shrink a model before the root LP solve.
//!
//! The scheduling MILPs the paper's formulation emits are full of
//! structure a solver can exploit *before* simplex ever runs: singleton
//! rows that are really just bounds, variables whose bounds cross into a
//! fixed point, rows made redundant by activity bounds, and `≤`-rows over
//! binaries whose coefficients can be strengthened without changing the
//! integer-feasible set. Every reduction here preserves the set of
//! mixed-integer feasible points exactly (LP-only points may be cut — that
//! is the point of coefficient strengthening), so the reduced model's
//! optimum maps back to the original via [`Reduction::restore`].

use crate::model::{LinExpr, Model, Sense, VarId, VarKind};
use crate::SolverStats;

/// Tolerance below which a bound improvement is not worth recording.
const TIGHTEN_TOL: f64 = 1e-7;
/// Violations larger than this prove infeasibility.
const INFEAS_TOL: f64 = 1e-6;
/// Maximum fixpoint rounds.
const MAX_ROUNDS: usize = 10;

/// Outcome of presolving a model.
#[derive(Debug)]
pub(crate) enum PresolveOutcome {
    /// The model shrank (possibly by nothing); solve the reduction.
    Reduced(Box<Reduction>),
    /// Presolve proved the model has no mixed-integer feasible point.
    Infeasible,
}

/// A presolved model plus the bookkeeping to map solutions back.
#[derive(Debug, Clone)]
pub(crate) struct Reduction {
    /// The reduced model (same objective up to [`Reduction::obj_offset`]).
    pub model: Model,
    /// Constant objective contribution of the fixed variables.
    pub obj_offset: f64,
    /// Old column index → reduced column index (`None` when fixed).
    keep: Vec<Option<usize>>,
    /// Old column index → fixed value (meaningful where `keep` is `None`).
    fixed_vals: Vec<f64>,
    /// Reduction counters (folded into [`SolverStats`]).
    pub rows_removed: usize,
    /// Number of variables substituted out.
    pub cols_fixed: usize,
    /// Number of bound tightenings applied.
    pub bounds_tightened: usize,
    /// Number of coefficients strengthened.
    pub coeffs_reduced: usize,
}

impl Reduction {
    /// Expand a reduced-space assignment to the original column space.
    pub fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        self.keep
            .iter()
            .enumerate()
            .map(|(old, k)| match k {
                Some(new) => reduced[*new],
                None => self.fixed_vals[old],
            })
            .collect()
    }

    /// Project an original-space assignment into the reduced space;
    /// `None` when it disagrees with a fixed variable (the point is not
    /// feasible in the reduction).
    pub fn project(&self, original: &[f64]) -> Option<Vec<f64>> {
        let mut out = vec![0.0; self.model.num_vars()];
        for (old, k) in self.keep.iter().enumerate() {
            match k {
                Some(new) => out[*new] = original[old],
                None => {
                    if (original[old] - self.fixed_vals[old]).abs() > 1e-6 {
                        return None;
                    }
                }
            }
        }
        Some(out)
    }

    /// Does this reduction leave the model untouched (no rows removed, no
    /// columns fixed, no bounds or coefficients changed)? Basis and
    /// frontier capture in the re-solve engine is only sound when node
    /// bounds and basis columns live in the original model's spaces.
    pub fn is_identity(&self) -> bool {
        self.rows_removed == 0
            && self.cols_fixed == 0
            && self.bounds_tightened == 0
            && self.coeffs_reduced == 0
            && self.keep.iter().enumerate().all(|(i, k)| *k == Some(i))
    }

    /// Fold the reduction counters into a [`SolverStats`].
    pub fn fill_stats(&self, stats: &mut SolverStats) {
        stats.presolve_rows_removed = self.rows_removed;
        stats.presolve_cols_fixed = self.cols_fixed;
        stats.presolve_bounds_tightened = self.bounds_tightened;
        stats.presolve_coeffs_reduced = self.coeffs_reduced;
    }
}

/// The identity reduction: presolve disabled.
pub(crate) fn identity(model: &Model) -> Reduction {
    Reduction {
        model: model.clone(),
        obj_offset: 0.0,
        keep: (0..model.num_vars()).map(Some).collect(),
        fixed_vals: vec![0.0; model.num_vars()],
        rows_removed: 0,
        cols_fixed: 0,
        bounds_tightened: 0,
        coeffs_reduced: 0,
    }
}

#[derive(Debug, Clone)]
struct WCol {
    lb: f64,
    ub: f64,
    obj: f64,
    kind: VarKind,
    fixed: bool,
}

#[derive(Debug, Clone)]
struct WRow {
    coeffs: Vec<(usize, f64)>,
    sense: Sense,
    rhs: f64,
    alive: bool,
}

/// Activity bounds of a row's terms, excluding column `skip` (pass
/// `usize::MAX` to include everything). Returns `(min, max)`; infinite
/// when an unbounded variable participates.
fn activity(row: &WRow, cols: &[WCol], skip: usize) -> (f64, f64) {
    let mut lo = 0.0f64;
    let mut hi = 0.0f64;
    for &(j, a) in &row.coeffs {
        if j == skip {
            continue;
        }
        let c = &cols[j];
        if a > 0.0 {
            lo += a * c.lb;
            hi += a * c.ub;
        } else {
            lo += a * c.ub;
            hi += a * c.lb;
        }
    }
    (lo, hi)
}

/// Presolve `model`. Reductions iterate to a fixpoint (bounded rounds);
/// the result is deterministic — same model in, same reduction out — which
/// the parallel search's determinism contract relies on.
pub(crate) fn presolve(model: &Model) -> PresolveOutcome {
    let n = model.num_vars();
    let mut cols: Vec<WCol> = model
        .cols
        .iter()
        .map(|c| WCol {
            lb: c.lb,
            ub: c.ub,
            obj: c.obj,
            kind: c.kind,
            fixed: false,
        })
        .collect();
    let mut rows: Vec<WRow> = model
        .rows
        .iter()
        .map(|r| WRow {
            coeffs: r.coeffs.iter().map(|&(v, a)| (v.index(), a)).collect(),
            sense: r.sense,
            rhs: r.rhs,
            alive: true,
        })
        .collect();

    let mut rows_removed = 0usize;
    let mut bounds_tightened = 0usize;
    let mut coeffs_reduced = 0usize;

    // Round integer bounds inward once up front.
    for c in cols.iter_mut() {
        if c.kind == VarKind::Integer {
            let lb = (c.lb - 1e-6).ceil();
            let ub = (c.ub + 1e-6).floor();
            if lb > c.lb + 1e-9 || ub < c.ub - 1e-9 {
                bounds_tightened += 1;
            }
            if lb > ub + 1e-9 {
                return PresolveOutcome::Infeasible;
            }
            c.lb = lb;
            c.ub = ub;
        }
    }

    for _round in 0..MAX_ROUNDS {
        let mut changed = false;

        for r in rows.iter_mut() {
            if !r.alive {
                continue;
            }
            // Drop terms on fixed columns (substituted into the rhs).
            let mut rhs = r.rhs;
            r.coeffs.retain(|&(j, a)| {
                if cols[j].fixed {
                    rhs -= a * cols[j].lb;
                    false
                } else {
                    true
                }
            });
            r.rhs = rhs;

            // Constant row: consistency check, then remove.
            if r.coeffs.is_empty() {
                let ok = match r.sense {
                    Sense::Le => 0.0 <= rhs + INFEAS_TOL,
                    Sense::Ge => 0.0 >= rhs - INFEAS_TOL,
                    Sense::Eq => rhs.abs() <= INFEAS_TOL,
                };
                if !ok {
                    return PresolveOutcome::Infeasible;
                }
                r.alive = false;
                rows_removed += 1;
                changed = true;
                continue;
            }

            // Singleton row: fold into the variable's bounds.
            if r.coeffs.len() == 1 {
                let (j, a) = r.coeffs[0];
                if a.abs() > 1e-9 {
                    let v = rhs / a;
                    let (mut new_lb, mut new_ub) = (cols[j].lb, cols[j].ub);
                    match (r.sense, a > 0.0) {
                        (Sense::Le, true) | (Sense::Ge, false) => new_ub = new_ub.min(v),
                        (Sense::Le, false) | (Sense::Ge, true) => new_lb = new_lb.max(v),
                        (Sense::Eq, _) => {
                            new_lb = new_lb.max(v);
                            new_ub = new_ub.min(v);
                        }
                    }
                    if cols[j].kind == VarKind::Integer {
                        if new_lb.is_finite() {
                            new_lb = (new_lb - 1e-6).ceil();
                        }
                        if new_ub.is_finite() {
                            new_ub = (new_ub + 1e-6).floor();
                        }
                    }
                    if tighten(&mut cols[j], new_lb, new_ub, &mut bounds_tightened) {
                        changed = true;
                    }
                    if cols[j].lb > cols[j].ub + INFEAS_TOL {
                        return PresolveOutcome::Infeasible;
                    }
                    r.alive = false;
                    rows_removed += 1;
                    continue;
                }
            }

            let (minact, maxact) = activity(r, &cols, usize::MAX);

            // Redundancy / infeasibility by activity bounds.
            let (redundant, infeasible) = match r.sense {
                Sense::Le => (maxact <= rhs + TIGHTEN_TOL, minact > rhs + INFEAS_TOL),
                Sense::Ge => (minact >= rhs - TIGHTEN_TOL, maxact < rhs - INFEAS_TOL),
                Sense::Eq => (
                    (maxact - rhs).abs() <= TIGHTEN_TOL && (minact - rhs).abs() <= TIGHTEN_TOL,
                    minact > rhs + INFEAS_TOL || maxact < rhs - INFEAS_TOL,
                ),
            };
            if infeasible {
                return PresolveOutcome::Infeasible;
            }
            if redundant {
                r.alive = false;
                rows_removed += 1;
                changed = true;
                continue;
            }

            // Implied (activity-based) bound tightening.
            let row = r.clone();
            for &(j, a) in &row.coeffs {
                if a.abs() < 1e-7 {
                    continue;
                }
                let (rlo, rhi) = activity(&row, &cols, j);
                // `expr ≤ rhs` ⇒ a·x_j ≤ rhs − rlo; `expr ≥ rhs` ⇒
                // a·x_j ≥ rhs − rhi. Equalities imply both.
                let le_like = matches!(row.sense, Sense::Le | Sense::Eq);
                let ge_like = matches!(row.sense, Sense::Ge | Sense::Eq);
                let (mut new_lb, mut new_ub) = (cols[j].lb, cols[j].ub);
                if le_like && rlo.is_finite() {
                    let v = (row.rhs - rlo) / a;
                    if a > 0.0 {
                        new_ub = new_ub.min(v);
                    } else {
                        new_lb = new_lb.max(v);
                    }
                }
                if ge_like && rhi.is_finite() {
                    let v = (row.rhs - rhi) / a;
                    if a > 0.0 {
                        new_lb = new_lb.max(v);
                    } else {
                        new_ub = new_ub.min(v);
                    }
                }
                if cols[j].kind == VarKind::Integer {
                    new_lb = if new_lb.is_finite() {
                        (new_lb - 1e-6).ceil()
                    } else {
                        new_lb
                    };
                    new_ub = if new_ub.is_finite() {
                        (new_ub + 1e-6).floor()
                    } else {
                        new_ub
                    };
                }
                if tighten(&mut cols[j], new_lb, new_ub, &mut bounds_tightened) {
                    changed = true;
                }
                if cols[j].lb > cols[j].ub + INFEAS_TOL {
                    return PresolveOutcome::Infeasible;
                }
            }

            // Coefficient strengthening on ≤/≥ rows over binaries: when the
            // row is redundant at one value of a binary x_j, pull its
            // coefficient (and rhs) in so the LP relaxation tightens while
            // the integer-feasible set is untouched (Savelsbergh's rule).
            if r.sense != Sense::Eq {
                // Normalize to ≤ by sign: `s·expr ≤ s·rhs` with s = ±1.
                let s = if r.sense == Sense::Le { 1.0 } else { -1.0 };
                for ti in 0..r.coeffs.len() {
                    // Re-read rhs each term: a strengthening on an earlier
                    // term of this row may have moved it.
                    let b = s * r.rhs;
                    let (j, a_raw) = r.coeffs[ti];
                    let a = s * a_raw;
                    let binary =
                        cols[j].kind == VarKind::Integer && cols[j].lb == 0.0 && cols[j].ub == 1.0;
                    if !binary {
                        continue;
                    }
                    let (_, rmax) = {
                        // Activity of the rest (column j excluded), in the
                        // normalized (≤) sign.
                        let (lo, hi) = activity(r, &cols, j);
                        if s > 0.0 {
                            (lo, hi)
                        } else {
                            (-hi, -lo)
                        }
                    };
                    if !rmax.is_finite() {
                        continue;
                    }
                    if a > TIGHTEN_TOL && rmax < b - TIGHTEN_TOL && rmax + a > b + TIGHTEN_TOL {
                        // Redundant at x_j = 0, binding at x_j = 1:
                        // a' = a − (b − rmax), b' = rmax.
                        let a_new = a - (b - rmax);
                        r.coeffs[ti].1 = s * a_new;
                        r.rhs = s * rmax;
                        coeffs_reduced += 1;
                        changed = true;
                    } else if a < -TIGHTEN_TOL
                        && rmax + a < b - TIGHTEN_TOL
                        && rmax > b + TIGHTEN_TOL
                    {
                        // Redundant at x_j = 1, binding at x_j = 0:
                        // a' = b − rmax (> a), rhs unchanged.
                        r.coeffs[ti].1 = s * (b - rmax);
                        coeffs_reduced += 1;
                        changed = true;
                    }
                }
            }
        }

        // Fix variables whose bounds met.
        for c in cols.iter_mut() {
            if !c.fixed && c.ub - c.lb <= 1e-9 && c.lb.is_finite() {
                // Snap integers onto the lattice exactly.
                if c.kind == VarKind::Integer {
                    c.lb = c.lb.round();
                }
                c.ub = c.lb;
                c.fixed = true;
                changed = true;
            }
        }

        if !changed {
            break;
        }
    }

    // Assemble the reduced model.
    let mut keep: Vec<Option<usize>> = vec![None; n];
    let mut fixed_vals = vec![0.0; n];
    let mut obj_offset = 0.0;
    let mut reduced = Model::new(format!("{}#presolved", model.name()));
    for (j, c) in cols.iter().enumerate() {
        if c.fixed {
            fixed_vals[j] = c.lb;
            obj_offset += c.obj * c.lb;
        } else {
            keep[j] = Some(reduced.num_vars());
            reduced.add_var(c.lb, c.ub, c.obj, c.kind);
        }
    }
    let cols_fixed = n - reduced.num_vars();
    for row in rows.iter().filter(|r| r.alive) {
        let mut e = LinExpr::new();
        let mut rhs = row.rhs;
        for &(j, a) in &row.coeffs {
            match keep[j] {
                Some(nj) => {
                    e.add_term(a, VarId(nj as u32));
                }
                None => rhs -= a * fixed_vals[j],
            }
        }
        if e.coeffs().is_empty() {
            let ok = match row.sense {
                Sense::Le => 0.0 <= rhs + INFEAS_TOL,
                Sense::Ge => 0.0 >= rhs - INFEAS_TOL,
                Sense::Eq => rhs.abs() <= INFEAS_TOL,
            };
            if !ok {
                return PresolveOutcome::Infeasible;
            }
            rows_removed += 1;
            continue;
        }
        reduced.add_constraint(e, row.sense, rhs);
    }

    PresolveOutcome::Reduced(Box::new(Reduction {
        model: reduced,
        obj_offset,
        keep,
        fixed_vals,
        rows_removed,
        cols_fixed,
        bounds_tightened,
        coeffs_reduced,
    }))
}

/// Apply tightened bounds to a column; returns `true` when either bound
/// moved by more than the tolerance.
fn tighten(c: &mut WCol, new_lb: f64, new_ub: f64, count: &mut usize) -> bool {
    let mut moved = false;
    if new_lb > c.lb + TIGHTEN_TOL {
        c.lb = new_lb;
        *count += 1;
        moved = true;
    }
    if new_ub < c.ub - TIGHTEN_TOL {
        c.ub = new_ub;
        *count += 1;
        moved = true;
    }
    moved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn reduce(m: &Model) -> Reduction {
        match presolve(m) {
            PresolveOutcome::Reduced(r) => *r,
            PresolveOutcome::Infeasible => panic!("unexpected infeasible"),
        }
    }

    #[test]
    fn singleton_row_becomes_bound() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 4.0);
        let r = reduce(&m);
        assert_eq!(r.model.num_rows(), 0);
        assert_eq!(r.model.bounds(crate::VarId(0)), (0.0, 4.0));
        assert_eq!(r.rows_removed, 1);
    }

    #[test]
    fn fixed_variable_is_substituted() {
        let mut m = Model::new("t");
        let x = m.add_integer(3.0, 3.0, 2.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 8.0);
        let r = reduce(&m);
        assert_eq!(r.model.num_vars(), 1);
        assert_eq!(r.obj_offset, 6.0);
        // x + y <= 8 with x = 3 becomes y <= 5, folded into y's bound.
        assert_eq!(r.model.bounds(crate::VarId(0)), (0.0, 5.0));
        let full = r.restore(&[2.5]);
        assert_eq!(full, vec![3.0, 2.5]);
    }

    #[test]
    fn crossed_integer_bounds_infeasible() {
        let mut m = Model::new("t");
        let x = m.add_integer(0.0, 1.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Ge, 0.4);
        m.add_constraint(LinExpr::from(x), Sense::Le, 0.6);
        assert!(matches!(presolve(&m), PresolveOutcome::Infeasible));
    }

    #[test]
    fn redundant_row_dropped() {
        let mut m = Model::new("t");
        let x = m.add_binary(1.0);
        let y = m.add_binary(1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 5.0);
        let r = reduce(&m);
        assert_eq!(r.model.num_rows(), 0);
    }

    #[test]
    fn coefficient_strengthening_preserves_integer_set() {
        // 3x + y <= 3 with x binary, y in [0, 2]: at x = 0 the row is
        // redundant (maxact of y = 2 <= 3), at x = 1 it binds (y <= 0).
        // Strengthened: 1x... a' = 3 - (3 - 2) = 2, rhs' = 2 -> 2x + y <= 2.
        let mut m = Model::new("t");
        let x = m.add_binary(-1.0);
        let y = m.add_continuous(0.0, 2.0, -1.0);
        let mut e = LinExpr::new();
        e.add_term(3.0, x);
        e.add_term(1.0, y);
        m.add_constraint(e, Sense::Le, 3.0);
        let r = reduce(&m);
        assert_eq!(r.coeffs_reduced, 1);
        // Integer-feasible set unchanged: (x=0, y<=2), (x=1, y=0).
        assert!(r.model.check_feasible(&[0.0, 2.0], 1e-9).is_none());
        assert!(r.model.check_feasible(&[1.0, 0.0], 1e-9).is_none());
        assert!(r.model.check_feasible(&[1.0, 0.5], 1e-9).is_some());
    }

    #[test]
    fn project_rejects_mismatched_fixed_value() {
        let mut m = Model::new("t");
        let _x = m.add_integer(2.0, 2.0, 1.0);
        let _y = m.add_continuous(0.0, 1.0, 1.0);
        let r = reduce(&m);
        assert_eq!(r.model.num_vars(), 1);
        assert!(r.project(&[2.0, 0.5]).is_some());
        assert!(r.project(&[1.0, 0.5]).is_none());
    }
}
