//! Sparse LU factorization of the simplex basis, with product-form (eta)
//! updates.
//!
//! The basis matrices arising from scheduling MILPs are extremely sparse
//! (a handful of nonzeros per row, many slack columns), so a
//! Markowitz-flavoured right-looking elimination with threshold pivoting
//! keeps fill-in negligible and refactorization cheap.
//!
//! Terminology: the basis `B` is `m × m` with `B[row][pos] =
//! A[row][basis[pos]]`; *rows* index constraints, *positions* index slots in
//! the basis header. `ftran` solves `B x = b` (x over positions), `btran`
//! solves `Bᵀ y = c` (y over rows).

use std::collections::HashMap;

/// Factorization failure: the basis is (numerically) singular.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Singular {
    /// A basis position that could not be pivoted.
    pub position: usize,
}

/// One product-form update `B_new = B_old · E`, where `E` is the identity
/// with column `pos` replaced by `w = B_old⁻¹ a_entering`.
#[derive(Debug, Clone)]
struct Eta {
    pos: usize,
    /// Off-pivot entries of `w` (position, value).
    entries: Vec<(usize, f64)>,
    /// `w[pos]`, the pivot element.
    pivot: f64,
}

/// One appended basis row for the bordered extension: with `k` rows
/// appended the basis becomes the block-lower-triangular
/// `[[B, 0], [C, S]]`, where row `i` of `(C | S)` is stored here as
/// `entries` (coefficients of the appended row on earlier basis
/// *positions*, both base and prior border) plus the diagonal `pivot`
/// (the appended row's own basic column, a slack in practice).
#[derive(Debug, Clone)]
struct BorderRow {
    entries: Vec<(usize, f64)>,
    pivot: f64,
}

/// LU factors plus the eta file accumulated since the last refactorization.
#[derive(Debug, Clone)]
pub(crate) struct Factors {
    m: usize,
    /// `(pivot_row, pivot_position)` per elimination step.
    pivots: Vec<(usize, usize)>,
    /// Per step: `(target_row, multiplier)` row operations.
    l_ops: Vec<Vec<(usize, f64)>>,
    /// Per step: snapshot of the pivot row `(position, value)`; contains
    /// only the pivot position and positions eliminated at later steps.
    u_rows: Vec<Vec<(usize, f64)>>,
    /// Per step: the diagonal (pivot) value.
    u_diag: Vec<f64>,
    etas: Vec<Eta>,
    /// Bordered extension rows appended by [`Factors::append_rows`]
    /// (re-solve with added cut rows); empty for a fresh factorization.
    border: Vec<BorderRow>,
    /// How many of `etas` were recorded *before* the border was appended.
    /// Those etas act on base positions only and belong inside `B`; etas
    /// past this index act on the full bordered dimension.
    border_at: usize,
}

impl Factors {
    /// Number of updates applied since factorization.
    pub fn eta_count(&self) -> usize {
        self.etas.len()
    }

    /// Total dimension the factors solve for: the factored base plus any
    /// appended border rows.
    pub fn dim(&self) -> usize {
        self.m + self.border.len()
    }

    /// Factor the basis given its columns (`cols[pos]` = sparse column of
    /// `(row, value)` pairs, rows strictly increasing not required).
    pub fn factor(m: usize, cols: &[Vec<(usize, f64)>]) -> Result<Factors, Singular> {
        debug_assert_eq!(cols.len(), m);
        // Active matrix: row-major values + column-major structure.
        // `col_rows` may hold stale rows; `col_count` is exact.
        let mut rows: Vec<HashMap<usize, f64>> = vec![HashMap::new(); m];
        let mut col_rows: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut col_count: Vec<usize> = vec![0; m];
        let mut row_active = vec![true; m];
        let mut col_active = vec![true; m];
        for (pos, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                if v != 0.0 {
                    rows[r].insert(pos, v);
                    col_rows[pos].push(r);
                }
            }
            col_count[pos] = col_rows[pos].len();
        }

        // Lazy min-heap over (count, column) for Markowitz-lite selection.
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let mut heap: BinaryHeap<Reverse<(usize, usize)>> =
            (0..m).map(|c| Reverse((col_count[c], c))).collect();

        let mut pivots = Vec::with_capacity(m);
        let mut l_ops = Vec::with_capacity(m);
        let mut u_rows = Vec::with_capacity(m);
        let mut u_diag = Vec::with_capacity(m);

        const TAU: f64 = 0.05; // threshold-pivoting relative tolerance
        const ABS_TINY: f64 = 1e-11;

        for _step in 0..m {
            // Pivot column: smallest exact active count (lazy fix-up).
            let pc = loop {
                let Some(Reverse((cnt, c))) = heap.pop() else {
                    // All heap entries stale; find any active column.
                    let c = col_active
                        .iter()
                        .position(|&a| a)
                        .expect("active column remains before step m");
                    break c;
                };
                if !col_active[c] {
                    continue;
                }
                if col_count[c] != cnt {
                    heap.push(Reverse((col_count[c], c)));
                    continue;
                }
                if cnt == 0 {
                    return Err(Singular { position: c });
                }
                break c;
            };
            if col_count[pc] == 0 {
                return Err(Singular { position: pc });
            }

            // Stability: among rows of this column, max |value|.
            col_rows[pc].retain(|&r| row_active[r] && rows[r].contains_key(&pc));
            let col_max = col_rows[pc]
                .iter()
                .map(|&r| rows[r][&pc].abs())
                .fold(0.0_f64, f64::max);
            if col_max <= ABS_TINY {
                return Err(Singular { position: pc });
            }
            // Among sufficiently large entries pick the sparsest row,
            // breaking length ties toward the lowest row index so the
            // pivot sequence never depends on bookkeeping order.
            let mut pr = usize::MAX;
            let mut pr_len = usize::MAX;
            for &r in &col_rows[pc] {
                let v = rows[r][&pc].abs();
                if v >= TAU * col_max && (rows[r].len(), r) < (pr_len, pr) {
                    pr_len = rows[r].len();
                    pr = r;
                }
            }
            debug_assert_ne!(pr, usize::MAX);
            let pivot_val = rows[pr][&pc];

            // Off-pivot entries of the pivot row in ascending column
            // order: hash-map iteration order must not leak into the
            // stored factors or the update arithmetic, or identical
            // bases would factor differently across runs (different
            // rounding, different downstream simplex pivots).
            let mut pivot_row_entries: Vec<(usize, f64)> = rows[pr]
                .iter()
                .filter(|&(&c, _)| c != pc)
                .map(|(&c, &v)| (c, v))
                .collect();
            pivot_row_entries.sort_unstable_by_key(|&(c, _)| c);

            // Record the U row snapshot (pivot first for clarity).
            let mut urow: Vec<(usize, f64)> = Vec::with_capacity(pivot_row_entries.len() + 1);
            urow.push((pc, pivot_val));
            urow.extend_from_slice(&pivot_row_entries);

            // Eliminate column pc from all other active rows.
            let mut ops: Vec<(usize, f64)> = Vec::new();
            for idx in 0..col_rows[pc].len() {
                let r = col_rows[pc][idx];
                if r == pr {
                    continue;
                }
                let arc = match rows[r].get(&pc) {
                    Some(&v) => v,
                    None => continue,
                };
                let mult = arc / pivot_val;
                ops.push((r, mult));
                rows[r].remove(&pc);
                for &(c, v) in &pivot_row_entries {
                    let entry = rows[r].entry(c).or_insert(0.0);
                    let had = *entry != 0.0;
                    *entry -= mult * v;
                    if entry.abs() <= ABS_TINY {
                        rows[r].remove(&c);
                        if had {
                            col_count[c] -= 1;
                            heap.push(Reverse((col_count[c], c)));
                        }
                    } else if !had {
                        col_rows[c].push(r);
                        col_count[c] += 1;
                    }
                }
            }

            // Deactivate pivot row & column, fixing the counts of every
            // column the pivot row touched.
            row_active[pr] = false;
            col_active[pc] = false;
            for &c in rows[pr].keys() {
                if c != pc && col_active[c] {
                    col_count[c] -= 1;
                    heap.push(Reverse((col_count[c], c)));
                }
            }
            rows[pr].clear();

            pivots.push((pr, pc));
            l_ops.push(ops);
            u_rows.push(urow);
            u_diag.push(pivot_val);
        }

        Ok(Factors {
            m,
            pivots,
            l_ops,
            u_rows,
            u_diag,
            etas: Vec::new(),
            border: Vec::new(),
            border_at: 0,
        })
    }

    /// Extend the factorization in place for rows appended to the basis
    /// (added cut rows whose slacks enter the basis): each element of
    /// `rows` is `(entries, pivot)` with `entries` the appended row's
    /// coefficients on the *existing* basis positions (base positions
    /// and earlier border positions) and `pivot` the coefficient of the
    /// appended row's own basic column.
    ///
    /// Returns `false` (caller must refactorize) when the extension is
    /// not representable — a pivot too small for stability, or basis
    /// updates were already recorded on top of an earlier border (the
    /// factors only track one pre-border/post-border eta split).
    #[must_use]
    pub fn append_rows(&mut self, rows: &[(Vec<(usize, f64)>, f64)]) -> bool {
        if self.etas.len() != self.border_at && !self.border.is_empty() {
            return false;
        }
        if rows.iter().any(|(_, pivot)| pivot.abs() < 1e-9) {
            return false;
        }
        let dim = self.dim();
        for (i, (entries, _)) in rows.iter().enumerate() {
            debug_assert!(entries.iter().all(|&(p, _)| p < dim + i));
        }
        self.border_at = self.etas.len();
        self.border
            .extend(rows.iter().map(|(entries, pivot)| BorderRow {
                entries: entries.clone(),
                pivot: *pivot,
            }));
        true
    }

    /// Solve `B x = b` in place: `x` enters holding `b` (indexed by row)
    /// and exits holding the solution (indexed by position).
    pub fn ftran(&self, x: &mut [f64]) {
        debug_assert_eq!(x.len(), self.dim());
        // Apply L row operations in elimination order.
        for (k, ops) in self.l_ops.iter().enumerate() {
            let pivot_row = self.pivots[k].0;
            let xv = x[pivot_row];
            if xv != 0.0 {
                for &(r, mult) in ops {
                    x[r] -= mult * xv;
                }
            }
        }
        // Back-substitute U: positions in u_rows[k] other than the pivot
        // belong to later steps, whose solution values are already final.
        let mut sol = vec![0.0; self.m];
        for k in (0..self.m).rev() {
            let (pr, pc) = self.pivots[k];
            let mut val = x[pr];
            for &(p, v) in &self.u_rows[k] {
                if p != pc {
                    val -= v * sol[p];
                }
            }
            sol[pc] = val / self.u_diag[k];
        }
        x[..self.m].copy_from_slice(&sol);
        // Pre-border etas act on base positions and belong inside `B`.
        for eta in &self.etas[..self.border_at] {
            let xp = x[eta.pos] / eta.pivot;
            x[eta.pos] = xp;
            if xp != 0.0 {
                for &(i, v) in &eta.entries {
                    x[i] -= v * xp;
                }
            }
        }
        // Border forward elimination: row i of `[[B,0],[C,S]]` gives
        // `x[m+i] = (b[m+i] − Σ C[i][p]·x[p]) / pivot`, where earlier
        // border positions referenced by `entries` are already final.
        for (i, br) in self.border.iter().enumerate() {
            let mut val = x[self.m + i];
            for &(p, v) in &br.entries {
                val -= v * x[p];
            }
            x[self.m + i] = val / br.pivot;
        }
        // Post-border etas act on the full bordered dimension.
        for eta in &self.etas[self.border_at..] {
            let xp = x[eta.pos] / eta.pivot;
            x[eta.pos] = xp;
            if xp != 0.0 {
                for &(i, v) in &eta.entries {
                    x[i] -= v * xp;
                }
            }
        }
    }

    /// Solve `Bᵀ y = c` in place: `y` enters holding `c` (indexed by
    /// position) and exits holding the solution (indexed by row).
    pub fn btran(&self, y: &mut [f64]) {
        debug_assert_eq!(y.len(), self.dim());
        // Post-border eta-transpose updates in reverse order: c := E⁻ᵀ c.
        for eta in self.etas[self.border_at..].iter().rev() {
            let mut acc = y[eta.pos];
            for &(i, v) in &eta.entries {
                acc -= v * y[i];
            }
            y[eta.pos] = acc / eta.pivot;
        }
        // Border back-substitution: with `[[B,0],[C,S]]ᵀ = [[Bᵀ,Cᵀ],[0,Sᵀ]]`
        // the bottom block solves in reverse row order, scattering each
        // resolved `y[m+i]` into the right-hand side of the positions its
        // row touches (both `Cᵀ` into the base and `Sᵀ` into earlier
        // border rows).
        for (i, br) in self.border.iter().enumerate().rev() {
            let yi = y[self.m + i] / br.pivot;
            y[self.m + i] = yi;
            if yi != 0.0 {
                for &(p, v) in &br.entries {
                    y[p] -= v * yi;
                }
            }
        }
        // Pre-border eta-transposes (inside `B`), reverse order.
        for eta in self.etas[..self.border_at].iter().rev() {
            let mut acc = y[eta.pos];
            for &(i, v) in &eta.entries {
                acc -= v * y[i];
            }
            y[eta.pos] = acc / eta.pivot;
        }
        // Solve Uᵀ w = c by forward scattering over elimination steps.
        let mut w = vec![0.0; self.m];
        for (k, wk_slot) in w.iter_mut().enumerate() {
            let (_, pc) = self.pivots[k];
            let wk = y[pc] / self.u_diag[k];
            *wk_slot = wk;
            if wk != 0.0 {
                for &(p, v) in &self.u_rows[k] {
                    if p != pc {
                        y[p] -= v * wk;
                    }
                }
            }
        }
        // Solve Lᵀ: scatter w into row space, then reverse transposed ops.
        let mut sol = vec![0.0; self.m];
        for k in 0..self.m {
            sol[self.pivots[k].0] = w[k];
        }
        for k in (0..self.m).rev() {
            let pr = self.pivots[k].0;
            let mut acc = sol[pr];
            for &(r, mult) in &self.l_ops[k] {
                acc -= mult * sol[r];
            }
            sol[pr] = acc;
        }
        y[..self.m].copy_from_slice(&sol);
    }

    /// Record a basis change: position `pos` is replaced by a column whose
    /// FTRAN image is `w` (dense, indexed by position).
    ///
    /// Returns `false` (caller must refactorize) if the pivot element is too
    /// small for a stable update.
    #[must_use]
    pub fn update(&mut self, pos: usize, w: &[f64]) -> bool {
        let pivot = w[pos];
        if pivot.abs() < 1e-9 {
            return false;
        }
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != pos && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        self.etas.push(Eta {
            pos,
            entries,
            pivot,
        });
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_to_cols(a: &[Vec<f64>]) -> Vec<Vec<(usize, f64)>> {
        let m = a.len();
        (0..m)
            .map(|c| {
                (0..m)
                    .filter(|&r| a[r][c] != 0.0)
                    .map(|r| (r, a[r][c]))
                    .collect()
            })
            .collect()
    }

    fn mat_vec(a: &[Vec<f64>], x: &[f64]) -> Vec<f64> {
        a.iter()
            .map(|row| row.iter().zip(x).map(|(r, x)| r * x).sum())
            .collect()
    }

    fn mat_t_vec(a: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
        let m = a.len();
        (0..m)
            .map(|c| (0..m).map(|r| a[r][c] * y[r]).sum())
            .collect()
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < 1e-8, "{a:?} != {b:?}");
        }
    }

    #[test]
    fn identity_roundtrip() {
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 1.0],
        ];
        let f = Factors::factor(3, &dense_to_cols(&a)).expect("identity factors");
        let mut x = vec![3.0, -1.0, 2.0];
        f.ftran(&mut x);
        assert_close(&x, &[3.0, -1.0, 2.0]);
        let mut y = vec![5.0, 0.5, -2.0];
        f.btran(&mut y);
        assert_close(&y, &[5.0, 0.5, -2.0]);
    }

    #[test]
    fn general_matrix_solves() {
        let a = vec![
            vec![2.0, 1.0, 0.0, 0.0],
            vec![1.0, 3.0, 1.0, 0.0],
            vec![0.0, 1.0, 4.0, 2.0],
            vec![0.0, 0.0, 1.0, 5.0],
        ];
        let f = Factors::factor(4, &dense_to_cols(&a)).expect("factors");
        let x_true = vec![1.0, -2.0, 3.0, 0.5];
        let mut b = mat_vec(&a, &x_true);
        f.ftran(&mut b);
        assert_close(&b, &x_true);

        let y_true = vec![0.25, -1.0, 2.0, 1.5];
        let mut c = mat_t_vec(&a, &y_true);
        f.btran(&mut c);
        assert_close(&c, &y_true);
    }

    #[test]
    fn singular_detected() {
        let a = vec![
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 0.0, 1.0],
        ];
        assert!(Factors::factor(3, &dense_to_cols(&a)).is_err());
    }

    #[test]
    fn zero_column_is_singular() {
        let a = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.0, 0.0, 1.0],
            vec![2.0, 0.0, 3.0],
        ];
        let err = Factors::factor(3, &dense_to_cols(&a)).expect_err("singular");
        assert_eq!(err.position, 1);
    }

    #[test]
    fn eta_update_matches_refactor() {
        let mut a = vec![
            vec![2.0, 1.0, 0.0],
            vec![0.0, 3.0, 1.0],
            vec![1.0, 0.0, 4.0],
        ];
        let mut f = Factors::factor(3, &dense_to_cols(&a)).expect("factors");

        // Replace basis position 1 with a new column.
        let new_col = vec![1.0, 1.0, 2.0];
        let mut w = new_col.clone();
        f.ftran(&mut w);
        assert!(f.update(1, &w));
        for r in 0..3 {
            a[r][1] = new_col[r];
        }
        assert_eq!(f.eta_count(), 1);

        let x_true = vec![0.5, 2.0, -1.0];
        let mut b = mat_vec(&a, &x_true);
        f.ftran(&mut b);
        assert_close(&b, &x_true);

        let y_true = vec![1.0, -1.0, 0.5];
        let mut c = mat_t_vec(&a, &y_true);
        f.btran(&mut c);
        assert_close(&c, &y_true);

        // Compare against a fresh factorization.
        let f2 = Factors::factor(3, &dense_to_cols(&a)).expect("refactor");
        let mut b2 = mat_vec(&a, &x_true);
        f2.ftran(&mut b2);
        assert_close(&b2, &x_true);
    }

    /// Factor the leading block of a matrix, append the trailing rows as
    /// a border, and check both solves against the full matrix.
    fn check_bordered(a: &[Vec<f64>], base: usize, pre_eta_col: Option<(usize, Vec<f64>)>) {
        let m = a.len();
        let mut a = a.to_vec();
        let base_block: Vec<Vec<f64>> = (0..base).map(|r| a[r][..base].to_vec()).collect();
        let mut f = Factors::factor(base, &dense_to_cols(&base_block)).expect("base factors");
        if let Some((pos, new_col)) = pre_eta_col {
            let mut w = new_col.clone();
            f.ftran(&mut w);
            assert!(f.update(pos, &w));
            for (r, row) in a.iter_mut().enumerate().take(base) {
                row[pos] = new_col[r];
            }
        }
        let rows: Vec<(Vec<(usize, f64)>, f64)> = (base..m)
            .map(|r| {
                let entries = (0..r)
                    .filter(|&p| a[r][p] != 0.0)
                    .map(|p| (p, a[r][p]))
                    .collect();
                (entries, a[r][r])
            })
            .collect();
        assert!(f.append_rows(&rows));
        assert_eq!(f.dim(), m);

        let x_true: Vec<f64> = (0..m).map(|i| 1.0 + i as f64 * 0.5).collect();
        let mut b = mat_vec(&a, &x_true);
        f.ftran(&mut b);
        assert_close(&b, &x_true);
        let y_true: Vec<f64> = (0..m).map(|i| 2.0 - i as f64 * 0.25).collect();
        let mut c = mat_t_vec(&a, &y_true);
        f.btran(&mut c);
        assert_close(&c, &y_true);
    }

    #[test]
    fn bordered_extension_matches_full_matrix() {
        // [[B, 0], [C, S]] with a 3×3 base and two appended rows.
        let a = vec![
            vec![2.0, 1.0, 0.0, 0.0, 0.0],
            vec![0.0, 3.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 4.0, 0.0, 0.0],
            vec![1.5, -1.0, 0.0, 1.0, 0.0],
            vec![0.0, 2.0, -0.5, 0.5, 1.0],
        ];
        check_bordered(&a, 3, None);
    }

    #[test]
    fn bordered_extension_after_eta_updates() {
        // Pre-border eta: the base basis already pivoted once before the
        // rows were appended; border entries reference the *current*
        // basis columns.
        let a = vec![
            vec![2.0, 1.0, 0.0, 0.0],
            vec![0.0, 3.0, 1.0, 0.0],
            vec![1.0, 0.0, 4.0, 0.0],
            vec![1.0, 1.0, 2.0, 1.0],
        ];
        check_bordered(&a, 3, Some((1, vec![1.0, 1.0, 2.0])));
    }

    #[test]
    fn bordered_then_post_eta_update() {
        let mut a = vec![
            vec![2.0, 1.0, 0.0, 0.0],
            vec![0.0, 3.0, 1.0, 0.0],
            vec![1.0, 0.0, 4.0, 0.0],
            vec![1.0, -1.0, 0.0, 1.0],
        ];
        let base: Vec<Vec<f64>> = (0..3).map(|r| a[r][..3].to_vec()).collect();
        let mut f = Factors::factor(3, &dense_to_cols(&base)).expect("factors");
        assert!(f.append_rows(&[(vec![(0, 1.0), (1, -1.0)], 1.0)]));

        // Post-border pivot replacing position 0 across the full dimension.
        let new_col = vec![1.0, 0.5, 0.0, 2.0];
        let mut w = new_col.clone();
        f.ftran(&mut w);
        assert!(f.update(0, &w));
        for (r, row) in a.iter_mut().enumerate() {
            row[0] = new_col[r];
        }

        let x_true = vec![0.5, -1.0, 2.0, 1.5];
        let mut b = mat_vec(&a, &x_true);
        f.ftran(&mut b);
        assert_close(&b, &x_true);
        let y_true = vec![1.0, 0.25, -0.5, 2.0];
        let mut c = mat_t_vec(&a, &y_true);
        f.btran(&mut c);
        assert_close(&c, &y_true);

        // A second append on top of post-border etas is not representable.
        assert!(!f.append_rows(&[(vec![(0, 1.0)], 1.0)]));
    }

    #[test]
    fn random_matrices_roundtrip() {
        // Deterministic xorshift-based random sparse systems.
        let mut state = 0x1234_5678_9ABC_DEF0u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for trial in 0..30 {
            let m = 3 + (next() % 20) as usize;
            let mut a = vec![vec![0.0; m]; m];
            // Diagonal dominance to guarantee non-singularity.
            for (r, row) in a.iter_mut().enumerate() {
                row[r] = 4.0 + (next() % 8) as f64;
                for _ in 0..2 {
                    let c = (next() % m as u64) as usize;
                    if c != r {
                        row[c] = ((next() % 7) as f64) - 3.0;
                    }
                }
            }
            let f = Factors::factor(m, &dense_to_cols(&a))
                .unwrap_or_else(|_| panic!("trial {trial}: factorization failed"));
            let x_true: Vec<f64> = (0..m).map(|i| (i as f64) - (m as f64) / 2.0).collect();
            let mut b = mat_vec(&a, &x_true);
            f.ftran(&mut b);
            assert_close(&b, &x_true);
            let mut c = mat_t_vec(&a, &x_true);
            f.btran(&mut c);
            assert_close(&c, &x_true);
        }
    }
}
