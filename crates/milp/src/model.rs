//! Model-building API: variables, linear expressions, constraints.
//!
//! A [`Model`] is always a **minimization** problem over bounded variables
//! with linear constraints; integrality is a per-variable attribute. This
//! mirrors how the paper's MILP is stated (Eq. 15 minimizes a weighted area
//! sum subject to Eqs. 2–14).

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Identifier of a decision variable within its [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub(crate) u32);

impl VarId {
    /// The variable's column index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The identifier of column `index`. Validity against a particular
    /// model is the caller's concern (accessors panic out of range).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        VarId(index as u32)
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Identifier of a constraint row within its [`Model`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RowId(pub(crate) u32);

impl RowId {
    /// The row's index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The identifier of row `index`. Validity against a particular
    /// model is the caller's concern (accessors panic out of range).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        RowId(index as u32)
    }
}

/// Whether a variable must take an integral value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VarKind {
    /// Real-valued.
    #[default]
    Continuous,
    /// Integer-valued (branch-and-bound enforces integrality).
    Integer,
}

/// Constraint sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Sense {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sense::Le => "<=",
            Sense::Ge => ">=",
            Sense::Eq => "==",
        })
    }
}

/// A sparse linear expression `Σ coeff · var (+ constant)`.
///
/// Build with arithmetic operators or [`LinExpr::term`]:
///
/// ```
/// use pipemap_milp::{LinExpr, Model};
///
/// let mut m = Model::new("demo");
/// let x = m.add_binary(1.0);
/// let y = m.add_binary(2.0);
/// let e = LinExpr::from(x) + LinExpr::term(3.0, y) - 1.0;
/// assert_eq!(e.coeffs().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: Vec<(VarId, f64)>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// A single term `coeff · var`.
    pub fn term(coeff: f64, var: VarId) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// Add `coeff · var` in place.
    pub fn add_term(&mut self, coeff: f64, var: VarId) -> &mut Self {
        self.terms.push((var, coeff));
        self
    }

    /// Add a constant in place.
    pub fn add_constant(&mut self, c: f64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The constant part.
    pub fn constant_part(&self) -> f64 {
        self.constant
    }

    /// Coefficients with duplicate variables merged and zeros dropped.
    pub fn coeffs(&self) -> Vec<(VarId, f64)> {
        let mut sorted = self.terms.clone();
        sorted.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(sorted.len());
        for (v, c) in sorted {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|(_, c)| *c != 0.0);
        out
    }

    /// Evaluate against a full assignment vector.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values[v.index()])
                .sum::<f64>()
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(1.0, v)
    }
}

impl FromIterator<(f64, VarId)> for LinExpr {
    fn from_iter<T: IntoIterator<Item = (f64, VarId)>>(iter: T) -> Self {
        LinExpr {
            terms: iter.into_iter().map(|(c, v)| (v, c)).collect(),
            constant: 0.0,
        }
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        self.terms.extend(rhs.terms);
        self.constant += rhs.constant;
    }
}

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        self += rhs;
        self
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: f64) -> LinExpr {
        self.constant += rhs;
        self
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: LinExpr) -> LinExpr {
        self -= rhs;
        self
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, rhs: f64) -> LinExpr {
        self.constant -= rhs;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, rhs: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= rhs;
        }
        self.constant *= rhs;
        self
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Col {
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
    pub kind: VarKind,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Row {
    /// Merged, zero-free coefficients sorted by variable.
    pub coeffs: Vec<(VarId, f64)>,
    pub sense: Sense,
    /// Right-hand side with the expression's constant already folded in.
    pub rhs: f64,
}

/// A mixed-integer linear **minimization** problem.
///
/// ```
/// use pipemap_milp::{LinExpr, Model, Sense, SolverOptions};
///
/// # fn main() -> Result<(), pipemap_milp::MilpError> {
/// // max x + 2y  s.t. x + y <= 1, binary  ==  min -(x + 2y)
/// let mut m = Model::new("tiny");
/// let x = m.add_binary(-1.0);
/// let y = m.add_binary(-2.0);
/// m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 1.0);
/// let result = m.solve(&SolverOptions::default())?;
/// assert_eq!(result.objective.round(), -2.0); // picks y
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Model {
    name: String,
    pub(crate) cols: Vec<Col>,
    pub(crate) rows: Vec<Row>,
}

impl Model {
    /// An empty model with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Model {
            name: name.into(),
            cols: Vec::new(),
            rows: Vec::new(),
        }
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.cols.len()
    }

    /// Number of constraints.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of integer variables.
    pub fn num_integers(&self) -> usize {
        self.cols
            .iter()
            .filter(|c| c.kind == VarKind::Integer)
            .count()
    }

    /// Add a variable with explicit bounds, objective coefficient and kind.
    /// Use `f64::NEG_INFINITY` / `f64::INFINITY` for free bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64, kind: VarKind) -> VarId {
        assert!(!lb.is_nan() && !ub.is_nan(), "NaN variable bound");
        assert!(lb <= ub, "variable bounds crossed: [{lb}, {ub}]");
        let id = VarId(self.cols.len() as u32);
        self.cols.push(Col { lb, ub, obj, kind });
        id
    }

    /// Add a binary (0/1 integer) variable.
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(0.0, 1.0, obj, VarKind::Integer)
    }

    /// Add a bounded continuous variable.
    pub fn add_continuous(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(lb, ub, obj, VarKind::Continuous)
    }

    /// Add a bounded integer variable.
    pub fn add_integer(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(lb, ub, obj, VarKind::Integer)
    }

    /// Add the constraint `expr sense rhs`; any constant inside `expr` is
    /// moved to the right-hand side.
    pub fn add_constraint(&mut self, expr: LinExpr, sense: Sense, rhs: f64) -> RowId {
        let id = RowId(self.rows.len() as u32);
        self.rows.push(Row {
            coeffs: expr.coeffs(),
            sense,
            rhs: rhs - expr.constant_part(),
        });
        id
    }

    /// Coefficients of a row: merged, zero-free, sorted by variable.
    pub fn row_coeffs(&self, r: RowId) -> &[(VarId, f64)] {
        &self.rows[r.index()].coeffs
    }

    /// Sense of a row.
    pub fn row_sense(&self, r: RowId) -> Sense {
        self.rows[r.index()].sense
    }

    /// Right-hand side of a row (expression constants already folded in).
    pub fn row_rhs(&self, r: RowId) -> f64 {
        self.rows[r.index()].rhs
    }

    /// Bounds of a variable.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        let c = &self.cols[v.index()];
        (c.lb, c.ub)
    }

    /// Replace a variable's bounds. The subgraph-decomposition loop uses
    /// this to freeze the complement of a region at a known-feasible
    /// assignment before solving the sub-MILP.
    ///
    /// # Panics
    ///
    /// Panics if `lb > ub` or either bound is NaN (same contract as
    /// [`Self::add_var`]).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        assert!(!lb.is_nan() && !ub.is_nan(), "NaN variable bound");
        assert!(lb <= ub, "variable bounds crossed: [{lb}, {ub}]");
        let c = &mut self.cols[v.index()];
        c.lb = lb;
        c.ub = ub;
    }

    /// Objective coefficient of a variable.
    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.cols[v.index()].obj
    }

    /// `true` when both models pose the exact same problem — identical
    /// columns (bounds, objective, kind) and identical rows — ignoring
    /// the display name. Since the solver is deterministic, two models
    /// for which this holds produce bit-identical results under equal
    /// options; design-space sweeps use that to skip re-solving a
    /// structural point whose formulation collapsed onto the previous
    /// one (e.g. an II that does not bind).
    pub fn same_problem(&self, other: &Model) -> bool {
        self.cols == other.cols && self.rows == other.rows
    }

    /// Replace a variable's objective coefficient. Used by objective
    /// decompositions that minimize one variable group's share of a
    /// linear objective at a time.
    pub fn set_objective_coeff(&mut self, v: VarId, obj: f64) {
        assert!(!obj.is_nan(), "NaN objective coefficient");
        self.cols[v.index()].obj = obj;
    }

    /// Drop the integrality requirement of a variable (no-op on a
    /// continuous one). The result is a relaxation: every point feasible
    /// before stays feasible.
    pub fn relax_integrality(&mut self, v: VarId) {
        self.cols[v.index()].kind = VarKind::Continuous;
    }

    /// Replace a variable's kind outright. Unlike [`Self::relax_integrality`]
    /// this can also *restore* integrality, which the re-solve engine needs
    /// to undo a relaxation delta.
    pub fn set_var_kind(&mut self, v: VarId, kind: VarKind) {
        self.cols[v.index()].kind = kind;
    }

    /// Add `coeff · var` into an existing row, merging with any existing
    /// coefficient (a zero result drops the entry). The re-solve engine
    /// uses this to give freshly added columns entries in existing rows.
    pub fn add_coefficient(&mut self, r: RowId, v: VarId, coeff: f64) {
        assert!(!coeff.is_nan(), "NaN row coefficient");
        let row = &mut self.rows[r.index()];
        match row.coeffs.binary_search_by_key(&v, |&(w, _)| w) {
            Ok(i) => {
                row.coeffs[i].1 += coeff;
                if row.coeffs[i].1 == 0.0 {
                    row.coeffs.remove(i);
                }
            }
            Err(i) => {
                if coeff != 0.0 {
                    row.coeffs.insert(i, (v, coeff));
                }
            }
        }
    }

    /// Kind of a variable.
    pub fn var_kind(&self, v: VarId) -> VarKind {
        self.cols[v.index()].kind
    }

    /// Evaluate the objective on an assignment.
    pub fn objective_value(&self, values: &[f64]) -> f64 {
        self.cols.iter().zip(values).map(|(c, v)| c.obj * v).sum()
    }

    /// Check a point against every constraint and bound with tolerance
    /// `tol`; returns the first violated row, if any.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Option<RowId> {
        for (i, c) in self.cols.iter().enumerate() {
            if values[i] < c.lb - tol || values[i] > c.ub + tol {
                // Report bound violations as a synthetic row id past the end.
                return Some(RowId(self.rows.len() as u32 + i as u32));
            }
        }
        for (i, r) in self.rows.iter().enumerate() {
            let lhs: f64 = r.coeffs.iter().map(|(v, c)| c * values[v.index()]).sum();
            let ok = match r.sense {
                Sense::Le => lhs <= r.rhs + tol,
                Sense::Ge => lhs >= r.rhs - tol,
                Sense::Eq => (lhs - r.rhs).abs() <= tol,
            };
            if !ok {
                return Some(RowId(i as u32));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_merges_and_drops_zeros() {
        let mut m = Model::new("t");
        let x = m.add_binary(0.0);
        let y = m.add_binary(0.0);
        let e = LinExpr::term(1.0, x) + LinExpr::term(2.0, x) + LinExpr::term(0.0, y);
        assert_eq!(e.coeffs(), vec![(x, 3.0)]);
    }

    #[test]
    fn expr_arithmetic() {
        let mut m = Model::new("t");
        let x = m.add_binary(0.0);
        let y = m.add_binary(0.0);
        let e = (LinExpr::from(x) - LinExpr::from(y)) * 2.0 + 5.0;
        assert_eq!(e.constant_part(), 5.0);
        assert_eq!(e.coeffs(), vec![(x, 2.0), (y, -2.0)]);
        let neg = -e;
        assert_eq!(neg.constant_part(), -5.0);
        assert_eq!(neg.coeffs(), vec![(x, -2.0), (y, 2.0)]);
    }

    #[test]
    fn constraint_folds_constant() {
        let mut m = Model::new("t");
        let x = m.add_binary(0.0);
        m.add_constraint(LinExpr::from(x) + 3.0, Sense::Le, 5.0);
        assert_eq!(m.rows[0].rhs, 2.0);
    }

    #[test]
    fn feasibility_check() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Ge, 2.0);
        assert!(m.check_feasible(&[3.0], 1e-9).is_none());
        assert!(m.check_feasible(&[1.0], 1e-9).is_some());
        assert!(m.check_feasible(&[-1.0], 1e-9).is_some());
    }

    #[test]
    #[should_panic(expected = "bounds crossed")]
    fn crossed_bounds_panic() {
        let mut m = Model::new("t");
        m.add_var(1.0, 0.0, 0.0, VarKind::Continuous);
    }
}
