//! # pipemap-milp
//!
//! A self-contained mixed-integer linear programming solver: a sparse
//! revised primal simplex (bounded variables, two-phase start, LU basis
//! factorization with product-form updates) driven by best-bound branch &
//! bound.
//!
//! This crate is the stand-in for IBM ILOG CPLEX in the DAC'15 paper's
//! flow. It supports the features the paper's formulation needs:
//! binaries/integers mixed with continuous variables, time-limited solves
//! that return the best incumbent, and an externally supplied initial
//! feasible solution (the scheduler seeds it with the heuristic baseline).
//!
//! ```
//! use pipemap_milp::{LinExpr, Model, Sense, SolverOptions, Status};
//!
//! # fn main() -> Result<(), pipemap_milp::MilpError> {
//! // Knapsack: max 5a + 4b + 3c s.t. 2a + 3b + c <= 3  ==  minimize the
//! // negated objective.
//! let mut m = Model::new("knapsack");
//! let a = m.add_binary(-5.0);
//! let b = m.add_binary(-4.0);
//! let c = m.add_binary(-3.0);
//! let mut w = LinExpr::new();
//! w.add_term(2.0, a);
//! w.add_term(3.0, b);
//! w.add_term(1.0, c);
//! m.add_constraint(w, Sense::Le, 3.0);
//!
//! let r = m.solve(&SolverOptions::default())?;
//! assert_eq!(r.status, Status::Optimal);
//! assert_eq!(r.objective.round(), -8.0); // a + c
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
mod branch;
mod lu;
mod model;
mod presolve;
mod resolve;
mod simplex;

use std::error::Error;
use std::fmt;
use std::time::Duration;

pub use model::{LinExpr, Model, RowId, Sense, VarId, VarKind};
pub use resolve::{ResolveAudit, ResolveContext, ResolveStats};

/// Outcome class of a MILP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Optimality proved (within the gap tolerance).
    Optimal,
    /// Feasible incumbent returned, but the node limit stopped the proof.
    Feasible,
    /// The wall-clock deadline expired with a feasible incumbent in hand;
    /// [`MilpResult::best_bound`] still carries the tightest proven bound,
    /// so the remaining optimality gap is reported rather than discarded.
    TimedOut,
    /// Proved infeasible.
    Infeasible,
    /// The relaxation is unbounded below.
    Unbounded,
    /// A limit was hit before any feasible point was found.
    Unknown,
}

impl Status {
    /// `true` when a usable assignment is present in the result.
    pub fn has_solution(self) -> bool {
        matches!(self, Status::Optimal | Status::Feasible | Status::TimedOut)
    }
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Optimal => "optimal",
            Status::Feasible => "feasible",
            Status::TimedOut => "timed-out",
            Status::Infeasible => "infeasible",
            Status::Unbounded => "unbounded",
            Status::Unknown => "unknown",
        })
    }
}

/// Solver failure (distinct from model infeasibility, which is a
/// [`Status`]).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MilpError {
    /// The simplex hit an unrecoverable numerical condition.
    Numerical(String),
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Numerical(s) => write!(f, "numerical failure: {s}"),
        }
    }
}

impl Error for MilpError {}

/// Knobs for [`Model::solve`].
#[derive(Debug, Clone)]
pub struct SolverOptions {
    /// Wall-clock limit; the best incumbent found is returned on expiry
    /// (paper §4 limits CPLEX to 60 minutes the same way).
    pub time_limit: Duration,
    /// Maximum number of branch-and-bound nodes.
    pub node_limit: usize,
    /// Prune nodes within this absolute distance of the incumbent.
    pub absolute_gap: f64,
    /// A known feasible assignment used as the starting incumbent
    /// (checked; ignored if infeasible or non-integral).
    pub initial_solution: Option<Vec<f64>>,
    /// Objective cutoff: subtrees with bound at or above it are pruned
    /// even without an incumbent.
    pub cutoff: Option<f64>,
    /// Worker threads for the branch-and-bound tree search (clamped to at
    /// least 1). The search is deterministic in `jobs`: every thread count
    /// returns the identical status, objective, and assignment, because
    /// objective ties at the optimum are explored (never pruned) and the
    /// incumbent is the lexicographically smallest optimal assignment.
    pub jobs: usize,
    /// Run the presolve pass (bound tightening, singleton-row and
    /// fixed-variable elimination, coefficient strengthening) before the
    /// root solve.
    pub presolve: bool,
    /// Re-optimize child LPs with the dual simplex warm-started from the
    /// parent's optimal basis instead of solving from scratch.
    pub warm_start: bool,
    /// Probe binary variables before the root solve: tentatively fix each
    /// to 0/1, propagate bounds, and harvest certified fixings and
    /// implications (see [`analysis`]).
    pub probing: bool,
    /// Run the root cutting-plane loop: separate certified clique and
    /// cover cuts against the root LP relaxation, with activity-based
    /// aging of the cut pool.
    pub cuts: bool,
    /// Detect interchangeable binary columns (hash-based partition
    /// refinement plus explicit automorphism witnesses) and apply orbital
    /// fixing during branch and bound.
    pub symmetry: bool,
    /// Separate rank-1 Gomory mixed-integer cuts from the root simplex
    /// tableau inside the cutting-plane loop. Off by default: tableau
    /// cuts are admitted under strict numerical-safety caps and each one
    /// carries a full derivation certificate (audited by verify's P07xx
    /// pass), but they are the only cut family derived from floating-
    /// point arithmetic rather than combinatorial structure.
    pub gomory_cuts: bool,
}

impl Default for SolverOptions {
    fn default() -> Self {
        SolverOptions {
            time_limit: Duration::from_secs(3600),
            node_limit: usize::MAX,
            absolute_gap: 1e-6,
            initial_solution: None,
            cutoff: None,
            jobs: 1,
            presolve: true,
            warm_start: true,
            probing: true,
            cuts: true,
            symmetry: true,
            gomory_cuts: false,
        }
    }
}

impl SolverOptions {
    /// Options with a wall-clock limit.
    pub fn with_time_limit(limit: Duration) -> Self {
        SolverOptions {
            time_limit: limit,
            ..SolverOptions::default()
        }
    }
}

/// One point on a solve's convergence curve: where the incumbent and
/// the proven bound stood at a moment in wall-clock time.
///
/// Samples are recorded whenever the incumbent improves or the search
/// frontier's bound rises, capped in count so long solves stay bounded.
/// Telemetry only: sample *timing* depends on the wall clock and thread
/// interleaving even though the final status/objective/assignment are
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSample {
    /// Milliseconds since the solve started.
    pub t_ms: f64,
    /// Incumbent objective at this time (`+inf` before the first one).
    pub objective: f64,
    /// Proven lower bound at this time (`-inf` before the root solves).
    pub bound: f64,
}

impl GapSample {
    /// Relative MIP gap at this sample; `None` while either side is
    /// still infinite.
    pub fn gap_rel(&self) -> Option<f64> {
        relative_gap(self.objective, self.bound)
    }
}

/// Relative MIP gap `(objective - bound) / max(1, |objective|)` — the
/// CPLEX-style normalization, safe around zero objectives. `None` when
/// either side is non-finite (no incumbent yet, or nothing proven).
pub fn relative_gap(objective: f64, bound: f64) -> Option<f64> {
    (objective.is_finite() && bound.is_finite())
        .then(|| (objective - bound).max(0.0) / objective.abs().max(1.0))
}

/// Performance counters of one MILP solve: where the time went and what
/// the presolve/warm-start machinery bought. Reported by the CLI's
/// solver-stats line and the `BENCH_milp.json` artifact.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SolverStats {
    /// Worker threads used for the tree search.
    pub jobs: usize,
    /// Child LPs attempted with the warm-started dual simplex.
    pub warm_attempts: usize,
    /// Warm starts that re-optimized without falling back to a cold solve.
    pub warm_hits: usize,
    /// Constraint rows removed by presolve.
    pub presolve_rows_removed: usize,
    /// Variables fixed and substituted out by presolve.
    pub presolve_cols_fixed: usize,
    /// Variable bounds tightened by presolve.
    pub presolve_bounds_tightened: usize,
    /// Constraint coefficients strengthened by presolve.
    pub presolve_coeffs_reduced: usize,
    /// Binary variables probed by the structural-analysis pass.
    pub probe_vars: usize,
    /// Variables fixed by probing (certified infeasibility of the other
    /// polarity).
    pub probe_fixings: usize,
    /// Certified implications harvested by probing.
    pub probe_implications: usize,
    /// Cliques in the conflict-graph clique table.
    pub clique_table: usize,
    /// Clique cuts active in the root cut pool at the end of separation.
    pub clique_cuts: usize,
    /// Cover cuts active in the root cut pool at the end of separation.
    pub cover_cuts: usize,
    /// Implication cuts (expanded probing implications) active in the
    /// root cut pool at the end of separation.
    pub implication_cuts: usize,
    /// Gomory mixed-integer cuts active in the root cut pool at the end
    /// of separation.
    pub gomory_cuts: usize,
    /// Root cutting-plane rounds executed.
    pub cut_rounds: usize,
    /// Cuts dropped from the pool by activity-based aging.
    pub cuts_aged_out: usize,
    /// Verified symmetry orbits over binary columns.
    pub symmetry_orbits: usize,
    /// Variables fixed at tree nodes by orbital fixing.
    pub orbital_fixings: usize,
    /// Variables fixed at tree nodes by conflict-graph implication
    /// propagation.
    pub implication_fixings: usize,
    /// Branch-and-bound nodes processed by each worker thread (length =
    /// `jobs`): the work-stealing balance of the parallel search.
    pub nodes_per_worker: Vec<usize>,
    /// Incumbent/bound timeline of the solve (objective offset already
    /// applied, so values are in the caller's model space).
    pub convergence: Vec<GapSample>,
    /// Root LPs warm-started from a saved [`ResolveContext`] basis.
    pub resolve_warm_attempts: usize,
    /// Saved-basis root warm starts that re-optimized without a cold
    /// fallback.
    pub resolve_warm_hits: usize,
    /// Root solves that adopted the prior solve's LU factors (possibly
    /// border-extended for added cut rows) instead of refactoring.
    pub lu_factor_reuses: usize,
    /// Root solves that refactored the basis from scratch (cold roots of
    /// capturing solves, plus warm starts whose cached factors were
    /// stale).
    pub lu_refactors: usize,
    /// Open leaves of the prior search resumed as this solve's initial
    /// frontier (pure continuations only).
    pub frontier_nodes_reused: usize,
    /// Why no warm start was attempted, when `warm_attempts` is zero for
    /// a structural reason rather than by accident: warm starts disabled
    /// by options, a root basis that could not be snapshotted, or a
    /// search that never produced child nodes. `None` when warm starts
    /// engaged (or the solve never reached the tree).
    pub warm_skip_reason: Option<&'static str>,
}

impl SolverStats {
    /// Fraction of warm-start attempts that succeeded without a cold
    /// fallback; `None` when no warm start was attempted.
    pub fn warm_hit_rate(&self) -> Option<f64> {
        (self.warm_attempts > 0).then(|| self.warm_hits as f64 / self.warm_attempts as f64)
    }
}

/// Result of a MILP solve.
#[derive(Debug, Clone)]
pub struct MilpResult {
    /// Outcome class.
    pub status: Status,
    /// Objective of the returned assignment (`+inf` when none).
    pub objective: f64,
    /// Best proven lower bound on the optimum.
    pub best_bound: f64,
    /// The assignment (empty when `status` has no solution).
    pub values: Vec<f64>,
    /// Branch-and-bound nodes processed.
    pub nodes: usize,
    /// Total simplex iterations.
    pub lp_iterations: usize,
    /// Wall-clock time spent.
    pub solve_time: Duration,
    /// Presolve/warm-start/parallelism counters.
    pub stats: SolverStats,
}

impl MilpResult {
    /// Value of one variable in the returned assignment.
    ///
    /// # Panics
    ///
    /// Panics if no solution is present or the id is out of range.
    pub fn value(&self, var: VarId) -> f64 {
        self.values[var.index()]
    }

    /// The absolute optimality gap (`objective - best_bound`).
    pub fn gap(&self) -> f64 {
        self.objective - self.best_bound
    }

    /// The relative MIP gap (see [`relative_gap`]); `None` when there is
    /// no incumbent or no finite bound.
    pub fn gap_rel(&self) -> Option<f64> {
        relative_gap(self.objective, self.best_bound)
    }
}

/// Solve just the LP relaxation and report iterations/time — exposed for
/// profiling binaries; not part of the stable API.
#[doc(hidden)]
pub fn debug_solve_root_lp(model: &Model) -> String {
    use std::time::Instant;
    let p = simplex::LpProblem::from_model(model);
    let t0 = Instant::now();
    match p.solve() {
        Ok(s) => format!(
            "{:?} obj={:.3} iters={} in {:?}",
            s.status,
            s.obj,
            s.iters,
            t0.elapsed()
        ),
        Err(e) => format!("abort {e:?} in {:?}", t0.elapsed()),
    }
}

/// Solve the LP relaxation of a model (integrality dropped) and return
/// its optimal objective and variable assignment. `None` when the
/// relaxation is infeasible, unbounded, numerically unsolvable, or the
/// deadline expires — callers treat all of these as "no LP guidance".
///
/// Deterministic for a fixed model; used by the feedback-guided
/// decomposition in `pipemap-core` to rank DFG regions by how fractional
/// the global relaxation is around them.
pub fn solve_relaxation(model: &Model, time_limit: Duration) -> Option<(f64, Vec<f64>)> {
    let p = simplex::LpProblem::from_model(model);
    let deadline = std::time::Instant::now().checked_add(time_limit);
    match p.solve_with_bounds(&p.lb, &p.ub, deadline) {
        Ok(s) if s.status == simplex::LpStatus::Optimal => Some((s.obj, s.x)),
        _ => None,
    }
}

/// Round a valid lower bound on `model`'s optimum up to the next point
/// of its objective grid; a no-op when no grid is detectable. Sound
/// because every integer-feasible objective lies on the grid, so no
/// attainable value sits strictly between `bound` and the lifted value.
pub fn lift_to_objective_grid(model: &Model, bound: f64) -> f64 {
    branch::lift_to_objective_grid(model, bound)
}

impl Model {
    /// Solve this model (minimization) by branch & bound.
    ///
    /// # Errors
    ///
    /// Returns [`MilpError::Numerical`] only on unrecoverable numerical
    /// failure; infeasibility and limits are reported via
    /// [`MilpResult::status`].
    pub fn solve(&self, opts: &SolverOptions) -> Result<MilpResult, MilpError> {
        branch::solve_milp(self, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn pure_lp_no_integers() {
        let mut m = Model::new("lp");
        let x = m.add_continuous(0.0, 4.0, -1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 2.5);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert!((r.value(x) - 2.5).abs() < 1e-6);
    }

    #[test]
    fn integrality_changes_optimum() {
        // LP optimum x = 2.5; integer optimum x = 2.
        let mut m = Model::new("int");
        let x = m.add_integer(0.0, 4.0, -1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 2.5);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.value(x), 2.0);
    }

    #[test]
    fn knapsack_optimum() {
        // Classic: values [10,13,7,8], weights [3,4,2,3], cap 7 → best 23
        // (items 0 and 1).
        let mut m = Model::new("ks");
        let vals = [10.0, 13.0, 7.0, 8.0];
        let wts = [3.0, 4.0, 2.0, 3.0];
        let xs: Vec<_> = vals.iter().map(|&v| m.add_binary(-v)).collect();
        let w: LinExpr = xs.iter().zip(wts).map(|(&x, w)| (w, x)).collect();
        m.add_constraint(w, Sense::Le, 7.0);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.objective.round(), -23.0);
        assert_eq!(r.value(xs[0]), 1.0);
        assert_eq!(r.value(xs[1]), 1.0);
    }

    #[test]
    fn infeasible_integer_model() {
        // 0.4 <= x <= 0.6 with x integer.
        let mut m = Model::new("inf");
        let x = m.add_integer(0.0, 1.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Ge, 0.4);
        m.add_constraint(LinExpr::from(x), Sense::Le, 0.6);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Infeasible);
    }

    #[test]
    fn initial_solution_is_used() {
        let mut m = Model::new("warm");
        let x = m.add_binary(-1.0);
        let y = m.add_binary(-1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 1.0);
        let opts = SolverOptions {
            initial_solution: Some(vec![1.0, 0.0]),
            // Zero node budget: the incumbent must be exactly the seed.
            node_limit: 0,
            ..SolverOptions::default()
        };
        let r = m.solve(&opts).expect("solves");
        assert!(r.status.has_solution());
        assert_eq!(r.values, vec![1.0, 0.0]);
    }

    #[test]
    fn infeasible_seed_is_rejected() {
        let mut m = Model::new("warm");
        let x = m.add_binary(-1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 0.0);
        let opts = SolverOptions {
            initial_solution: Some(vec![1.0]), // violates the row
            ..SolverOptions::default()
        };
        let r = m.solve(&opts).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.value(x), 0.0);
    }

    #[test]
    fn time_limit_returns_quickly() {
        // A moderately large knapsack with a 0ms limit must not hang and
        // must report a limit-style status.
        let mut m = Model::new("big");
        let mut w = LinExpr::new();
        let mut state = 99u64;
        for _ in 0..40 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = (state >> 33) % 50 + 1;
            let wt = (state >> 13) % 40 + 1;
            let x = m.add_binary(-(v as f64));
            w.add_term(wt as f64, x);
        }
        m.add_constraint(w, Sense::Le, 100.0);
        let opts = SolverOptions::with_time_limit(Duration::from_millis(0));
        let r = m.solve(&opts).expect("solves");
        assert!(matches!(
            r.status,
            Status::Unknown | Status::Feasible | Status::TimedOut
        ));
    }

    #[test]
    fn mixed_integer_continuous() {
        // min -x - 10y, x ∈ [0,10] continuous, y binary, x + 6y <= 15:
        // optimum y = 1, x = 9, obj -19.
        let mut m = Model::new("mix");
        let x = m.add_continuous(0.0, 10.0, -1.0);
        let y = m.add_binary(-10.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(6.0, y), Sense::Le, 15.0);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert!((r.objective - -19.0).abs() < 1e-6, "obj {}", r.objective);
        assert_eq!(r.value(y), 1.0);
        assert!((r.value(x) - 9.0).abs() < 1e-6);
    }

    #[test]
    fn gap_reported() {
        let mut m = Model::new("gap");
        let x = m.add_binary(-1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 1.0);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert!(r.gap().abs() < 1e-6);
    }

    #[test]
    fn cutoff_prunes_without_incumbent() {
        // Optimum is -2 (both on); a cutoff at -2.5 excludes it, so the
        // solver must report no solution below the cutoff.
        let mut m = Model::new("cut");
        let x = m.add_binary(-1.0);
        let y = m.add_binary(-1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 2.0);
        let opts = SolverOptions {
            cutoff: Some(-2.5),
            ..SolverOptions::default()
        };
        let r = m.solve(&opts).expect("solves");
        assert!(
            !r.status.has_solution() || r.objective < -2.5,
            "cutoff violated: {:?} obj {}",
            r.status,
            r.objective
        );
    }

    #[test]
    fn node_limit_caps_search() {
        let mut m = Model::new("nl");
        let mut w = LinExpr::new();
        for i in 0..24 {
            let x = m.add_binary(-(1.0 + (i % 7) as f64));
            w.add_term(1.0 + (i % 5) as f64, x);
        }
        m.add_constraint(w, Sense::Le, 20.0);
        let opts = SolverOptions {
            node_limit: 3,
            ..SolverOptions::default()
        };
        let r = m.solve(&opts).expect("solves");
        assert!(r.nodes <= 3);
    }

    #[test]
    fn equality_constrained_integers() {
        // x + y == 3 with x,y in 0..=2 integer: optimum of x - 2y is at
        // y = 2, x = 1 -> -3.
        let mut m = Model::new("eq");
        let x = m.add_integer(0.0, 2.0, 1.0);
        let y = m.add_integer(0.0, 2.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Eq, 3.0);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert!((r.objective - -3.0).abs() < 1e-6);
        assert_eq!(r.value(x), 1.0);
        assert_eq!(r.value(y), 2.0);
    }

    #[test]
    fn negative_integer_bounds() {
        // min x, x integer in [-5, 5], x >= -3.4 -> x = -3.
        let mut m = Model::new("neg");
        let x = m.add_integer(-5.0, 5.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Ge, -3.4);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.value(x), -3.0);
    }

    /// Exhaustive oracle: every solvable all-binary MILP must match brute
    /// force over all assignments.
    #[test]
    fn random_binary_milps_match_bruteforce() {
        let mut state = 0xABCD_EF01_u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for trial in 0..50 {
            let n = 3 + (next() % 8) as usize; // up to 10 binaries
            let rows = 1 + (next() % 5) as usize;
            let mut m = Model::new("rand");
            let obj: Vec<f64> = (0..n).map(|_| (next() % 21) as f64 - 10.0).collect();
            let xs: Vec<_> = obj.iter().map(|&c| m.add_binary(c)).collect();
            let mut row_data = Vec::new();
            for _ in 0..rows {
                let coeffs: Vec<f64> = (0..n).map(|_| (next() % 11) as f64 - 5.0).collect();
                let sense = if next() % 2 == 0 {
                    Sense::Le
                } else {
                    Sense::Ge
                };
                let rhs = (next() % 15) as f64 - 7.0;
                let e: LinExpr = xs.iter().zip(&coeffs).map(|(&x, &c)| (c, x)).collect();
                m.add_constraint(e, sense, rhs);
                row_data.push((coeffs, sense, rhs));
            }

            // Brute force.
            let mut best: Option<f64> = None;
            for bits in 0..(1u32 << n) {
                let x: Vec<f64> = (0..n).map(|i| ((bits >> i) & 1) as f64).collect();
                let ok = row_data.iter().all(|(coeffs, sense, rhs)| {
                    let lhs: f64 = coeffs.iter().zip(&x).map(|(c, v)| c * v).sum();
                    match sense {
                        Sense::Le => lhs <= *rhs + 1e-9,
                        Sense::Ge => lhs >= *rhs - 1e-9,
                        Sense::Eq => (lhs - rhs).abs() < 1e-9,
                    }
                });
                if ok {
                    let o: f64 = obj.iter().zip(&x).map(|(c, v)| c * v).sum();
                    best = Some(best.map_or(o, |b: f64| b.min(o)));
                }
            }

            let r = m.solve(&SolverOptions::default()).expect("solves");
            match best {
                None => assert_eq!(r.status, Status::Infeasible, "trial {trial}"),
                Some(b) => {
                    assert_eq!(r.status, Status::Optimal, "trial {trial}");
                    assert!(
                        (r.objective - b).abs() < 1e-6,
                        "trial {trial}: got {} expected {b}",
                        r.objective
                    );
                }
            }
        }
    }

    /// A knapsack whose LP root is fractional, so the root dive performs
    /// warm dual re-solves even when the tree itself needs few nodes.
    fn fractional_root_knapsack() -> Model {
        let mut m = Model::new("dive");
        let vals = [10.0, 13.0, 7.0, 8.0];
        let wts = [3.0, 4.0, 2.0, 3.0];
        let xs: Vec<_> = vals.iter().map(|&v| m.add_binary(-v)).collect();
        let w: LinExpr = xs.iter().zip(wts).map(|(&x, w)| (w, x)).collect();
        m.add_constraint(w, Sense::Le, 7.0);
        m
    }

    #[test]
    fn dive_warm_starts_are_counted() {
        // Regression: `warm_attempts` used to stay 0 on searches that
        // explore almost no tree nodes (the root has no parent basis, and
        // dives bypassed the counters entirely), making the stats claim
        // the warm-started dual simplex never engaged when it carried the
        // whole dive.
        let m = fractional_root_knapsack();
        // Cuts off: the cut loop would repair the fractional root vertex
        // before the dive ever sees it (the CORDIC/DR stall this guards
        // against has fractional roots that survive separation).
        let opts = SolverOptions {
            probing: false,
            cuts: false,
            symmetry: false,
            ..SolverOptions::default()
        };
        let r = m.solve(&opts).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert!(
            r.stats.warm_attempts > 0,
            "root dive must engage the warm-started dual simplex"
        );
        assert!(r.stats.warm_hits <= r.stats.warm_attempts);
    }

    #[test]
    fn dive_warm_starts_respect_warm_start_flag() {
        let m = fractional_root_knapsack();
        let opts = SolverOptions {
            warm_start: false,
            ..SolverOptions::default()
        };
        let r = m.solve(&opts).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.stats.warm_attempts, 0, "warm starts disabled");
    }

    #[test]
    fn gomory_cuts_preserve_optimum() {
        let mut m = Model::new("gmi");
        let x1 = m.add_integer(0.0, 3.0, 0.0);
        let x2 = m.add_integer(0.0, 3.0, -1.0);
        let e = LinExpr::term(3.0, x1) + LinExpr::term(2.0, x2);
        m.add_constraint(e, Sense::Le, 6.0);
        let e = LinExpr::term(-3.0, x1) + LinExpr::term(2.0, x2);
        m.add_constraint(e, Sense::Le, 0.0);
        let off = m.solve(&SolverOptions::default()).expect("solves");
        let on = m
            .solve(&SolverOptions {
                gomory_cuts: true,
                ..SolverOptions::default()
            })
            .expect("solves");
        assert_eq!(off.status, Status::Optimal);
        assert_eq!(on.status, Status::Optimal);
        assert!((on.objective - off.objective).abs() < 1e-6);
        assert_eq!(on.values, off.values, "determinism contract across flags");
    }

    #[test]
    fn relaxation_helper_matches_lp_optimum() {
        // Same model as `integrality_changes_optimum`: the relaxation
        // stops at 2.5 while the integer optimum is 2.
        let mut m = Model::new("relax");
        let x = m.add_integer(0.0, 4.0, -1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 2.5);
        let (obj, xs) = solve_relaxation(&m, Duration::from_secs(10)).expect("lp solves");
        assert!((obj - -2.5).abs() < 1e-6, "obj {obj}");
        assert!((xs[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn set_bounds_freezes_variables() {
        let mut m = Model::new("freeze");
        let x = m.add_binary(-2.0);
        let y = m.add_binary(-1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 1.0);
        m.set_bounds(x, 0.0, 0.0);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        assert_eq!(r.value(x), 0.0);
        assert_eq!(r.value(y), 1.0);
    }

    #[test]
    fn objective_reported_on_grid() {
        // The reported objective must land exactly on the objective grid
        // even though it is reassembled from reduced space + offset.
        let mut m = Model::new("grid");
        let xs: Vec<_> = (0..6)
            .map(|i| m.add_binary(-(1.0 + (i as f64) / 4.0)))
            .collect();
        let w: LinExpr = xs.iter().map(|&x| (1.0, x)).collect();
        m.add_constraint(w, Sense::Le, 3.0);
        let r = m.solve(&SolverOptions::default()).expect("solves");
        assert_eq!(r.status, Status::Optimal);
        let scaled = r.objective * 4.0;
        assert_eq!(scaled, scaled.round(), "objective {} off-grid", r.objective);
    }
}
