//! Bounded-variable revised simplex: primal with a two-phase start, plus a
//! dual-simplex reoptimizer for warm starts.
//!
//! Computational form: every model row `aᵀx {≤,=,≥} b` becomes
//! `aᵀx + s = b` with a sign-constrained slack, so the constraint matrix is
//! `[A | I]` and the initial all-slack basis is the identity. Rows whose
//! slack bound is violated at the initial point get an *artificial*
//! variable; phase 1 minimizes the total artificial magnitude, phase 2 the
//! real objective.
//!
//! **Warm starts.** Branch & bound tightens a single variable bound per
//! node, which leaves the parent's optimal basis *dual*-feasible (reduced
//! costs are untouched) while possibly making it primal-infeasible. A
//! [`WarmBasis`] snapshot of the parent basis therefore restarts with
//! [`LpProblem::solve_dual_warm`]: dual pivots drive out the bound
//! violations, then a short primal cleanup certifies optimality. Every
//! numerically doubtful situation — stale snapshot, singular refactorize,
//! stalled dual loop, near-zero pivot disagreement — returns
//! [`LpAbort::Singular`], which callers treat as "fall back to a cold
//! primal solve"; correctness never depends on the warm path.

use std::cmp::Ordering;
use std::time::Instant;

use crate::lu::Factors;
use crate::model::{Model, Sense};
use pipemap_obs::metrics;

/// Start a per-solve timer only when the metrics registry is live, and
/// record the LP's iteration count and wall time on completion.
/// Telemetry is read-only: nothing here feeds back into pivoting.
fn lp_metrics_start() -> Option<Instant> {
    metrics::enabled().then(Instant::now)
}

fn lp_metrics_record(t0: Option<Instant>, iters: usize, warm: bool) {
    let Some(t0) = t0 else { return };
    metrics::histogram("lp.solve_us").record(t0.elapsed().as_micros() as f64);
    metrics::histogram("lp.iters").record(iters as f64);
    if warm {
        metrics::counter("lp.warm_solves").inc();
    } else {
        metrics::counter("lp.cold_solves").inc();
    }
}

/// Primal/dual/pivot tolerances.
const DUAL_TOL: f64 = 1e-7;
const PIVOT_TOL: f64 = 5e-8;
const FEAS_TOL: f64 = 1e-7;
/// Consecutive degenerate pivots before switching to Bland's rule.
const STALL_LIMIT: usize = 64;
/// Eta-file length that triggers refactorization.
const REFACTOR_ETAS: usize = 64;
const MAX_ITERS: usize = 200_000;
/// Dual-loop caps; hitting either rejects to a cold solve.
const DUAL_MAX_ITERS: usize = 50_000;
const DUAL_STALL_LIMIT: usize = 512;

/// Why an LP solve stopped without a status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LpAbort {
    /// Unrecoverable numerical failure.
    Numerical(String),
    /// The basis became (numerically) singular; retry from scratch.
    Singular,
    /// The caller's deadline expired mid-solve.
    Timeout,
}

/// Outcome of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
}

/// An LP solution over the full column space (structural + slacks).
#[derive(Debug, Clone)]
pub(crate) struct LpSolution {
    pub status: LpStatus,
    /// Values of the structural variables (model variables only).
    pub x: Vec<f64>,
    /// Objective value (meaningless unless `status == Optimal`).
    pub obj: f64,
    /// Dual values per row (for optimality certificates in tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub y: Vec<f64>,
    /// Simplex iterations performed.
    pub iters: usize,
}

/// The LP data in computational form. Bounds are stored separately so
/// branch & bound can re-solve with tightened variable bounds cheaply.
#[derive(Debug, Clone)]
pub(crate) struct LpProblem {
    pub m: usize,
    pub n_struct: usize,
    /// Structural columns then slack columns; `cols[j]` = `(row, coeff)`.
    pub cols: Vec<Vec<(usize, f64)>>,
    /// Bounds for structural + slack columns.
    pub lb: Vec<f64>,
    pub ub: Vec<f64>,
    /// Phase-2 objective for structural + slack columns.
    pub obj: Vec<f64>,
    pub rhs: Vec<f64>,
}

impl LpProblem {
    /// Build the computational form from a model, using the model's current
    /// bounds (integrality is ignored here).
    pub fn from_model(model: &Model) -> Self {
        let m = model.rows.len();
        let n = model.cols.len();
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n + m];
        let mut rhs = Vec::with_capacity(m);
        let mut lb: Vec<f64> = model.cols.iter().map(|c| c.lb).collect();
        let mut ub: Vec<f64> = model.cols.iter().map(|c| c.ub).collect();
        let mut obj: Vec<f64> = model.cols.iter().map(|c| c.obj).collect();
        for (i, row) in model.rows.iter().enumerate() {
            for &(v, c) in &row.coeffs {
                cols[v.index()].push((i, c));
            }
            cols[n + i].push((i, 1.0));
            rhs.push(row.rhs);
            let (slb, sub) = match row.sense {
                Sense::Le => (0.0, f64::INFINITY),
                Sense::Ge => (f64::NEG_INFINITY, 0.0),
                Sense::Eq => (0.0, 0.0),
            };
            lb.push(slb);
            ub.push(sub);
            obj.push(0.0);
        }
        LpProblem {
            m,
            n_struct: n,
            cols,
            lb,
            ub,
            obj,
            rhs,
        }
    }

    /// Solve with the stored bounds.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn solve(&self) -> Result<LpSolution, LpAbort> {
        self.solve_with_bounds(&self.lb, &self.ub, None)
    }

    /// Solve with overriding bounds (same layout as `lb`/`ub`) and an
    /// optional deadline. A singular basis triggers a from-scratch restart
    /// (with Bland's rule after repeated failures) before giving up.
    pub fn solve_with_bounds(
        &self,
        lb: &[f64],
        ub: &[f64],
        deadline: Option<Instant>,
    ) -> Result<LpSolution, LpAbort> {
        self.solve_primal(lb, ub, deadline).map(|(s, _)| s)
    }

    /// Cold two-phase primal solve; also returns a basis snapshot suitable
    /// for warm-starting child solves when the LP reached optimality.
    pub fn solve_primal(
        &self,
        lb: &[f64],
        ub: &[f64],
        deadline: Option<Instant>,
    ) -> Result<(LpSolution, Option<WarmBasis>), LpAbort> {
        let t0 = lp_metrics_start();
        for attempt in 0..5 {
            let mut w = Worker::new(self, lb, ub);
            // Diversify retries: perturbed pricing first, Bland's rule last.
            w.price_seed = attempt as u64;
            w.always_bland = attempt >= 3;
            match w.run(deadline) {
                Err(LpAbort::Singular) => continue,
                Ok(sol) => {
                    let snap = if sol.status == LpStatus::Optimal {
                        w.pivot_out_artificials();
                        w.snapshot()
                    } else {
                        None
                    };
                    lp_metrics_record(t0, sol.iters, false);
                    return Ok((sol, snap));
                }
                Err(e) => return Err(e),
            }
        }
        Err(LpAbort::Numerical("repeated singular bases".into()))
    }

    /// Cold primal solve that additionally captures simplex-tableau rows
    /// for fractional candidate columns — the raw material for Gomory
    /// mixed-integer separation. Tableau data is `None` unless the solve
    /// reached optimality with a clean basis (no artificial left basic):
    /// a row extracted across an artificial column could not be reproduced
    /// from the model rows alone, so such bases yield no cuts.
    pub fn solve_primal_tableau(
        &self,
        lb: &[f64],
        ub: &[f64],
        deadline: Option<Instant>,
        candidate: &[bool],
        frac_tol: f64,
        max_rows: usize,
    ) -> Result<(LpSolution, Option<TableauData>), LpAbort> {
        for attempt in 0..5 {
            let mut w = Worker::new(self, lb, ub);
            w.price_seed = attempt as u64;
            w.always_bland = attempt >= 3;
            match w.run(deadline) {
                Err(LpAbort::Singular) => continue,
                Ok(sol) => {
                    let tab = if sol.status == LpStatus::Optimal {
                        w.tableau(candidate, frac_tol, max_rows)
                    } else {
                        None
                    };
                    return Ok((sol, tab));
                }
                Err(e) => return Err(e),
            }
        }
        Err(LpAbort::Numerical("repeated singular bases".into()))
    }

    /// Re-optimize from a parent basis after a bound change using the dual
    /// simplex. Returns `Err(LpAbort::Singular)` whenever the warm start
    /// cannot be trusted (stale snapshot, dual-infeasible start, numerical
    /// trouble); the caller should then fall back to [`Self::solve_primal`].
    pub fn solve_dual_warm(
        &self,
        lb: &[f64],
        ub: &[f64],
        warm: &WarmBasis,
        deadline: Option<Instant>,
    ) -> Result<(LpSolution, Option<WarmBasis>), LpAbort> {
        let t0 = lp_metrics_start();
        let mut w = Worker::from_basis(self, lb, ub, warm)?;
        if !w.dual_feasible(1e-6) {
            return Err(LpAbort::Singular);
        }
        let sol = w.run_dual(deadline)?;
        let snap = if sol.status == LpStatus::Optimal {
            w.snapshot()
        } else {
            None
        };
        lp_metrics_record(t0, sol.iters, true);
        Ok((sol, snap))
    }

    /// Cold two-phase primal solve that captures both the optimal basis
    /// *and* its LU factors, so a later re-solve can skip refactorization.
    pub fn solve_primal_capture(
        &self,
        lb: &[f64],
        ub: &[f64],
        deadline: Option<Instant>,
    ) -> Result<(LpSolution, Option<(WarmBasis, Factors)>), LpAbort> {
        let t0 = lp_metrics_start();
        for attempt in 0..5 {
            let mut w = Worker::new(self, lb, ub);
            w.price_seed = attempt as u64;
            w.always_bland = attempt >= 3;
            match w.run(deadline) {
                Err(LpAbort::Singular) => continue,
                Ok(sol) => {
                    let snap = if sol.status == LpStatus::Optimal {
                        w.pivot_out_artificials();
                        w.snapshot_with_factors()
                    } else {
                        None
                    };
                    lp_metrics_record(t0, sol.iters, false);
                    return Ok((sol, snap));
                }
                Err(e) => return Err(e),
            }
        }
        Err(LpAbort::Numerical("repeated singular bases".into()))
    }

    /// Warm re-optimization from a persisted basis, optionally adopting the
    /// LU factors saved alongside it instead of refactoring from scratch.
    /// Adopted factors are verified against the current basis by a cheap
    /// residual check (and extended with a border when the problem gained
    /// rows since the snapshot); any doubt silently falls back to a fresh
    /// factorization, and any *warm* doubt to `Err(LpAbort::Singular)` —
    /// the caller's cue for a cold solve.
    ///
    /// `WarmMode::Dual` requires a dual-feasible start (bound deltas, added
    /// rows); `WarmMode::Primal` a primal-feasible one (objective deltas,
    /// added columns). Returns `(solution, snapshot, factors_reused)`.
    pub fn solve_warm_persistent(
        &self,
        lb: &[f64],
        ub: &[f64],
        warm: &WarmBasis,
        factors: Option<&Factors>,
        mode: WarmMode,
        deadline: Option<Instant>,
    ) -> Result<PersistentSolve, LpAbort> {
        let t0 = lp_metrics_start();
        let (mut w, reused) = match factors {
            Some(f) => Worker::from_basis_cached(self, lb, ub, warm, f)?,
            None => (Worker::from_basis(self, lb, ub, warm)?, false),
        };
        let sol = match mode {
            WarmMode::Dual => {
                if !w.dual_feasible(1e-6) {
                    return Err(LpAbort::Singular);
                }
                w.run_dual(deadline)?
            }
            WarmMode::Primal => {
                if !w.primal_feasible(1e-6) {
                    return Err(LpAbort::Singular);
                }
                w.bland = false;
                w.stall = 0;
                match w.optimize(deadline)? {
                    InnerStatus::Optimal => w.finish(LpStatus::Optimal),
                    InnerStatus::Unbounded => w.finish(LpStatus::Unbounded),
                }
            }
        };
        let snap = if sol.status == LpStatus::Optimal {
            w.snapshot_with_factors()
        } else {
            None
        };
        lp_metrics_record(t0, sol.iters, true);
        Ok((sol, snap, reused))
    }
}

/// Outcome of a persistent warm re-optimization: the solution, the new
/// basis + LU snapshot (on optimality), and whether the cached factors
/// were adopted rather than rebuilt.
pub(crate) type PersistentSolve = (LpSolution, Option<(WarmBasis, Factors)>, bool);

/// Which simplex drives a persistent warm re-optimization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WarmMode {
    /// Phase-2 primal from a primal-feasible basis (objective changed).
    Primal,
    /// Dual pivots from a dual-feasible basis (bounds changed, rows added).
    Dual,
}

/// A restartable basis snapshot: the variable statuses and basis columns of
/// an optimal LP solve (structural + slack columns; never artificials).
///
/// Cheap to clone and `Send + Sync`, so branch & bound keeps one per node
/// behind an `Arc` and warm-starts children from any worker thread.
#[derive(Debug, Clone)]
pub(crate) struct WarmBasis {
    status: Vec<VStat>,
    basis: Vec<usize>,
}

impl WarmBasis {
    /// Remap the snapshot for a problem that gained `added` structural
    /// columns since it was taken: new columns start nonbasic at their
    /// lower bound and every slack index shifts up by `added` (the column
    /// layout is `[structural | slacks]`).
    pub fn with_added_cols(&self, old_n_struct: usize, added: usize) -> WarmBasis {
        let mut status = Vec::with_capacity(self.status.len() + added);
        status.extend_from_slice(&self.status[..old_n_struct.min(self.status.len())]);
        status.extend(std::iter::repeat_n(VStat::AtLower, added));
        status.extend_from_slice(&self.status[old_n_struct.min(self.status.len())..]);
        let basis = self
            .basis
            .iter()
            .map(|&j| if j >= old_n_struct { j + added } else { j })
            .collect();
        WarmBasis { status, basis }
    }

    /// Extend the snapshot for a problem that gained `added` rows since it
    /// was taken (appended cut rows): each new row's slack enters the basis
    /// at the matching new position, which keeps the start dual-feasible
    /// (slacks carry zero cost). `n_struct` is the problem's *current*
    /// structural column count.
    pub fn with_added_rows(&self, n_struct: usize, added: usize) -> WarmBasis {
        let old_m = self.basis.len();
        let mut status = self.status.clone();
        let mut basis = self.basis.clone();
        for i in 0..added {
            let slack = n_struct + old_m + i;
            debug_assert_eq!(status.len(), slack);
            status.push(VStat::Basic(old_m + i));
            basis.push(slack);
        }
        WarmBasis { status, basis }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic(usize),
    AtLower,
    AtUpper,
}

/// Basic/nonbasic classification of one column in an optimal basis,
/// exported for tableau consumers (no basis-position payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TabStat {
    Basic,
    AtLower,
    AtUpper,
}

/// One extracted row of an optimal simplex tableau. The multiplier
/// vector `rho = B⁻ᵀ e_r` reproduces the row over the original system:
/// the aggregated coefficient of structural column `j` is `Σ_i ρ_i a_ij`,
/// the coefficient of the slack of row `i` is `ρ_i`, and the aggregated
/// right-hand side is `ρᵀ b`.
#[derive(Debug, Clone)]
pub(crate) struct TableauRow {
    /// Dense row multipliers, one per problem row.
    pub rho: Vec<f64>,
}

/// Tableau information captured from an optimal primal solve.
#[derive(Debug, Clone)]
pub(crate) struct TableauData {
    /// Status of every structural + slack column in the final basis.
    pub status: Vec<TabStat>,
    /// Rows whose basic variable is a fractional candidate, most
    /// fractional (closest to .5) first.
    pub rows: Vec<TableauRow>,
}

struct Worker<'a> {
    p: &'a LpProblem,
    /// Bounds for all columns incl. artificials (appended).
    lb: Vec<f64>,
    ub: Vec<f64>,
    /// Current-phase costs for all columns.
    cost: Vec<f64>,
    /// Extra artificial columns: each is a unit column in some row.
    art_rows: Vec<usize>,
    status: Vec<VStat>,
    basis: Vec<usize>,
    x_basic: Vec<f64>,
    factors: Factors,
    iters: usize,
    stall: usize,
    bland: bool,
    always_bland: bool,
    /// Non-zero: deterministically perturb Dantzig merits so numerical
    /// restarts follow different pivot paths.
    price_seed: u64,
    in_phase1: bool,
}

impl<'a> Worker<'a> {
    fn n_total(&self) -> usize {
        self.p.n_struct + self.p.m + self.art_rows.len()
    }

    fn col_entries(&self, j: usize) -> &[(usize, f64)] {
        let base = self.p.n_struct + self.p.m;
        if j < base {
            &self.p.cols[j]
        } else {
            // Artificial: a unit column; synthesize lazily via a static
            // small buffer is awkward, so artificials are special-cased at
            // the few use sites instead. This path must not be reached.
            unreachable!("artificial columns are special-cased")
        }
    }

    /// Dense version of column j into `out` (cleared first).
    fn densify_col(&self, j: usize, out: &mut [f64]) {
        for v in out.iter_mut() {
            *v = 0.0;
        }
        let base = self.p.n_struct + self.p.m;
        if j < base {
            for &(r, v) in &self.p.cols[j] {
                out[r] += v;
            }
        } else {
            out[self.art_rows[j - base]] = 1.0;
        }
    }

    fn dot_col(&self, j: usize, y: &[f64]) -> f64 {
        let base = self.p.n_struct + self.p.m;
        if j < base {
            self.p.cols[j].iter().map(|&(r, v)| v * y[r]).sum()
        } else {
            y[self.art_rows[j - base]]
        }
    }

    /// Dantzig merit with optional deterministic perturbation (restart
    /// diversification).
    fn merit(&self, j: usize, d: f64) -> f64 {
        if self.price_seed == 0 {
            return d.abs();
        }
        let h = (j as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(self.price_seed.wrapping_mul(0xD1B5_4A32_D192_ED03));
        let frac = (h >> 40) as f64 / (1u64 << 24) as f64; // [0, 1)
        d.abs() * (0.85 + 0.3 * frac)
    }

    /// Value of a nonbasic variable under its status.
    fn nb_value(&self, j: usize) -> f64 {
        match self.status[j] {
            VStat::AtLower => {
                if self.lb[j].is_finite() {
                    self.lb[j]
                } else if self.ub[j].is_finite() {
                    self.ub[j]
                } else {
                    0.0
                }
            }
            VStat::AtUpper => self.ub[j],
            VStat::Basic(_) => unreachable!("nb_value on basic"),
        }
    }

    fn new(p: &'a LpProblem, lb_in: &[f64], ub_in: &[f64]) -> Self {
        let m = p.m;
        let n = p.n_struct + m;
        let mut lb = lb_in.to_vec();
        let mut ub = ub_in.to_vec();
        let mut cost = vec![0.0; n];

        // Nonbasic statuses for everything; slacks basic.
        let mut status = vec![VStat::AtLower; n];
        for (j, st) in status.iter_mut().enumerate().take(p.n_struct) {
            *st = if lb[j].is_finite() {
                VStat::AtLower
            } else if ub[j].is_finite() {
                VStat::AtUpper
            } else {
                VStat::AtLower // free at 0
            };
        }

        let mut w = Worker {
            p,
            lb: Vec::new(),
            ub: Vec::new(),
            cost: Vec::new(),
            art_rows: Vec::new(),
            status,
            basis: Vec::new(),
            x_basic: Vec::new(),
            factors: Factors::factor(0, &[]).expect("empty factorization"),
            iters: 0,
            stall: 0,
            bland: false,
            always_bland: false,
            price_seed: 0,
            in_phase1: false,
        };

        // Initial residual with all structural nonbasic at their bound.
        let mut resid = p.rhs.clone();
        for j in 0..p.n_struct {
            let v = match w.status[j] {
                VStat::AtLower => {
                    if lb[j].is_finite() {
                        lb[j]
                    } else {
                        0.0
                    }
                }
                VStat::AtUpper => ub[j],
                VStat::Basic(_) => unreachable!(),
            };
            if v != 0.0 {
                for &(r, cv) in &p.cols[j] {
                    resid[r] -= cv * v;
                }
            }
        }

        // Basis: slack where feasible, otherwise artificial.
        let mut basis = Vec::with_capacity(m);
        let mut x_basic = Vec::with_capacity(m);
        let mut art_rows = Vec::new();
        for (i, &v) in resid.iter().enumerate() {
            let sj = p.n_struct + i;
            if v >= lb[sj] - FEAS_TOL && v <= ub[sj] + FEAS_TOL {
                basis.push(sj);
                x_basic.push(v);
                w.status[sj] = VStat::Basic(i);
            } else {
                // Slack pinned at its nearest bound; artificial absorbs the
                // remaining residual.
                let pin = if v < lb[sj] { lb[sj] } else { ub[sj] };
                w.status[sj] = if pin == lb[sj] {
                    VStat::AtLower
                } else {
                    VStat::AtUpper
                };
                let r = v - pin;
                let aj = n + art_rows.len();
                art_rows.push(i);
                lb.push(if r >= 0.0 { 0.0 } else { f64::NEG_INFINITY });
                ub.push(if r >= 0.0 { f64::INFINITY } else { 0.0 });
                cost.push(0.0);
                w.status.push(VStat::Basic(i));
                basis.push(aj);
                x_basic.push(r);
            }
        }
        cost.resize(n + art_rows.len(), 0.0);

        w.lb = lb;
        w.ub = ub;
        w.cost = cost;
        w.art_rows = art_rows;
        w.basis = basis;
        w.x_basic = x_basic;
        w.refactor().expect("identity initial basis factors");
        w
    }

    fn refactor(&mut self) -> Result<(), LpAbort> {
        let m = self.p.m;
        let base = self.p.n_struct + m;
        let mut cols: Vec<Vec<(usize, f64)>> = Vec::with_capacity(m);
        for &j in &self.basis {
            if j < base {
                cols.push(self.col_entries(j).to_vec());
            } else {
                cols.push(vec![(self.art_rows[j - base], 1.0)]);
            }
        }
        self.factors = Factors::factor(m, &cols).map_err(|_| LpAbort::Singular)?;
        self.recompute_x_basic();
        Ok(())
    }

    /// x_B = B⁻¹ (b − N x_N), recomputed for numerical hygiene.
    fn recompute_x_basic(&mut self) {
        let mut resid = self.p.rhs.clone();
        for j in 0..self.n_total() {
            if matches!(self.status[j], VStat::Basic(_)) {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 {
                let base = self.p.n_struct + self.p.m;
                if j < base {
                    for &(r, cv) in &self.p.cols[j] {
                        resid[r] -= cv * v;
                    }
                } else {
                    resid[self.art_rows[j - base]] -= v;
                }
            }
        }
        self.factors.ftran(&mut resid);
        self.x_basic = resid;
    }

    /// Phase-1 cost: minimize total artificial magnitude.
    fn set_phase1_costs(&mut self) {
        for c in self.cost.iter_mut() {
            *c = 0.0;
        }
        let base = self.p.n_struct + self.p.m;
        for (a, _) in self.art_rows.iter().enumerate() {
            let j = base + a;
            // Positive artificials cost +1, negative ones −1, so the phase-1
            // objective is Σ|artificial|.
            self.cost[j] = if self.ub[j] == 0.0 { -1.0 } else { 1.0 };
        }
        self.in_phase1 = true;
    }

    fn set_phase2_costs(&mut self) {
        for (j, c) in self.cost.iter_mut().enumerate() {
            *c = if j < self.p.n_struct + self.p.m {
                self.p.obj[j]
            } else {
                0.0
            };
        }
        self.in_phase1 = false;
    }

    fn run(&mut self, deadline: Option<Instant>) -> Result<LpSolution, LpAbort> {
        if !self.art_rows.is_empty() {
            self.set_phase1_costs();
            let status = self.optimize(deadline)?;
            debug_assert!(status != InnerStatus::Unbounded, "phase 1 is bounded");
            let infeas: f64 = self.phase1_value();
            if infeas > 1e-6 {
                return Ok(self.finish(LpStatus::Infeasible));
            }
            // Pin all artificials to zero for phase 2.
            let base = self.p.n_struct + self.p.m;
            for a in 0..self.art_rows.len() {
                self.lb[base + a] = 0.0;
                self.ub[base + a] = 0.0;
                if !matches!(self.status[base + a], VStat::Basic(_)) {
                    self.status[base + a] = VStat::AtLower;
                }
            }
            self.recompute_x_basic();
        }
        self.set_phase2_costs();
        self.bland = false;
        self.stall = 0;
        match self.optimize(deadline)? {
            InnerStatus::Optimal => Ok(self.finish(LpStatus::Optimal)),
            InnerStatus::Unbounded => Ok(self.finish(LpStatus::Unbounded)),
        }
    }

    /// Drive still-basic phase-1 artificials out of an optimal basis so
    /// it becomes snapshottable. An artificial left basic at optimality
    /// sits at value zero (phase 1 proved feasibility), so swapping any
    /// nonbasic real column with a nonzero entry in its row is a
    /// *degenerate* pivot: the primal point is unchanged, only the basis
    /// labeling moves. Each swap is followed by a refactorization and a
    /// residual + primal-feasibility check; any doubt restores the
    /// original basis, so this can only widen warm-start coverage, never
    /// corrupt a solve. Returns `true` when no artificial remains basic.
    ///
    /// This is what lets root LPs with redundant equality rows (CORDIC,
    /// DR) feed warm starts to their children instead of silently
    /// reporting `warm_attempts: 0`.
    fn pivot_out_artificials(&mut self) -> bool {
        let n = self.p.n_struct + self.p.m;
        if !self.basis.iter().any(|&j| j >= n) {
            return true;
        }
        let saved_basis = self.basis.clone();
        let saved_status = self.status.clone();
        let m = self.p.m;
        let mut rho = vec![0.0; m];
        let mut y = vec![0.0; m];
        let mut done = true;
        'positions: for pos in 0..m {
            if self.basis[pos] < n {
                continue;
            }
            // Row pos of B⁻¹[A|I]; the factors are current (refactored
            // after any previous swap). The duals are recomputed per swap
            // for the same reason.
            for v in rho.iter_mut() {
                *v = 0.0;
            }
            rho[pos] = 1.0;
            self.factors.btran(&mut rho);
            for (p2, v) in y.iter_mut().enumerate() {
                *v = self.cost[self.basis[p2]];
            }
            self.factors.btran(&mut y);
            // Entering column: nonbasic, real, |alpha| above the pivot
            // tolerance. Zero-reduced-cost columns are strongly preferred
            // — entering one leaves the duals (hence every reduced-cost
            // sign) untouched, so the swapped basis stays dual feasible
            // and the children's warm dual starts accept it. Among
            // equally-preferred candidates the largest |alpha| wins for
            // numerical stability (first/lowest index on ties —
            // deterministic).
            let mut pick: Option<(usize, f64, bool)> = None;
            for j in 0..n {
                if matches!(self.status[j], VStat::Basic(_)) {
                    continue;
                }
                let a = self.dot_col(j, &rho).abs();
                if a <= PIVOT_TOL {
                    continue;
                }
                let zero_rc = (self.cost[j] - self.dot_col(j, &y)).abs() <= 1e-9;
                let better = match pick {
                    None => true,
                    Some((_, best_a, best_zrc)) => {
                        (zero_rc && !best_zrc) || (zero_rc == best_zrc && a > best_a)
                    }
                };
                if better {
                    pick = Some((j, a, zero_rc));
                }
            }
            let Some((j, _, _)) = pick else {
                // The row is redundant given the nonbasic set; leave the
                // artificial where it is.
                done = false;
                continue;
            };
            let art = self.basis[pos];
            self.basis[pos] = j;
            self.status[j] = VStat::Basic(pos);
            // Artificials are pinned to [0, 0] after phase 1.
            self.status[art] = VStat::AtLower;
            if self.refactor().is_err() {
                done = false;
                break 'positions;
            }
        }
        let clean = self.basis.iter().all(|&j| j < n);
        if !(done
            && clean
            && self.residual_ok(1e-6)
            && self.primal_feasible(1e-6)
            && self.dual_feasible(1e-6))
        {
            // Restore: the original basis factored before, so this
            // refactorization is expected to succeed; if it still fails
            // the worker is only used for snapshotting, which the `false`
            // return suppresses.
            self.basis = saved_basis;
            self.status = saved_status;
            let _ = self.refactor();
            return false;
        }
        true
    }

    /// Snapshot the basis for later warm starts. `None` when an artificial
    /// is still basic (rare degenerate phase-1 leftovers) — such a basis
    /// cannot be reproduced without the artificial columns.
    fn snapshot(&self) -> Option<WarmBasis> {
        let n = self.p.n_struct + self.p.m;
        if self.basis.iter().any(|&j| j >= n) {
            return None;
        }
        Some(WarmBasis {
            status: self.status[..n].to_vec(),
            basis: self.basis.clone(),
        })
    }

    /// Extract tableau rows for basic candidate columns with fractional
    /// values, most fractional first, capped at `max_rows`.
    ///
    /// A phase-1 artificial still basic (at zero — the solve is optimal,
    /// so feasible) is harmless: GMI validity rests on the aggregated
    /// identity `ρᵀA x + ρᵀ s = ρᵀ b` over structural and slack columns,
    /// which holds for *any* multiplier vector ρ on every model-feasible
    /// point — artificials are identically zero there and contribute
    /// nothing. The basis only picks which ρ to try; it never enters the
    /// certificate.
    fn tableau(&self, candidate: &[bool], frac_tol: f64, max_rows: usize) -> Option<TableauData> {
        if max_rows == 0 {
            return None;
        }
        let n = self.p.n_struct + self.p.m;
        // (position, distance of frac(value) from 0.5) — closest first,
        // position-ordered among ties, both deterministic.
        let mut picks: Vec<(usize, f64)> = Vec::new();
        for (pos, &bj) in self.basis.iter().enumerate() {
            if bj >= self.p.n_struct || !candidate[bj] {
                continue;
            }
            let v = self.x_basic[pos];
            let frac = v - v.floor();
            if frac.min(1.0 - frac) > frac_tol {
                picks.push((pos, (frac - 0.5).abs()));
            }
        }
        picks.sort_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .unwrap_or(Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        picks.truncate(max_rows);
        let mut rows = Vec::with_capacity(picks.len());
        for &(pos, _) in &picks {
            let mut rho = vec![0.0; self.p.m];
            rho[pos] = 1.0;
            self.factors.btran(&mut rho);
            rows.push(TableauRow { rho });
        }
        let status = self.status[..n]
            .iter()
            .map(|st| match st {
                VStat::Basic(_) => TabStat::Basic,
                VStat::AtLower => TabStat::AtLower,
                VStat::AtUpper => TabStat::AtUpper,
            })
            .collect();
        Some(TableauData { status, rows })
    }

    /// Rebuild a worker from a parent snapshot under (possibly tightened)
    /// bounds. Validates the snapshot against the problem dimensions and
    /// normalizes nonbasic statuses whose bound went away; any mismatch is
    /// `Err(LpAbort::Singular)` (= fall back to a cold solve).
    fn from_basis(
        p: &'a LpProblem,
        lb_in: &[f64],
        ub_in: &[f64],
        warm: &WarmBasis,
    ) -> Result<Self, LpAbort> {
        let mut w = Self::from_basis_unfactored(p, lb_in, ub_in, warm)?;
        w.refactor()?;
        Ok(w)
    }

    /// Like [`Worker::from_basis`], but first tries to adopt previously
    /// saved LU factors instead of refactoring. Stale or unverifiable
    /// factors degrade to a fresh factorization, never to wrong answers:
    /// adoption requires the factor dimension to match (after a border
    /// extension when the problem gained rows), a short eta file, and a
    /// residual check of the recomputed basic values. Returns the worker
    /// plus whether the cached factors were actually reused.
    fn from_basis_cached(
        p: &'a LpProblem,
        lb_in: &[f64],
        ub_in: &[f64],
        warm: &WarmBasis,
        factors: &Factors,
    ) -> Result<(Self, bool), LpAbort> {
        let mut w = Self::from_basis_unfactored(p, lb_in, ub_in, warm)?;
        let mut cached = factors.clone();
        if cached.dim() < p.m && !extend_factors_for_rows(p, &w.basis, &mut cached) {
            w.refactor()?;
            return Ok((w, false));
        }
        let reused = cached.dim() == p.m && cached.eta_count() < REFACTOR_ETAS && {
            w.factors = cached;
            w.recompute_x_basic();
            w.residual_ok(1e-6)
        };
        if !reused {
            w.refactor()?;
        }
        Ok((w, reused))
    }

    /// Shared snapshot validation and worker assembly for the warm-start
    /// constructors; the caller must install factors before solving.
    fn from_basis_unfactored(
        p: &'a LpProblem,
        lb_in: &[f64],
        ub_in: &[f64],
        warm: &WarmBasis,
    ) -> Result<Self, LpAbort> {
        let m = p.m;
        let n = p.n_struct + m;
        if warm.status.len() != n || warm.basis.len() != m {
            return Err(LpAbort::Singular);
        }
        let mut status = warm.status.clone();
        for (j, st) in status.iter_mut().enumerate() {
            match *st {
                VStat::Basic(pos) => {
                    if pos >= m || warm.basis[pos] != j {
                        return Err(LpAbort::Singular);
                    }
                }
                VStat::AtLower => {
                    // `nb_value` evaluates AtLower with an infinite lower
                    // bound at the *upper* bound; make the status say so.
                    if !lb_in[j].is_finite() && ub_in[j].is_finite() {
                        *st = VStat::AtUpper;
                    }
                }
                VStat::AtUpper => {
                    if !ub_in[j].is_finite() {
                        if lb_in[j].is_finite() {
                            *st = VStat::AtLower;
                        } else {
                            return Err(LpAbort::Singular);
                        }
                    }
                }
            }
        }
        for (pos, &j) in warm.basis.iter().enumerate() {
            if j >= n || !matches!(status[j], VStat::Basic(bp) if bp == pos) {
                return Err(LpAbort::Singular);
            }
        }
        let mut w = Worker {
            p,
            lb: lb_in.to_vec(),
            ub: ub_in.to_vec(),
            cost: vec![0.0; n],
            art_rows: Vec::new(),
            status,
            basis: warm.basis.clone(),
            x_basic: vec![0.0; m],
            factors: Factors::factor(0, &[]).expect("empty factorization"),
            iters: 0,
            stall: 0,
            bland: false,
            always_bland: false,
            price_seed: 0,
            in_phase1: false,
        };
        w.set_phase2_costs();
        Ok(w)
    }

    /// Is the current basic point inside its bounds? Primal warm starts
    /// (objective deltas leave the optimal vertex feasible) require this
    /// before phase-2 pivoting is sound.
    fn primal_feasible(&self, tol: f64) -> bool {
        self.basis.iter().enumerate().all(|(pos, &j)| {
            let v = self.x_basic[pos];
            v.is_finite() && v >= self.lb[j] - tol && v <= self.ub[j] + tol
        })
    }

    /// Cheap O(nnz) certificate that adopted factors actually invert the
    /// current basis: recompute the nonbasic residual `b − N x_N` and
    /// check `B x_B` reproduces it within `tol`. Catches stale snapshots,
    /// mis-mapped columns, and drifted eta files before any pivot trusts
    /// them.
    fn residual_ok(&self, tol: f64) -> bool {
        if self.x_basic.iter().any(|v| !v.is_finite()) {
            return false;
        }
        let mut resid = self.p.rhs.clone();
        for j in 0..self.n_total() {
            if matches!(self.status[j], VStat::Basic(_)) {
                continue;
            }
            let v = self.nb_value(j);
            if v != 0.0 {
                for &(r, cv) in self.col_entries(j) {
                    resid[r] -= cv * v;
                }
            }
        }
        for (pos, &j) in self.basis.iter().enumerate() {
            let xv = self.x_basic[pos];
            if xv != 0.0 {
                for &(r, cv) in self.col_entries(j) {
                    resid[r] -= cv * xv;
                }
            }
        }
        resid.iter().all(|v| v.abs() <= tol)
    }

    /// Snapshot basis *and* factors for persistent re-solves; `None`
    /// exactly when [`Worker::snapshot`] declines.
    fn snapshot_with_factors(&self) -> Option<(WarmBasis, Factors)> {
        self.snapshot().map(|wb| (wb, self.factors.clone()))
    }

    /// Are the phase-2 reduced costs sign-consistent with every nonbasic
    /// status? Warm starts require this before dual pivoting is sound.
    fn dual_feasible(&self, tol: f64) -> bool {
        let m = self.p.m;
        let mut y = vec![0.0; m];
        for (pos, &j) in self.basis.iter().enumerate() {
            y[pos] = self.cost[j];
        }
        self.factors.btran(&mut y);
        for j in 0..self.n_total() {
            let st = self.status[j];
            if matches!(st, VStat::Basic(_)) || self.lb[j] == self.ub[j] {
                continue;
            }
            let d = self.cost[j] - self.dot_col(j, &y);
            let free = !self.lb[j].is_finite() && !self.ub[j].is_finite();
            let ok = if free {
                d.abs() <= tol
            } else if st == VStat::AtLower && self.lb[j].is_finite() {
                d >= -tol
            } else {
                d <= tol
            };
            if !ok {
                return false;
            }
        }
        true
    }

    /// Warm-start driver: dual pivots until primal feasible, then a primal
    /// cleanup pass to certify optimality.
    fn run_dual(&mut self, deadline: Option<Instant>) -> Result<LpSolution, LpAbort> {
        match self.optimize_dual(deadline)? {
            DualOutcome::Infeasible => Ok(self.finish(LpStatus::Infeasible)),
            DualOutcome::PrimalFeasible => {
                self.bland = false;
                self.stall = 0;
                match self.optimize(deadline)? {
                    InnerStatus::Optimal => Ok(self.finish(LpStatus::Optimal)),
                    InnerStatus::Unbounded => Ok(self.finish(LpStatus::Unbounded)),
                }
            }
        }
    }

    /// Bounded-variable dual simplex. Starting from a dual-feasible basis,
    /// repeatedly kick the most bound-violating basic variable out onto its
    /// violated bound, choosing the entering column by the dual ratio test
    /// so reduced-cost signs are preserved.
    ///
    /// `DualOutcome::Infeasible` is a *primal* infeasibility certificate
    /// independent of dual feasibility: when no entering column is
    /// eligible, row `r` of `B⁻¹[A|I]` reads
    /// `x_{B(r)} = β₀ − Σ α_j x_j` over nonbasic `j`, and the current
    /// nonbasic point already extremizes the right-hand side toward the
    /// violated bound — no feasible point exists.
    fn optimize_dual(&mut self, deadline: Option<Instant>) -> Result<DualOutcome, LpAbort> {
        let m = self.p.m;
        if m == 0 {
            return Ok(DualOutcome::PrimalFeasible);
        }
        let mut w = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut stall = 0usize;
        let mut last_viol = f64::INFINITY;
        let start_iters = self.iters;
        loop {
            self.iters += 1;
            if self.iters - start_iters > DUAL_MAX_ITERS {
                return Err(LpAbort::Singular);
            }
            if self.iters.is_multiple_of(256) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(LpAbort::Timeout);
                    }
                }
            }

            // Leaving: the most violated basic variable (deterministic:
            // strictly-larger violation wins, so the first/lowest position
            // wins ties).
            let mut leave: Option<(usize, f64, bool)> = None; // (pos, viol, below)
            for (pos, &bj) in self.basis.iter().enumerate() {
                let x = self.x_basic[pos];
                let below = self.lb[bj] - x;
                let above = x - self.ub[bj];
                if below > FEAS_TOL && leave.is_none_or(|(_, v, _)| below > v) {
                    leave = Some((pos, below, true));
                }
                if above > FEAS_TOL && leave.is_none_or(|(_, v, _)| above > v) {
                    leave = Some((pos, above, false));
                }
            }
            let Some((r, viol, below)) = leave else {
                return Ok(DualOutcome::PrimalFeasible);
            };

            // Anti-cycling: if the worst violation refuses to shrink for
            // long enough, reject to a cold solve rather than spin.
            if viol >= last_viol - 1e-12 {
                stall += 1;
                if stall > DUAL_STALL_LIMIT {
                    return Err(LpAbort::Singular);
                }
            } else {
                stall = 0;
            }
            last_viol = viol;

            // ρ = B⁻ᵀ e_r gives row r of B⁻¹[A|I]; y = B⁻ᵀ c_B the duals.
            for v in rho.iter_mut() {
                *v = 0.0;
            }
            rho[r] = 1.0;
            self.factors.btran(&mut rho);
            let mut y = vec![0.0; m];
            for (pos, &j) in self.basis.iter().enumerate() {
                y[pos] = self.cost[j];
            }
            self.factors.btran(&mut y);

            // Dual ratio test: among columns whose allowed movement pushes
            // x_B[r] toward the violated bound, take the smallest
            // |d_j| / |α_j| (ties: larger |α|, then lower index — both
            // deterministic).
            let n_total = self.n_total();
            let mut enter: Option<(usize, f64, f64)> = None; // (col, ratio, alpha)
            let mut weak_free = false;
            for j in 0..n_total {
                let st = self.status[j];
                if matches!(st, VStat::Basic(_)) || self.lb[j] == self.ub[j] {
                    continue;
                }
                let alpha = self.dot_col(j, &rho);
                let free = !self.lb[j].is_finite() && !self.ub[j].is_finite();
                if alpha.abs() <= PIVOT_TOL {
                    // A free column with a tiny-but-nonzero α could in
                    // principle absorb any violation; refusing to pivot on
                    // it must not be read as an infeasibility proof.
                    if free && alpha.abs() > 1e-12 {
                        weak_free = true;
                    }
                    continue;
                }
                let at_lower = st == VStat::AtLower && self.lb[j].is_finite();
                // x_B[r] changes by −α·dt; AtLower may only increase,
                // AtUpper only decrease, free either way.
                let ok = if free {
                    true
                } else if below {
                    (at_lower && alpha < 0.0) || (!at_lower && alpha > 0.0)
                } else {
                    (at_lower && alpha > 0.0) || (!at_lower && alpha < 0.0)
                };
                if !ok {
                    continue;
                }
                let d = self.cost[j] - self.dot_col(j, &y);
                let ratio = d.abs() / alpha.abs();
                let better = match enter {
                    None => true,
                    Some((bj, br, ba)) => {
                        ratio < br - 1e-10
                            || (ratio < br + 1e-10
                                && (alpha.abs() > ba.abs() + 1e-12
                                    || (alpha.abs() >= ba.abs() - 1e-12 && j < bj)))
                    }
                };
                if better {
                    enter = Some((j, ratio, alpha));
                }
            }
            let Some((q, _ratio, _alpha)) = enter else {
                if weak_free {
                    return Err(LpAbort::Singular);
                }
                return Ok(DualOutcome::Infeasible);
            };

            // Pivot: w = B⁻¹ A_q; drive the leaving variable exactly onto
            // its violated bound.
            self.densify_col(q, &mut w);
            self.factors.ftran(&mut w);
            if w[r].abs() <= PIVOT_TOL * 0.1 {
                // ftran and btran disagree about the pivot magnitude; the
                // factorization is not trustworthy.
                return Err(LpAbort::Singular);
            }
            let leaving = self.basis[r];
            let target = if below {
                self.lb[leaving]
            } else {
                self.ub[leaving]
            };
            let t = (self.x_basic[r] - target) / w[r];
            for (pos, &wv) in w.iter().enumerate() {
                if wv != 0.0 {
                    self.x_basic[pos] -= t * wv;
                }
            }
            let entering_value = self.nb_value(q) + t;
            self.status[leaving] = if below {
                VStat::AtLower
            } else {
                VStat::AtUpper
            };
            self.basis[r] = q;
            self.status[q] = VStat::Basic(r);
            self.x_basic[r] = entering_value;
            let ok = self.factors.update(r, &w);
            if !ok || self.factors.eta_count() >= REFACTOR_ETAS {
                self.refactor()?;
            }
        }
    }

    fn phase1_value(&self) -> f64 {
        let base = self.p.n_struct + self.p.m;
        self.basis
            .iter()
            .enumerate()
            .filter(|(_, &j)| j >= base)
            .map(|(pos, _)| self.x_basic[pos].abs())
            .sum()
    }

    fn finish(&self, status: LpStatus) -> LpSolution {
        let mut x_all = vec![0.0; self.n_total()];
        for (j, v) in x_all.iter_mut().enumerate() {
            *v = match self.status[j] {
                VStat::Basic(pos) => self.x_basic[pos],
                _ => self.nb_value(j),
            };
        }
        let obj = (0..self.p.n_struct).map(|j| self.p.obj[j] * x_all[j]).sum();
        // Duals from the final basis.
        let mut y = vec![0.0; self.p.m];
        for (pos, &j) in self.basis.iter().enumerate() {
            y[pos] = self.cost[j];
        }
        // y currently holds c_B by position; btran converts to row duals.
        self.factors.btran(&mut y);
        LpSolution {
            status,
            x: x_all[..self.p.n_struct].to_vec(),
            obj,
            y,
            iters: self.iters,
        }
    }

    /// Core iteration loop for the current phase.
    fn optimize(&mut self, deadline: Option<Instant>) -> Result<InnerStatus, LpAbort> {
        let m = self.p.m;
        let mut w = vec![0.0; m];
        loop {
            self.iters += 1;
            if self.iters > MAX_ITERS {
                return Err(LpAbort::Numerical("simplex iteration limit".into()));
            }
            if self.iters.is_multiple_of(256) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Err(LpAbort::Timeout);
                    }
                }
            }

            // Duals: y = B⁻ᵀ c_B.
            let mut y = vec![0.0; m];
            for (pos, &j) in self.basis.iter().enumerate() {
                y[pos] = self.cost[j];
            }
            self.factors.btran(&mut y);

            // Pricing.
            let mut enter: Option<(usize, f64, f64)> = None; // (col, d, dir)
            let n_total = self.n_total();
            for j in 0..n_total {
                match self.status[j] {
                    VStat::Basic(_) => continue,
                    VStat::AtLower => {
                        if self.lb[j] == self.ub[j] {
                            continue; // fixed
                        }
                        let d = self.cost[j] - self.dot_col(j, &y);
                        let free = !self.lb[j].is_finite();
                        if d < -DUAL_TOL || (free && d > DUAL_TOL) {
                            let dir = if d < 0.0 { 1.0 } else { -1.0 };
                            if self.bland || self.always_bland {
                                enter = Some((j, d, dir));
                                break;
                            }
                            if enter.is_none_or(|(bj, bd, _)| self.merit(j, d) > self.merit(bj, bd))
                            {
                                enter = Some((j, d, dir));
                            }
                        }
                    }
                    VStat::AtUpper => {
                        if self.lb[j] == self.ub[j] {
                            continue;
                        }
                        let d = self.cost[j] - self.dot_col(j, &y);
                        if d > DUAL_TOL {
                            if self.bland || self.always_bland {
                                enter = Some((j, d, -1.0));
                                break;
                            }
                            if enter.is_none_or(|(bj, bd, _)| self.merit(j, d) > self.merit(bj, bd))
                            {
                                enter = Some((j, d, -1.0));
                            }
                        }
                    }
                }
            }

            let (q, _dq, dir) = match enter {
                Some(e) => e,
                None => return Ok(InnerStatus::Optimal),
            };

            // FTRAN of the entering column.
            self.densify_col(q, &mut w);
            self.factors.ftran(&mut w);

            // Ratio test. x_B changes by −θ·dir·w.
            let own_range = self.ub[q] - self.lb[q]; // may be inf/NaN(inf-inf)
            let mut theta = if own_range.is_finite() {
                own_range
            } else {
                f64::INFINITY
            };
            let mut leave: Option<(usize, bool)> = None; // (position, hits_upper)
            let mut leave_piv = 0.0_f64;
            for (pos, &wv) in w.iter().enumerate() {
                if wv.abs() <= PIVOT_TOL {
                    continue;
                }
                let delta = -dir * wv; // change of x_B[pos] per unit θ
                let bj = self.basis[pos];
                let (lim, hits_upper) = if delta > 0.0 {
                    if self.ub[bj].is_finite() {
                        ((self.ub[bj] - self.x_basic[pos]) / delta, true)
                    } else {
                        continue;
                    }
                } else if self.lb[bj].is_finite() {
                    ((self.x_basic[pos] - self.lb[bj]) / -delta, false)
                } else {
                    continue;
                };
                let lim = lim.max(0.0);
                let better = if self.bland || self.always_bland {
                    // Bland: smallest basis column index among blocking rows.
                    lim < theta - 1e-10
                        || (lim < theta + 1e-10 && leave.is_none_or(|(lp, _)| self.basis[lp] > bj))
                } else {
                    lim < theta - 1e-10 || (lim < theta + 1e-10 && wv.abs() > leave_piv.abs())
                };
                if better {
                    theta = lim.min(theta);
                    leave = Some((pos, hits_upper));
                    leave_piv = wv;
                }
            }

            if theta.is_infinite() {
                return Ok(InnerStatus::Unbounded);
            }

            // Stall bookkeeping for anti-cycling.
            if theta <= 1e-10 {
                self.stall += 1;
                if self.stall > STALL_LIMIT {
                    self.bland = true;
                }
            } else {
                self.stall = 0;
                self.bland = false;
            }

            // Apply the step to the basic values.
            if theta != 0.0 {
                for (pos, &wv) in w.iter().enumerate() {
                    if wv != 0.0 {
                        self.x_basic[pos] -= theta * dir * wv;
                    }
                }
            }

            match leave {
                None => {
                    // Bound flip of the entering variable.
                    self.status[q] = match self.status[q] {
                        VStat::AtLower => VStat::AtUpper,
                        VStat::AtUpper => VStat::AtLower,
                        VStat::Basic(_) => unreachable!(),
                    };
                }
                Some((pos, hits_upper)) => {
                    let leaving = self.basis[pos];
                    self.status[leaving] = if hits_upper {
                        VStat::AtUpper
                    } else {
                        VStat::AtLower
                    };
                    let entering_value = self.nb_value(q) + theta * dir;
                    self.basis[pos] = q;
                    self.status[q] = VStat::Basic(pos);
                    self.x_basic[pos] = entering_value;
                    let ok = self.factors.update(pos, &w);
                    if !ok || self.factors.eta_count() >= REFACTOR_ETAS {
                        self.refactor()?;
                    }
                }
            }
        }
    }
}

/// Extend saved LU factors for rows appended to the problem since the
/// snapshot (added cuts): the extended basis is `[[B, 0], [C, I]]` with
/// the new rows' slacks basic, so the border rows are just the appended
/// rows' coefficients on the old basis columns. `basis` must already be
/// the extended basis vector. Returns `false` when the extension is not
/// representable (caller refactors instead).
fn extend_factors_for_rows(p: &LpProblem, basis: &[usize], factors: &mut Factors) -> bool {
    let old_m = factors.dim();
    if basis.len() != p.m || p.m < old_m {
        return false;
    }
    let added = p.m - old_m;
    let mut rows: Vec<(Vec<(usize, f64)>, f64)> = vec![(Vec::new(), 0.0); added];
    for (pos, &j) in basis.iter().enumerate() {
        if j >= p.n_struct + p.m {
            return false;
        }
        if pos >= old_m {
            // Appended positions must carry their own row's slack.
            if j != p.n_struct + pos {
                return false;
            }
            rows[pos - old_m].1 = 1.0;
            continue;
        }
        for &(r, v) in &p.cols[j] {
            if r >= old_m {
                rows[r - old_m].0.push((pos, v));
            }
        }
    }
    factors.append_rows(&rows)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InnerStatus {
    Optimal,
    Unbounded,
}

/// Outcome of the dual-simplex loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DualOutcome {
    /// All basic variables inside their bounds; primal cleanup may start.
    PrimalFeasible,
    /// Certified primal infeasibility (failed dual ratio test).
    Infeasible,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, RowId, Sense};

    fn lp(model: &Model) -> LpSolution {
        LpProblem::from_model(model).solve().expect("lp solves")
    }

    #[test]
    fn simple_max_as_min() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y in [0, 10]
        // optimum at (4, 0): obj 12.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(3.0, y), Sense::Le, 6.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj - -12.0).abs() < 1e-6, "obj {}", s.obj);
        assert!((s.x[0] - 4.0).abs() < 1e-6);
        assert!(s.x[1].abs() < 1e-6);
    }

    #[test]
    fn ge_rows_need_phase1() {
        // min x + y s.t. x + y >= 3, x - y >= 1, 0 <= x,y <= 10.
        // optimum x=2, y=1.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, 1.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Ge, 3.0);
        m.add_constraint(LinExpr::from(x) - LinExpr::from(y), Sense::Ge, 1.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj - 3.0).abs() < 1e-6, "obj {}", s.obj);
        assert!((s.x[0] - 2.0).abs() < 1e-6, "x {}", s.x[0]);
        assert!((s.x[1] - 1.0).abs() < 1e-6, "y {}", s.x[1]);
    }

    #[test]
    fn equality_rows() {
        // min 2x + 3y s.t. x + y == 5, x - y == 1 → x=3, y=2, obj 12.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 100.0, 2.0);
        let y = m.add_continuous(0.0, 100.0, 3.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Eq, 5.0);
        m.add_constraint(LinExpr::from(x) - LinExpr::from(y), Sense::Eq, 1.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj - 12.0).abs() < 1e-6);
        assert!((s.x[0] - 3.0).abs() < 1e-6);
        assert!((s.x[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 1.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Ge, 2.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, f64::INFINITY, -1.0);
        let y = m.add_continuous(0.0, f64::INFINITY, 0.0);
        m.add_constraint(LinExpr::from(x) - LinExpr::from(y), Sense::Le, 1.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Unbounded);
    }

    #[test]
    fn upper_bounds_bind() {
        // min -x s.t. x <= 7 via bound only.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 7.0, -1.0);
        m.add_constraint(LinExpr::from(x), Sense::Le, 100.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - 7.0).abs() < 1e-9);
    }

    #[test]
    fn negative_lower_bounds() {
        // min x, x in [-5, 5], x >= -3 → x = -3.
        let mut m = Model::new("t");
        let x = m.add_continuous(-5.0, 5.0, 1.0);
        m.add_constraint(LinExpr::from(x), Sense::Ge, -3.0);
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.x[0] - -3.0).abs() < 1e-6, "x {}", s.x[0]);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Many redundant constraints through the same vertex.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -1.0);
        let y = m.add_continuous(0.0, 10.0, -1.0);
        for k in 1..=8 {
            m.add_constraint(
                LinExpr::term(k as f64, x) + LinExpr::term(k as f64, y),
                Sense::Le,
                2.0 * k as f64,
            );
        }
        let s = lp(&m);
        assert_eq!(s.status, LpStatus::Optimal);
        assert!((s.obj - -2.0).abs() < 1e-6);
    }

    /// Optimality certificate on random LPs: primal feasibility plus
    /// reduced-cost sign conditions computed from the returned duals.
    #[test]
    fn random_lps_satisfy_optimality_certificate() {
        let mut state = 0xDEAD_BEEF_u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut optimal_count = 0;
        for _ in 0..60 {
            let n = 2 + (next() % 5) as usize;
            let rows = 1 + (next() % 6) as usize;
            let mut m = Model::new("rand");
            let vars: Vec<_> = (0..n)
                .map(|_| {
                    let lo = (next() % 5) as f64 - 2.0;
                    let hi = lo + 1.0 + (next() % 6) as f64;
                    let c = (next() % 9) as f64 - 4.0;
                    m.add_continuous(lo, hi, c)
                })
                .collect();
            for _ in 0..rows {
                let mut e = LinExpr::new();
                for &v in &vars {
                    let c = (next() % 7) as f64 - 3.0;
                    if c != 0.0 {
                        e.add_term(c, v);
                    }
                }
                let sense = match next() % 3 {
                    0 => Sense::Le,
                    1 => Sense::Ge,
                    _ => Sense::Eq,
                };
                let rhs = (next() % 11) as f64 - 5.0;
                m.add_constraint(e, sense, rhs);
            }
            let p = LpProblem::from_model(&m);
            let s = p.solve().expect("no numerical failure");
            if s.status != LpStatus::Optimal {
                continue;
            }
            optimal_count += 1;
            // Primal feasibility.
            assert!(
                m.check_feasible(&s.x, 1e-5).is_none(),
                "infeasible 'optimal' point"
            );
            // Reduced-cost conditions for structural variables.
            for (j, &v) in vars.iter().enumerate() {
                let d: f64 =
                    m.cols[j].obj - p.cols[j].iter().map(|&(r, c)| c * s.y[r]).sum::<f64>();
                let (lo, hi) = m.bounds(v);
                let at_lower = (s.x[j] - lo).abs() < 1e-5;
                let at_upper = (s.x[j] - hi).abs() < 1e-5;
                if !at_lower && !at_upper {
                    assert!(d.abs() < 1e-5, "interior var with nonzero reduced cost {d}");
                } else if at_lower && !at_upper {
                    assert!(d > -1e-5, "at lower bound with improving direction {d}");
                } else if at_upper && !at_lower {
                    assert!(d < 1e-5, "at upper bound with improving direction {d}");
                }
            }
        }
        assert!(
            optimal_count > 10,
            "too few optimal instances to be meaningful"
        );
    }

    #[test]
    fn warm_start_matches_cold_after_bound_tightening() {
        // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6 → (4, 0). Then branch
        // x <= 2: optimum moves to (2, 4/3), obj -(6 + 8/3).
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(3.0, y), Sense::Le, 6.0);
        let p = LpProblem::from_model(&m);
        let (root, warm) = p.solve_primal(&p.lb, &p.ub, None).expect("root solves");
        assert_eq!(root.status, LpStatus::Optimal);
        let warm = warm.expect("optimal root yields a snapshot");

        let mut ub = p.ub.clone();
        ub[0] = 2.0;
        let (ws, wsnap) = p
            .solve_dual_warm(&p.lb, &ub, &warm, None)
            .expect("warm start accepted");
        let cold = p.solve_with_bounds(&p.lb, &ub, None).expect("cold solves");
        assert_eq!(ws.status, LpStatus::Optimal);
        assert!(
            (ws.obj - cold.obj).abs() < 1e-6,
            "{} vs {}",
            ws.obj,
            cold.obj
        );
        assert!(
            (ws.obj - (-(6.0 + 8.0 / 3.0))).abs() < 1e-6,
            "obj {}",
            ws.obj
        );
        assert!(wsnap.is_some(), "re-optimized basis snapshots again");
    }

    #[test]
    fn warm_start_certifies_infeasibility() {
        // x + y >= 3 with both tightened to [0, 1] has no solution.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, 1.0);
        let y = m.add_continuous(0.0, 10.0, 1.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Ge, 3.0);
        let p = LpProblem::from_model(&m);
        let (root, warm) = p.solve_primal(&p.lb, &p.ub, None).expect("root solves");
        assert_eq!(root.status, LpStatus::Optimal);
        let warm = warm.expect("snapshot");
        let mut ub = p.ub.clone();
        ub[0] = 1.0;
        ub[1] = 1.0;
        let (ws, _) = p
            .solve_dual_warm(&p.lb, &ub, &warm, None)
            .expect("warm start accepted");
        assert_eq!(ws.status, LpStatus::Infeasible);
    }

    #[test]
    fn primal_warm_matches_cold_after_objective_change() {
        // max 3x + 2y → (4, 0); flip the objective to max 2x + 3y: the old
        // vertex stays feasible but is no longer optimal, so the primal
        // warm path must re-pivot to (3, 1) with objective −9.
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(3.0, y), Sense::Le, 6.0);
        let p = LpProblem::from_model(&m);
        let (root, snap) = p.solve_primal_capture(&p.lb, &p.ub, None).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        let (warm, factors) = snap.expect("snapshot");

        let mut m2 = m.clone();
        m2.set_objective_coeff(x, -2.0);
        m2.set_objective_coeff(y, -3.0);
        let p2 = LpProblem::from_model(&m2);
        let (ws, snap2, reused) = p2
            .solve_warm_persistent(
                &p2.lb,
                &p2.ub,
                &warm,
                Some(&factors),
                WarmMode::Primal,
                None,
            )
            .expect("primal warm accepted");
        let cold = p2.solve_with_bounds(&p2.lb, &p2.ub, None).expect("cold");
        assert_eq!(ws.status, LpStatus::Optimal);
        assert!(
            (ws.obj - cold.obj).abs() < 1e-6,
            "{} vs {}",
            ws.obj,
            cold.obj
        );
        assert!(reused, "identical basis should reuse the saved factors");
        assert!(snap2.is_some());
    }

    #[test]
    fn cached_factors_reused_after_bound_change() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(3.0, y), Sense::Le, 6.0);
        let p = LpProblem::from_model(&m);
        let (root, snap) = p.solve_primal_capture(&p.lb, &p.ub, None).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        let (warm, factors) = snap.expect("snapshot");

        let mut ub = p.ub.clone();
        ub[0] = 2.0;
        let (ws, _, reused) = p
            .solve_warm_persistent(&p.lb, &ub, &warm, Some(&factors), WarmMode::Dual, None)
            .expect("dual warm accepted");
        let cold = p.solve_with_bounds(&p.lb, &ub, None).expect("cold");
        assert_eq!(ws.status, LpStatus::Optimal);
        assert!((ws.obj - cold.obj).abs() < 1e-6);
        assert!(reused, "bound deltas keep the basis and factors valid");
    }

    #[test]
    fn added_row_border_warm_matches_cold() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(3.0, y), Sense::Le, 6.0);
        let p = LpProblem::from_model(&m);
        let (root, snap) = p.solve_primal_capture(&p.lb, &p.ub, None).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        let (warm, factors) = snap.expect("snapshot");

        // A cut that separates the old optimum (4, 0): x <= 3.
        let mut m2 = m.clone();
        m2.add_constraint(LinExpr::from(x), Sense::Le, 3.0);
        let p2 = LpProblem::from_model(&m2);
        let warm2 = warm.with_added_rows(p2.n_struct, 1);
        let (ws, snap2, reused) = p2
            .solve_warm_persistent(&p2.lb, &p2.ub, &warm2, Some(&factors), WarmMode::Dual, None)
            .expect("bordered dual warm accepted");
        let cold = p2.solve_with_bounds(&p2.lb, &p2.ub, None).expect("cold");
        assert_eq!(ws.status, LpStatus::Optimal);
        assert!(
            (ws.obj - cold.obj).abs() < 1e-6,
            "{} vs {}",
            ws.obj,
            cold.obj
        );
        assert!(reused, "border extension should adopt the saved factors");
        assert!(snap2.is_some());
    }

    #[test]
    fn added_cols_remap_preserves_warm_start() {
        let mut m = Model::new("t");
        let x = m.add_continuous(0.0, 10.0, -3.0);
        let y = m.add_continuous(0.0, 10.0, -2.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::from(y), Sense::Le, 4.0);
        m.add_constraint(LinExpr::from(x) + LinExpr::term(3.0, y), Sense::Le, 6.0);
        let p = LpProblem::from_model(&m);
        let (root, snap) = p.solve_primal_capture(&p.lb, &p.ub, None).expect("root");
        assert_eq!(root.status, LpStatus::Optimal);
        let (warm, factors) = snap.expect("snapshot");

        // New column with a coefficient in row 0, attractive enough to
        // enter; starts nonbasic at 0, so the primal warm start is valid.
        let mut m2 = m.clone();
        let z = m2.add_continuous(0.0, 1.0, -10.0);
        m2.add_coefficient(RowId::from_index(0), z, 1.0);
        let p2 = LpProblem::from_model(&m2);
        let warm2 = warm.with_added_cols(p.n_struct, 1);
        let (ws, _, reused) = p2
            .solve_warm_persistent(
                &p2.lb,
                &p2.ub,
                &warm2,
                Some(&factors),
                WarmMode::Primal,
                None,
            )
            .expect("primal warm accepted");
        let cold = p2.solve_with_bounds(&p2.lb, &p2.ub, None).expect("cold");
        assert_eq!(ws.status, LpStatus::Optimal);
        assert!(
            (ws.obj - cold.obj).abs() < 1e-6,
            "{} vs {}",
            ws.obj,
            cold.obj
        );
        assert!(reused);
    }

    #[test]
    fn random_warm_starts_match_cold_solves() {
        let mut state = 0xC0FF_EE00_u64;
        let mut next = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut compared = 0;
        for _ in 0..80 {
            let n = 2 + (next() % 5) as usize;
            let rows = 1 + (next() % 5) as usize;
            let mut m = Model::new("rand");
            let vars: Vec<_> = (0..n)
                .map(|_| {
                    let lo = (next() % 5) as f64 - 2.0;
                    let hi = lo + 2.0 + (next() % 6) as f64;
                    let c = (next() % 9) as f64 - 4.0;
                    m.add_continuous(lo, hi, c)
                })
                .collect();
            for _ in 0..rows {
                let mut e = LinExpr::new();
                for &v in &vars {
                    let c = (next() % 7) as f64 - 3.0;
                    if c != 0.0 {
                        e.add_term(c, v);
                    }
                }
                let sense = if next() % 2 == 0 {
                    Sense::Le
                } else {
                    Sense::Ge
                };
                let rhs = (next() % 11) as f64 - 5.0;
                m.add_constraint(e, sense, rhs);
            }
            let p = LpProblem::from_model(&m);
            let Ok((root, Some(warm))) = p.solve_primal(&p.lb, &p.ub, None) else {
                continue;
            };
            if root.status != LpStatus::Optimal {
                continue;
            }
            // Branch-like tightening: split a variable's range at midpoint.
            let j = (next() as usize) % n;
            let mid = ((p.lb[j] + p.ub[j]) / 2.0).floor();
            let (mut lb2, mut ub2) = (p.lb.clone(), p.ub.clone());
            if next() % 2 == 0 {
                ub2[j] = mid;
            } else {
                lb2[j] = mid + 1.0;
            }
            if lb2[j] > ub2[j] {
                continue;
            }
            let cold = p.solve_with_bounds(&lb2, &ub2, None).expect("cold");
            match p.solve_dual_warm(&lb2, &ub2, &warm, None) {
                Err(LpAbort::Singular) => continue, // fallback path; allowed
                Err(e) => panic!("warm abort {e:?}"),
                Ok((ws, _)) => {
                    compared += 1;
                    assert_eq!(ws.status, cold.status, "status mismatch");
                    if ws.status == LpStatus::Optimal {
                        assert!(
                            (ws.obj - cold.obj).abs() < 1e-5,
                            "warm {} vs cold {}",
                            ws.obj,
                            cold.obj
                        );
                    }
                }
            }
        }
        assert!(compared > 20, "only {compared} warm/cold comparisons ran");
    }
}
