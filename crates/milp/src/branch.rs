//! Deterministic parallel branch & bound over the LP relaxation.
//!
//! Best-bound search with pseudo-cost branching, warm-started dual-simplex
//! child solves, an LP-guided **diving heuristic** for early incumbents, an
//! optional caller-supplied incumbent (the scheduler seeds it with the
//! baseline heuristic's solution), and wall-clock/node limits that return
//! the best incumbent found — mirroring how the paper caps CPLEX at 60
//! minutes and takes the best feasible solution (§4).
//!
//! # Parallel search and the determinism contract
//!
//! The tree is explored by `opts.jobs` workers over a shared best-bound
//! heap (`std::thread::scope`; no external dependencies). A completed
//! search returns the identical status, objective, *and assignment* for
//! every thread count, because:
//!
//! - every node's processing (LP solve, dive, pseudo-cost update, branch
//!   selection) is a pure function of the node's own contents — warm
//!   bases and pseudo-costs are inherited from the parent via `Arc`,
//!   never read from global mutable state;
//! - objective *ties* are explored rather than pruned (a node is pruned
//!   only when its bound is ≥ incumbent + [`TIE_EPS`]), so the set of
//!   nodes that can produce an optimal assignment is explored in every
//!   run regardless of incumbent timing;
//! - among objective-tied candidates the lexicographically smallest
//!   assignment wins, a total order independent of arrival order.
//!
//! Callers that set `absolute_gap` above the tie tolerance opt out of tie
//! exploration and get classic gap pruning (objective values are still
//! deterministic; the returned assignment may then depend on timing).
//! Early stops (deadline/node limit) depend on wall-clock timing by
//! nature and only promise a valid incumbent + bound pair.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrd};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pipemap_obs as obs;

use crate::model::{Model, VarKind};
use crate::presolve::{self, PresolveOutcome};
use crate::simplex::{LpAbort, LpProblem, LpSolution, LpStatus, WarmBasis};
use crate::{GapSample, MilpError, MilpResult, SolverOptions, SolverStats, Status};

const INT_TOL: f64 = 1e-6;
/// Objective ties within this tolerance are explored, not pruned, and
/// resolved lexicographically. Far below the objective granularity of the
/// paper's models (multiples of the 0.5-weighted area terms), so exact
/// float ties are the only ties that occur in practice.
const TIE_EPS: f64 = 1e-9;
/// Dive from a node's relaxation when its path id hashes to 0 mod this
/// (always at the root). Id-keyed selection is reproducible under any
/// worker interleaving, unlike a "nodes since last dive" counter.
const DIVE_PERIOD: u64 = 197;
/// Convergence-timeline cap: bound-improvement samples beyond this are
/// skipped (incumbent and final samples always land), so pathological
/// searches cannot grow the telemetry without bound.
const MAX_SAMPLES: usize = 4096;

/// Path-local pseudo-costs: per integer column, the summed per-unit
/// objective degradation and observation count for the down and up branch.
/// Children extend their parent's table immutably, so branching decisions
/// never depend on what other subtrees (or threads) have learned — the
/// price of determinism is slower pseudo-cost convergence than a global
/// table would give.
#[derive(Debug, Clone)]
struct PseudoCosts {
    down: Vec<(f64, u32)>,
    up: Vec<(f64, u32)>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts {
            down: vec![(0.0, 0); n],
            up: vec![(0.0, 0); n],
        }
    }

    /// A copy of the table with one more observation folded in.
    fn observe(&self, ord: usize, up: bool, degradation: f64) -> Self {
        let mut next = self.clone();
        let slot = if up {
            &mut next.up[ord]
        } else {
            &mut next.down[ord]
        };
        slot.0 += degradation;
        slot.1 += 1;
        next
    }

    fn estimate(side: &[(f64, u32)], ord: usize, fallback: f64) -> f64 {
        let (sum, cnt) = side[ord];
        if cnt > 0 {
            sum / cnt as f64
        } else {
            fallback
        }
    }

    /// Average over all observed columns; 1.0 before any observation.
    fn fallback(side: &[(f64, u32)]) -> f64 {
        let (sum, cnt) = side
            .iter()
            .fold((0.0, 0u32), |(s, c), &(s2, c2)| (s + s2, c + c2));
        if cnt > 0 {
            sum / cnt as f64
        } else {
            1.0
        }
    }
}

/// A subproblem: bound overrides relative to the root LP plus the
/// inherited warm-start basis and pseudo-cost table.
#[derive(Debug, Clone)]
struct Node {
    /// Deterministic path hash (root = 1; children mix in the branch
    /// direction). Used for dive selection and heap tie-breaking.
    id: u64,
    /// `(column, new_lb, new_ub)` overrides accumulated along the path.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (root: -inf).
    bound: f64,
    depth: usize,
    /// The parent's optimal basis for dual-simplex warm starts.
    warm: Option<Arc<WarmBasis>>,
    pcosts: Arc<PseudoCosts>,
    /// How this node was created: `(int ordinal, fractional distance,
    /// up?)` — consumed by the pseudo-cost update after this node's solve.
    branched: Option<(usize, f64, bool)>,
}

fn child_id(parent: u64, up: bool) -> u64 {
    parent
        .wrapping_mul(6364136223846793005)
        .wrapping_add(if up { 1 } else { 2 })
}

/// Heap ordering: smallest bound first (best-first), deeper first on ties
/// so the search dives toward incumbents, then smallest path id.
#[derive(Debug)]
struct Ranked(Node);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert the bound comparison.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// Why the search loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopReason {
    /// Heap drained with all workers idle: the tree is fully explored.
    Exhausted,
    /// The wall-clock deadline expired.
    TimedOut,
    /// The node budget ran out with work remaining.
    NodeLimit,
    /// The root relaxation is unbounded below.
    RootUnbounded,
}

/// State shared by all workers behind one mutex.
#[derive(Debug)]
struct SearchState {
    heap: BinaryHeap<Ranked>,
    /// Bound of the node each worker is currently processing (`None` when
    /// idle); feeds the best-bound report on early stops.
    in_flight: Vec<Option<f64>>,
    /// Incumbent in *reduced* (post-presolve) column space.
    incumbent: Option<Vec<f64>>,
    incumbent_obj: f64,
    nodes: usize,
    lp_iters: usize,
    stop: Option<StopReason>,
    root_status: Option<LpStatus>,
    error: Option<MilpError>,
    /// Nodes processed by each worker (work-stealing balance telemetry).
    per_worker_nodes: Vec<usize>,
    /// Monotone telemetry view of the proven lower bound: the best
    /// `min(popped bound, in-flight bounds)` seen so far. Best-first pops
    /// are non-decreasing, so clamping to the max keeps this sound.
    frontier: f64,
    /// `(us since solve start, incumbent obj, frontier bound)` in reduced
    /// objective space; converted to [`GapSample`]s at the end. Pure
    /// telemetry — never read by the search.
    timeline: Vec<(u64, f64, f64)>,
}

impl SearchState {
    /// Record a convergence sample. Bound-only samples respect the
    /// [`MAX_SAMPLES`] cap; incumbent/final samples (`force`) always land.
    fn sample(&mut self, t: Duration, force: bool) {
        if !force && self.timeline.len() >= MAX_SAMPLES {
            return;
        }
        self.timeline
            .push((t.as_micros() as u64, self.incumbent_obj, self.frontier));
    }
}

/// Strict lexicographic order on assignments (total: uses `total_cmp`).
fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (av, bv) in a.iter().zip(b) {
        match av.total_cmp(bv) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// Offer a feasible point as incumbent: strictly better objectives win;
/// ties within [`TIE_EPS`] are resolved toward the lexicographically
/// smaller assignment (keeping the smaller of the tied objectives).
/// Returns `true` when the incumbent *objective* improved (lex-only tie
/// swaps return `false`) so callers can emit telemetry without changing
/// any search decision.
fn offer_incumbent(state: &mut SearchState, obj: f64, x: Vec<f64>) -> bool {
    match &mut state.incumbent {
        None => {
            state.incumbent_obj = obj;
            state.incumbent = Some(x);
            true
        }
        Some(cur) => {
            if obj < state.incumbent_obj - TIE_EPS {
                state.incumbent_obj = obj;
                *cur = x;
                true
            } else if obj <= state.incumbent_obj + TIE_EPS && lex_less(&x, cur) {
                state.incumbent_obj = state.incumbent_obj.min(obj);
                *cur = x;
                false
            } else {
                false
            }
        }
    }
}

/// Everything a worker needs that is immutable during the search.
struct Ctx<'a> {
    lp: &'a LpProblem,
    rmodel: &'a Model,
    int_cols: &'a [usize],
    /// When the solve started (timestamps the convergence timeline).
    start: Instant,
    deadline: Option<Instant>,
    node_limit: usize,
    /// Static objective cutoff in reduced space (`+inf` when unset).
    cutoff_red: f64,
    /// `absolute_gap` at or below the tie tolerance enables tie
    /// exploration; above it, classic gap pruning.
    tie_explore: bool,
    gap: f64,
    warm_enabled: bool,
    warm_attempts: &'a AtomicUsize,
    warm_hits: &'a AtomicUsize,
}

impl Ctx<'_> {
    /// Nodes with `bound >= threshold` are pruned (at push and at pop;
    /// the threshold only tightens over time, so the two agree).
    fn prune_threshold(&self, incumbent_obj: f64) -> f64 {
        let inc_t = if self.tie_explore {
            incumbent_obj + TIE_EPS
        } else {
            incumbent_obj - self.gap
        };
        inc_t.min(self.cutoff_red - self.gap)
    }
}

/// Result of processing one node outside the lock.
enum Processed {
    /// The deadline expired mid-solve; the node is still unexplored.
    Timeout,
    Error(MilpError),
    /// The node's relaxation is infeasible: subtree closed.
    Infeasible,
    /// The node's relaxation is unbounded (only meaningful at the root).
    Unbounded,
    /// Children to enqueue plus incumbent candidates found here.
    Expanded {
        children: Vec<Node>,
        candidates: Vec<(f64, Vec<f64>)>,
    },
}

/// LP-guided dive: repeatedly fix near-integral variables (or the single
/// most decided fractional one) and re-solve until the relaxation is
/// integral or infeasible. Returns an integral assignment below `cutoff`.
/// Deterministic: depends only on the starting relaxation and the static
/// cutoff, never on the evolving incumbent.
#[allow(clippy::too_many_arguments)]
fn dive(
    lp: &LpProblem,
    int_cols: &[usize],
    lb0: &[f64],
    ub0: &[f64],
    start: &LpSolution,
    deadline: Option<Instant>,
    cutoff: f64,
    lp_iters: &mut usize,
) -> Option<(f64, Vec<f64>)> {
    let mut lb = lb0.to_vec();
    let mut ub = ub0.to_vec();
    let mut sol = start.clone();
    for _round in 0..30 {
        if sol.obj >= cutoff - 1e-9 {
            return None; // the dive can't end below the cutoff
        }
        let mut fracs: Vec<(usize, f64)> = int_cols
            .iter()
            .filter_map(|&j| {
                let v = sol.x[j];
                let frac = (v - v.round()).abs();
                (frac > INT_TOL).then_some((j, frac))
            })
            .collect();
        if fracs.is_empty() {
            return Some((sol.obj, sol.x.clone()));
        }
        // Pin everything already integral so each round makes progress,
        // then fix the nearly decided fractionals (or the single most
        // decided one).
        for &j in int_cols {
            let v = sol.x[j];
            if (v - v.round()).abs() <= INT_TOL {
                lb[j] = v.round();
                ub[j] = v.round();
            }
        }
        let nearly: Vec<usize> = fracs
            .iter()
            .filter(|&&(_, f)| f < 0.1)
            .map(|&(j, _)| j)
            .collect();
        let to_fix: Vec<usize> = if nearly.is_empty() {
            fracs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
            vec![fracs[0].0]
        } else {
            nearly
        };
        for j in to_fix {
            let r = sol.x[j].round();
            lb[j] = r;
            ub[j] = r;
        }
        match lp.solve_with_bounds(&lb, &ub, deadline) {
            Ok(next) => {
                *lp_iters += next.iters;
                if next.status != LpStatus::Optimal {
                    return None;
                }
                sol = next;
            }
            Err(_) => return None,
        }
    }
    None
}

/// Solve one node: LP (warm then cold), pseudo-cost update, optional
/// dive, branch selection. Touches no shared mutable state except the
/// warm-start counters, so its outcome is a pure function of the node.
fn process_node(ctx: &Ctx<'_>, node: &Node, lp_iters: &mut usize) -> Processed {
    let mut lb = ctx.lp.lb.clone();
    let mut ub = ctx.lp.ub.clone();
    for &(j, l, u) in &node.bounds {
        lb[j] = lb[j].max(l);
        ub[j] = ub[j].min(u);
    }

    // Warm-started dual simplex from the parent basis; any rejection
    // falls back to a cold primal solve.
    let mut solved: Option<(LpSolution, Option<WarmBasis>)> = None;
    if ctx.warm_enabled {
        if let Some(wb) = &node.warm {
            ctx.warm_attempts.fetch_add(1, AtomicOrd::Relaxed);
            match ctx.lp.solve_dual_warm(&lb, &ub, wb, ctx.deadline) {
                Ok(r) => {
                    ctx.warm_hits.fetch_add(1, AtomicOrd::Relaxed);
                    obs::instant("warm-hit");
                    solved = Some(r);
                }
                Err(LpAbort::Timeout) => return Processed::Timeout,
                Err(_) => {
                    // Singular or numerical: cold fallback.
                    obs::instant("warm-miss");
                }
            }
        }
    }
    let (sol, snap) = match solved {
        Some(r) => r,
        None => match ctx.lp.solve_primal(&lb, &ub, ctx.deadline) {
            Ok(r) => r,
            Err(LpAbort::Timeout) => return Processed::Timeout,
            Err(LpAbort::Numerical(msg)) => return Processed::Error(MilpError::Numerical(msg)),
            Err(LpAbort::Singular) => {
                return Processed::Error(MilpError::Numerical("unrepairable singular basis".into()))
            }
        },
    };
    *lp_iters += sol.iters;
    match sol.status {
        LpStatus::Infeasible => return Processed::Infeasible,
        LpStatus::Unbounded => return Processed::Unbounded,
        LpStatus::Optimal => {}
    }

    // Fold this node's observed degradation into its pseudo-cost table.
    let pcosts = match node.branched {
        Some((ord, dist, up)) => {
            let degradation = ((sol.obj - node.bound) / dist.max(INT_TOL)).max(0.0);
            Arc::new(node.pcosts.observe(ord, up, degradation))
        }
        None => node.pcosts.clone(),
    };

    let mut candidates = Vec::new();
    let fracs: Vec<(usize, usize, f64, f64)> = ctx
        .int_cols
        .iter()
        .enumerate()
        .filter_map(|(ord, &j)| {
            let v = sol.x[j];
            let f = v - v.floor();
            let frac = (v - v.round()).abs();
            (frac > INT_TOL).then_some((ord, j, v, f))
        })
        .collect();
    if fracs.is_empty() {
        // Integral relaxation: incumbent candidate (if it beats the static
        // cutoff), subtree closed.
        if sol.obj < ctx.cutoff_red - ctx.gap {
            let mut x = sol.x.clone();
            for &j in ctx.int_cols {
                x[j] = x[j].round();
            }
            candidates.push((sol.obj, x));
        }
        return Processed::Expanded {
            children: Vec::new(),
            candidates,
        };
    }

    // Deterministic periodic dive (always at the root).
    if node.depth == 0 || node.id.is_multiple_of(DIVE_PERIOD) {
        if let Some((obj, mut x)) = dive(
            ctx.lp,
            ctx.int_cols,
            &lb,
            &ub,
            &sol,
            ctx.deadline,
            ctx.cutoff_red,
            lp_iters,
        ) {
            if ctx.rmodel.check_feasible(&x, 1e-5).is_none() {
                for &jc in ctx.int_cols {
                    x[jc] = x[jc].round();
                }
                candidates.push((obj, x));
            }
        }
    }

    // Branch selection: pseudo-cost product rule with the path average as
    // the estimate for unobserved columns; ties broken by fractionality
    // then column index (all node-local, hence deterministic).
    let fb_down = PseudoCosts::fallback(&pcosts.down);
    let fb_up = PseudoCosts::fallback(&pcosts.up);
    let mut best: Option<(f64, f64, usize, usize, f64)> = None; // (score, merit, ord, j, v)
    for &(ord, j, v, f) in &fracs {
        let d = PseudoCosts::estimate(&pcosts.down, ord, fb_down) * f;
        let u = PseudoCosts::estimate(&pcosts.up, ord, fb_up) * (1.0 - f);
        let score = d.max(1e-8) * u.max(1e-8);
        let merit = 0.5 - (f - 0.5).abs();
        let better = match best {
            None => true,
            Some((bs, bm, _, bj, _)) => {
                score > bs + 1e-12
                    || (score > bs - 1e-12
                        && (merit > bm + 1e-12 || (merit > bm - 1e-12 && j < bj)))
            }
        };
        if better {
            best = Some((score, merit, ord, j, v));
        }
    }
    let (_, _, ord, j, v) = best.expect("fractional set is nonempty");
    let f = v - v.floor();
    let warm_arc = if ctx.warm_enabled {
        snap.map(Arc::new)
    } else {
        None
    };
    let mut down_bounds = node.bounds.clone();
    down_bounds.push((j, f64::NEG_INFINITY, v.floor()));
    let mut up_bounds = node.bounds.clone();
    up_bounds.push((j, v.ceil(), f64::INFINITY));
    let children = vec![
        Node {
            id: child_id(node.id, false),
            bounds: down_bounds,
            bound: sol.obj,
            depth: node.depth + 1,
            warm: warm_arc.clone(),
            pcosts: pcosts.clone(),
            branched: Some((ord, f.max(INT_TOL), false)),
        },
        Node {
            id: child_id(node.id, true),
            bounds: up_bounds,
            bound: sol.obj,
            depth: node.depth + 1,
            warm: warm_arc,
            pcosts,
            branched: Some((ord, (1.0 - f).max(INT_TOL), true)),
        },
    ];
    Processed::Expanded {
        children,
        candidates,
    }
}

/// One worker: pop best node, process outside the lock, merge results.
fn worker(ctx: &Ctx<'_>, shared: &Mutex<SearchState>, cv: &Condvar, wid: usize) {
    // Flushed when the worker closure ends (inside the scope), so the
    // trace capture after `thread::scope` never misses tail events.
    let _lane = obs::lane_guard(format!("bb-worker-{wid}"));
    let mut g = shared.lock().expect("search mutex");
    loop {
        if g.error.is_some() || g.stop.is_some() {
            break;
        }
        if ctx.deadline.is_some_and(|d| Instant::now() >= d) {
            g.stop = Some(StopReason::TimedOut);
            break;
        }

        // Pop the best unpruned node. The heap is min-by-bound, so a
        // prunable top means the whole heap is prunable.
        let mut popped = None;
        let threshold = ctx.prune_threshold(g.incumbent_obj);
        if let Some(top) = g.heap.peek() {
            if top.0.bound >= threshold {
                g.heap.clear();
            } else if g.nodes >= ctx.node_limit {
                g.stop = Some(StopReason::NodeLimit);
            } else {
                let Ranked(n) = g.heap.pop().expect("peeked node pops");
                g.nodes += 1;
                g.per_worker_nodes[wid] += 1;
                // Proven lower bound: the popped node has the smallest
                // bound left in the heap, but earlier-popped nodes may
                // still be in flight with smaller bounds.
                let proven = g.in_flight.iter().flatten().fold(n.bound, |a, &b| a.min(b));
                if proven.is_finite() && proven > g.frontier + 1e-9 {
                    g.frontier = proven;
                    g.sample(ctx.start.elapsed(), false);
                    if obs::enabled() {
                        obs::instant_with(
                            "bound-improved",
                            vec![
                                ("bound", proven.into()),
                                ("incumbent", g.incumbent_obj.into()),
                                ("node", n.id.into()),
                                ("nodes", g.nodes.into()),
                            ],
                        );
                    }
                }
                popped = Some(n);
            }
        }
        if g.stop.is_some() {
            break;
        }
        let Some(node) = popped else {
            if g.in_flight.iter().all(Option::is_none) {
                g.stop = Some(StopReason::Exhausted);
                break;
            }
            // Another worker may still push children; re-check shortly
            // (the timeout doubles as the deadline poll while idle).
            g = cv
                .wait_timeout(g, Duration::from_millis(50))
                .expect("search mutex")
                .0;
            continue;
        };

        g.in_flight[wid] = Some(node.bound);
        drop(g);

        let node_span = if obs::enabled() {
            Some(obs::span_with(
                "node",
                vec![
                    ("id", node.id.into()),
                    ("depth", node.depth.into()),
                    ("bound", node.bound.into()),
                ],
            ))
        } else {
            None
        };
        let mut iters = 0usize;
        let outcome = process_node(ctx, &node, &mut iters);
        // Close before re-locking so lane time excludes lock contention.
        drop(node_span);

        g = shared.lock().expect("search mutex");
        g.in_flight[wid] = None;
        g.lp_iters += iters;
        match outcome {
            Processed::Timeout => {
                // Keep the node's bound visible to the best-bound report.
                g.heap.push(Ranked(node));
                g.stop = Some(StopReason::TimedOut);
            }
            Processed::Error(e) => {
                g.error = Some(e);
            }
            Processed::Infeasible => {
                if node.depth == 0 {
                    g.root_status = Some(LpStatus::Infeasible);
                }
            }
            Processed::Unbounded => {
                if node.depth == 0 {
                    g.root_status = Some(LpStatus::Unbounded);
                    g.stop = Some(StopReason::RootUnbounded);
                }
                // Defensive: a bounded root cannot spawn unbounded
                // children; ignore if it somehow happens.
            }
            Processed::Expanded {
                children,
                candidates,
            } => {
                if node.depth == 0 {
                    g.root_status = Some(LpStatus::Optimal);
                }
                for (obj, x) in candidates {
                    if offer_incumbent(&mut g, obj, x) {
                        g.sample(ctx.start.elapsed(), true);
                        if obs::enabled() {
                            obs::instant_with(
                                "incumbent-found",
                                vec![
                                    ("objective", g.incumbent_obj.into()),
                                    ("bound", g.frontier.into()),
                                    ("gap", (g.incumbent_obj - g.frontier).into()),
                                    ("node", node.id.into()),
                                    ("nodes", g.nodes.into()),
                                ],
                            );
                        }
                    }
                }
                let threshold = ctx.prune_threshold(g.incumbent_obj);
                for ch in children {
                    if ch.bound < threshold {
                        g.heap.push(Ranked(ch));
                    }
                }
            }
        }
        cv.notify_all();
    }
    cv.notify_all();
}

pub(crate) fn solve_milp(model: &Model, opts: &SolverOptions) -> Result<MilpResult, MilpError> {
    let start = Instant::now();
    let deadline = start.checked_add(opts.time_limit);
    let jobs = opts.jobs.max(1);
    let mut stats = SolverStats {
        jobs,
        ..SolverStats::default()
    };

    // Validate the caller's seed against the *original* model.
    let orig_int: Vec<usize> = (0..model.num_vars())
        .filter(|&j| model.var_kind(crate::VarId(j as u32)) == VarKind::Integer)
        .collect();
    let seed: Option<Vec<f64>> = opts.initial_solution.as_ref().and_then(|init| {
        (init.len() == model.num_vars()
            && model.check_feasible(init, 1e-6).is_none()
            && orig_int
                .iter()
                .all(|&j| (init[j] - init[j].round()).abs() <= INT_TOL))
        .then(|| init.clone())
    });

    let finish = |status: Status,
                  objective: f64,
                  best_bound: f64,
                  values: Vec<f64>,
                  nodes: usize,
                  lp_iterations: usize,
                  stats: SolverStats| {
        Ok(MilpResult {
            status,
            objective,
            best_bound,
            values,
            nodes,
            lp_iterations,
            solve_time: start.elapsed(),
            stats,
        })
    };

    // Presolve (or the identity reduction when disabled).
    let presolve_span = obs::span("presolve");
    let red = if opts.presolve {
        match presolve::presolve(model) {
            PresolveOutcome::Infeasible => {
                // Presolve preserves the MIP-feasible set; a verified
                // feasible seed would contradict this proof, so defer to
                // the explicit check and return the seed if present.
                return match seed {
                    Some(s) => {
                        let obj = model.objective_value(&s);
                        finish(Status::Feasible, obj, f64::NEG_INFINITY, s, 0, 0, stats)
                    }
                    None => finish(
                        Status::Infeasible,
                        f64::INFINITY,
                        f64::INFINITY,
                        Vec::new(),
                        0,
                        0,
                        stats,
                    ),
                };
            }
            PresolveOutcome::Reduced(r) => *r,
        }
    } else {
        presolve::identity(model)
    };
    red.fill_stats(&mut stats);
    drop(presolve_span);
    if obs::enabled() {
        obs::instant_with(
            "presolve-reduction",
            vec![
                ("rows_removed", stats.presolve_rows_removed.into()),
                ("cols_fixed", stats.presolve_cols_fixed.into()),
                ("bounds_tightened", stats.presolve_bounds_tightened.into()),
                ("coeffs_reduced", stats.presolve_coeffs_reduced.into()),
            ],
        );
    }
    let offset = red.obj_offset;
    let rmodel = &red.model;

    let lp = LpProblem::from_model(rmodel);
    let int_cols: Vec<usize> = (0..rmodel.num_vars())
        .filter(|&j| rmodel.var_kind(crate::VarId(j as u32)) == VarKind::Integer)
        .collect();

    let ctx = Ctx {
        lp: &lp,
        rmodel,
        int_cols: &int_cols,
        start,
        deadline,
        node_limit: opts.node_limit,
        cutoff_red: opts.cutoff.map_or(f64::INFINITY, |c| c - offset),
        tie_explore: opts.absolute_gap <= 1e-6,
        gap: opts.absolute_gap,
        warm_enabled: opts.warm_start,
        warm_attempts: &AtomicUsize::new(0),
        warm_hits: &AtomicUsize::new(0),
    };

    let mut state = SearchState {
        heap: BinaryHeap::new(),
        in_flight: vec![None; jobs],
        incumbent: None,
        incumbent_obj: f64::INFINITY,
        nodes: 0,
        lp_iters: 0,
        stop: None,
        root_status: None,
        error: None,
        per_worker_nodes: vec![0; jobs],
        frontier: f64::NEG_INFINITY,
        timeline: Vec::new(),
    };
    if let Some(s) = &seed {
        if let Some(sr) = red.project(s) {
            let obj = rmodel.objective_value(&sr);
            if offer_incumbent(&mut state, obj, sr) {
                state.sample(start.elapsed(), true);
            }
        }
    }
    state.heap.push(Ranked(Node {
        id: 1,
        bounds: Vec::new(),
        bound: f64::NEG_INFINITY,
        depth: 0,
        warm: None,
        pcosts: Arc::new(PseudoCosts::new(int_cols.len())),
        branched: None,
    }));

    let shared = Mutex::new(state);
    let cv = Condvar::new();
    std::thread::scope(|scope| {
        for wid in 0..jobs {
            let ctx = &ctx;
            let shared = &shared;
            let cv = &cv;
            scope.spawn(move || worker(ctx, shared, cv, wid));
        }
    });

    let mut g = shared.into_inner().expect("search mutex");
    if let Some(e) = g.error {
        return Err(e);
    }
    stats.warm_attempts = ctx.warm_attempts.load(AtomicOrd::Relaxed);
    stats.warm_hits = ctx.warm_hits.load(AtomicOrd::Relaxed);
    stats.nodes_per_worker = std::mem::take(&mut g.per_worker_nodes);

    let stop = g.stop.unwrap_or(StopReason::Exhausted);

    // Best bound: remaining work (heap) on early stops; the incumbent
    // itself once the tree is exhausted.
    let best_bound_red = g
        .heap
        .iter()
        .map(|r| r.0.bound)
        .fold(g.incumbent_obj, f64::min);

    // Close the convergence timeline with the definitive proven bound,
    // then publish it in caller (pre-presolve) objective space.
    if stop != StopReason::RootUnbounded && (g.incumbent.is_some() || best_bound_red.is_finite()) {
        g.frontier = best_bound_red;
        g.sample(start.elapsed(), true);
    }
    stats.convergence = g
        .timeline
        .iter()
        .map(|&(t_us, obj, bound)| GapSample {
            t_ms: t_us as f64 / 1e3,
            objective: if obj.is_finite() { obj + offset } else { obj },
            bound: if bound.is_finite() {
                bound + offset
            } else {
                bound
            },
        })
        .collect();

    if stop == StopReason::RootUnbounded {
        return finish(
            Status::Unbounded,
            f64::NEG_INFINITY,
            f64::NEG_INFINITY,
            Vec::new(),
            g.nodes,
            g.lp_iters,
            stats,
        );
    }

    let status = match (&g.incumbent, stop) {
        (Some(_), StopReason::Exhausted) => Status::Optimal,
        (Some(_), StopReason::TimedOut) => Status::TimedOut,
        (Some(_), StopReason::NodeLimit) => Status::Feasible,
        (None, StopReason::Exhausted) => {
            if g.root_status == Some(LpStatus::Unbounded) {
                Status::Unbounded
            } else {
                Status::Infeasible
            }
        }
        (None, _) => Status::Unknown,
        (_, StopReason::RootUnbounded) => unreachable!("handled above"),
    };
    let objective = if g.incumbent.is_some() {
        g.incumbent_obj + offset
    } else {
        f64::INFINITY
    };
    let best_bound = if best_bound_red.is_finite() {
        best_bound_red + offset
    } else {
        best_bound_red
    };
    let values = g.incumbent.map(|x| red.restore(&x)).unwrap_or_default();
    finish(
        status, objective, best_bound, values, g.nodes, g.lp_iters, stats,
    )
}
