//! Deterministic parallel branch & bound over the LP relaxation.
//!
//! Best-bound search with pseudo-cost branching, warm-started dual-simplex
//! child solves, an LP-guided **diving heuristic** for early incumbents, an
//! optional caller-supplied incumbent (the scheduler seeds it with the
//! baseline heuristic's solution), and wall-clock/node limits that return
//! the best incumbent found — mirroring how the paper caps CPLEX at 60
//! minutes and takes the best feasible solution (§4).
//!
//! # Parallel search and the determinism contract
//!
//! The tree is explored by `opts.jobs` workers over a shared best-bound
//! heap (`std::thread::scope`; no external dependencies). A completed
//! search returns the identical status, objective, *and assignment* for
//! every thread count, because:
//!
//! - every node's processing (LP solve, dive, pseudo-cost update, branch
//!   selection) is a pure function of the node's own contents — warm
//!   bases and pseudo-costs are inherited from the parent via `Arc`,
//!   never read from global mutable state;
//! - objective *ties* are explored rather than pruned (a node is pruned
//!   only when its bound is ≥ incumbent + [`TIE_EPS`]), so the set of
//!   nodes that can produce an optimal assignment is explored in every
//!   run regardless of incumbent timing;
//! - among objective-tied candidates the lexicographically smallest
//!   assignment wins — integer columns first, as rounded integers, so
//!   the order is a pure function of the discrete solution and immune to
//!   continuous-column LP noise — a total order independent of arrival
//!   order.
//!
//! Callers that set `absolute_gap` above the tie tolerance opt out of tie
//! exploration and get classic gap pruning (objective values are still
//! deterministic; the returned assignment may then depend on timing).
//! Early stops (deadline/node limit) depend on wall-clock timing by
//! nature and only promise a valid incumbent + bound pair.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrd};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use pipemap_obs as obs;
use pipemap_obs::metrics;

use crate::analysis::{self, StructuralAnalysis};
use crate::lu::Factors;
use crate::model::{Model, VarKind};
use crate::presolve::{self, PresolveOutcome};
use crate::simplex::{LpAbort, LpProblem, LpSolution, LpStatus, WarmBasis, WarmMode};
use crate::{GapSample, MilpError, MilpResult, SolverOptions, SolverStats, Status};

const INT_TOL: f64 = 1e-6;
/// Objective ties within this tolerance are explored, not pruned, and
/// resolved lexicographically. Far below the objective granularity of the
/// paper's models (multiples of the 0.5-weighted area terms), so exact
/// float ties are the only ties that occur in practice.
const TIE_EPS: f64 = 1e-9;
/// Dive from a node's relaxation when its path id hashes to 0 mod this
/// (always at the root). Id-keyed selection is reproducible under any
/// worker interleaving, unlike a "nodes since last dive" counter.
const DIVE_PERIOD: u64 = 197;
/// Convergence-timeline cap: bound-improvement samples beyond this are
/// skipped (incumbent and final samples always land), so pathological
/// searches cannot grow the telemetry without bound.
const MAX_SAMPLES: usize = 4096;
/// Heartbeat period for time-based convergence samples: stalled searches
/// still record one sample per second, so time→gap curves stay usable
/// even when neither incumbent nor bound moves for most of the budget.
const HEARTBEAT: Duration = Duration::from_secs(1);

/// Path-local pseudo-costs: per integer column, the summed per-unit
/// objective degradation and observation count for the down and up branch.
/// Children extend their parent's table immutably, so branching decisions
/// never depend on what other subtrees (or threads) have learned — the
/// price of determinism is slower pseudo-cost convergence than a global
/// table would give.
#[derive(Debug, Clone)]
struct PseudoCosts {
    down: Vec<(f64, u32)>,
    up: Vec<(f64, u32)>,
}

impl PseudoCosts {
    fn new(n: usize) -> Self {
        PseudoCosts {
            down: vec![(0.0, 0); n],
            up: vec![(0.0, 0); n],
        }
    }

    /// A copy of the table with one more observation folded in.
    fn observe(&self, ord: usize, up: bool, degradation: f64) -> Self {
        let mut next = self.clone();
        let slot = if up {
            &mut next.up[ord]
        } else {
            &mut next.down[ord]
        };
        slot.0 += degradation;
        slot.1 += 1;
        next
    }

    fn estimate(side: &[(f64, u32)], ord: usize, fallback: f64) -> f64 {
        let (sum, cnt) = side[ord];
        if cnt > 0 {
            sum / cnt as f64
        } else {
            fallback
        }
    }

    /// Average over all observed columns; 1.0 before any observation.
    fn fallback(side: &[(f64, u32)]) -> f64 {
        let (sum, cnt) = side
            .iter()
            .fold((0.0, 0u32), |(s, c), &(s2, c2)| (s + s2, c + c2));
        if cnt > 0 {
            sum / cnt as f64
        } else {
            1.0
        }
    }
}

/// A subproblem: bound overrides relative to the root LP plus the
/// inherited warm-start basis and pseudo-cost table.
#[derive(Debug, Clone)]
struct Node {
    /// Deterministic path hash (root = 1; children mix in the branch
    /// direction). Used for dive selection and heap tie-breaking.
    id: u64,
    /// `(column, new_lb, new_ub)` overrides accumulated along the path.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (root: -inf).
    bound: f64,
    depth: usize,
    /// The parent's optimal basis for dual-simplex warm starts.
    warm: Option<Arc<WarmBasis>>,
    pcosts: Arc<PseudoCosts>,
    /// How this node was created: `(int ordinal, fractional distance,
    /// up?)` — consumed by the pseudo-cost update after this node's solve.
    branched: Option<(usize, f64, bool)>,
}

fn child_id(parent: u64, up: bool) -> u64 {
    parent
        .wrapping_mul(6364136223846793005)
        .wrapping_add(if up { 1 } else { 2 })
}

/// Open leaves of a stopped search, captured verbatim so a later solve of
/// the *unmodified* model can resume from them instead of the root. Only
/// sound as a continuation: any model delta invalidates the node bounds
/// and warm bases, so callers must drop the frontier on edit.
#[derive(Debug, Clone)]
pub(crate) struct Frontier {
    nodes: Vec<Node>,
}

impl Frontier {
    /// Number of open leaves carried over.
    pub(crate) fn len(&self) -> usize {
        self.nodes.len()
    }
}

/// Warm-start payload carried from one solve to a re-solve of an edited
/// model. The basis/factors pair warm-starts the *root* LP of the next
/// search; `primal` selects the simplex variant that the edit kept
/// feasible (objective-only deltas preserve primal feasibility; bound
/// and row deltas preserve dual feasibility). The frontier, when
/// present, replaces the root node entirely (pure continuation).
#[derive(Debug)]
pub(crate) struct ResolveSeed {
    pub(crate) basis: WarmBasis,
    pub(crate) factors: Option<Factors>,
    pub(crate) primal: bool,
    pub(crate) frontier: Option<Frontier>,
}

/// What a capturing solve hands back for the *next* re-solve: the root
/// LP's optimal basis with its LU factors, and — when the search stopped
/// early with a complete set of open leaves — the frontier.
#[derive(Debug, Default)]
pub(crate) struct ResolveCapture {
    pub(crate) root: Option<(WarmBasis, Factors)>,
    pub(crate) frontier: Option<Frontier>,
}

/// Frontier capture cap: a heap larger than this is dropped rather than
/// truncated (a partial frontier would silently un-explore subtrees,
/// which is unsound), bounding the memory a context can pin.
const FRONTIER_CAP: usize = 4096;

/// Heap ordering: smallest bound first (best-first), deeper first on ties
/// so the search dives toward incumbents, then smallest path id.
#[derive(Debug)]
struct Ranked(Node);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert the bound comparison.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
            .then_with(|| other.0.id.cmp(&self.0.id))
    }
}

/// Why the search loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StopReason {
    /// Heap drained with all workers idle: the tree is fully explored.
    Exhausted,
    /// The wall-clock deadline expired.
    TimedOut,
    /// The node budget ran out with work remaining.
    NodeLimit,
    /// The root relaxation is unbounded below.
    RootUnbounded,
}

/// State shared by all workers behind one mutex.
#[derive(Debug)]
struct SearchState {
    heap: BinaryHeap<Ranked>,
    /// Bound of the node each worker is currently processing (`None` when
    /// idle); feeds the best-bound report on early stops.
    in_flight: Vec<Option<f64>>,
    /// Incumbent in *reduced* (post-presolve) column space.
    incumbent: Option<Vec<f64>>,
    incumbent_obj: f64,
    nodes: usize,
    lp_iters: usize,
    stop: Option<StopReason>,
    root_status: Option<LpStatus>,
    error: Option<MilpError>,
    /// Nodes processed by each worker (work-stealing balance telemetry).
    per_worker_nodes: Vec<usize>,
    /// Monotone telemetry view of the proven lower bound: the best
    /// `min(popped bound, in-flight bounds)` seen so far. Best-first pops
    /// are non-decreasing, so clamping to the max keeps this sound.
    frontier: f64,
    /// `(us since solve start, incumbent obj, frontier bound)` in reduced
    /// objective space; converted to [`GapSample`]s at the end. Pure
    /// telemetry — never read by the search.
    timeline: Vec<(u64, f64, f64)>,
    /// Next heartbeat-sample time. Stalled searches (bound and incumbent
    /// both stuck) would otherwise record nothing for the whole stall,
    /// leaving time→gap curves with a single point followed by a cliff;
    /// the heartbeat keeps them honest at ~1 Hz.
    next_beat: Duration,
    /// Objective grid in *reduced* space (`0.0` = no grid). Samples snap
    /// to this grid at emission so the timeline never records simplex
    /// noise like `113.00000000000004` in the first place; the final
    /// conversion re-snaps in caller space to absorb offset noise too.
    snap_delta: f64,
}

impl SearchState {
    /// Record a convergence sample. Bound-only samples respect the
    /// [`MAX_SAMPLES`] cap; incumbent/final samples (`force`) always land.
    fn sample(&mut self, t: Duration, force: bool) {
        if !force && self.timeline.len() >= MAX_SAMPLES {
            return;
        }
        let snap = |v: f64| -> f64 {
            if self.snap_delta > 0.0 && v.is_finite() {
                let g = (v / self.snap_delta).round() * self.snap_delta;
                if (g - v).abs() <= 1e-6 {
                    return g;
                }
            }
            v
        };
        self.timeline.push((
            t.as_micros() as u64,
            snap(self.incumbent_obj),
            snap(self.frontier),
        ));
    }
}

/// Strict lexicographic order on assignments. Integer columns are
/// compared first, as rounded integers, so the order only depends on the
/// discrete solution — never on LP noise in the continuous columns or on
/// `-0.0` artifacts of the simplex, which would otherwise let two runs
/// of the same search rank a pair of tied optima differently. Continuous
/// columns break exact integer ties via `total_cmp` to keep the order
/// total.
fn lex_less(int_cols: &[usize], a: &[f64], b: &[f64]) -> bool {
    for &j in int_cols {
        match (a[j].round() as i64).cmp(&(b[j].round() as i64)) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    for (av, bv) in a.iter().zip(b) {
        match av.total_cmp(bv) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// Offer a feasible point as incumbent: strictly better objectives win;
/// ties within [`TIE_EPS`] are resolved toward the lexicographically
/// smaller assignment (keeping the smaller of the tied objectives).
/// Returns `true` when the incumbent *objective* improved (lex-only tie
/// swaps return `false`) so callers can emit telemetry without changing
/// any search decision.
fn offer_incumbent(int_cols: &[usize], state: &mut SearchState, obj: f64, x: Vec<f64>) -> bool {
    match &mut state.incumbent {
        None => {
            state.incumbent_obj = obj;
            state.incumbent = Some(x);
            true
        }
        Some(cur) => {
            if obj < state.incumbent_obj - TIE_EPS {
                state.incumbent_obj = obj;
                *cur = x;
                true
            } else if obj <= state.incumbent_obj + TIE_EPS && lex_less(int_cols, &x, cur) {
                state.incumbent_obj = state.incumbent_obj.min(obj);
                *cur = x;
                false
            } else {
                false
            }
        }
    }
}

/// Per-column conflict-graph implications and the symmetry-orbit index,
/// used to strengthen child nodes. Built once after the root analysis;
/// workers read it immutably, so node processing stays a pure function
/// of the node and the determinism contract holds.
struct NodeStructure {
    /// Free binary columns of the (strengthened) reduced model.
    binary: Vec<bool>,
    /// Implications applied when a column is branched down (fixed to 0):
    /// `(target, forced value)` pairs.
    down: Vec<Vec<(usize, f64)>>,
    /// Implications applied when a column is branched up (fixed to 1).
    up: Vec<Vec<(usize, f64)>>,
    /// Column → orbit id.
    orbit_of: Vec<Option<u32>>,
    /// Orbit id → member columns.
    orbits: Vec<Vec<usize>>,
}

impl NodeStructure {
    fn build(rmodel: &Model, sa: &StructuralAnalysis) -> Self {
        let n = rmodel.num_vars();
        let is_free = |j: usize| {
            let (lb, ub) = rmodel.bounds(crate::VarId(j as u32));
            ub - lb > 1e-9
        };
        let binary: Vec<bool> = (0..n)
            .map(|j| {
                let (lb, ub) = rmodel.bounds(crate::VarId(j as u32));
                rmodel.var_kind(crate::VarId(j as u32)) == VarKind::Integer
                    && lb == 0.0
                    && ub == 1.0
            })
            .collect();
        let mut down = vec![Vec::new(); n];
        let mut up = vec![Vec::new(); n];
        for imp in &sa.implications {
            // Implications on root-fixed columns are already in the LP
            // bounds; skip them so children don't carry dead weight.
            if !is_free(imp.target) || !is_free(imp.col) {
                continue;
            }
            let side = if imp.value { &mut up } else { &mut down };
            side[imp.col].push((imp.target, imp.target_value));
        }
        // Orbits touching a root-fixed column are dropped: those fixings
        // live in the LP bounds, invisible to the `node.bounds` no-touch
        // check that orbital fixing's soundness argument relies on.
        let mut orbit_of = vec![None; n];
        let mut orbits = Vec::new();
        for o in &sa.orbits {
            if o.members.iter().any(|&m| !is_free(m)) {
                continue;
            }
            let id = orbits.len() as u32;
            for &m in &o.members {
                orbit_of[m] = Some(id);
            }
            orbits.push(o.members.clone());
        }
        NodeStructure {
            binary,
            down,
            up,
            orbit_of,
            orbits,
        }
    }
}

/// Everything a worker needs that is immutable during the search.
struct Ctx<'a> {
    lp: &'a LpProblem,
    rmodel: &'a Model,
    int_cols: &'a [usize],
    /// Conflict-graph/orbit data for child strengthening (`None` when
    /// the structural analysis is disabled).
    ns: Option<&'a NodeStructure>,
    /// When the solve started (timestamps the convergence timeline).
    start: Instant,
    deadline: Option<Instant>,
    node_limit: usize,
    /// Static objective cutoff in reduced space (`+inf` when unset).
    cutoff_red: f64,
    /// `absolute_gap` at or below the tie tolerance enables tie
    /// exploration; above it, classic gap pruning.
    tie_explore: bool,
    gap: f64,
    warm_enabled: bool,
    /// Objective grid for bound lifting (`0.0` = no grid established).
    obj_delta: f64,
    warm_attempts: &'a AtomicUsize,
    warm_hits: &'a AtomicUsize,
    implication_fixings: &'a AtomicUsize,
    orbital_fixings: &'a AtomicUsize,
    /// Saved basis/factors from a prior solve of (an edit of) this model;
    /// attempted at the root before any cold solve.
    resolve_seed: Option<&'a ResolveSeed>,
    /// When present, the root's optimal basis + LU factors are deposited
    /// here for the caller's next re-solve.
    root_capture: Option<&'a Mutex<Option<(WarmBasis, Factors)>>>,
    resolve_attempts: &'a AtomicUsize,
    resolve_hits: &'a AtomicUsize,
    lu_factor_reuses: &'a AtomicUsize,
    lu_refactors: &'a AtomicUsize,
    /// Set when the root LP solved to optimality but no warm basis could
    /// be snapshotted (a phase-1 artificial stuck in the basis) — the one
    /// condition that silently disables warm starts for the whole tree.
    root_unsnapshottable: &'a AtomicBool,
    /// Root relaxation objective (reduced space, post-cuts) as f64 bits;
    /// `u64::MAX` until the root solves. Telemetry only.
    root_bound_bits: &'a AtomicU64,
}

/// Finest grid `δ > 0` such that the *minimal* objective value over any
/// fixed integer assignment is an integer multiple of `δ` (in reduced
/// space), or `0.0` when no such grid can be established.
///
/// Integer columns with objective weight contribute `coeff · Z` directly.
/// A continuous column with objective weight is only admitted when its
/// minimum over the continuous relaxation is provably integral for every
/// integer assignment: its bounds are integral (or infinite), it appears
/// in rows only with coefficient `±1`, and every such row otherwise
/// holds integer-kind columns with integral coefficients and rhs — then
/// its feasible interval has integral endpoints and the minimization
/// drives it to one of them (the paper's register-length variables have
/// exactly this difference-constraint shape). Coefficients are matched
/// against the 1/64 grid, which covers the `α/β/γ` weightings in use.
fn objective_granularity(model: &Model) -> f64 {
    const SCALE: f64 = 64.0;
    let on_grid = |v: f64| -> Option<i64> {
        let s = v * SCALE;
        let r = s.round();
        ((s - r).abs() <= 1e-9 && r.abs() < 1e15).then_some(r as i64)
    };
    let integral = |v: f64| v.is_infinite() || (v - v.round()).abs() <= 1e-9;
    let mut weighted_cont = vec![false; model.num_vars()];
    let mut g: u64 = 0;
    for (j, c) in model.cols.iter().enumerate() {
        if c.obj == 0.0 {
            continue;
        }
        let Some(scaled) = on_grid(c.obj.abs()) else {
            return 0.0;
        };
        if scaled == 0 {
            return 0.0;
        }
        if c.kind == VarKind::Integer {
            g = gcd(g, scaled.unsigned_abs());
        } else {
            if !integral(c.lb) || !integral(c.ub) {
                return 0.0;
            }
            weighted_cont[j] = true;
            g = gcd(g, scaled.unsigned_abs());
        }
    }
    if g == 0 {
        return 0.0;
    }
    for row in &model.rows {
        if !row.coeffs.iter().any(|&(v, _)| weighted_cont[v.index()]) {
            continue;
        }
        if (row.rhs - row.rhs.round()).abs() > 1e-9 {
            return 0.0;
        }
        for &(v, a) in &row.coeffs {
            let j = v.index();
            if weighted_cont[j] {
                if a.abs() != 1.0 {
                    return 0.0;
                }
            } else if model.cols[j].kind != VarKind::Integer || (a - a.round()).abs() > 1e-9 {
                return 0.0;
            }
        }
        // At most one objective-weighted continuous column per row, so
        // each one's feasible interval is framed by integers alone.
        if row
            .coeffs
            .iter()
            .filter(|&&(v, _)| weighted_cont[v.index()])
            .count()
            > 1
        {
            return 0.0;
        }
    }
    g as f64 / SCALE
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Round a valid lower bound on `model`'s optimum up to the next
/// objective-grid point, when the model has one. Sound because every
/// integer-feasible objective lies on the grid (see
/// [`objective_granularity`]), so no attainable value sits strictly
/// between `b` and the lifted bound.
pub(crate) fn lift_to_objective_grid(model: &Model, b: f64) -> f64 {
    lift_bound(b, objective_granularity(model))
}

/// Round an LP bound up to the next objective-grid point. Sound for
/// pruning and bound reporting because the subtree's best attainable
/// objective lies on the grid (see [`objective_granularity`]); the small
/// slack keeps bounds that already sit on the grid (modulo LP noise)
/// where they are.
fn lift_bound(b: f64, delta: f64) -> f64 {
    if delta <= 0.0 || !b.is_finite() {
        return b;
    }
    let lifted = delta * ((b - 1e-6) / delta).ceil();
    if lifted > b {
        lifted
    } else {
        b
    }
}

impl Ctx<'_> {
    /// Nodes with `bound >= threshold` are pruned (at push and at pop;
    /// the threshold only tightens over time, so the two agree).
    fn prune_threshold(&self, incumbent_obj: f64) -> f64 {
        let inc_t = if self.tie_explore {
            incumbent_obj + TIE_EPS
        } else {
            incumbent_obj - self.gap
        };
        inc_t.min(self.cutoff_red - self.gap)
    }
}

/// Result of processing one node outside the lock.
enum Processed {
    /// The deadline expired mid-solve; the node is still unexplored.
    Timeout,
    Error(MilpError),
    /// The node's relaxation is infeasible: subtree closed.
    Infeasible,
    /// The node's relaxation is unbounded (only meaningful at the root).
    Unbounded,
    /// Children to enqueue plus incumbent candidates found here.
    Expanded {
        children: Vec<Node>,
        candidates: Vec<(f64, Vec<f64>)>,
    },
}

/// LP-guided dive: repeatedly fix near-integral variables (or the single
/// most decided fractional one) and re-solve until the relaxation is
/// integral or infeasible. Returns an integral assignment below the
/// static cutoff. Each round only tightens bounds, so the previous
/// round's optimal basis stays dual-feasible and the re-solve is a warm
/// dual-simplex re-optimization (counted in the warm-start stats: on
/// shallow trees the dive is where most warm re-solves happen); a cold
/// solve is the fallback, not the norm (on large models with many root
/// cuts a cold solve per round would eat the whole node budget).
/// Deterministic: depends only on the starting relaxation and the static
/// cutoff, never on the evolving incumbent.
fn dive(
    ctx: &Ctx<'_>,
    lb0: &[f64],
    ub0: &[f64],
    start: &LpSolution,
    warm: Option<&WarmBasis>,
    lp_iters: &mut usize,
) -> Option<(f64, Vec<f64>)> {
    let mut rounds = 0usize;
    let out = dive_rounds(ctx, lb0, ub0, start, warm, lp_iters, &mut rounds);
    if metrics::enabled() {
        metrics::histogram("search.dive_depth").record(rounds as f64);
    }
    out
}

/// [`dive`] body; `rounds` counts fixing rounds across every exit path so
/// the caller can feed the dive-depth histogram.
#[allow(clippy::too_many_arguments)]
fn dive_rounds(
    ctx: &Ctx<'_>,
    lb0: &[f64],
    ub0: &[f64],
    start: &LpSolution,
    warm: Option<&WarmBasis>,
    lp_iters: &mut usize,
    rounds: &mut usize,
) -> Option<(f64, Vec<f64>)> {
    let mut lb = lb0.to_vec();
    let mut ub = ub0.to_vec();
    let mut sol = start.clone();
    let mut basis: Option<WarmBasis> = warm.cloned();
    for _round in 0..30 {
        *rounds += 1;
        if sol.obj >= ctx.cutoff_red - 1e-9 {
            return None; // the dive can't end below the cutoff
        }
        let mut fracs: Vec<(usize, f64)> = ctx
            .int_cols
            .iter()
            .filter_map(|&j| {
                let v = sol.x[j];
                let frac = (v - v.round()).abs();
                (frac > INT_TOL).then_some((j, frac))
            })
            .collect();
        if fracs.is_empty() {
            return Some((sol.obj, sol.x.clone()));
        }
        // Pin everything already integral so each round makes progress,
        // then fix the nearly decided fractionals (or the single most
        // decided one).
        for &j in ctx.int_cols {
            let v = sol.x[j];
            if (v - v.round()).abs() <= INT_TOL {
                lb[j] = v.round();
                ub[j] = v.round();
            }
        }
        let nearly: Vec<usize> = fracs
            .iter()
            .filter(|&&(_, f)| f < 0.1)
            .map(|&(j, _)| j)
            .collect();
        let to_fix: Vec<usize> = if nearly.is_empty() {
            fracs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
            vec![fracs[0].0]
        } else {
            nearly
        };
        for j in to_fix {
            let r = sol.x[j].round();
            lb[j] = r;
            ub[j] = r;
        }
        let warm_solved = match basis.as_ref().filter(|_| ctx.warm_enabled) {
            Some(wb) => {
                ctx.warm_attempts.fetch_add(1, AtomicOrd::Relaxed);
                match ctx.lp.solve_dual_warm(&lb, &ub, wb, ctx.deadline) {
                    Ok(r) => {
                        ctx.warm_hits.fetch_add(1, AtomicOrd::Relaxed);
                        Some(r)
                    }
                    Err(LpAbort::Timeout) => return None,
                    Err(_) => None, // stale or singular: cold fallback below
                }
            }
            None => None,
        };
        let (next, snap) = match warm_solved {
            Some(r) => r,
            None => match ctx.lp.solve_primal(&lb, &ub, ctx.deadline) {
                Ok(r) => r,
                Err(_) => return None,
            },
        };
        *lp_iters += next.iters;
        if next.status != LpStatus::Optimal {
            return None;
        }
        basis = snap;
        sol = next;
    }
    None
}

/// Solve one node: LP (warm then cold), pseudo-cost update, optional
/// dive, branch selection. Touches no shared mutable state except the
/// warm-start counters, so its outcome is a pure function of the node.
fn process_node(ctx: &Ctx<'_>, node: &Node, lp_iters: &mut usize) -> Processed {
    let mut lb = ctx.lp.lb.clone();
    let mut ub = ctx.lp.ub.clone();
    for &(j, l, u) in &node.bounds {
        lb[j] = lb[j].max(l);
        ub[j] = ub[j].min(u);
    }

    // Warm-started dual simplex from the parent basis; any rejection
    // falls back to a cold primal solve.
    let mut solved: Option<(LpSolution, Option<WarmBasis>)> = None;
    if node.depth == 0 {
        // Root of a re-solve: try the saved basis (and, when intact, its
        // persistent LU factors) from the prior solve before paying for a
        // cold two-phase primal. A capturing solve uses the capture
        // variant of the cold solve so the next re-solve gets a seed.
        let mut root_snap: Option<(WarmBasis, Factors)> = None;
        if let Some(rs) = ctx.resolve_seed {
            ctx.resolve_attempts.fetch_add(1, AtomicOrd::Relaxed);
            let mode = if rs.primal {
                WarmMode::Primal
            } else {
                WarmMode::Dual
            };
            match ctx.lp.solve_warm_persistent(
                &lb,
                &ub,
                &rs.basis,
                rs.factors.as_ref(),
                mode,
                ctx.deadline,
            ) {
                Ok((sol, snap, reused)) => {
                    ctx.resolve_hits.fetch_add(1, AtomicOrd::Relaxed);
                    if reused {
                        ctx.lu_factor_reuses.fetch_add(1, AtomicOrd::Relaxed);
                    } else {
                        ctx.lu_refactors.fetch_add(1, AtomicOrd::Relaxed);
                    }
                    obs::instant("resolve-reuse-hit");
                    let wb = snap.as_ref().map(|p| p.0.clone());
                    root_snap = snap;
                    solved = Some((sol, wb));
                }
                Err(LpAbort::Timeout) => return Processed::Timeout,
                Err(_) => {
                    // Stale, singular, or infeasible-for-mode: cold below.
                    obs::instant("resolve-reuse-miss");
                }
            }
        }
        if solved.is_none() && ctx.root_capture.is_some() {
            match ctx.lp.solve_primal_capture(&lb, &ub, ctx.deadline) {
                Ok((sol, snap)) => {
                    ctx.lu_refactors.fetch_add(1, AtomicOrd::Relaxed);
                    let wb = snap.as_ref().map(|p| p.0.clone());
                    root_snap = snap;
                    solved = Some((sol, wb));
                }
                Err(LpAbort::Timeout) => return Processed::Timeout,
                Err(LpAbort::Numerical(msg)) => return Processed::Error(MilpError::Numerical(msg)),
                Err(LpAbort::Singular) => {
                    return Processed::Error(MilpError::Numerical(
                        "unrepairable singular basis".into(),
                    ))
                }
            }
        }
        if let Some(slot) = ctx.root_capture {
            *slot.lock().expect("capture mutex") = root_snap;
        }
    }
    if solved.is_none() && ctx.warm_enabled {
        if let Some(wb) = &node.warm {
            ctx.warm_attempts.fetch_add(1, AtomicOrd::Relaxed);
            match ctx.lp.solve_dual_warm(&lb, &ub, wb, ctx.deadline) {
                Ok(r) => {
                    ctx.warm_hits.fetch_add(1, AtomicOrd::Relaxed);
                    obs::instant("warm-hit");
                    solved = Some(r);
                }
                Err(LpAbort::Timeout) => return Processed::Timeout,
                Err(_) => {
                    // Singular or numerical: cold fallback.
                    obs::instant("warm-miss");
                }
            }
        }
    }
    let (sol, snap) = match solved {
        Some(r) => r,
        None => match ctx.lp.solve_primal(&lb, &ub, ctx.deadline) {
            Ok(r) => r,
            Err(LpAbort::Timeout) => return Processed::Timeout,
            Err(LpAbort::Numerical(msg)) => return Processed::Error(MilpError::Numerical(msg)),
            Err(LpAbort::Singular) => {
                return Processed::Error(MilpError::Numerical("unrepairable singular basis".into()))
            }
        },
    };
    *lp_iters += sol.iters;
    match sol.status {
        LpStatus::Infeasible => return Processed::Infeasible,
        LpStatus::Unbounded => return Processed::Unbounded,
        LpStatus::Optimal => {}
    }
    if node.depth == 0 {
        ctx.root_bound_bits
            .store(sol.obj.to_bits(), AtomicOrd::Relaxed);
        // A missing root snapshot is the one condition that silently
        // zeroes warm starts for the whole tree; record it so the stats
        // can name the cause instead of reporting a bare zero.
        if ctx.warm_enabled && snap.is_none() {
            ctx.root_unsnapshottable.store(true, AtomicOrd::Relaxed);
        }
    }

    // Fold this node's observed degradation into its pseudo-cost table.
    let pcosts = match node.branched {
        Some((ord, dist, up)) => {
            let degradation = ((sol.obj - node.bound) / dist.max(INT_TOL)).max(0.0);
            Arc::new(node.pcosts.observe(ord, up, degradation))
        }
        None => node.pcosts.clone(),
    };

    let mut candidates = Vec::new();
    let fracs: Vec<(usize, usize, f64, f64)> = ctx
        .int_cols
        .iter()
        .enumerate()
        .filter_map(|(ord, &j)| {
            let v = sol.x[j];
            let f = v - v.floor();
            let frac = (v - v.round()).abs();
            (frac > INT_TOL).then_some((ord, j, v, f))
        })
        .collect();
    if fracs.is_empty() {
        // Integral relaxation: incumbent candidate (if it beats the static
        // cutoff), subtree closed.
        if sol.obj < ctx.cutoff_red - ctx.gap {
            let mut x = sol.x.clone();
            for &j in ctx.int_cols {
                x[j] = x[j].round();
            }
            candidates.push((sol.obj, x));
        }
        return Processed::Expanded {
            children: Vec::new(),
            candidates,
        };
    }

    // Deterministic periodic dive (always at the root).
    if node.depth == 0 || node.id.is_multiple_of(DIVE_PERIOD) {
        let _dive_span = if obs::enabled() {
            Some(obs::span("dive"))
        } else {
            None
        };
        if let Some((obj, mut x)) = dive(ctx, &lb, &ub, &sol, snap.as_ref(), lp_iters) {
            if ctx.rmodel.check_feasible(&x, 1e-5).is_none() {
                for &jc in ctx.int_cols {
                    x[jc] = x[jc].round();
                }
                candidates.push((obj, x));
            }
        }
    }

    // Branch selection: pseudo-cost product rule with the path average as
    // the estimate for unobserved columns; ties broken by fractionality
    // then column index (all node-local, hence deterministic).
    let fb_down = PseudoCosts::fallback(&pcosts.down);
    let fb_up = PseudoCosts::fallback(&pcosts.up);
    let mut best: Option<(f64, f64, usize, usize, f64)> = None; // (score, merit, ord, j, v)
    for &(ord, j, v, f) in &fracs {
        let d = PseudoCosts::estimate(&pcosts.down, ord, fb_down) * f;
        let u = PseudoCosts::estimate(&pcosts.up, ord, fb_up) * (1.0 - f);
        let score = d.max(1e-8) * u.max(1e-8);
        let merit = 0.5 - (f - 0.5).abs();
        let better = match best {
            None => true,
            Some((bs, bm, _, bj, _)) => {
                score > bs + 1e-12
                    || (score > bs - 1e-12
                        && (merit > bm + 1e-12 || (merit > bm - 1e-12 && j < bj)))
            }
        };
        if better {
            best = Some((score, merit, ord, j, v));
        }
    }
    let (_, _, ord, j, v) = best.expect("fractional set is nonempty");
    let f = v - v.floor();
    let warm_arc = if ctx.warm_enabled {
        snap.map(Arc::new)
    } else {
        None
    };
    let mut down_bounds = node.bounds.clone();
    let mut up_bounds = node.bounds.clone();
    // Conflict-graph and orbital strengthening for binary branches. Both
    // are pure functions of the node's own contents, so the determinism
    // contract survives: every thread count builds identical children.
    if let Some(ns) = ctx.ns {
        if ns.binary[j] && v > 0.0 && v < 1.0 {
            // Orbital fixing: when no orbit member carries a path bound
            // yet, the down child may fix the whole orbit to 0 — any
            // solution with another member at 1 has a symmetric image
            // (swap the members) in the up child, so nothing is lost.
            if let Some(oid) = ns.orbit_of[j] {
                let untouched = node
                    .bounds
                    .iter()
                    .all(|&(c, _, _)| ns.orbit_of[c] != Some(oid));
                if untouched {
                    let mut fixed = 0usize;
                    for &m in &ns.orbits[oid as usize] {
                        if m != j {
                            down_bounds.push((m, f64::NEG_INFINITY, 0.0));
                            fixed += 1;
                        }
                    }
                    ctx.orbital_fixings.fetch_add(fixed, AtomicOrd::Relaxed);
                }
            }
            // Probing implications: branching down means x_j = 0, so the
            // `x_j = 0 ⇒ …` consequents hold in the whole subtree (and
            // symmetrically for the up child).
            let propagated = ns.down[j].len() + ns.up[j].len();
            for &(t, tv) in &ns.down[j] {
                down_bounds.push((t, tv, tv));
            }
            for &(t, tv) in &ns.up[j] {
                up_bounds.push((t, tv, tv));
            }
            if propagated > 0 {
                ctx.implication_fixings
                    .fetch_add(propagated, AtomicOrd::Relaxed);
            }
        }
    }
    down_bounds.push((j, f64::NEG_INFINITY, v.floor()));
    up_bounds.push((j, v.ceil(), f64::INFINITY));
    let child_bound = lift_bound(sol.obj, ctx.obj_delta);
    let children = vec![
        Node {
            id: child_id(node.id, false),
            bounds: down_bounds,
            bound: child_bound,
            depth: node.depth + 1,
            warm: warm_arc.clone(),
            pcosts: pcosts.clone(),
            branched: Some((ord, f.max(INT_TOL), false)),
        },
        Node {
            id: child_id(node.id, true),
            bounds: up_bounds,
            bound: child_bound,
            depth: node.depth + 1,
            warm: warm_arc,
            pcosts,
            branched: Some((ord, (1.0 - f).max(INT_TOL), true)),
        },
    ];
    Processed::Expanded {
        children,
        candidates,
    }
}

/// One worker: pop best node, process outside the lock, merge results.
fn worker(ctx: &Ctx<'_>, shared: &Mutex<SearchState>, cv: &Condvar, wid: usize) {
    // Flushed when the worker closure ends (inside the scope), so the
    // trace capture after `thread::scope` never misses tail events.
    let _lane = obs::lane_guard(format!("bb-worker-{wid}"));
    // Hoisted registry lookup: one mutex hit per worker, not per node.
    let depth_hist = metrics::enabled().then(|| metrics::histogram("search.node_depth"));
    let mut g = shared.lock().expect("search mutex");
    loop {
        if g.error.is_some() || g.stop.is_some() {
            break;
        }
        if ctx.deadline.is_some_and(|d| Instant::now() >= d) {
            g.stop = Some(StopReason::TimedOut);
            break;
        }

        // Heartbeat: sample the (possibly unchanged) incumbent/bound pair
        // once per period even when neither moves, capped by MAX_SAMPLES.
        let elapsed = ctx.start.elapsed();
        if elapsed >= g.next_beat {
            g.sample(elapsed, false);
            g.next_beat = elapsed + HEARTBEAT;
        }

        // Pop the best unpruned node. The heap is min-by-bound, so a
        // prunable top means the whole heap is prunable.
        let mut popped = None;
        let threshold = ctx.prune_threshold(g.incumbent_obj);
        if let Some(top) = g.heap.peek() {
            if top.0.bound >= threshold {
                g.heap.clear();
            } else if g.nodes >= ctx.node_limit {
                g.stop = Some(StopReason::NodeLimit);
            } else {
                let Ranked(n) = g.heap.pop().expect("peeked node pops");
                g.nodes += 1;
                g.per_worker_nodes[wid] += 1;
                // Proven lower bound: the popped node has the smallest
                // bound left in the heap, but earlier-popped nodes may
                // still be in flight with smaller bounds.
                let proven = g.in_flight.iter().flatten().fold(n.bound, |a, &b| a.min(b));
                if proven.is_finite() && proven > g.frontier + 1e-9 {
                    g.frontier = proven;
                    g.sample(ctx.start.elapsed(), false);
                    if obs::enabled() {
                        obs::instant_with(
                            "bound-improved",
                            vec![
                                ("bound", proven.into()),
                                ("incumbent", g.incumbent_obj.into()),
                                ("node", n.id.into()),
                                ("nodes", g.nodes.into()),
                            ],
                        );
                    }
                }
                popped = Some(n);
            }
        }
        if g.stop.is_some() {
            break;
        }
        let Some(node) = popped else {
            if g.in_flight.iter().all(Option::is_none) {
                g.stop = Some(StopReason::Exhausted);
                break;
            }
            // Another worker may still push children; re-check shortly
            // (the timeout doubles as the deadline poll while idle).
            g = cv
                .wait_timeout(g, Duration::from_millis(50))
                .expect("search mutex")
                .0;
            continue;
        };

        g.in_flight[wid] = Some(node.bound);
        drop(g);

        if let Some(h) = depth_hist {
            h.record(node.depth as f64);
        }
        let node_span = if obs::enabled() {
            Some(obs::span_with(
                "node",
                vec![
                    ("id", node.id.into()),
                    ("depth", node.depth.into()),
                    ("bound", node.bound.into()),
                ],
            ))
        } else {
            None
        };
        let mut iters = 0usize;
        let outcome = process_node(ctx, &node, &mut iters);
        // Close before re-locking so lane time excludes lock contention.
        drop(node_span);

        g = shared.lock().expect("search mutex");
        g.in_flight[wid] = None;
        g.lp_iters += iters;
        match outcome {
            Processed::Timeout => {
                // Keep the node's bound visible to the best-bound report.
                g.heap.push(Ranked(node));
                g.stop = Some(StopReason::TimedOut);
            }
            Processed::Error(e) => {
                g.error = Some(e);
            }
            Processed::Infeasible => {
                if node.depth == 0 {
                    g.root_status = Some(LpStatus::Infeasible);
                }
            }
            Processed::Unbounded => {
                if node.depth == 0 {
                    g.root_status = Some(LpStatus::Unbounded);
                    g.stop = Some(StopReason::RootUnbounded);
                }
                // Defensive: a bounded root cannot spawn unbounded
                // children; ignore if it somehow happens.
            }
            Processed::Expanded {
                children,
                candidates,
            } => {
                if node.depth == 0 {
                    g.root_status = Some(LpStatus::Optimal);
                }
                for (obj, x) in candidates {
                    if offer_incumbent(ctx.int_cols, &mut g, obj, x) {
                        g.sample(ctx.start.elapsed(), true);
                        if obs::enabled() {
                            obs::instant_with(
                                "incumbent-found",
                                vec![
                                    ("objective", g.incumbent_obj.into()),
                                    ("bound", g.frontier.into()),
                                    ("gap", (g.incumbent_obj - g.frontier).into()),
                                    ("node", node.id.into()),
                                    ("nodes", g.nodes.into()),
                                ],
                            );
                        }
                    }
                }
                let threshold = ctx.prune_threshold(g.incumbent_obj);
                for ch in children {
                    if ch.bound < threshold {
                        g.heap.push(Ranked(ch));
                    }
                }
            }
        }
        cv.notify_all();
    }
    cv.notify_all();
}

pub(crate) fn solve_milp(model: &Model, opts: &SolverOptions) -> Result<MilpResult, MilpError> {
    solve_milp_resolve(model, opts, None, false).map(|(r, _)| r)
}

/// Branch & bound with optional re-solve support: `seed` warm-starts the
/// root (and, for a pure continuation, replaces the root with the prior
/// frontier); `want_capture` asks for the root basis/factors and — on an
/// early stop — the open-leaf frontier to be handed back for the next
/// re-solve. Both are honoured only when the reduction is the identity
/// and no structural analysis runs, so column/row indices map 1:1
/// between solves; otherwise the seed is ignored and no capture is made,
/// which degrades to a plain cold solve (never to a wrong answer).
pub(crate) fn solve_milp_resolve(
    model: &Model,
    opts: &SolverOptions,
    seed_ctx: Option<&ResolveSeed>,
    want_capture: bool,
) -> Result<(MilpResult, Option<ResolveCapture>), MilpError> {
    let start = Instant::now();
    let deadline = start.checked_add(opts.time_limit);
    let jobs = opts.jobs.max(1);
    let mut stats = SolverStats {
        jobs,
        ..SolverStats::default()
    };

    // Validate the caller's seed against the *original* model.
    let orig_int: Vec<usize> = (0..model.num_vars())
        .filter(|&j| model.var_kind(crate::VarId(j as u32)) == VarKind::Integer)
        .collect();
    let seed: Option<Vec<f64>> = opts.initial_solution.as_ref().and_then(|init| {
        (init.len() == model.num_vars()
            && model.check_feasible(init, 1e-6).is_none()
            && orig_int
                .iter()
                .all(|&j| (init[j] - init[j].round()).abs() <= INT_TOL))
        .then(|| init.clone())
    });

    // Reported objectives and bounds snap to the objective grid when
    // within LP tolerance of a grid point: every integer assignment's
    // true objective lies on the *original* model's grid, so a reported
    // `39.99999999999999` is presolve-offset/simplex noise on an exact
    // 40, never information.
    let report_delta = objective_granularity(model);
    let snap = move |v: f64| -> f64 {
        if report_delta > 0.0 && v.is_finite() {
            let g = (v / report_delta).round() * report_delta;
            if (g - v).abs() <= 1e-6 {
                return g;
            }
        }
        v
    };

    let finish = move |status: Status,
                       objective: f64,
                       best_bound: f64,
                       values: Vec<f64>,
                       nodes: usize,
                       lp_iterations: usize,
                       stats: SolverStats| {
        MilpResult {
            status,
            objective: snap(objective),
            best_bound: snap(best_bound),
            values,
            nodes,
            lp_iterations,
            solve_time: start.elapsed(),
            stats,
        }
    };

    // Presolve (or the identity reduction when disabled).
    let presolve_span = obs::span("presolve");
    let red = if opts.presolve {
        match presolve::presolve(model) {
            PresolveOutcome::Infeasible => {
                // Presolve preserves the MIP-feasible set; a verified
                // feasible seed would contradict this proof, so defer to
                // the explicit check and return the seed if present.
                let r = match seed {
                    Some(s) => {
                        let obj = model.objective_value(&s);
                        finish(Status::Feasible, obj, f64::NEG_INFINITY, s, 0, 0, stats)
                    }
                    None => finish(
                        Status::Infeasible,
                        f64::INFINITY,
                        f64::INFINITY,
                        Vec::new(),
                        0,
                        0,
                        stats,
                    ),
                };
                return Ok((r, None));
            }
            PresolveOutcome::Reduced(r) => *r,
        }
    } else {
        presolve::identity(model)
    };
    red.fill_stats(&mut stats);
    drop(presolve_span);
    if obs::enabled() {
        obs::instant_with(
            "presolve-reduction",
            vec![
                ("rows_removed", stats.presolve_rows_removed.into()),
                ("cols_fixed", stats.presolve_cols_fixed.into()),
                ("bounds_tightened", stats.presolve_bounds_tightened.into()),
                ("coeffs_reduced", stats.presolve_coeffs_reduced.into()),
            ],
        );
    }
    let offset = red.obj_offset;

    // Structural analysis (probing / conflict graph / symmetry) and the
    // root cutting-plane loop, both on the reduced model. Everything here
    // runs before the workers spawn, so it is identical for every `jobs`
    // value and the determinism contract is untouched.
    let run_analysis = opts.probing || opts.cuts || opts.symmetry || opts.gomory_cuts;
    let mut root_lp_iters = 0usize;
    let (rmodel_owned, sa) = if run_analysis {
        let analysis_span = obs::span("structural-analysis");
        let sa = analysis::analyze(
            &red.model,
            &analysis::AnalysisConfig {
                probing: opts.probing,
                cliques: opts.cuts,
                symmetry: opts.symmetry,
                ..analysis::AnalysisConfig::default()
            },
        );
        drop(analysis_span);
        stats.probe_vars = sa.probed;
        stats.probe_fixings = sa.fixings.len();
        stats.probe_implications = sa.implications.len();
        stats.clique_table = sa.cliques.len();
        stats.symmetry_orbits = sa.orbits.len();
        if sa.infeasible.is_some() {
            // Probing preserves the MIP-feasible set; same seed logic as
            // the presolve infeasibility path above.
            let r = match seed {
                Some(s) => {
                    let obj = model.objective_value(&s);
                    finish(Status::Feasible, obj, f64::NEG_INFINITY, s, 0, 0, stats)
                }
                None => finish(
                    Status::Infeasible,
                    f64::INFINITY,
                    f64::INFINITY,
                    Vec::new(),
                    0,
                    0,
                    stats,
                ),
            };
            return Ok((r, None));
        }
        let cut_cfg = analysis::CutLoopConfig {
            max_rounds: if opts.cuts {
                analysis::CutLoopConfig::default().max_rounds
            } else if opts.gomory_cuts {
                // Gomory-only mode still needs a round to separate and a
                // second to validate the pending cuts.
                2
            } else {
                0
            },
            gomory: opts.gomory_cuts,
            ..analysis::CutLoopConfig::default()
        };
        // The cut loop re-solves the root LP every round; on big models
        // that can eat the whole budget before a single node is explored
        // (and leave no bound at all). Cap it at a fraction of the time
        // limit so the tree always gets the lion's share.
        let cut_deadline = match (deadline, start.checked_add(opts.time_limit / 8)) {
            (Some(d), Some(s)) => Some(d.min(s)),
            (d, s) => s.or(d),
        };
        let out = analysis::root_cut_loop(&red.model, &sa, &cut_cfg, cut_deadline);
        stats.clique_cuts = out.stats.clique_cuts;
        stats.cover_cuts = out.stats.cover_cuts;
        stats.implication_cuts = out.stats.implication_cuts;
        stats.gomory_cuts = out.stats.gomory_cuts;
        stats.cut_rounds = out.stats.rounds;
        stats.cuts_aged_out = out.stats.aged_out;
        root_lp_iters = out.stats.lp_iterations;
        if obs::enabled() {
            obs::instant_with(
                "analysis-stats",
                vec![
                    ("probed", sa.probed.into()),
                    ("fixings", sa.fixings.len().into()),
                    ("implications", sa.implications.len().into()),
                    ("cliques", sa.cliques.len().into()),
                    ("orbits", sa.orbits.len().into()),
                    ("clique_cuts", out.stats.clique_cuts.into()),
                    ("cover_cuts", out.stats.cover_cuts.into()),
                    ("implication_cuts", out.stats.implication_cuts.into()),
                    ("gomory_cuts", out.stats.gomory_cuts.into()),
                    ("cut_rounds", out.stats.rounds.into()),
                ],
            );
        }
        (out.model, Some(sa))
    } else {
        (red.model.clone(), None)
    };
    let rmodel = &rmodel_owned;
    let ns = sa.as_ref().map(|sa| NodeStructure::build(rmodel, sa));

    let lp = LpProblem::from_model(rmodel);
    let int_cols: Vec<usize> = (0..rmodel.num_vars())
        .filter(|&j| rmodel.var_kind(crate::VarId(j as u32)) == VarKind::Integer)
        .collect();

    // Seed and capture are index-mapped against the *caller's* model, so
    // both require the solve to run in that exact column/row space: the
    // identity reduction, and an analysis that appended no cut rows
    // (probing only tightens bounds, which basis reuse tolerates — the
    // warm path re-validates feasibility and falls back cold).
    let resolve_ok = red.is_identity()
        && rmodel.num_rows() == model.num_rows()
        && rmodel.num_vars() == model.num_vars();
    let rseed = seed_ctx.filter(|_| resolve_ok);
    let capture_on = want_capture && resolve_ok;
    let root_slot: Mutex<Option<(WarmBasis, Factors)>> = Mutex::new(None);

    let ctx = Ctx {
        lp: &lp,
        rmodel,
        int_cols: &int_cols,
        ns: ns.as_ref(),
        start,
        deadline,
        node_limit: opts.node_limit,
        cutoff_red: opts.cutoff.map_or(f64::INFINITY, |c| c - offset),
        tie_explore: opts.absolute_gap <= 1e-6,
        gap: opts.absolute_gap,
        warm_enabled: opts.warm_start,
        obj_delta: objective_granularity(rmodel),
        warm_attempts: &AtomicUsize::new(0),
        warm_hits: &AtomicUsize::new(0),
        implication_fixings: &AtomicUsize::new(0),
        orbital_fixings: &AtomicUsize::new(0),
        resolve_seed: rseed,
        root_capture: capture_on.then_some(&root_slot),
        resolve_attempts: &AtomicUsize::new(0),
        resolve_hits: &AtomicUsize::new(0),
        lu_factor_reuses: &AtomicUsize::new(0),
        lu_refactors: &AtomicUsize::new(0),
        root_unsnapshottable: &AtomicBool::new(false),
        root_bound_bits: &AtomicU64::new(u64::MAX),
    };

    let mut state = SearchState {
        heap: BinaryHeap::new(),
        in_flight: vec![None; jobs],
        incumbent: None,
        incumbent_obj: f64::INFINITY,
        nodes: 0,
        lp_iters: root_lp_iters,
        stop: None,
        root_status: None,
        error: None,
        per_worker_nodes: vec![0; jobs],
        frontier: f64::NEG_INFINITY,
        timeline: Vec::new(),
        next_beat: HEARTBEAT,
        snap_delta: ctx.obj_delta,
    };
    if let Some(s) = &seed {
        if let Some(sr) = red.project(s) {
            let obj = rmodel.objective_value(&sr);
            if offer_incumbent(&int_cols, &mut state, obj, sr) {
                state.sample(start.elapsed(), true);
            }
        }
    }
    // A pure continuation resumes from the prior search's open leaves
    // instead of re-expanding the root; otherwise start at the root.
    let frontier_reused = match rseed.and_then(|rs| rs.frontier.as_ref()) {
        Some(fr) if !fr.nodes.is_empty() => {
            for n in &fr.nodes {
                state.heap.push(Ranked(n.clone()));
            }
            fr.nodes.len()
        }
        _ => {
            state.heap.push(Ranked(Node {
                id: 1,
                bounds: Vec::new(),
                bound: f64::NEG_INFINITY,
                depth: 0,
                warm: None,
                pcosts: Arc::new(PseudoCosts::new(int_cols.len())),
                branched: None,
            }));
            0
        }
    };
    stats.frontier_nodes_reused = frontier_reused;

    let shared = Mutex::new(state);
    let cv = Condvar::new();
    std::thread::scope(|scope| {
        for wid in 0..jobs {
            let ctx = &ctx;
            let shared = &shared;
            let cv = &cv;
            scope.spawn(move || worker(ctx, shared, cv, wid));
        }
    });

    let mut g = shared.into_inner().expect("search mutex");
    if let Some(e) = g.error {
        return Err(e);
    }
    stats.warm_attempts = ctx.warm_attempts.load(AtomicOrd::Relaxed);
    stats.warm_hits = ctx.warm_hits.load(AtomicOrd::Relaxed);
    stats.implication_fixings = ctx.implication_fixings.load(AtomicOrd::Relaxed);
    stats.orbital_fixings = ctx.orbital_fixings.load(AtomicOrd::Relaxed);
    stats.resolve_warm_attempts = ctx.resolve_attempts.load(AtomicOrd::Relaxed);
    stats.resolve_warm_hits = ctx.resolve_hits.load(AtomicOrd::Relaxed);
    stats.lu_factor_reuses = ctx.lu_factor_reuses.load(AtomicOrd::Relaxed);
    stats.lu_refactors = ctx.lu_refactors.load(AtomicOrd::Relaxed);
    stats.nodes_per_worker = std::mem::take(&mut g.per_worker_nodes);
    // A zero warm-attempt count is either expected (disabled, or the tree
    // had nothing to warm-start) or a silent loss (root basis declined to
    // snapshot); name the cause so reports never show a bare zero.
    if stats.warm_attempts == 0 {
        stats.warm_skip_reason = Some(if !opts.warm_start {
            "disabled by options"
        } else if ctx.root_unsnapshottable.load(AtomicOrd::Relaxed) {
            "root LP basis not snapshottable (artificial still basic)"
        } else {
            "no warm-startable LP re-solves (solved at or near the root)"
        });
    }
    let root_bound_bits = ctx.root_bound_bits.load(AtomicOrd::Relaxed);
    if obs::enabled() {
        let root_bound = if root_bound_bits == u64::MAX {
            f64::NAN
        } else {
            f64::from_bits(root_bound_bits) + offset
        };
        obs::instant_with(
            "search-stats",
            vec![
                ("warm_attempts", stats.warm_attempts.into()),
                ("warm_hits", stats.warm_hits.into()),
                ("warm_skip", stats.warm_skip_reason.unwrap_or("none").into()),
                ("root_bound", root_bound.into()),
                ("nodes", g.nodes.into()),
            ],
        );
    }

    let stop = g.stop.unwrap_or(StopReason::Exhausted);

    // Best bound: remaining work (heap) on early stops; the incumbent
    // itself once the tree is exhausted.
    let best_bound_red = g
        .heap
        .iter()
        .map(|r| r.0.bound)
        .fold(g.incumbent_obj, f64::min);

    // Close the convergence timeline with the definitive proven bound,
    // then publish it in caller (pre-presolve) objective space.
    if stop != StopReason::RootUnbounded && (g.incumbent.is_some() || best_bound_red.is_finite()) {
        g.frontier = best_bound_red;
        g.sample(start.elapsed(), true);
    }
    stats.convergence = g
        .timeline
        .iter()
        .map(|&(t_us, obj, bound)| GapSample {
            t_ms: t_us as f64 / 1e3,
            objective: if obj.is_finite() {
                snap(obj + offset)
            } else {
                obj
            },
            bound: if bound.is_finite() {
                snap(bound + offset)
            } else {
                bound
            },
        })
        .collect();

    if stop == StopReason::RootUnbounded {
        return Ok((
            finish(
                Status::Unbounded,
                f64::NEG_INFINITY,
                f64::NEG_INFINITY,
                Vec::new(),
                g.nodes,
                g.lp_iters,
                stats,
            ),
            None,
        ));
    }

    // Capture payload for the caller's next re-solve: the root basis and
    // LU factors, plus — when the search stopped early with a complete,
    // bounded frontier — the open leaves. `Exhausted` leaves no frontier
    // (the heap holds only pruned remnants); an oversized heap is dropped
    // whole because truncation would un-explore subtrees.
    let capture = capture_on.then(|| {
        let root = root_slot.lock().expect("capture mutex").take();
        let frontier = (matches!(stop, StopReason::TimedOut | StopReason::NodeLimit)
            && !g.heap.is_empty()
            && g.heap.len() <= FRONTIER_CAP)
            .then(|| Frontier {
                nodes: std::mem::take(&mut g.heap)
                    .into_iter()
                    .map(|r| r.0)
                    .collect(),
            });
        ResolveCapture { root, frontier }
    });

    let status = match (&g.incumbent, stop) {
        (Some(_), StopReason::Exhausted) => Status::Optimal,
        (Some(_), StopReason::TimedOut) => Status::TimedOut,
        (Some(_), StopReason::NodeLimit) => Status::Feasible,
        (None, StopReason::Exhausted) => {
            if g.root_status == Some(LpStatus::Unbounded) {
                Status::Unbounded
            } else {
                Status::Infeasible
            }
        }
        (None, _) => Status::Unknown,
        (_, StopReason::RootUnbounded) => unreachable!("handled above"),
    };
    let objective = if g.incumbent.is_some() {
        g.incumbent_obj + offset
    } else {
        f64::INFINITY
    };
    let best_bound = if best_bound_red.is_finite() {
        best_bound_red + offset
    } else {
        best_bound_red
    };
    let values = g.incumbent.map(|x| red.restore(&x)).unwrap_or_default();
    Ok((
        finish(
            status, objective, best_bound, values, g.nodes, g.lp_iters, stats,
        ),
        capture,
    ))
}
