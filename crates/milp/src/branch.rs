//! Branch & bound over the LP relaxation.
//!
//! Best-bound search with most-fractional branching, an LP-guided
//! **diving heuristic** for early incumbents, an optional caller-supplied
//! incumbent (the scheduler seeds it with the baseline heuristic's
//! solution), and wall-clock/node limits that return the best incumbent
//! found — mirroring how the paper caps CPLEX at 60 minutes and takes the
//! best feasible solution (§4).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::model::{Model, VarKind};
use crate::simplex::{LpAbort, LpProblem, LpStatus};
use crate::{MilpError, MilpResult, SolverOptions, Status};

const INT_TOL: f64 = 1e-6;
/// Dive from the current node's relaxation every this many processed nodes.
const DIVE_PERIOD: usize = 200;

/// A subproblem: bound overrides relative to the root LP.
#[derive(Debug, Clone)]
struct Node {
    /// `(column, new_lb, new_ub)` overrides accumulated along the path.
    bounds: Vec<(usize, f64, f64)>,
    /// LP bound inherited from the parent (root: -inf).
    bound: f64,
    depth: usize,
}

/// Heap ordering: smallest bound first (best-first), deeper first on ties
/// so the search dives toward incumbents.
#[derive(Debug)]
struct Ranked(Node);

impl PartialEq for Ranked {
    fn eq(&self, other: &Self) -> bool {
        self.0.bound == other.0.bound && self.0.depth == other.0.depth
    }
}
impl Eq for Ranked {}
impl PartialOrd for Ranked {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ranked {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap: invert the bound comparison.
        other
            .0
            .bound
            .partial_cmp(&self.0.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
    }
}

/// LP-guided dive: repeatedly fix near-integral variables (or the single
/// most decided fractional one) and re-solve until the relaxation is
/// integral or infeasible. Returns an improving integral assignment.
#[allow(clippy::too_many_arguments)]
fn dive(
    lp: &LpProblem,
    int_cols: &[usize],
    lb0: &[f64],
    ub0: &[f64],
    start: &crate::simplex::LpSolution,
    deadline: Option<Instant>,
    cutoff: f64,
    lp_iters: &mut usize,
) -> Option<(f64, Vec<f64>)> {
    let mut lb = lb0.to_vec();
    let mut ub = ub0.to_vec();
    let mut sol = start.clone();
    for _round in 0..30 {
        if sol.obj >= cutoff - 1e-9 {
            return None; // the dive can't end below the cutoff
        }
        let mut fracs: Vec<(usize, f64)> = int_cols
            .iter()
            .filter_map(|&j| {
                let v = sol.x[j];
                let frac = (v - v.round()).abs();
                (frac > INT_TOL).then_some((j, frac))
            })
            .collect();
        if fracs.is_empty() {
            return Some((sol.obj, sol.x.clone()));
        }
        // Pin everything already integral so each round makes progress,
        // then fix the nearly decided fractionals (or the single most
        // decided one).
        for &j in int_cols {
            let v = sol.x[j];
            if (v - v.round()).abs() <= INT_TOL {
                lb[j] = v.round();
                ub[j] = v.round();
            }
        }
        let nearly: Vec<usize> = fracs
            .iter()
            .filter(|&&(_, f)| f < 0.1)
            .map(|&(j, _)| j)
            .collect();
        let to_fix: Vec<usize> = if nearly.is_empty() {
            fracs.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(Ordering::Equal));
            vec![fracs[0].0]
        } else {
            nearly
        };
        for j in to_fix {
            let r = sol.x[j].round();
            lb[j] = r;
            ub[j] = r;
        }
        match lp.solve_with_bounds(&lb, &ub, deadline) {
            Ok(next) => {
                *lp_iters += next.iters;
                if next.status != LpStatus::Optimal {
                    return None;
                }
                sol = next;
            }
            Err(_) => return None,
        }
    }
    None
}

pub(crate) fn solve_milp(model: &Model, opts: &SolverOptions) -> Result<MilpResult, MilpError> {
    let start = Instant::now();
    let deadline = start.checked_add(opts.time_limit);
    let lp = LpProblem::from_model(model);
    let int_cols: Vec<usize> = (0..model.num_vars())
        .filter(|&j| model.var_kind(crate::VarId(j as u32)) == VarKind::Integer)
        .collect();

    let mut incumbent: Option<Vec<f64>> = None;
    let mut incumbent_obj = f64::INFINITY;
    if let Some(init) = &opts.initial_solution {
        if init.len() == model.num_vars() && model.check_feasible(init, 1e-6).is_none() {
            let ok_int = int_cols
                .iter()
                .all(|&j| (init[j] - init[j].round()).abs() <= INT_TOL);
            if ok_int {
                incumbent_obj = model.objective_value(init);
                incumbent = Some(init.clone());
            }
        }
    }
    let cutoff_extra = opts.cutoff.unwrap_or(f64::INFINITY);

    let mut heap = BinaryHeap::new();
    heap.push(Ranked(Node {
        bounds: Vec::new(),
        bound: f64::NEG_INFINITY,
        depth: 0,
    }));

    let mut nodes = 0usize;
    let mut lp_iters = 0usize;
    let mut best_bound = f64::NEG_INFINITY;
    let mut hit_limit = false;
    let mut root_status: Option<LpStatus> = None;
    let mut since_dive = 0usize;

    'search: while let Some(Ranked(node)) = heap.pop() {
        best_bound = node.bound.max(best_bound.min(node.bound));
        if node.bound >= incumbent_obj.min(cutoff_extra) - opts.absolute_gap {
            continue; // pruned by bound
        }
        if nodes >= opts.node_limit || deadline.is_some_and(|d| Instant::now() >= d) {
            hit_limit = true;
            best_bound = node.bound;
            break;
        }
        nodes += 1;

        // Apply bound overrides.
        let mut lb = lp.lb.clone();
        let mut ub = lp.ub.clone();
        for &(j, l, u) in &node.bounds {
            lb[j] = lb[j].max(l);
            ub[j] = ub[j].min(u);
        }
        let sol = match lp.solve_with_bounds(&lb, &ub, deadline) {
            Ok(s) => s,
            Err(LpAbort::Timeout) => {
                hit_limit = true;
                best_bound = node.bound;
                break 'search;
            }
            Err(LpAbort::Numerical(msg)) => return Err(MilpError::Numerical(msg)),
            Err(LpAbort::Singular) => {
                return Err(MilpError::Numerical("unrepairable singular basis".into()))
            }
        };
        lp_iters += sol.iters;
        if node.depth == 0 {
            root_status = Some(sol.status);
        }
        match sol.status {
            LpStatus::Infeasible => continue,
            LpStatus::Unbounded => {
                if node.depth == 0 {
                    return Ok(MilpResult {
                        status: Status::Unbounded,
                        objective: f64::NEG_INFINITY,
                        best_bound: f64::NEG_INFINITY,
                        values: Vec::new(),
                        nodes,
                        lp_iterations: lp_iters,
                        solve_time: start.elapsed(),
                    });
                }
                // Defensive: a bounded root cannot spawn unbounded children.
                continue;
            }
            LpStatus::Optimal => {}
        }
        if sol.obj >= incumbent_obj.min(cutoff_extra) - opts.absolute_gap {
            continue;
        }

        // Find the most fractional integer variable.
        let mut branch: Option<(usize, f64)> = None;
        let mut best_frac = 0.0;
        for &j in &int_cols {
            let v = sol.x[j];
            let frac = (v - v.round()).abs();
            if frac > INT_TOL {
                let dist_to_half = (v - v.floor() - 0.5).abs();
                let merit = 0.5 - dist_to_half;
                if branch.is_none() || merit > best_frac {
                    best_frac = merit;
                    branch = Some((j, v));
                }
            }
        }

        match branch {
            None => {
                // Integral: new incumbent.
                if sol.obj < incumbent_obj {
                    incumbent_obj = sol.obj;
                    let mut x = sol.x.clone();
                    for &j in &int_cols {
                        x[j] = x[j].round();
                    }
                    incumbent = Some(x);
                }
            }
            Some((j, v)) => {
                // Periodic LP-guided dive for incumbents (always at root).
                if node.depth == 0 || since_dive >= DIVE_PERIOD {
                    since_dive = 0;
                    if let Some((obj, mut x)) = dive(
                        &lp,
                        &int_cols,
                        &lb,
                        &ub,
                        &sol,
                        deadline,
                        incumbent_obj.min(cutoff_extra),
                        &mut lp_iters,
                    ) {
                        if obj < incumbent_obj && model.check_feasible(&x, 1e-5).is_none() {
                            for &jc in &int_cols {
                                x[jc] = x[jc].round();
                            }
                            incumbent_obj = obj;
                            incumbent = Some(x);
                        }
                    }
                } else {
                    since_dive += 1;
                }

                let down = Node {
                    bounds: {
                        let mut b = node.bounds.clone();
                        b.push((j, f64::NEG_INFINITY, v.floor()));
                        b
                    },
                    bound: sol.obj,
                    depth: node.depth + 1,
                };
                let up = Node {
                    bounds: {
                        let mut b = node.bounds.clone();
                        b.push((j, v.ceil(), f64::INFINITY));
                        b
                    },
                    bound: sol.obj,
                    depth: node.depth + 1,
                };
                heap.push(Ranked(down));
                heap.push(Ranked(up));
            }
        }
    }

    if !hit_limit {
        // Search exhausted: bound equals incumbent (or proves infeasible).
        best_bound = incumbent_obj;
    }

    let status = match (&incumbent, hit_limit) {
        (Some(_), false) => Status::Optimal,
        (Some(_), true) => Status::Feasible,
        (None, true) => Status::Unknown,
        (None, false) => {
            if root_status == Some(LpStatus::Unbounded) {
                Status::Unbounded
            } else {
                Status::Infeasible
            }
        }
    };

    Ok(MilpResult {
        status,
        objective: incumbent_obj,
        best_bound,
        values: incumbent.unwrap_or_default(),
        nodes,
        lp_iterations: lp_iters,
        solve_time: start.elapsed(),
    })
}
