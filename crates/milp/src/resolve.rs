//! Incremental re-solve engine: an editable, *reusable* solved model.
//!
//! [`ResolveContext`] wraps a [`Model`] and keeps the machinery of its
//! last solve alive — the root LP's optimal basis with its LU factors,
//! the incumbent, and (after an early stop) the open leaves of the
//! branch-and-bound tree. Small edits then re-optimize from that state
//! instead of from scratch:
//!
//! - **bound deltas** ([`ResolveContext::set_bounds`]) keep the prior
//!   basis dual-feasible → warm dual simplex at the root;
//! - **objective deltas** ([`ResolveContext::set_objective_coeff`]) keep
//!   it primal-feasible → warm phase-2 primal;
//! - **added cut rows** ([`ResolveContext::add_cut`]) enter with a basic
//!   slack, extending the persistent LU factors by a bordered update
//!   instead of refactoring;
//! - **added columns** ([`ResolveContext::add_var`] and friends) start
//!   nonbasic at their lower bound, leaving the factored basis intact;
//! - **integrality toggles** ([`ResolveContext::relax_integrality`],
//!   [`ResolveContext::set_var_kind`]) reuse the basis but drop the tree;
//! - **no deltas at all** returns the cached result for proved statuses,
//!   and *continues* a time- or node-limited search from its captured
//!   frontier instead of rebuilding the tree.
//!
//! # Soundness and the fallback ladder
//!
//! Every reuse step re-validates at run time (factor residual check,
//! primal/dual feasibility of the adopted basis) and falls back one rung
//! — reuse factors → refactor → cold two-phase solve — on any doubt, so
//! an incremental solve can be slower than hoped but never wrong. The
//! determinism contract is inherited from the solver: an incremental
//! solve returns the identical status, objective, and assignment as a
//! from-scratch solve of the edited model with the same (reduced)
//! options, which [`ResolveContext::audit`] re-checks on demand.
//!
//! Context solves run **full-featured** (presolve, probing, cuts,
//! Gomory separation all on — they dominate solve time); only
//! symmetry-orbit fixing is forced off, because orbital incumbent
//! steering makes tied-optimum selection depend on the seed. Basis,
//! factor, and frontier capture is instead gated *at runtime* on the
//! solve staying in the original index space (identity presolve
//! reduction, unchanged dimensions); when presolve did rewrite the
//! model, only the incumbent carries — re-validated and projected
//! through the new reduction.

use std::time::Duration;

use pipemap_obs as obs;

use crate::branch::{self, ResolveSeed};
use crate::lu::Factors;
use crate::model::{LinExpr, Model, RowId, Sense, VarId, VarKind};
use crate::simplex::WarmBasis;
use crate::{MilpError, MilpResult, SolverOptions, Status};

/// State carried over from the last solve. The result (incumbent seed,
/// cached status) survives every solve; the warm-start payload is only
/// present when the solver ran in the original index space (identity
/// presolve reduction, no appended cut rows) and could capture it.
#[derive(Debug)]
struct Saved {
    warm: Option<WarmState>,
    /// Variable/row counts of the model *at solve time*; the deltas
    /// `num_vars() - n_vars` and `num_rows() - n_rows` are the appended
    /// columns/rows the basis must be remapped around.
    n_vars: usize,
    n_rows: usize,
    result: MilpResult,
}

/// Basis-level reuse payload: only capturable from an index-stable solve.
#[derive(Debug)]
struct WarmState {
    basis: WarmBasis,
    factors: Option<Factors>,
    frontier: Option<branch::Frontier>,
}

/// Edits accumulated since the last solve, classified by which warm-start
/// path stays sound.
#[derive(Debug, Default)]
struct Pending {
    bounds: bool,
    objective: bool,
    kinds: bool,
    /// Any edit the engine cannot map onto the saved basis (coefficient
    /// changes to pre-existing columns in pre-existing rows, non-finite
    /// lower bounds on new columns): the next solve runs cold.
    structural: bool,
}

impl Pending {
    fn any(&self, cols_added: usize, rows_added: usize) -> bool {
        self.bounds
            || self.objective
            || self.kinds
            || self.structural
            || cols_added > 0
            || rows_added > 0
    }
}

/// Counters describing how much prior-solve state the context reused.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResolveStats {
    /// Solves dispatched through the context (cached returns included).
    pub solves: usize,
    /// Solves answered from the cached result without touching the
    /// solver (no deltas, prior status already proved).
    pub cached_results: usize,
    /// Solves that ran with no usable saved state at all — no basis, no
    /// incumbent (first solve, or after a structural edit invalidated
    /// everything).
    pub cold_solves: usize,
    /// Solves that carried the prior solution in as a starting incumbent
    /// (works across presolve reductions, unlike basis reuse).
    pub incumbent_seeds: usize,
    /// Root LPs warm-started from the saved basis.
    pub warm_attempts: usize,
    /// Root warm starts that re-optimized without a cold fallback.
    pub warm_hits: usize,
    /// Root solves that adopted the saved LU factors (possibly
    /// border-extended for added cut rows).
    pub lu_factor_reuses: usize,
    /// Root solves that refactored from scratch.
    pub lu_refactors: usize,
    /// Searches resumed from a captured frontier instead of the root.
    pub frontier_resumes: usize,
    /// Open leaves replayed across all frontier resumes.
    pub frontier_nodes_reused: usize,
}

impl ResolveStats {
    /// Accumulate another context's counters into this one — for
    /// harnesses that drive several contexts (one per structural sweep
    /// point) and report a single set of reuse totals.
    pub fn merge(&mut self, other: &ResolveStats) {
        self.solves += other.solves;
        self.cached_results += other.cached_results;
        self.cold_solves += other.cold_solves;
        self.incumbent_seeds += other.incumbent_seeds;
        self.warm_attempts += other.warm_attempts;
        self.warm_hits += other.warm_hits;
        self.lu_factor_reuses += other.lu_factor_reuses;
        self.lu_refactors += other.lu_refactors;
        self.frontier_resumes += other.frontier_resumes;
        self.frontier_nodes_reused += other.frontier_nodes_reused;
    }
}

/// Outcome of [`ResolveContext::audit`]: the incremental result checked
/// against a from-scratch solve of the identical model and options.
///
/// Warm-started re-solves inherit the prior optimal basis, so node LPs
/// can land on *different vertices* of the same optimal face than a
/// cold solve would — surfacing a different member of a set of tied
/// optima. That divergence is benign (both assignments are feasible
/// points of the identical model with the identical objective) and is
/// reported as [`ResolveAudit::tied_optima`] rather than a failure;
/// what the engine guarantees — and [`ResolveAudit::ok`] enforces — is
/// that status and objective are indistinguishable from a from-scratch
/// solve and the returned assignment is genuinely feasible.
#[derive(Debug, Clone)]
pub struct ResolveAudit {
    /// Statuses agree, or differ only because one side proved optimality
    /// while the other stopped at a time/node limit with the same
    /// incumbent objective (a budget artifact, not a divergence).
    pub status_match: bool,
    /// Objectives agree to `1e-6` (or are both non-finite). When both
    /// searches stopped at their budget ([`ResolveAudit::budget_capped`])
    /// neither objective is the optimum and the comparison does not bind:
    /// the incumbents are artifacts of what each budget bought, so this
    /// reports `true` as long as both assignments re-verify feasible.
    pub objective_match: bool,
    /// Both searches hit their time/node budget: the determinism
    /// contract binds completed searches, so objective and assignment
    /// comparisons degrade to feasibility checks on this audit.
    pub budget_capped: bool,
    /// Returned assignments agree element-wise to `1e-6`.
    pub values_match: bool,
    /// Assignments differ but both re-verify as feasible points of the
    /// model: two members of a tied optimal set (matching objectives),
    /// or two budget-capped incumbents — not a soundness failure.
    pub tied_optima: bool,
    /// The from-scratch result the context was checked against.
    pub cold: MilpResult,
}

impl ResolveAudit {
    /// `true` when the incremental solve is indistinguishable from cold
    /// up to tied optima: same status, same objective, and — when the
    /// assignments differ — both independently re-verified feasible.
    pub fn ok(&self) -> bool {
        self.status_match && self.objective_match && (self.values_match || self.tied_optima)
    }
}

/// An editable MILP model whose solves reuse the previous solve's basis,
/// LU factors, incumbent, and (when sound) branch-and-bound frontier.
/// See the module docs for the delta taxonomy and soundness
/// rules.
#[derive(Debug)]
pub struct ResolveContext {
    base: Model,
    model: Model,
    saved: Option<Saved>,
    pending: Pending,
    stats: ResolveStats,
}

impl ResolveContext {
    /// Wrap a model for incremental re-solving. The model is also kept
    /// as the *base* snapshot that [`ResolveContext::restore_bounds`]
    /// and friends roll edits back to.
    pub fn new(model: Model) -> Self {
        ResolveContext {
            base: model.clone(),
            model,
            saved: None,
            pending: Pending::default(),
            stats: ResolveStats::default(),
        }
    }

    /// The current (edited) model.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Result of the most recent solve, if any.
    pub fn last_result(&self) -> Option<&MilpResult> {
        self.saved.as_ref().map(|s| &s.result)
    }

    /// Reuse counters accumulated over this context's lifetime.
    pub fn stats(&self) -> ResolveStats {
        self.stats
    }

    fn cols_added(&self) -> usize {
        let n = self
            .saved
            .as_ref()
            .map_or(self.model.num_vars(), |s| s.n_vars);
        self.model.num_vars() - n
    }

    fn rows_added(&self) -> usize {
        let n = self
            .saved
            .as_ref()
            .map_or(self.model.num_rows(), |s| s.n_rows);
        self.model.num_rows() - n
    }

    // --- delta API -------------------------------------------------------

    /// Change a variable's bounds (dual-simplex warm start on the next
    /// solve).
    pub fn set_bounds(&mut self, v: VarId, lb: f64, ub: f64) {
        // No-op edits keep the cached result and frontier alive, so a
        // caller replaying an unchanged query gets it for free.
        if self.model.bounds(v) == (lb, ub) {
            return;
        }
        self.model.set_bounds(v, lb, ub);
        self.pending.bounds = true;
    }

    /// Change a variable's objective weight (primal warm start on the
    /// next solve).
    pub fn set_objective_coeff(&mut self, v: VarId, obj: f64) {
        if self.model.objective_coeff(v) == obj {
            return;
        }
        self.model.set_objective_coeff(v, obj);
        self.pending.objective = true;
    }

    /// Make an integer variable continuous. Keeps the basis, drops any
    /// captured frontier (branching decisions depended on integrality).
    pub fn relax_integrality(&mut self, v: VarId) {
        if self.model.var_kind(v) == VarKind::Continuous {
            return;
        }
        self.model.relax_integrality(v);
        self.pending.kinds = true;
    }

    /// Set a variable's kind. Same reuse rules as
    /// [`ResolveContext::relax_integrality`].
    pub fn set_var_kind(&mut self, v: VarId, kind: VarKind) {
        if self.model.var_kind(v) == kind {
            return;
        }
        self.model.set_var_kind(v, kind);
        self.pending.kinds = true;
    }

    /// Append a variable. It starts nonbasic at its lower bound, so the
    /// factored basis survives; a non-finite lower bound has no such
    /// resting point and forces the next solve cold.
    pub fn add_var(&mut self, lb: f64, ub: f64, obj: f64, kind: VarKind) -> VarId {
        if !lb.is_finite() {
            self.pending.structural = true;
        }
        self.model.add_var(lb, ub, obj, kind)
    }

    /// Append a binary variable (see [`ResolveContext::add_var`]).
    pub fn add_binary(&mut self, obj: f64) -> VarId {
        self.add_var(0.0, 1.0, obj, VarKind::Integer)
    }

    /// Append a continuous variable (see [`ResolveContext::add_var`]).
    pub fn add_continuous(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(lb, ub, obj, VarKind::Continuous)
    }

    /// Append an integer variable (see [`ResolveContext::add_var`]).
    pub fn add_integer(&mut self, lb: f64, ub: f64, obj: f64) -> VarId {
        self.add_var(lb, ub, obj, VarKind::Integer)
    }

    /// Append a constraint row (a "cut" in re-solve terms). Its slack
    /// enters the basis, extending the saved LU factors by a bordered
    /// update on the next solve.
    pub fn add_cut(&mut self, expr: LinExpr, sense: Sense, rhs: f64) -> RowId {
        self.model.add_constraint(expr, sense, rhs)
    }

    /// Add (or merge) one coefficient. Touching a pre-existing column in
    /// a pre-existing row rewrites the factored matrix and forces the
    /// next solve cold; coefficients into freshly added rows or columns
    /// ride the incremental path.
    pub fn add_coefficient(&mut self, r: RowId, v: VarId, coeff: f64) {
        let (nv, nr) = self
            .saved
            .as_ref()
            .map_or((usize::MAX, usize::MAX), |s| (s.n_vars, s.n_rows));
        if v.index() < nv && r.index() < nr {
            self.pending.structural = true;
        }
        self.model.add_coefficient(r, v, coeff);
    }

    /// Roll every variable's bounds back to the base snapshot (issued as
    /// ordinary bound deltas, so basis reuse survives). Variables added
    /// after [`ResolveContext::new`] are left untouched.
    pub fn restore_bounds(&mut self) {
        for j in 0..self.base.num_vars() {
            let v = VarId::from_index(j);
            let want = self.base.bounds(v);
            if self.model.bounds(v) != want {
                self.model.set_bounds(v, want.0, want.1);
                self.pending.bounds = true;
            }
        }
    }

    /// Roll every variable's objective weight back to the base snapshot.
    pub fn restore_objective(&mut self) {
        for j in 0..self.base.num_vars() {
            let v = VarId::from_index(j);
            let want = self.base.objective_coeff(v);
            if self.model.objective_coeff(v) != want {
                self.model.set_objective_coeff(v, want);
                self.pending.objective = true;
            }
        }
    }

    /// Roll every variable's kind back to the base snapshot.
    pub fn restore_kinds(&mut self) {
        for j in 0..self.base.num_vars() {
            let v = VarId::from_index(j);
            let want = self.base.var_kind(v);
            if self.model.var_kind(v) != want {
                self.model.set_var_kind(v, want);
                self.pending.kinds = true;
            }
        }
    }

    // --- solving ---------------------------------------------------------

    /// The option set context solves (and the audit's cold comparator)
    /// run under: everything exactness-preserving stays ON — presolve,
    /// probing, and the cut loops dominate solve time on the paper's
    /// scheduling MILPs, and turning them off to protect the basis costs
    /// far more than basis reuse wins back. Instead, basis/LU/frontier
    /// capture is gated at runtime on the solve actually staying in the
    /// original index space (identity reduction, no appended rows);
    /// incumbent carry works regardless because assignments map across a
    /// reduction. Only orbital fixing is forced off: it can steer tied
    /// optima differently depending on the seeded incumbent, making
    /// incremental-vs-cold value comparisons needlessly noisy.
    fn reduced_opts(opts: &SolverOptions) -> SolverOptions {
        SolverOptions {
            symmetry: false,
            ..opts.clone()
        }
    }

    /// Solve the current model, reusing as much of the prior solve as
    /// the accumulated deltas allow (see the module docs).
    ///
    /// # Errors
    ///
    /// [`MilpError`] only on unrecoverable numerical failure, exactly as
    /// [`Model::solve`]; the saved state is dropped so the next call
    /// starts cold.
    pub fn solve(&mut self, opts: &SolverOptions) -> Result<MilpResult, MilpError> {
        let span = obs::enabled().then(|| obs::span("resolve-solve"));
        self.stats.solves += 1;
        let cols_added = self.cols_added();
        let rows_added = self.rows_added();
        let no_deltas = !self.pending.any(cols_added, rows_added);

        // Proved statuses are immutable facts about an unedited model.
        if no_deltas {
            if let Some(s) = &self.saved {
                if matches!(
                    s.result.status,
                    Status::Optimal | Status::Infeasible | Status::Unbounded
                ) {
                    self.stats.cached_results += 1;
                    obs::instant("resolve-cached");
                    Self::emit_stats(&self.stats);
                    drop(span);
                    return Ok(s.result.clone());
                }
            }
        }

        let mut ropts = Self::reduced_opts(opts);
        if ropts.initial_solution.is_none() {
            if let Some(s) = &self.saved {
                if s.result.status.has_solution() {
                    // Pad for appended columns: each rests at a finite
                    // bound (or 0). The solver re-validates feasibility
                    // and silently drops a seed an added cut excluded.
                    let mut vals = s.result.values.clone();
                    for j in vals.len()..self.model.num_vars() {
                        let (lb, ub) = self.model.bounds(VarId::from_index(j));
                        vals.push(if lb.is_finite() {
                            lb
                        } else if ub.is_finite() {
                            ub
                        } else {
                            0.0
                        });
                    }
                    ropts.initial_solution = Some(vals);
                    self.stats.incumbent_seeds += 1;
                }
            }
        }

        let seed = match (&self.saved, self.pending.structural) {
            (Some(s), false) => s.warm.as_ref().map(|w| {
                let mut basis = w.basis.clone();
                if cols_added > 0 {
                    basis = basis.with_added_cols(s.n_vars, cols_added);
                }
                if rows_added > 0 {
                    basis = basis.with_added_rows(self.model.num_vars(), rows_added);
                }
                // Bound edits and new rows break primal feasibility but
                // not dual; everything else (objective, kinds, appended
                // columns at finite bounds) is the reverse. Both gates
                // are re-checked numerically inside the solver.
                let primal = !self.pending.bounds && rows_added == 0;
                let frontier = (no_deltas).then(|| w.frontier.clone()).flatten();
                ResolveSeed {
                    basis,
                    factors: w.factors.clone(),
                    primal,
                    frontier,
                }
            }),
            _ => None,
        };
        let resuming = seed
            .as_ref()
            .and_then(|s| s.frontier.as_ref())
            .map(branch::Frontier::len);
        if seed.is_none() && ropts.initial_solution.is_none() {
            self.stats.cold_solves += 1;
        }
        if let Some(n) = resuming {
            self.stats.frontier_resumes += 1;
            if obs::enabled() {
                obs::instant_with("resolve-frontier-resume", vec![("nodes", n.into())]);
            }
        }

        let prior = self.saved.take();
        self.pending = Pending::default();
        let solved = branch::solve_milp_resolve(&self.model, &ropts, seed.as_ref(), true);
        drop(span);
        let (result, capture) = match solved {
            Ok(r) => r,
            Err(e) => {
                // Cold restart next time; the edited model is kept.
                return Err(e);
            }
        };
        self.stats.warm_attempts += result.stats.resolve_warm_attempts;
        self.stats.warm_hits += result.stats.resolve_warm_hits;
        self.stats.lu_factor_reuses += result.stats.lu_factor_reuses;
        self.stats.lu_refactors += result.stats.lu_refactors;
        self.stats.frontier_nodes_reused += result.stats.frontier_nodes_reused;

        // The result always carries forward (incumbent seed, cached
        // status); the basis payload only when the solver captured one.
        let warm = capture.and_then(|c| {
            // A frontier resume never re-solves the root, so the capture
            // slot stays empty; the prior basis/factors are still the
            // root's and carry forward.
            let root = match c.root {
                Some((b, f)) => Some((b, Some(f))),
                None => prior
                    .filter(|_| resuming.is_some())
                    .and_then(|s| s.warm)
                    .map(|w| (w.basis, w.factors)),
            };
            root.map(|(basis, factors)| WarmState {
                basis,
                factors,
                frontier: c.frontier,
            })
        });
        self.saved = Some(Saved {
            warm,
            n_vars: self.model.num_vars(),
            n_rows: self.model.num_rows(),
            result: result.clone(),
        });
        Self::emit_stats(&self.stats);
        Ok(result)
    }

    /// Emit the cumulative reuse counters as a `resolve-stats` instant so
    /// the flight recorder can attribute fallback-ladder causes (cached /
    /// warm / incumbent-seeded / cold) without access to the context.
    fn emit_stats(s: &ResolveStats) {
        if !obs::enabled() {
            return;
        }
        obs::instant_with(
            "resolve-stats",
            vec![
                ("solves", s.solves.into()),
                ("cached_results", s.cached_results.into()),
                ("cold_solves", s.cold_solves.into()),
                ("incumbent_seeds", s.incumbent_seeds.into()),
                ("warm_attempts", s.warm_attempts.into()),
                ("warm_hits", s.warm_hits.into()),
                ("lu_factor_reuses", s.lu_factor_reuses.into()),
                ("lu_refactors", s.lu_refactors.into()),
                ("frontier_resumes", s.frontier_resumes.into()),
                ("frontier_nodes_reused", s.frontier_nodes_reused.into()),
            ],
        );
    }

    /// Re-check the last incremental result against a from-scratch solve
    /// of the identical model and (reduced) options. Expensive — this is
    /// the verification path, not the fast path.
    ///
    /// # Errors
    ///
    /// [`MilpError`] if the from-scratch solve itself fails numerically.
    ///
    /// # Panics
    ///
    /// Panics if no solve has completed on this context yet.
    pub fn audit(&self, opts: &SolverOptions) -> Result<ResolveAudit, MilpError> {
        let last = &self
            .saved
            .as_ref()
            .expect("audit requires a completed solve")
            .result;
        let cold = self.model.solve(&Self::reduced_opts(opts))?;
        let objs_eq = (last.objective - cold.objective).abs() <= 1e-6
            || (!last.objective.is_finite()
                && !cold.objective.is_finite()
                && last.objective == cold.objective);
        let vals_eq = last.values.len() == cold.values.len()
            && last
                .values
                .iter()
                .zip(&cold.values)
                .all(|(a, b)| (a - b).abs() <= 1e-6);
        // One side proving optimality while the other stops at a limit with
        // the same incumbent objective is a budget artifact of the audit's
        // cold comparator, not a correctness divergence.
        let limit_hit = |s: Status| matches!(s, Status::TimedOut | Status::Feasible);
        let status_eq = last.status == cold.status
            || (objs_eq
                && ((last.status == Status::Optimal && limit_hit(cold.status))
                    || (cold.status == Status::Optimal && limit_hit(last.status))));
        // When *both* searches hit their budget neither objective is the
        // optimum — the incumbents are artifacts of what each budget
        // bought (the warm side inherits the prior point's incumbent, the
        // cold side starts empty), so the comparison degrades to
        // feasibility: accept as long as both assignments re-verify.
        let both_capped = limit_hit(last.status) && limit_hit(cold.status);
        // Divergent assignments are only acceptable when both re-verify as
        // feasible points of the model: tied optima on completed
        // searches, arbitrary incumbents on budget-capped ones.
        let both_feasible = !last.status.has_solution()
            || (self.model.check_feasible(&last.values, 1e-6).is_none()
                && self.model.check_feasible(&cold.values, 1e-6).is_none());
        let tied = !vals_eq && (objs_eq || both_capped) && status_eq && both_feasible;
        Ok(ResolveAudit {
            status_match: status_eq,
            objective_match: objs_eq || (both_capped && both_feasible),
            budget_capped: both_capped,
            values_match: vals_eq,
            tied_optima: tied,
            cold,
        })
    }

    /// Convenience: solve with a per-call time limit (common in sweeps).
    ///
    /// # Errors
    ///
    /// See [`ResolveContext::solve`].
    pub fn solve_with_limit(&mut self, limit: Duration) -> Result<MilpResult, MilpError> {
        self.solve(&SolverOptions::with_time_limit(limit))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model, Sense};

    fn knapsack() -> Model {
        let mut m = Model::new("knap");
        let a = m.add_binary(-5.0);
        let b = m.add_binary(-4.0);
        let c = m.add_binary(-3.0);
        let mut w = LinExpr::new();
        w.add_term(2.0, a);
        w.add_term(3.0, b);
        w.add_term(1.0, c);
        m.add_constraint(w, Sense::Le, 3.0);
        m
    }

    #[test]
    fn cached_result_on_unedited_resolve() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        let r1 = cx.solve(&opts).unwrap();
        assert_eq!(r1.status, Status::Optimal);
        let r2 = cx.solve(&opts).unwrap();
        assert_eq!(r2.objective, r1.objective);
        assert_eq!(cx.stats().cached_results, 1);
    }

    #[test]
    fn objective_delta_matches_cold() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        cx.solve(&opts).unwrap();
        cx.set_objective_coeff(VarId::from_index(1), -9.0);
        let inc = cx.solve(&opts).unwrap();
        let audit = cx.audit(&opts).unwrap();
        assert!(audit.ok(), "incremental {inc:?} vs cold {:?}", audit.cold);
        assert!(cx.stats().warm_attempts >= 1);
    }

    #[test]
    fn bound_delta_matches_cold() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        let r1 = cx.solve(&opts).unwrap();
        assert_eq!(r1.objective.round(), -8.0); // a + c
        cx.set_bounds(VarId::from_index(0), 0.0, 0.0); // forbid a
        let r2 = cx.solve(&opts).unwrap();
        assert_eq!(r2.objective.round(), -4.0); // b (b + c exceeds capacity)
        assert!(cx.audit(&opts).unwrap().ok());
        // Roll back and get the original answer again.
        cx.restore_bounds();
        let r3 = cx.solve(&opts).unwrap();
        assert_eq!(r3.objective.round(), -8.0);
    }

    #[test]
    fn added_cut_matches_cold() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        cx.solve(&opts).unwrap();
        // At most one item.
        let mut e = LinExpr::new();
        for j in 0..3 {
            e.add_term(1.0, VarId::from_index(j));
        }
        cx.add_cut(e, Sense::Le, 1.0);
        let r = cx.solve(&opts).unwrap();
        assert_eq!(r.objective.round(), -5.0); // best single item: a
        assert!(cx.audit(&opts).unwrap().ok());
    }

    #[test]
    fn added_column_matches_cold() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        cx.solve(&opts).unwrap();
        // A new item of weight 1, value 6: displaces c in the optimum.
        let d = cx.add_binary(-6.0);
        cx.add_coefficient(RowId::from_index(0), d, 1.0);
        let r = cx.solve(&opts).unwrap();
        assert_eq!(r.objective.round(), -11.0); // a + d
        assert!(cx.audit(&opts).unwrap().ok());
    }

    #[test]
    fn structural_edit_falls_back_cold() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        cx.solve(&opts).unwrap();
        assert_eq!(cx.stats().cold_solves, 1);
        // Rewrite an existing coefficient: weight of a becomes 3.
        cx.add_coefficient(RowId::from_index(0), VarId::from_index(0), 1.0);
        let r = cx.solve(&opts).unwrap();
        assert_eq!(r.objective.round(), -5.0); // a alone fills the capacity
                                               // The saved basis must not be offered across a coefficient
                                               // rewrite; the prior solution rides along only as an incumbent
                                               // that the solver re-validates against the edited model.
        assert_eq!(cx.stats().warm_attempts, 0);
        assert!(cx.audit(&opts).unwrap().ok());
    }

    #[test]
    fn integrality_toggle_matches_cold() {
        let mut cx = ResolveContext::new(knapsack());
        let opts = SolverOptions::default();
        cx.solve(&opts).unwrap();
        cx.relax_integrality(VarId::from_index(1));
        let r = cx.solve(&opts).unwrap();
        assert!(cx.audit(&opts).unwrap().ok());
        // a + c already fill the capacity exactly; relaxing b changes
        // nothing, which is exactly what must round-trip.
        assert_eq!(r.objective.round(), -8.0);
        cx.restore_kinds();
        let r2 = cx.solve(&opts).unwrap();
        assert_eq!(r2.objective.round(), -8.0);
    }
}
