//! Determinism contract of the parallel branch-and-bound search.
//!
//! The solver promises that `jobs` is a pure throughput knob: for a
//! completed search, every thread count returns the identical status,
//! objective, *and* assignment (the lexicographically smallest optimal
//! one). Presolve and warm-starting are likewise required to be
//! optimality-preserving, so toggling them may change node counts but
//! never the reported optimum.

use pipemap_milp::{LinExpr, Model, Sense, SolverOptions, Status};

/// Splitmix-style deterministic generator; no external RNG crates.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn pick(&mut self, m: u64) -> u64 {
        self.next() % m
    }
}

/// A random small MILP: binaries and bounded integers under a few
/// knapsack-style rows, mixed senses, some negative coefficients.
fn random_model(seed: u64) -> Model {
    let mut rng = Rng(seed.wrapping_mul(0x9e3779b97f4a7c15) | 1);
    let mut m = Model::new("rand");
    let nv = 4 + rng.pick(5) as usize;
    let mut vars = Vec::new();
    for _ in 0..nv {
        let obj = rng.pick(21) as f64 - 10.0;
        if rng.pick(4) == 0 {
            vars.push(m.add_integer(0.0, 1.0 + rng.pick(3) as f64, obj));
        } else {
            vars.push(m.add_binary(obj));
        }
    }
    let nr = 2 + rng.pick(3) as usize;
    for _ in 0..nr {
        let mut e = LinExpr::new();
        for &v in &vars {
            if rng.pick(3) != 0 {
                e.add_term(rng.pick(13) as f64 - 4.0, v);
            }
        }
        let sense = if rng.pick(3) == 0 {
            Sense::Ge
        } else {
            Sense::Le
        };
        let rhs = rng.pick(12) as f64 - if sense == Sense::Ge { 6.0 } else { 0.0 };
        m.add_constraint(e, sense, rhs);
    }
    m
}

fn opts(jobs: usize, presolve: bool, warm_start: bool) -> SolverOptions {
    SolverOptions {
        jobs,
        presolve,
        warm_start,
        ..SolverOptions::default()
    }
}

#[test]
fn serial_and_parallel_agree_exactly() {
    let mut solved = 0;
    for seed in 0..60u64 {
        let m = random_model(seed);
        let serial = m.solve(&opts(1, true, true)).expect("serial solves");
        let par = m.solve(&opts(4, true, true)).expect("parallel solves");
        assert_eq!(serial.status, par.status, "seed {seed}: status diverged");
        if serial.status.has_solution() {
            assert!(
                (serial.objective - par.objective).abs() < 1e-6,
                "seed {seed}: objective {} vs {}",
                serial.objective,
                par.objective
            );
            // The determinism contract is exact: same assignment, not
            // just same objective.
            assert_eq!(
                serial.values, par.values,
                "seed {seed}: assignment diverged between jobs=1 and jobs=4"
            );
            solved += 1;
        }
    }
    assert!(
        solved > 20,
        "only {solved} feasible instances; generator too tight"
    );
}

#[test]
fn warm_start_and_presolve_preserve_the_optimum() {
    for seed in 100..140u64 {
        let m = random_model(seed);
        let reference = m.solve(&opts(1, false, false)).expect("cold solves");
        for (presolve, warm) in [(true, false), (false, true), (true, true)] {
            let r = m.solve(&opts(1, presolve, warm)).expect("variant solves");
            assert_eq!(
                reference.status, r.status,
                "seed {seed} presolve={presolve} warm={warm}: status diverged"
            );
            if reference.status == Status::Optimal {
                assert!(
                    (reference.objective - r.objective).abs() < 1e-6,
                    "seed {seed} presolve={presolve} warm={warm}: obj {} vs {}",
                    reference.objective,
                    r.objective
                );
            }
        }
    }
}

#[test]
fn parallel_respects_cutoff_and_limits() {
    // Cutoff semantics must survive the parallel pop/push protocol: no
    // returned solution may sit at or above the cutoff, on any thread
    // count.
    for seed in 200..220u64 {
        let m = random_model(seed);
        let probe = m.solve(&opts(1, true, true)).expect("probe solves");
        if probe.status != Status::Optimal {
            continue;
        }
        let cut = probe.objective - 0.25;
        for jobs in [1, 4] {
            let o = SolverOptions {
                cutoff: Some(cut),
                ..opts(jobs, true, true)
            };
            let r = m.solve(&o).expect("cutoff solve");
            if r.status.has_solution() {
                assert!(
                    r.objective < cut - 1e-9,
                    "seed {seed} jobs={jobs}: obj {} violates cutoff {cut}",
                    r.objective
                );
            }
        }
    }
}
