//! Branch-and-bound oracle test: on random *mixed* models (binaries plus
//! continuous variables), the B&B optimum must match explicit enumeration
//! over all binary assignments, each completed by an LP solve of the
//! continuous remainder (binaries pinned via bounds).

use proptest::prelude::*;

use pipemap_milp::{LinExpr, Model, Sense, SolverOptions, Status};

#[derive(Debug, Clone)]
struct Spec {
    n_bin: usize,
    n_cont: usize,
    obj: Vec<i32>,
    rows: Vec<(Vec<i32>, bool, i32)>, // coeffs, is_le, rhs
}

fn spec() -> impl Strategy<Value = Spec> {
    (2usize..6, 1usize..4).prop_flat_map(|(n_bin, n_cont)| {
        let n = n_bin + n_cont;
        (
            prop::collection::vec(-6i32..7, n),
            prop::collection::vec(
                (
                    prop::collection::vec(-4i32..5, n),
                    any::<bool>(),
                    -6i32..10,
                ),
                1..5,
            ),
        )
            .prop_map(move |(obj, rows)| Spec {
                n_bin,
                n_cont,
                obj,
                rows,
            })
    })
}

fn build(spec: &Spec, pin: Option<&[f64]>) -> Model {
    let mut m = Model::new("oracle");
    let mut vars = Vec::new();
    for i in 0..spec.n_bin {
        let c = f64::from(spec.obj[i]);
        let v = match pin {
            // Enumeration path: binaries pinned to constants via bounds.
            Some(p) => m.add_continuous(p[i], p[i], c),
            None => m.add_binary(c),
        };
        vars.push(v);
    }
    for i in 0..spec.n_cont {
        let c = f64::from(spec.obj[spec.n_bin + i]);
        vars.push(m.add_continuous(0.0, 5.0, c));
    }
    for (coeffs, is_le, rhs) in &spec.rows {
        let e: LinExpr = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (f64::from(c), v))
            .collect();
        let sense = if *is_le { Sense::Le } else { Sense::Ge };
        m.add_constraint(e, sense, f64::from(*rhs));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn bb_matches_binary_enumeration(s in spec()) {
        let opts = SolverOptions::default();
        let bb = build(&s, None).solve(&opts).expect("bb solves");

        // Oracle: enumerate all binary assignments, LP on the rest.
        let mut best: Option<f64> = None;
        for bits in 0..(1u32 << s.n_bin) {
            let pin: Vec<f64> = (0..s.n_bin).map(|i| f64::from((bits >> i) & 1)).collect();
            let r = build(&s, Some(&pin)).solve(&opts).expect("lp solves");
            if r.status == Status::Optimal {
                best = Some(best.map_or(r.objective, |b: f64| b.min(r.objective)));
            }
        }

        match best {
            None => prop_assert_eq!(bb.status, Status::Infeasible),
            Some(b) => {
                prop_assert_eq!(bb.status, Status::Optimal);
                prop_assert!(
                    (bb.objective - b).abs() < 1e-5,
                    "bb {} vs enumeration {}",
                    bb.objective,
                    b
                );
            }
        }
    }
}
