//! Branch-and-bound oracle test: on random *mixed* models (binaries plus
//! continuous variables), the B&B optimum must match explicit enumeration
//! over all binary assignments, each completed by an LP solve of the
//! continuous remainder (binaries pinned via bounds).
//!
//! Models are drawn from a local deterministic PRNG (this crate is
//! dependency-free, so no external property-testing framework): each of
//! the 40 cases reproduces from its seed alone.

use pipemap_milp::{LinExpr, Model, Sense, SolverOptions, Status};

/// xorshift64* — the same generator `pipemap-ir` uses, inlined to keep
/// this crate free of dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 >> 12;
        self.0 ^= self.0 << 25;
        self.0 ^= self.0 >> 27;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform value in `lo..hi`.
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }
}

#[derive(Debug, Clone)]
struct Spec {
    n_bin: usize,
    n_cont: usize,
    obj: Vec<i32>,
    rows: Vec<(Vec<i32>, bool, i32)>, // coeffs, is_le, rhs
}

fn spec(seed: u64) -> Spec {
    let mut r = Rng::new(seed);
    let n_bin = r.range(2, 6) as usize;
    let n_cont = r.range(1, 4) as usize;
    let n = n_bin + n_cont;
    let obj = (0..n).map(|_| r.range(-6, 7) as i32).collect();
    let n_rows = r.range(1, 5) as usize;
    let rows = (0..n_rows)
        .map(|_| {
            let coeffs = (0..n).map(|_| r.range(-4, 5) as i32).collect();
            let is_le = r.next_u64() & 1 == 0;
            let rhs = r.range(-6, 10) as i32;
            (coeffs, is_le, rhs)
        })
        .collect();
    Spec {
        n_bin,
        n_cont,
        obj,
        rows,
    }
}

fn build(spec: &Spec, pin: Option<&[f64]>) -> Model {
    let mut m = Model::new("oracle");
    let mut vars = Vec::new();
    for i in 0..spec.n_bin {
        let c = f64::from(spec.obj[i]);
        let v = match pin {
            // Enumeration path: binaries pinned to constants via bounds.
            Some(p) => m.add_continuous(p[i], p[i], c),
            None => m.add_binary(c),
        };
        vars.push(v);
    }
    for i in 0..spec.n_cont {
        let c = f64::from(spec.obj[spec.n_bin + i]);
        vars.push(m.add_continuous(0.0, 5.0, c));
    }
    for (coeffs, is_le, rhs) in &spec.rows {
        let e: LinExpr = vars
            .iter()
            .zip(coeffs)
            .map(|(&v, &c)| (f64::from(c), v))
            .collect();
        let sense = if *is_le { Sense::Le } else { Sense::Ge };
        m.add_constraint(e, sense, f64::from(*rhs));
    }
    m
}

#[test]
fn bb_matches_binary_enumeration() {
    for seed in 0..40u64 {
        let s = spec(seed);
        let opts = SolverOptions::default();
        let bb = build(&s, None).solve(&opts).expect("bb solves");

        // Oracle: enumerate all binary assignments, LP on the rest.
        let mut best: Option<f64> = None;
        for bits in 0..(1u32 << s.n_bin) {
            let pin: Vec<f64> = (0..s.n_bin).map(|i| f64::from((bits >> i) & 1)).collect();
            let r = build(&s, Some(&pin)).solve(&opts).expect("lp solves");
            if r.status == Status::Optimal {
                best = Some(best.map_or(r.objective, |b: f64| b.min(r.objective)));
            }
        }

        match best {
            None => assert_eq!(bb.status, Status::Infeasible, "seed {seed}"),
            Some(b) => {
                assert_eq!(bb.status, Status::Optimal, "seed {seed}");
                assert!(
                    (bb.objective - b).abs() < 1e-5,
                    "seed {seed}: bb {} vs enumeration {}",
                    bb.objective,
                    b
                );
            }
        }
    }
}
