//! Presolve edge cases exercised end-to-end through `Model::solve`:
//! singleton rows with negative coefficients, coefficient strengthening
//! on (and not on) equality rows, and fixed-variable substitution
//! interacting with probing-derived bounds. Each case pins the analytic
//! optimum and cross-checks the presolved solve against the cold solver.

use pipemap_milp::{LinExpr, Model, Sense, SolverOptions, Status};

fn opts(presolve: bool, probing: bool) -> SolverOptions {
    SolverOptions {
        presolve,
        probing,
        cuts: probing,
        symmetry: probing,
        ..SolverOptions::default()
    }
}

/// Solve with everything on and everything off; statuses and objectives
/// must agree, and the optimized values are returned.
fn solve_both_ways(m: &Model) -> (Status, f64, Vec<f64>) {
    let full = m.solve(&opts(true, true)).expect("optimized solve");
    let cold = m.solve(&opts(false, false)).expect("cold solve");
    assert_eq!(full.status, cold.status, "status diverges on {}", m.name());
    if full.status == Status::Optimal {
        assert!(
            (full.objective - cold.objective).abs() < 1e-6,
            "{}: optimized {} vs cold {}",
            m.name(),
            full.objective,
            cold.objective
        );
    }
    (full.status, full.objective, full.values)
}

#[test]
fn singleton_row_negative_coefficient_le_tightens_lower_bound() {
    // -2 x ≤ -3  ⇒  x ≥ 1.5; integer x in [0, 10] minimizing x ⇒ x = 2.
    let mut m = Model::new("neg-singleton-le");
    let x = m.add_integer(0.0, 10.0, 1.0);
    m.add_constraint(LinExpr::term(-2.0, x), Sense::Le, -3.0);
    let (status, obj, vals) = solve_both_ways(&m);
    assert_eq!(status, Status::Optimal);
    assert!((obj - 2.0).abs() < 1e-6, "objective {obj}");
    assert!((vals[x.index()] - 2.0).abs() < 1e-6);
}

#[test]
fn singleton_row_negative_coefficient_ge_tightens_upper_bound() {
    // -3 x ≥ -7  ⇒  x ≤ 7/3; integer x maximizing (min of -x) ⇒ x = 2.
    let mut m = Model::new("neg-singleton-ge");
    let x = m.add_integer(0.0, 10.0, -1.0);
    m.add_constraint(LinExpr::term(-3.0, x), Sense::Ge, -7.0);
    let (status, obj, vals) = solve_both_ways(&m);
    assert_eq!(status, Status::Optimal);
    assert!((obj + 2.0).abs() < 1e-6, "objective {obj}");
    assert!((vals[x.index()] - 2.0).abs() < 1e-6);
}

#[test]
fn singleton_row_negative_coefficient_infeasible() {
    // -x ≤ -5 forces x ≥ 5, crossing the binary's upper bound.
    let mut m = Model::new("neg-singleton-infeasible");
    let x = m.add_binary(1.0);
    m.add_constraint(LinExpr::term(-1.0, x), Sense::Le, -5.0);
    for o in [opts(true, true), opts(false, false)] {
        let r = m.solve(&o).expect("solve");
        assert_eq!(r.status, Status::Infeasible);
    }
}

#[test]
fn equality_rows_are_exempt_from_coefficient_strengthening() {
    // 3 x0 + 2 x1 = 3 with binaries: only x0 = 1, x1 = 0 is feasible.
    // Strengthening the 3 down (legal for ≤) would break the equality.
    let mut m = Model::new("eq-no-strengthen");
    let x0 = m.add_binary(5.0);
    let x1 = m.add_binary(1.0);
    m.add_constraint(
        LinExpr::term(3.0, x0) + LinExpr::term(2.0, x1),
        Sense::Eq,
        3.0,
    );
    let (status, obj, vals) = solve_both_ways(&m);
    assert_eq!(status, Status::Optimal);
    assert!((obj - 5.0).abs() < 1e-6, "objective {obj}");
    assert!((vals[x0.index()] - 1.0).abs() < 1e-6);
    assert!(vals[x1.index()].abs() < 1e-6);
}

#[test]
fn inequality_coefficient_strengthening_preserves_optimum() {
    // 5 x0 + x1 ≤ 6 with binary x0: the 5 strengthens to 5 - (6 - 5) in
    // presolve; the integer optimum (both at 1) must survive.
    let mut m = Model::new("le-strengthen");
    let x0 = m.add_binary(-3.0);
    let x1 = m.add_integer(0.0, 4.0, -1.0);
    m.add_constraint(
        LinExpr::term(5.0, x0) + LinExpr::term(1.0, x1),
        Sense::Le,
        6.0,
    );
    let (status, obj, vals) = solve_both_ways(&m);
    assert_eq!(status, Status::Optimal);
    // x0 = 1 leaves x1 ≤ 1: objective -3 - 1 = -4.
    assert!((obj + 4.0).abs() < 1e-6, "objective {obj}");
    assert!((vals[x0.index()] - 1.0).abs() < 1e-6);
    assert!((vals[x1.index()] - 1.0).abs() < 1e-6);
}

#[test]
fn fixed_variable_substitution_meets_probing_bounds() {
    // x0 is fixed by its own bounds (presolve substitutes it away);
    // probing then derives x1 = 1 from the remaining row, and the
    // substituted constant must participate in that derivation:
    //   x0 = 1 (bounds), x0 + 2 x1 ≥ 3  ⇒  x1 ≥ 1.
    let mut m = Model::new("fixed-meets-probing");
    let x0 = m.add_integer(1.0, 1.0, 10.0);
    let x1 = m.add_binary(7.0);
    let x2 = m.add_binary(-1.0);
    m.add_constraint(
        LinExpr::term(1.0, x0) + LinExpr::term(2.0, x1),
        Sense::Ge,
        3.0,
    );
    // A row tying x2 to x1 so probing has something to propagate:
    // x1 + x2 ≤ 1 forces x2 = 0 once x1 = 1.
    m.add_constraint(
        LinExpr::term(1.0, x1) + LinExpr::term(1.0, x2),
        Sense::Le,
        1.0,
    );
    let (status, obj, vals) = solve_both_ways(&m);
    assert_eq!(status, Status::Optimal);
    assert!((obj - 17.0).abs() < 1e-6, "objective {obj}");
    assert!((vals[x0.index()] - 1.0).abs() < 1e-6);
    assert!((vals[x1.index()] - 1.0).abs() < 1e-6);
    assert!(vals[x2.index()].abs() < 1e-6);
}

#[test]
fn presolve_counters_report_the_reductions() {
    // Two singleton rows (one negative) and a bound-fixed column: the
    // counters must show rows removed and bounds tightened.
    let mut m = Model::new("counters");
    let x = m.add_integer(0.0, 10.0, 1.0);
    let y = m.add_integer(3.0, 3.0, 1.0);
    m.add_constraint(LinExpr::term(-2.0, x), Sense::Le, -3.0);
    m.add_constraint(LinExpr::term(1.0, y), Sense::Le, 5.0);
    let r = m.solve(&opts(true, false)).expect("solve");
    assert_eq!(r.status, Status::Optimal);
    assert!((r.objective - 5.0).abs() < 1e-6);
    assert!(
        r.stats.presolve_rows_removed >= 2,
        "rows removed: {}",
        r.stats.presolve_rows_removed
    );
    assert!(
        r.stats.presolve_bounds_tightened >= 1,
        "bounds tightened: {}",
        r.stats.presolve_bounds_tightened
    );
}
