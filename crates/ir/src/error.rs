//! Error type for graph construction and validation.

use std::error::Error;
use std::fmt;

use crate::graph::NodeId;
use crate::op::{MemId, Op};

/// Violation of a structural invariant of a [`Dfg`](crate::Dfg).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IrError {
    /// A node's bit width is outside `1..=64`.
    BadWidth {
        /// Offending node.
        node: NodeId,
        /// The rejected width.
        width: u32,
    },
    /// A node has the wrong number of inputs for its operation.
    BadArity {
        /// Offending node.
        node: NodeId,
        /// Its operation.
        op: Op,
        /// Number of inputs it actually has.
        got: usize,
    },
    /// A port references a node id outside the graph.
    DanglingPort {
        /// Offending node.
        node: NodeId,
        /// The out-of-range target.
        to: NodeId,
    },
    /// Input/output widths are inconsistent for the operation.
    WidthMismatch {
        /// Offending node.
        node: NodeId,
    },
    /// An `Output` node is used as a data source.
    OutputHasConsumer {
        /// The output node that has a consumer.
        output: NodeId,
    },
    /// A `Load` references a memory id that does not exist.
    UnknownMemory {
        /// Offending node.
        node: NodeId,
        /// The unknown memory id.
        mem: MemId,
    },
    /// A memory has no contents.
    EmptyMemory {
        /// The empty memory.
        mem: MemId,
    },
    /// A cycle exists using only distance-0 edges (a combinational loop).
    CombinationalCycle {
        /// A node on the cycle.
        node: NodeId,
    },
    /// A placeholder created by the builder was never bound.
    UnboundPlaceholder {
        /// The unbound placeholder node.
        node: NodeId,
    },
    /// `bind` was called twice for the same placeholder, or on a node that
    /// is not a placeholder.
    NotAPlaceholder {
        /// The rejected node.
        node: NodeId,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadWidth { node, width } => {
                write!(f, "node {node} has width {width}, expected 1..=64")
            }
            IrError::BadArity { node, op, got } => {
                write!(
                    f,
                    "node {node} ({op}) has {got} inputs, expected {}",
                    op.arity()
                )
            }
            IrError::DanglingPort { node, to } => {
                write!(f, "node {node} references non-existent node {to}")
            }
            IrError::WidthMismatch { node } => {
                write!(f, "node {node} has inconsistent input/output widths")
            }
            IrError::OutputHasConsumer { output } => {
                write!(f, "output node {output} is consumed by another node")
            }
            IrError::UnknownMemory { node, mem } => {
                write!(f, "node {node} loads from unknown memory {mem}")
            }
            IrError::EmptyMemory { mem } => write!(f, "memory {mem} has no contents"),
            IrError::CombinationalCycle { node } => {
                write!(f, "combinational (distance-0) cycle through node {node}")
            }
            IrError::UnboundPlaceholder { node } => {
                write!(f, "placeholder {node} was never bound to a producer")
            }
            IrError::NotAPlaceholder { node } => {
                write!(f, "node {node} is not an unbound placeholder")
            }
        }
    }
}

impl Error for IrError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = IrError::BadWidth {
            node: NodeId(3),
            width: 99,
        };
        let s = e.to_string();
        assert!(!s.is_empty());
        assert!(s.starts_with(char::is_lowercase));
    }
}
