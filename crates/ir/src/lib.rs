//! # pipemap-ir
//!
//! Word-level control data flow graph (CDFG) IR for the `pipemap` project —
//! a Rust reproduction of *"Area-Efficient Pipelining for FPGA-Targeted
//! High-Level Synthesis"* (Zhao, Tan, Dai, Zhang — DAC 2015).
//!
//! This crate provides:
//!
//! * [`Dfg`] / [`Node`] / [`Op`] — the graph the scheduler operates on, with
//!   per-edge **dependence distances** for loop-carried recurrences,
//! * [`DfgBuilder`] — ergonomic construction, including feedback edges via
//!   placeholders,
//! * [`Target`] — the FPGA device and characterized-delay model,
//! * [`execute`] — a reference interpreter used as the golden model for
//!   verifying pipelined implementations.
//!
//! ```
//! use pipemap_ir::{DfgBuilder, InputStreams, Target, execute};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DfgBuilder::new("demo");
//! let x = b.input("x", 8);
//! let y = b.input("y", 8);
//! let t = b.xor(x, y);
//! let r = b.and(t, x);
//! let out = b.output("r", r);
//! let dfg = b.finish()?;
//!
//! let target = Target::default();
//! assert_eq!(target.k, 4);
//!
//! let mut ins = InputStreams::new();
//! ins.set(dfg.inputs()[0], vec![0xFF]);
//! ins.set(dfg.inputs()[1], vec![0x0F]);
//! let trace = execute(&dfg, &ins, 1)?;
//! assert_eq!(trace.value(0, out), 0xF0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod builder;
mod dot;
mod error;
mod graph;
mod interp;
mod op;
mod rand_dfg;
mod target;
mod text;

pub use builder::DfgBuilder;
pub use dot::{to_dot, to_dot_styled, NodeStyle};
pub use error::IrError;
pub use graph::{Dfg, DfgStats, Memory, Node, NodeId, Port};
pub use interp::{eval_op, execute, mask, EvalError, InputStreams, Trace};
pub use op::{CmpPred, DepClass, MemId, Op, Resource};
pub use rand_dfg::{random_dfg, RandomDfgConfig, XorShift64};
pub use target::{OpDelays, Target};
pub use text::{
    parse_dfg, parse_dfg_spanned, parse_dfg_spanned_lenient, print_dfg, NodeSpans, ParseDfgError,
    SourceSpan,
};
