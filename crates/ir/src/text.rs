//! Textual CDFG format: parse and print `.pmir` files.
//!
//! The format is line-oriented and mirrors the `Display` dump:
//!
//! ```text
//! dfg gfmul {
//!   mem sbox: 8 = [0x63, 0x7C, 0x77]
//!   a: 8 = input
//!   b: 8 = input
//!   k: 8 = const(0x1B)
//!   t: 8 = xor a, b
//!   s: 8 = shr(3) t
//!   c: 1 = cmp.sge t, k
//!   m: 8 = mux c, t, s@-1
//!   v: 8 = load.sbox a
//!   init m = 0x5
//!   o: 8 = output m
//! }
//! ```
//!
//! * `name: width = op operands…` defines a node; operands reference
//!   earlier names, with `@-d` marking a loop-carried read of distance
//!   `d`. Forward references are allowed (they become feedback edges).
//! * `mem name: width = [v, …]` declares a ROM; `load.name` reads it.
//! * `init name = value` sets the pre-iteration value for loop-carried
//!   reads.
//!
//! [`parse_dfg`] and [`print_dfg`] round-trip: `parse(print(g)) == g` up
//! to node names.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;
use std::fmt::Write as _;

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, NodeId, Port};
use crate::op::{CmpPred, MemId, Op};

/// Failure to parse a `.pmir` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDfgError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseDfgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for ParseDfgError {}

fn err(line: usize, message: impl Into<String>) -> ParseDfgError {
    ParseDfgError {
        line,
        message: message.into(),
    }
}

/// Location of a node definition within a `.pmir` document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SourceSpan {
    /// 1-based line number of the defining line.
    pub line: usize,
    /// 1-based column of the defined name.
    pub col: usize,
    /// Length of the defined name in characters.
    pub len: usize,
}

impl fmt::Display for SourceSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Node-id → source-location map produced by [`parse_dfg_spanned`], used
/// by lint tooling to attach file positions to diagnostics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeSpans {
    spans: HashMap<NodeId, SourceSpan>,
}

impl NodeSpans {
    /// The span of a node's defining line, if it came from source text.
    pub fn get(&self, v: NodeId) -> Option<SourceSpan> {
        self.spans.get(&v).copied()
    }

    /// Number of recorded spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no spans were recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

fn parse_u64(s: &str, line: usize) -> Result<u64, ParseDfgError> {
    let s = s.trim();
    let r = if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| err(line, format!("invalid number `{s}`")))
}

/// Parse a `.pmir` document into a validated graph.
///
/// # Errors
///
/// Returns [`ParseDfgError`] with the offending line on syntax errors,
/// unknown names, or graph-validation failures.
pub fn parse_dfg(src: &str) -> Result<Dfg, ParseDfgError> {
    parse_dfg_spanned(src).map(|(dfg, _)| dfg)
}

/// Parse a `.pmir` document, additionally returning the source location
/// of every node definition for diagnostics.
///
/// # Errors
///
/// Returns [`ParseDfgError`] exactly as [`parse_dfg`] does.
pub fn parse_dfg_spanned(src: &str) -> Result<(Dfg, NodeSpans), ParseDfgError> {
    parse_impl(src, false)
}

/// Parse a `.pmir` document **leniently** for static-analysis tooling:
/// the graph is built without validation (see
/// [`DfgBuilder::finish_lenient`]), undefined names are left as dangling
/// ports instead of aborting, and `init` lines naming unknown values are
/// ignored. The result may violate every structural invariant — run it
/// through a verifier (e.g. `pipemap-verify`) rather than a scheduler.
///
/// # Errors
///
/// Only genuine syntax errors (malformed lines, unknown operations,
/// missing header) are rejected.
pub fn parse_dfg_spanned_lenient(src: &str) -> Result<(Dfg, NodeSpans), ParseDfgError> {
    parse_impl(src, true)
}

fn parse_impl(src: &str, lenient: bool) -> Result<(Dfg, NodeSpans), ParseDfgError> {
    let mut name = String::from("parsed");
    let mut b: Option<DfgBuilder> = None;
    // name -> (node id, width); forward refs -> placeholders.
    let mut defined: HashMap<String, NodeId> = HashMap::new();
    let mut forward: HashMap<String, NodeId> = HashMap::new();
    let mut mems: HashMap<String, MemId> = HashMap::new();
    let mut pending_inits: Vec<(usize, String, u64)> = Vec::new();
    let mut spans = NodeSpans::default();
    let mut closed = false;

    for (li, raw) in src.lines().enumerate() {
        let line_no = li + 1;
        let line = raw.split("//").next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("dfg ") {
            let header = rest.trim_end_matches('{').trim();
            name = header.to_string();
            b = Some(DfgBuilder::new(name.clone()));
            continue;
        }
        if line == "}" {
            closed = true;
            continue;
        }
        let builder = b
            .as_mut()
            .ok_or_else(|| err(line_no, "content before `dfg name {` header"))?;
        if closed {
            return Err(err(line_no, "content after closing `}`"));
        }

        // mem name: width = [..]
        if let Some(rest) = line.strip_prefix("mem ") {
            let (head, data) = rest
                .split_once('=')
                .ok_or_else(|| err(line_no, "expected `mem name: width = [..]`"))?;
            let (mname, w) = head
                .split_once(':')
                .ok_or_else(|| err(line_no, "expected `name: width`"))?;
            let width: u32 = w
                .trim()
                .parse()
                .map_err(|_| err(line_no, "invalid width"))?;
            let data = data.trim();
            let inner = data
                .strip_prefix('[')
                .and_then(|d| d.strip_suffix(']'))
                .ok_or_else(|| err(line_no, "memory data must be `[v, v, ...]`"))?;
            let values = inner
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(|s| parse_u64(s, line_no))
                .collect::<Result<Vec<_>, _>>()?;
            let id = builder.add_memory(mname.trim(), width, values);
            mems.insert(mname.trim().to_string(), id);
            continue;
        }

        // init name = value
        if let Some(rest) = line.strip_prefix("init ") {
            let (n, v) = rest
                .split_once('=')
                .ok_or_else(|| err(line_no, "expected `init name = value`"))?;
            pending_inits.push((line_no, n.trim().to_string(), parse_u64(v, line_no)?));
            continue;
        }

        // name: width = op operands
        let (head, body) = line
            .split_once('=')
            .ok_or_else(|| err(line_no, "expected `name: width = op ...`"))?;
        let (nname, w) = head
            .split_once(':')
            .ok_or_else(|| err(line_no, "expected `name: width`"))?;
        let nname = nname.trim();
        let width: u32 = w
            .trim()
            .parse()
            .map_err(|_| err(line_no, "invalid width"))?;
        let body = body.trim();
        let (opname, args) = match body.split_once(' ') {
            Some((o, a)) => (o.trim(), a.trim()),
            None => (body, ""),
        };

        // Resolve one operand token like `x` or `x@-2`.
        let mut resolve = |tok: &str, builder: &mut DfgBuilder| -> Result<Port, ParseDfgError> {
            let tok = tok.trim();
            let (base, dist) = match tok.split_once("@-") {
                Some((b2, d)) => (
                    b2.trim(),
                    d.trim()
                        .parse::<u32>()
                        .map_err(|_| err(line_no, format!("bad distance in `{tok}`")))?,
                ),
                None => (tok, 0),
            };
            let node = if let Some(&id) = defined.get(base) {
                id
            } else if let Some(&ph) = forward.get(base) {
                ph
            } else {
                let ph = builder.placeholder(width);
                forward.insert(base.to_string(), ph);
                ph
            };
            Ok(Port { node, dist })
        };

        let toks: Vec<&str> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), ParseDfgError> {
            if toks.len() == n {
                Ok(())
            } else {
                Err(err(
                    line_no,
                    format!("`{opname}` expects {n} operand(s), got {}", toks.len()),
                ))
            }
        };

        let id = match opname {
            "input" => {
                need(0)?;
                builder.input(nname, width)
            }
            "output" => {
                need(1)?;
                let p = resolve(toks[0], builder)?;
                builder.output(nname, p)
            }
            _ if opname.starts_with("const(") => {
                need(0)?;
                let v = opname
                    .strip_prefix("const(")
                    .and_then(|s| s.strip_suffix(')'))
                    .ok_or_else(|| err(line_no, "malformed const"))?;
                builder.const_(parse_u64(v, line_no)?, width)
            }
            "and" | "or" | "xor" | "add" | "sub" | "concat" | "mul" => {
                need(2)?;
                let a = resolve(toks[0], builder)?;
                let c = resolve(toks[1], builder)?;
                let op = match opname {
                    "and" => Op::And,
                    "or" => Op::Or,
                    "xor" => Op::Xor,
                    "add" => Op::Add,
                    "sub" => Op::Sub,
                    "concat" => Op::Concat,
                    _ => Op::Mul,
                };
                builder.raw_node(op, width, vec![a, c])
            }
            "not" => {
                need(1)?;
                let a = resolve(toks[0], builder)?;
                builder.raw_node(Op::Not, width, vec![a])
            }
            "mux" => {
                need(3)?;
                let s = resolve(toks[0], builder)?;
                let a = resolve(toks[1], builder)?;
                let c = resolve(toks[2], builder)?;
                builder.raw_node(Op::Mux, width, vec![s, a, c])
            }
            _ if opname.starts_with("shl(") || opname.starts_with("shr(") => {
                need(1)?;
                let amt = opname[4..]
                    .strip_suffix(')')
                    .ok_or_else(|| err(line_no, "malformed shift"))?;
                let amt: u32 = amt
                    .parse()
                    .map_err(|_| err(line_no, "invalid shift amount"))?;
                let a = resolve(toks[0], builder)?;
                let op = if opname.starts_with("shl(") {
                    Op::Shl(amt)
                } else {
                    Op::Shr(amt)
                };
                builder.raw_node(op, width, vec![a])
            }
            _ if opname.starts_with("slice(") => {
                need(1)?;
                let lo = opname
                    .strip_prefix("slice(")
                    .and_then(|s| s.strip_suffix(')'))
                    .ok_or_else(|| err(line_no, "malformed slice"))?;
                let lo: u32 = lo.parse().map_err(|_| err(line_no, "invalid slice"))?;
                let a = resolve(toks[0], builder)?;
                builder.raw_node(Op::Slice { lo }, width, vec![a])
            }
            _ if opname.starts_with("cmp.") => {
                need(2)?;
                let pred = match &opname[4..] {
                    "eq" => CmpPred::Eq,
                    "ne" => CmpPred::Ne,
                    "ult" => CmpPred::Ult,
                    "ule" => CmpPred::Ule,
                    "ugt" => CmpPred::Ugt,
                    "uge" => CmpPred::Uge,
                    "slt" => CmpPred::Slt,
                    "sge" => CmpPred::Sge,
                    "sle" => CmpPred::Sle,
                    "sgt" => CmpPred::Sgt,
                    p => return Err(err(line_no, format!("unknown predicate `{p}`"))),
                };
                let a = resolve(toks[0], builder)?;
                let c = resolve(toks[1], builder)?;
                builder.raw_node(Op::Cmp(pred), width, vec![a, c])
            }
            _ if opname.starts_with("load.") => {
                need(1)?;
                let mname = &opname[5..];
                let mid = *mems
                    .get(mname)
                    .ok_or_else(|| err(line_no, format!("unknown memory `{mname}`")))?;
                let a = resolve(toks[0], builder)?;
                builder.raw_node(Op::Load(mid), width, vec![a])
            }
            other => return Err(err(line_no, format!("unknown op `{other}`"))),
        };
        if !matches!(opname, "input" | "output") {
            builder.name_node(id, nname);
        }
        spans.spans.insert(
            id,
            SourceSpan {
                line: line_no,
                col: raw.len() - raw.trim_start().len() + 1,
                len: nname.chars().count(),
            },
        );
        // Resolve any forward reference to this name.
        if let Some(ph) = forward.remove(nname) {
            builder
                .bind(ph, id, 0)
                .map_err(|e| err(line_no, e.to_string()))?;
        }
        defined.insert(nname.to_string(), id);
    }

    let mut builder = b.ok_or_else(|| err(1, "missing `dfg name {` header"))?;
    if !forward.is_empty() && !lenient {
        let names: Vec<&str> = forward.keys().map(String::as_str).collect();
        return Err(err(
            src.lines().count(),
            format!("undefined name(s): {}", names.join(", ")),
        ));
    }
    for (line_no, n, v) in pending_inits {
        match defined.get(&n) {
            Some(&id) => builder.set_init_value(id, v),
            None if lenient => {}
            None => return Err(err(line_no, format!("init of unknown name `{n}`"))),
        }
    }
    let _ = name;
    let dfg = if lenient {
        builder.finish_lenient()
    } else {
        builder
            .finish()
            .map_err(|e| err(src.lines().count(), e.to_string()))?
    };
    Ok((dfg, spans))
}

/// Print a graph in the `.pmir` format accepted by [`parse_dfg`].
pub fn print_dfg(dfg: &Dfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dfg {} {{", dfg.name());
    for (i, mem) in dfg.memories().iter().enumerate() {
        let data: Vec<String> = mem.data.iter().map(|v| format!("{v:#x}")).collect();
        let _ = writeln!(
            out,
            "  mem m{}_{}: {} = [{}]",
            i,
            mem.name,
            mem.width,
            data.join(", ")
        );
    }
    let label = |v: NodeId| format!("v{}", v.0);
    for (id, node) in dfg.iter() {
        let op = match node.op {
            Op::Load(m) => format!("load.m{}_{}", m.0, dfg.memory(m).name),
            ref other => other.mnemonic(),
        };
        let args: Vec<String> = node
            .ins
            .iter()
            .map(|p| {
                if p.dist == 0 {
                    label(p.node)
                } else {
                    format!("{}@-{}", label(p.node), p.dist)
                }
            })
            .collect();
        let sep = if args.is_empty() { "" } else { " " };
        let _ = writeln!(
            out,
            "  {}: {} = {}{}{}",
            label(id),
            node.width,
            op,
            sep,
            args.join(", ")
        );
        if dfg.init_value(id) != 0 {
            let _ = writeln!(out, "  init {} = {:#x}", label(id), dfg.init_value(id));
        }
    }
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{execute, InputStreams};

    #[test]
    fn parses_a_simple_kernel() {
        let src = r"
dfg demo {
  x: 8 = input
  y: 8 = input
  k: 8 = const(0x0F)
  t: 8 = xor x, y
  m: 8 = and t, k
  o: 8 = output m
}
";
        let g = parse_dfg(src).expect("parses");
        assert_eq!(g.name(), "demo");
        assert_eq!(g.stats().inputs, 2);
        assert_eq!(g.stats().lut_ops, 2);
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0xFF]);
        ins.set(g.inputs()[1], vec![0xF0]);
        let t = execute(&g, &ins, 1).expect("executes");
        assert_eq!(t.value(0, g.outputs()[0]), 0x0F);
    }

    #[test]
    fn parses_feedback_and_init() {
        let src = r"
dfg acc {
  x: 8 = input
  s: 8 = add x, s@-1
  init s = 0x2
  o: 8 = output s
}
";
        let g = parse_dfg(src).expect("parses");
        assert_eq!(g.stats().loop_carried_edges, 1);
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![1, 1, 1]);
        let t = execute(&g, &ins, 3).expect("executes");
        // 2+1=3, 3+1=4, 4+1=5
        assert_eq!(t.value(2, g.outputs()[0]), 5);
    }

    #[test]
    fn parses_memories_and_loads() {
        let src = r"
dfg rom {
  mem tbl: 8 = [0x10, 0x20, 0x30, 0x40]
  a: 2 = input
  v: 8 = load.tbl a
  o: 8 = output v
}
";
        let g = parse_dfg(src).expect("parses");
        assert_eq!(g.memories().len(), 1);
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![2]);
        let t = execute(&g, &ins, 1).expect("executes");
        assert_eq!(t.value(0, g.outputs()[0]), 0x30);
    }

    #[test]
    fn error_reports_line_numbers() {
        let src = "dfg x {\n  a: 8 = bogus\n}\n";
        let e = parse_dfg(src).expect_err("bogus op");
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn undefined_reference_is_an_error() {
        let src = "dfg x {\n  a: 8 = not missing\n  o: 8 = output a\n}\n";
        let e = parse_dfg(src).expect_err("undefined name");
        assert!(e.message.contains("missing"), "{e}");
    }

    #[test]
    fn sle_sgt_parse_print_roundtrip() {
        let src = "dfg s {\n  x: 4 = input\n  z: 4 = const(0x0)\n  \
                   a: 1 = cmp.sle x, z\n  b: 1 = cmp.sgt x, z\n  \
                   o: 1 = output a\n  p: 1 = output b\n}\n";
        let g = parse_dfg(src).expect("parses");
        let printed = print_dfg(&g);
        assert!(printed.contains("cmp.sle"), "{printed}");
        assert!(printed.contains("cmp.sgt"), "{printed}");
        let g2 = parse_dfg(&printed).expect("re-parses");
        assert_eq!(g.len(), g2.len());
        // x = 0b1000 (-8): sle true, sgt false; x = 1: sle false, sgt true.
        for (x, sle, sgt) in [(0b1000u64, 1u64, 0u64), (1, 0, 1), (0, 1, 0)] {
            let mut ins = InputStreams::new();
            ins.set(g.inputs()[0], vec![x]);
            let t = execute(&g, &ins, 1).expect("runs");
            assert_eq!(t.value(0, g.outputs()[0]), sle, "sle({x})");
            assert_eq!(t.value(0, g.outputs()[1]), sgt, "sgt({x})");
        }
    }

    #[test]
    fn roundtrip_preserves_semantics() {
        let src = r"
dfg rt {
  mem t: 4 = [1, 2, 3]
  x: 8 = input
  s: 8 = shr(2) x
  c: 1 = cmp.sge s, s
  m: 8 = mux c, x, s
  q: 8 = add m, q@-2
  init q = 0x7
  a: 2 = slice(1) x
  v: 4 = load.t a
  o: 8 = output q
  o2: 4 = output v
}
";
        let g1 = parse_dfg(src).expect("parses");
        let printed = print_dfg(&g1);
        let g2 = parse_dfg(&printed).expect("re-parses\n");
        // Same structure and same behaviour on random inputs.
        assert_eq!(g1.len(), g2.len());
        assert_eq!(g1.stats().edges, g2.stats().edges);
        let ins1 = InputStreams::random(&g1, 10, 9);
        let t1 = execute(&g1, &ins1, 10).expect("g1 runs");
        let ins2 = InputStreams::random(&g2, 10, 9);
        let t2 = execute(&g2, &ins2, 10).expect("g2 runs");
        for k in 0..10 {
            let o1: Vec<u64> = g1.outputs().iter().map(|&o| t1.value(k, o)).collect();
            let o2: Vec<u64> = g2.outputs().iter().map(|&o| t2.value(k, o)).collect();
            assert_eq!(o1, o2, "iteration {k}");
        }
    }
}
