//! Deterministic random-graph generation for property testing and
//! fuzzing — a dependency-free replacement for external property-test
//! crates, usable in fully offline builds.
//!
//! [`random_dfg`] grows a valid CDFG by repeatedly applying one of the
//! word-level operations to values drawn from a pool, optionally closing
//! a loop-carried recurrence at the end. The same `(seed, config)` pair
//! always yields the same graph.

use crate::builder::DfgBuilder;
use crate::graph::{Dfg, NodeId};
use crate::op::CmpPred;

/// A tiny xorshift64* PRNG — deterministic, seedable, `no_std`-friendly.
#[derive(Debug, Clone)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seed the generator; any seed (including 0) is accepted.
    pub fn new(seed: u64) -> Self {
        XorShift64 {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state ^= self.state >> 12;
        self.state ^= self.state << 25;
        self.state ^= self.state >> 27;
        self.state.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A biased coin: `true` with probability `num / den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

/// Shape knobs for [`random_dfg`].
#[derive(Debug, Clone)]
pub struct RandomDfgConfig {
    /// Bit width of all generated values.
    pub width: u32,
    /// Minimum number of operation nodes.
    pub min_ops: usize,
    /// Maximum number of operation nodes (inclusive).
    pub max_ops: usize,
    /// Allow a loop-carried recurrence to be closed (probability 1/2).
    pub allow_feedback: bool,
}

impl Default for RandomDfgConfig {
    fn default() -> Self {
        RandomDfgConfig {
            width: 8,
            min_ops: 3,
            max_ops: 27,
            allow_feedback: true,
        }
    }
}

/// Generate a valid random CDFG: two inputs, one constant, a chain of
/// random LUT-mappable operations over a growing value pool, an optional
/// distance-1..2 recurrence, and two outputs (`out` = last value, `mid`
/// = pool midpoint).
pub fn random_dfg(seed: u64, cfg: &RandomDfgConfig) -> Dfg {
    let mut rng = XorShift64::new(seed);
    let w = cfg.width;
    let mut b = DfgBuilder::new(format!("rand{seed}"));
    let mut pool: Vec<NodeId> = Vec::new();
    pool.push(b.input("x", w));
    pool.push(b.input("y", w));
    pool.push(b.const_(0xA5, w));

    let feedback = if cfg.allow_feedback && rng.chance(1, 2) {
        let dist = 1 + rng.below(2) as u32;
        let ph = b.placeholder(w);
        pool.push(ph);
        Some((ph, dist))
    } else {
        None
    };

    let span = (cfg.max_ops - cfg.min_ops + 1) as u64;
    let n_ops = cfg.min_ops + rng.below(span) as usize;
    for _ in 0..n_ops {
        let pick =
            |rng: &mut XorShift64, pool: &[NodeId]| pool[rng.below(pool.len() as u64) as usize];
        let n = match rng.below(10) {
            0 => {
                let (a, c) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                b.and(a, c)
            }
            1 => {
                let (a, c) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                b.or(a, c)
            }
            2 => {
                let (a, c) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                b.xor(a, c)
            }
            3 => {
                let a = pick(&mut rng, &pool);
                b.not(a)
            }
            4 => {
                let (a, c) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                b.add(a, c)
            }
            5 => {
                let (a, c) = (pick(&mut rng, &pool), pick(&mut rng, &pool));
                b.sub(a, c)
            }
            6 => {
                let a = pick(&mut rng, &pool);
                let s = rng.below(u64::from(w)) as u32;
                b.shr(a, s)
            }
            7 => {
                let a = pick(&mut rng, &pool);
                let s = rng.below(u64::from(w)) as u32;
                b.shl(a, s)
            }
            8 => {
                let (s, a, c) = (
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                    pick(&mut rng, &pool),
                );
                let sel = b.bit(s, 0);
                b.mux(sel, a, c)
            }
            _ => {
                let a = pick(&mut rng, &pool);
                let z = b.const_(0, w);
                let cmp = b.cmp(CmpPred::Sge, a, z);
                b.zext(cmp, w)
            }
        };
        pool.push(n);
    }

    let last = *pool.last().expect("pool is never empty");
    if let Some((ph, dist)) = feedback {
        b.bind(ph, last, dist).expect("placeholder binds");
    }
    b.output("out", last);
    b.output("mid", pool[pool.len() / 2]);
    b.finish()
        .expect("generated graph is valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomDfgConfig::default();
        let a = random_dfg(42, &cfg);
        let b = random_dfg(42, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_vary_the_shape() {
        let cfg = RandomDfgConfig::default();
        let sizes: std::collections::HashSet<usize> =
            (0..32).map(|s| random_dfg(s, &cfg).len()).collect();
        assert!(sizes.len() > 4, "expected varied graph sizes");
    }

    #[test]
    fn all_generated_graphs_validate() {
        let cfg = RandomDfgConfig::default();
        for seed in 0..64 {
            let g = random_dfg(seed, &cfg);
            g.validate().expect("valid");
            assert_eq!(g.stats().outputs, 2);
        }
    }
}
