//! The word-level control data flow graph (CDFG) itself.
//!
//! A [`Dfg`] is a collection of [`Node`]s connected by [`Port`]s. Every port
//! carries a **dependence distance**: distance 0 is an intra-iteration
//! dependence, distance `d > 0` means the consumer reads the value the
//! producer computed `d` iterations earlier (a loop-carried dependence,
//! footnote 1 of the paper).

use std::collections::HashMap;
use std::fmt;

use crate::error::IrError;
use crate::op::{MemId, Op};

/// Index of a node within its [`Dfg`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node's index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A dataflow edge endpoint: which node feeds this input, and at which
/// iteration distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Port {
    /// Producer node.
    pub node: NodeId,
    /// Dependence distance in iterations (0 = same iteration).
    pub dist: u32,
}

impl Port {
    /// An intra-iteration (distance 0) port.
    pub fn this_iter(node: NodeId) -> Self {
        Port { node, dist: 0 }
    }

    /// A loop-carried port reading the value from `dist` iterations ago.
    pub fn prev_iter(node: NodeId, dist: u32) -> Self {
        Port { node, dist }
    }
}

impl From<NodeId> for Port {
    fn from(node: NodeId) -> Self {
        Port::this_iter(node)
    }
}

/// One operation instance in the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operation computed by this node.
    pub op: Op,
    /// Bit width of the produced value (1..=64). `Cmp` nodes are 1 bit;
    /// `Output` nodes mirror their input's width.
    pub width: u32,
    /// Input ports, in the order required by [`Op::arity`].
    pub ins: Vec<Port>,
}

/// A read-only memory referenced by [`Op::Load`] nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    /// Human-readable name (e.g. `"sbox"`).
    pub name: String,
    /// Word width of each element (1..=64).
    pub width: u32,
    /// Contents; loads index `data[addr % data.len()]`.
    pub data: Vec<u64>,
}

/// Aggregate size statistics of a graph — our analog of the paper's
/// "LLVM Instrs" column of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DfgStats {
    /// Total node count, including inputs/constants/outputs.
    pub nodes: usize,
    /// LUT-mappable operation count.
    pub lut_ops: usize,
    /// Black-box operation count.
    pub black_box_ops: usize,
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Edges (input ports).
    pub edges: usize,
    /// Edges with non-zero dependence distance.
    pub loop_carried_edges: usize,
}

/// The word-level CDFG for one pipelined loop or function.
///
/// Build one with [`DfgBuilder`](crate::DfgBuilder):
///
/// ```
/// use pipemap_ir::DfgBuilder;
///
/// # fn main() -> Result<(), pipemap_ir::IrError> {
/// let mut b = DfgBuilder::new("xor2");
/// let x = b.input("x", 8);
/// let y = b.input("y", 8);
/// let z = b.xor(x, y);
/// b.output("z", z);
/// let dfg = b.finish()?;
/// assert_eq!(dfg.stats().lut_ops, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dfg {
    name: String,
    nodes: Vec<Node>,
    names: Vec<Option<String>>,
    memories: Vec<Memory>,
    /// Value assumed for loop-carried reads of iterations before the first.
    init_values: HashMap<NodeId, u64>,
}

impl Dfg {
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        names: Vec<Option<String>>,
        memories: Vec<Memory>,
        init_values: HashMap<NodeId, u64>,
    ) -> Self {
        Dfg {
            name,
            nodes,
            names,
            memories,
            init_values,
        }
    }

    /// Construct a graph directly from its parts **without validation**.
    ///
    /// Unlike [`DfgBuilder::finish`](crate::DfgBuilder::finish), no
    /// invariant is checked: the result may have dangling ports, width
    /// mismatches, or combinational cycles. This is the entry point for
    /// static-analysis tooling (e.g. `pipemap-verify`) that must be able
    /// to represent — and diagnose — broken graphs. Run [`Dfg::validate`]
    /// before handing such a graph to schedulers or the interpreter.
    pub fn from_raw(
        name: impl Into<String>,
        nodes: Vec<Node>,
        names: Vec<Option<String>>,
        memories: Vec<Memory>,
        init_values: HashMap<NodeId, u64>,
    ) -> Self {
        let mut names = names;
        names.resize(nodes.len(), None);
        Dfg::from_parts(name.into(), nodes, names, memories, init_values)
    }

    /// The graph's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The optional debug name attached to a node.
    pub fn node_name(&self, id: NodeId) -> Option<&str> {
        self.names[id.index()].as_deref()
    }

    /// A printable label: the debug name if present, else `n<i>`.
    pub fn label(&self, id: NodeId) -> String {
        match self.node_name(id) {
            Some(n) => n.to_string(),
            None => id.to_string(),
        }
    }

    /// Iterate over `(id, node)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// All node ids in id order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// The attached read-only memories.
    pub fn memories(&self) -> &[Memory] {
        &self.memories
    }

    /// Memory accessed by a [`MemId`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn memory(&self, id: MemId) -> &Memory {
        &self.memories[id.0 as usize]
    }

    /// Initial value of a node for loop-carried reads reaching before
    /// iteration 0 (defaults to 0 when absent).
    pub fn init_value(&self, id: NodeId) -> u64 {
        self.init_values.get(&id).copied().unwrap_or(0)
    }

    /// Ids of the primary-input nodes in id order.
    pub fn inputs(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.op == Op::Input)
            .map(|(id, _)| id)
            .collect()
    }

    /// Ids of the primary-output marker nodes in id order.
    pub fn outputs(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.op == Op::Output)
            .map(|(id, _)| id)
            .collect()
    }

    /// Consumers of each node: `consumers()[v]` lists `(consumer, port
    /// index)` pairs over all edges, including loop-carried ones.
    pub fn consumers(&self) -> Vec<Vec<(NodeId, usize)>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.iter() {
            for (k, p) in n.ins.iter().enumerate() {
                out[p.node.index()].push((id, k));
            }
        }
        out
    }

    /// Size statistics (Table 2's size column analog).
    pub fn stats(&self) -> DfgStats {
        let mut s = DfgStats {
            nodes: self.nodes.len(),
            ..DfgStats::default()
        };
        for n in &self.nodes {
            if n.op.is_lut_mappable() {
                s.lut_ops += 1;
            }
            if n.op.is_black_box() {
                s.black_box_ops += 1;
            }
            match n.op {
                Op::Input => s.inputs += 1,
                Op::Output => s.outputs += 1,
                _ => {}
            }
            s.edges += n.ins.len();
            s.loop_carried_edges += n.ins.iter().filter(|p| p.dist > 0).count();
        }
        s
    }

    /// A topological order of all nodes over **distance-0** edges.
    ///
    /// Loop-carried edges are ignored — they are exactly what makes the
    /// graph cyclic, and a valid graph is acyclic once they are removed
    /// (checked by [`Dfg::validate`]).
    ///
    /// # Errors
    ///
    /// Returns [`IrError::CombinationalCycle`] if a distance-0 cycle exists.
    pub fn topo_order(&self) -> Result<Vec<NodeId>, IrError> {
        let n = self.nodes.len();
        // indeg[v] = number of distance-0 inputs of v.
        let mut indeg = vec![0usize; n];
        for (id, node) in self.iter() {
            indeg[id.index()] = node.ins.iter().filter(|p| p.dist == 0).count();
        }
        let consumers = self.consumers();
        let mut queue: Vec<NodeId> = self
            .node_ids()
            .filter(|id| indeg[id.index()] == 0)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &(c, k) in &consumers[v.index()] {
                if self.nodes[c.index()].ins[k].dist == 0 {
                    indeg[c.index()] -= 1;
                    if indeg[c.index()] == 0 {
                        queue.push(c);
                    }
                }
            }
        }
        if order.len() != n {
            let stuck = self
                .node_ids()
                .find(|id| indeg[id.index()] > 0)
                .expect("some node must have positive indegree");
            return Err(IrError::CombinationalCycle { node: stuck });
        }
        Ok(order)
    }

    /// Strongly connected components over **all** edges (including
    /// loop-carried ones), in reverse topological order of the condensation.
    ///
    /// Components with more than one node (or a self loop) are the
    /// recurrences that bound the initiation interval from below.
    pub fn sccs(&self) -> Vec<Vec<NodeId>> {
        // Iterative Tarjan.
        let n = self.nodes.len();
        let consumers = self.consumers();
        let mut index = vec![usize::MAX; n];
        let mut low = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0usize;
        let mut sccs = Vec::new();

        // DFS over consumer edges.
        for root in 0..n {
            if index[root] != usize::MAX {
                continue;
            }
            // call stack frames: (v, next child position)
            let mut call: Vec<(usize, usize)> = vec![(root, 0)];
            while let Some(&mut (v, ref mut ci)) = call.last_mut() {
                if *ci == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if *ci < consumers[v].len() {
                    let (w, _) = consumers[v][*ci];
                    *ci += 1;
                    let w = w.index();
                    if index[w] == usize::MAX {
                        call.push((w, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            on_stack[w] = false;
                            comp.push(NodeId(w as u32));
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
        sccs
    }

    /// Validate structural invariants: arities, widths, port ranges,
    /// absence of distance-0 cycles, memory references, and sink/source
    /// shape. Called by the builder; callers constructing graphs by other
    /// means should call it themselves.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        for (id, n) in self.iter() {
            if n.width == 0 || n.width > 64 {
                return Err(IrError::BadWidth {
                    node: id,
                    width: n.width,
                });
            }
            if n.ins.len() != n.op.arity() {
                return Err(IrError::BadArity {
                    node: id,
                    op: n.op,
                    got: n.ins.len(),
                });
            }
            for p in &n.ins {
                if p.node.index() >= self.nodes.len() {
                    return Err(IrError::DanglingPort {
                        node: id,
                        to: p.node,
                    });
                }
                let src = &self.nodes[p.node.index()];
                if src.op == Op::Output {
                    return Err(IrError::OutputHasConsumer { output: p.node });
                }
            }
            let w = |k: usize| self.nodes[n.ins[k].node.index()].width;
            match n.op {
                Op::And | Op::Or | Op::Xor | Op::Add | Op::Sub => {
                    if w(0) != n.width || w(1) != n.width {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Not | Op::Shl(_) | Op::Shr(_) => {
                    if w(0) != n.width {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Mux => {
                    if w(0) != 1 || w(1) != n.width || w(2) != n.width {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Cmp(_) => {
                    if n.width != 1 || w(0) != w(1) {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Slice { lo } => {
                    if lo + n.width > w(0) {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Concat => {
                    if w(0) + w(1) != n.width {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Output => {
                    if w(0) != n.width {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                }
                Op::Load(m) => {
                    if m.0 as usize >= self.memories.len() {
                        return Err(IrError::UnknownMemory { node: id, mem: m });
                    }
                    let mem = &self.memories[m.0 as usize];
                    if mem.width != n.width {
                        return Err(IrError::WidthMismatch { node: id });
                    }
                    if mem.data.is_empty() {
                        return Err(IrError::EmptyMemory { mem: m });
                    }
                }
                Op::Mul | Op::Input | Op::Const(_) => {}
            }
        }
        self.topo_order()?;
        Ok(())
    }
}

impl fmt::Display for Dfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "dfg {} {{", self.name)?;
        for (id, n) in self.iter() {
            let ins: Vec<String> = n
                .ins
                .iter()
                .map(|p| {
                    if p.dist == 0 {
                        self.label(p.node)
                    } else {
                        format!("{}@-{}", self.label(p.node), p.dist)
                    }
                })
                .collect();
            writeln!(
                f,
                "  {}: {} = {} {}",
                self.label(id),
                n.width,
                n.op,
                ins.join(", ")
            )?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::CmpPred;

    fn tiny() -> Dfg {
        let mut b = DfgBuilder::new("tiny");
        let x = b.input("x", 4);
        let y = b.input("y", 4);
        let a = b.and(x, y);
        let o = b.or(a, x);
        b.output("o", o);
        b.finish().expect("valid graph")
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = tiny();
        let order = g.topo_order().expect("acyclic");
        let pos: Vec<usize> = {
            let mut p = vec![0; g.len()];
            for (i, id) in order.iter().enumerate() {
                p[id.index()] = i;
            }
            p
        };
        for (id, n) in g.iter() {
            for port in &n.ins {
                if port.dist == 0 {
                    assert!(pos[port.node.index()] < pos[id.index()]);
                }
            }
        }
    }

    #[test]
    fn loop_carried_cycle_is_allowed() {
        let mut b = DfgBuilder::new("acc");
        let x = b.input("x", 8);
        let acc_prev = b.placeholder(8);
        let sum = b.add(x, acc_prev);
        b.bind(acc_prev, sum, 1).expect("feedback binds");
        b.output("sum", sum);
        let g = b.finish().expect("valid with loop-carried edge");
        assert!(g.topo_order().is_ok());
        // The add participates in an SCC with itself via dist-1 edge.
        let sccs = g.sccs();
        assert!(sccs.iter().any(|c| c.len() == 1
            && g.node(c[0])
                .ins
                .iter()
                .any(|p| p.dist == 1 && p.node == c[0])));
    }

    #[test]
    fn combinational_cycle_is_rejected() {
        let mut b = DfgBuilder::new("bad");
        let x = b.input("x", 4);
        let ph = b.placeholder(4);
        let a = b.and(x, ph);
        b.bind(ph, a, 0).expect("binding itself is fine");
        b.output("o", a);
        let err = b.finish().expect_err("dist-0 cycle must be rejected");
        assert!(matches!(err, IrError::CombinationalCycle { .. }));
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut b = DfgBuilder::new("bad");
        let x = b.input("x", 4);
        let y = b.input("y", 8);
        let n = b.raw_node(Op::And, 4, vec![x.into(), y.into()]);
        b.output("o", n);
        assert!(matches!(b.finish(), Err(IrError::WidthMismatch { .. })));
    }

    #[test]
    fn cmp_width_is_one() {
        let mut b = DfgBuilder::new("c");
        let x = b.input("x", 8);
        let z = b.const_(0, 8);
        let c = b.cmp(CmpPred::Sge, x, z);
        b.output("o", c);
        let g = b.finish().expect("valid");
        let cnode = g
            .iter()
            .find(|(_, n)| matches!(n.op, Op::Cmp(_)))
            .expect("cmp exists");
        assert_eq!(cnode.1.width, 1);
        let _ = g.to_string();
    }

    #[test]
    fn stats_count_classes() {
        let g = tiny();
        let s = g.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.lut_ops, 2);
        assert_eq!(s.black_box_ops, 0);
        assert_eq!(s.nodes, 5);
    }

    #[test]
    fn sccs_partition_nodes() {
        let g = tiny();
        let sccs = g.sccs();
        let total: usize = sccs.iter().map(|c| c.len()).sum();
        assert_eq!(total, g.len());
    }
}
