//! Operation kinds of the word-level CDFG and their classification.
//!
//! The paper classifies operations three ways (§3.1):
//!
//! * **bitwise** — each output bit depends on the same bit of each input
//!   (AND/OR/XOR/NOT, and the data legs of a MUX),
//! * **shifting** — each output bit depends on a single, shifted bit of the
//!   input (constant shifts, bit slices, concatenation),
//! * **arithmetic** — an output bit may depend on many bits of each input
//!   (ADD/SUB/CMP).
//!
//! Everything else is a *black box* (BB): it does not map to LUTs, is kept as
//! the trivial cut during enumeration, and is subject to resource
//! constraints (Eq. 14) — memory reads and hard multipliers here.

use std::fmt;

/// Identifier of a read-only memory (ROM) attached to a [`Dfg`].
///
/// Memories model the black-box table lookups of the paper's application
/// benchmarks (AES S-boxes, k-NN training data, twiddle tables…).
///
/// [`Dfg`]: crate::Dfg
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemId(pub u32);

impl fmt::Display for MemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mem{}", self.0)
    }
}

/// Comparison predicate for [`Op::Cmp`].
///
/// `S*` predicates interpret both operands as two's-complement values of
/// their declared width. The cut enumerator special-cases signed compares
/// against the constant zero: `x >= 0` / `x < 0` test only the sign bit, so
/// their bit-level dependence is the MSB alone (paper §3.1, node *C* of
/// Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Unsigned less-or-equal.
    Ule,
    /// Unsigned greater-than.
    Ugt,
    /// Unsigned greater-or-equal.
    Uge,
    /// Signed less-than.
    Slt,
    /// Signed greater-or-equal.
    Sge,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
}

impl CmpPred {
    /// Evaluate the predicate on two values of bit width `width`.
    pub fn eval(self, a: u64, b: u64, width: u32) -> bool {
        let sext = |x: u64| -> i64 {
            if width >= 64 {
                x as i64
            } else {
                let shift = 64 - width;
                ((x << shift) as i64) >> shift
            }
        };
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Ult => a < b,
            CmpPred::Ule => a <= b,
            CmpPred::Ugt => a > b,
            CmpPred::Uge => a >= b,
            CmpPred::Slt => sext(a) < sext(b),
            CmpPred::Sge => sext(a) >= sext(b),
            CmpPred::Sle => sext(a) <= sext(b),
            CmpPred::Sgt => sext(a) > sext(b),
        }
    }

    /// `true` for the signed predicates (`Slt`, `Sge`, `Sle`, `Sgt`).
    pub fn is_signed(self) -> bool {
        matches!(
            self,
            CmpPred::Slt | CmpPred::Sge | CmpPred::Sle | CmpPred::Sgt
        )
    }

    /// `true` for the predicates that, against a constant-zero right-hand
    /// side, test **only the sign bit** (paper §3.1, node *C* of Fig. 2):
    /// `x < 0` and `x >= 0`. Note `x <= 0` and `x > 0` also depend on
    /// whether the low bits are all zero, so `Sle`/`Sgt` are excluded even
    /// though they are signed.
    pub fn msb_test_vs_zero(self) -> bool {
        matches!(self, CmpPred::Slt | CmpPred::Sge)
    }

    /// The predicate's truth value when both operands are the same value
    /// (`a <pred> a`).
    pub fn reflexive_value(self) -> bool {
        matches!(
            self,
            CmpPred::Eq | CmpPred::Ule | CmpPred::Uge | CmpPred::Sle | CmpPred::Sge
        )
    }
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Ult => "ult",
            CmpPred::Ule => "ule",
            CmpPred::Ugt => "ugt",
            CmpPred::Uge => "uge",
            CmpPred::Slt => "slt",
            CmpPred::Sge => "sge",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
        };
        f.write_str(s)
    }
}

/// A word-level CDFG operation.
///
/// The number and meaning of inputs is fixed per variant; see each variant's
/// documentation. Widths are stored on the node, not the op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// Primary input: one fresh word per loop iteration. No inputs.
    Input,
    /// Compile-time constant. No inputs.
    Const(u64),
    /// Primary-output marker. Inputs: `[value]`. The paper's Eq. (3) forces
    /// the source of every primary output to be a mapped LUT root.
    Output,

    // ---- bitwise logic (LUT-mappable) ----
    /// Bitwise AND. Inputs: `[a, b]`.
    And,
    /// Bitwise OR. Inputs: `[a, b]`.
    Or,
    /// Bitwise XOR. Inputs: `[a, b]`.
    Xor,
    /// Bitwise NOT. Inputs: `[a]`.
    Not,
    /// 2:1 word multiplexer `sel ? a : b`. Inputs: `[sel, a, b]`, `sel` is
    /// 1 bit wide. Each output bit depends on `sel[0]`, `a[j]`, `b[j]`.
    Mux,

    // ---- wiring / shifting (LUT-mappable, zero intrinsic delay) ----
    /// Left shift by a compile-time constant. Inputs: `[a]`.
    Shl(u32),
    /// Logical right shift by a compile-time constant. Inputs: `[a]`.
    Shr(u32),
    /// Extract bits `[lo, lo + width)` of the input. Inputs: `[a]`.
    Slice {
        /// Index of the least-significant extracted bit.
        lo: u32,
    },
    /// Concatenation `out = (hi << width(lo)) | lo`. Inputs: `[hi, lo]`.
    Concat,

    // ---- arithmetic (LUT-mappable, cumulative bit dependence) ----
    /// Wrapping addition. Inputs: `[a, b]`.
    Add,
    /// Wrapping subtraction `a - b`. Inputs: `[a, b]`.
    Sub,
    /// Comparison producing a 1-bit result. Inputs: `[a, b]`.
    Cmp(CmpPred),

    // ---- black boxes (never LUT-mapped; trivial cut only) ----
    /// Hard-multiplier (DSP) product, wrapping to the output width.
    /// Inputs: `[a, b]`.
    Mul,
    /// Read-only memory lookup `mem[addr % len]`. Inputs: `[addr]`.
    Load(MemId),
}

/// The bit-level dependence class of an operation (paper §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DepClass {
    /// No inputs at all (primary inputs, constants).
    Source,
    /// `out[j]` depends on bit `j` of each input (plus the select bit for
    /// muxes).
    Bitwise,
    /// `out[j]` depends on one shifted/offset bit of the input.
    Shift,
    /// `out[j]` depends on bits `0..=j` of each input.
    Arithmetic,
    /// Black box: not mapped to LUTs, trivial cut only.
    BlackBox,
}

/// Resource class used by the modulo resource constraints (paper Eq. 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Resource {
    /// A hard multiplier / DSP slice.
    Mult,
    /// A read port of a specific memory.
    MemPort(MemId),
}

impl fmt::Display for Resource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Resource::Mult => f.write_str("mult"),
            Resource::MemPort(m) => write!(f, "{m}.port"),
        }
    }
}

impl Op {
    /// Number of inputs this operation requires.
    pub fn arity(&self) -> usize {
        match self {
            Op::Input | Op::Const(_) => 0,
            Op::Output | Op::Not | Op::Shl(_) | Op::Shr(_) | Op::Slice { .. } | Op::Load(_) => 1,
            Op::And | Op::Or | Op::Xor | Op::Concat | Op::Add | Op::Sub | Op::Cmp(_) | Op::Mul => 2,
            Op::Mux => 3,
        }
    }

    /// Dependence class used by cut enumeration.
    pub fn dep_class(&self) -> DepClass {
        match self {
            Op::Input | Op::Const(_) => DepClass::Source,
            Op::And | Op::Or | Op::Xor | Op::Not | Op::Mux => DepClass::Bitwise,
            Op::Shl(_) | Op::Shr(_) | Op::Slice { .. } | Op::Concat => DepClass::Shift,
            Op::Add | Op::Sub | Op::Cmp(_) => DepClass::Arithmetic,
            Op::Mul | Op::Load(_) | Op::Output => DepClass::BlackBox,
        }
    }

    /// `true` if the op is implemented in LUT fabric (i.e. participates in
    /// technology mapping). Sources, sinks and black boxes return `false`.
    pub fn is_lut_mappable(&self) -> bool {
        !matches!(self.dep_class(), DepClass::BlackBox | DepClass::Source)
    }

    /// `true` for black-box operations (paper's *BB* ops): they keep their
    /// trivial cut and are subject to resource constraints.
    pub fn is_black_box(&self) -> bool {
        matches!(self, Op::Mul | Op::Load(_))
    }

    /// `true` for pure wiring ops that cost no logic when realized
    /// (constant shifts, slices, concatenations).
    pub fn is_wire(&self) -> bool {
        matches!(
            self,
            Op::Shl(_) | Op::Shr(_) | Op::Slice { .. } | Op::Concat
        )
    }

    /// The resource class consumed by this op, if it is resource-limited.
    pub fn resource(&self) -> Option<Resource> {
        match self {
            Op::Mul => Some(Resource::Mult),
            Op::Load(m) => Some(Resource::MemPort(*m)),
            _ => None,
        }
    }

    /// Short mnemonic used in dumps and schedules.
    pub fn mnemonic(&self) -> String {
        match self {
            Op::Input => "input".into(),
            Op::Const(c) => format!("const({c:#x})"),
            Op::Output => "output".into(),
            Op::And => "and".into(),
            Op::Or => "or".into(),
            Op::Xor => "xor".into(),
            Op::Not => "not".into(),
            Op::Mux => "mux".into(),
            Op::Shl(s) => format!("shl({s})"),
            Op::Shr(s) => format!("shr({s})"),
            Op::Slice { lo } => format!("slice({lo})"),
            Op::Concat => "concat".into(),
            Op::Add => "add".into(),
            Op::Sub => "sub".into(),
            Op::Cmp(p) => format!("cmp.{p}"),
            Op::Mul => "mul".into(),
            Op::Load(m) => format!("load.{m}"),
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_class() {
        assert_eq!(Op::Input.arity(), 0);
        assert_eq!(Op::Not.arity(), 1);
        assert_eq!(Op::Add.arity(), 2);
        assert_eq!(Op::Mux.arity(), 3);
        assert_eq!(Op::Load(MemId(0)).arity(), 1);
    }

    #[test]
    fn dep_classes() {
        assert_eq!(Op::Xor.dep_class(), DepClass::Bitwise);
        assert_eq!(Op::Shr(3).dep_class(), DepClass::Shift);
        assert_eq!(Op::Add.dep_class(), DepClass::Arithmetic);
        assert_eq!(Op::Mul.dep_class(), DepClass::BlackBox);
        assert_eq!(Op::Const(5).dep_class(), DepClass::Source);
    }

    #[test]
    fn lut_mappable_excludes_bb_and_sources() {
        assert!(Op::Xor.is_lut_mappable());
        assert!(Op::Cmp(CmpPred::Sge).is_lut_mappable());
        assert!(!Op::Mul.is_lut_mappable());
        assert!(!Op::Input.is_lut_mappable());
        assert!(!Op::Output.is_lut_mappable());
    }

    #[test]
    fn cmp_pred_signed_eval() {
        // 4-bit: 0b1111 = -1 signed, 15 unsigned.
        assert!(CmpPred::Slt.eval(0b1111, 0, 4));
        assert!(!CmpPred::Sge.eval(0b1111, 0, 4));
        assert!(CmpPred::Ugt.eval(0b1111, 0, 4));
        assert!(CmpPred::Sge.eval(0b0111, 0, 4));
        // 64-bit boundary.
        assert!(CmpPred::Slt.eval(u64::MAX, 0, 64));
    }

    #[test]
    fn cmp_pred_sle_sgt_eval() {
        // 4-bit: 0b1111 = -1 signed.
        assert!(CmpPred::Sle.eval(0b1111, 0, 4));
        assert!(!CmpPred::Sgt.eval(0b1111, 0, 4));
        assert!(CmpPred::Sle.eval(0, 0, 4));
        assert!(!CmpPred::Sgt.eval(0, 0, 4));
        assert!(CmpPred::Sgt.eval(0b0111, 0, 4));
        assert!(CmpPred::Sgt.eval(1, u64::MAX, 64));
        assert!(CmpPred::Sle.eval(u64::MAX, 1, 64));
    }

    #[test]
    fn cmp_pred_classification() {
        assert!(CmpPred::Sle.is_signed());
        assert!(CmpPred::Sgt.is_signed());
        // Only slt/sge are pure sign tests against zero: x <= 0 and x > 0
        // also depend on the low bits.
        assert!(CmpPred::Slt.msb_test_vs_zero());
        assert!(CmpPred::Sge.msb_test_vs_zero());
        assert!(!CmpPred::Sle.msb_test_vs_zero());
        assert!(!CmpPred::Sgt.msb_test_vs_zero());
        assert!(!CmpPred::Ult.msb_test_vs_zero());
        // a <pred> a.
        for p in [
            CmpPred::Eq,
            CmpPred::Ule,
            CmpPred::Uge,
            CmpPred::Sle,
            CmpPred::Sge,
        ] {
            assert!(p.reflexive_value(), "{p}");
            assert!(p.eval(5, 5, 8));
        }
        for p in [
            CmpPred::Ne,
            CmpPred::Ult,
            CmpPred::Ugt,
            CmpPred::Slt,
            CmpPred::Sgt,
        ] {
            assert!(!p.reflexive_value(), "{p}");
            assert!(!p.eval(5, 5, 8));
        }
    }

    #[test]
    fn resources() {
        assert_eq!(Op::Mul.resource(), Some(Resource::Mult));
        assert_eq!(
            Op::Load(MemId(2)).resource(),
            Some(Resource::MemPort(MemId(2)))
        );
        assert_eq!(Op::Add.resource(), None);
    }
}
