//! Reference interpreter for word-level CDFGs.
//!
//! This executes a graph iteration by iteration, with loop-carried edges
//! reading values from earlier iterations. It is the golden model every
//! generated pipeline is checked against (see `pipemap-netlist`'s
//! cycle-accurate simulator).

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use crate::graph::{Dfg, Memory, NodeId};
use crate::op::Op;

/// The all-ones mask for a bit width in `1..=64`.
///
/// # Panics
///
/// Panics if `width` is 0 or greater than 64.
#[inline]
pub fn mask(width: u32) -> u64 {
    assert!((1..=64).contains(&width), "width {width} out of range");
    if width == 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EvalError {
    /// No input stream was provided for a primary input.
    MissingInput {
        /// The input node without a stream.
        node: NodeId,
    },
    /// An input stream is shorter than the requested iteration count.
    ShortInput {
        /// The input node whose stream ran out.
        node: NodeId,
        /// Length of the provided stream.
        len: usize,
        /// Number of iterations requested.
        need: usize,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::MissingInput { node } => {
                write!(f, "no input stream provided for primary input {node}")
            }
            EvalError::ShortInput { node, len, need } => write!(
                f,
                "input stream for {node} has {len} values but {need} iterations were requested"
            ),
        }
    }
}

impl Error for EvalError {}

/// Per-iteration values for each primary input.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InputStreams {
    streams: HashMap<NodeId, Vec<u64>>,
}

impl InputStreams {
    /// An empty set of streams.
    pub fn new() -> Self {
        InputStreams::default()
    }

    /// Set the stream for one input node (values are masked to the input's
    /// width during execution).
    pub fn set(&mut self, node: NodeId, values: Vec<u64>) -> &mut Self {
        self.streams.insert(node, values);
        self
    }

    /// Deterministic pseudo-random streams for every primary input of
    /// `dfg` — handy for differential testing.
    pub fn random(dfg: &Dfg, iterations: usize, seed: u64) -> Self {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut next = move || {
            // xorshift64*
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        let mut s = InputStreams::new();
        for id in dfg.inputs() {
            let w = dfg.node(id).width;
            let vals = (0..iterations).map(|_| next() & mask(w)).collect();
            s.set(id, vals);
        }
        s
    }

    fn value(&self, node: NodeId, iter: usize, need: usize) -> Result<u64, EvalError> {
        let stream = self
            .streams
            .get(&node)
            .ok_or(EvalError::MissingInput { node })?;
        stream.get(iter).copied().ok_or(EvalError::ShortInput {
            node,
            len: stream.len(),
            need,
        })
    }
}

impl FromIterator<(NodeId, Vec<u64>)> for InputStreams {
    fn from_iter<T: IntoIterator<Item = (NodeId, Vec<u64>)>>(iter: T) -> Self {
        InputStreams {
            streams: iter.into_iter().collect(),
        }
    }
}

/// The values computed by every node over every executed iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    values: Vec<Vec<u64>>,
}

impl Trace {
    /// The value of `node` at `iteration`.
    ///
    /// # Panics
    ///
    /// Panics if the iteration or node is out of range.
    pub fn value(&self, iteration: usize, node: NodeId) -> u64 {
        self.values[iteration][node.index()]
    }

    /// Number of executed iterations.
    pub fn iterations(&self) -> usize {
        self.values.len()
    }

    /// Values of all primary outputs of `dfg` at one iteration, in id
    /// order.
    pub fn outputs(&self, dfg: &Dfg, iteration: usize) -> Vec<(NodeId, u64)> {
        dfg.outputs()
            .into_iter()
            .map(|o| (o, self.value(iteration, o)))
            .collect()
    }
}

/// Evaluate a single operation on already-masked argument values.
///
/// `in_widths` are the widths of the producing nodes, needed by signed
/// compares and concatenation. Exposed so the netlist simulator evaluates
/// black boxes identically to the interpreter.
pub fn eval_op(op: &Op, width: u32, args: &[u64], in_widths: &[u32], memories: &[Memory]) -> u64 {
    let m = mask(width);
    match op {
        Op::Input => unreachable!("inputs are fed by streams"),
        Op::Const(c) => c & m,
        Op::Output => args[0] & m,
        Op::And => args[0] & args[1] & m,
        Op::Or => (args[0] | args[1]) & m,
        Op::Xor => (args[0] ^ args[1]) & m,
        Op::Not => !args[0] & m,
        Op::Mux => {
            if args[0] & 1 != 0 {
                args[1] & m
            } else {
                args[2] & m
            }
        }
        Op::Shl(s) => {
            if *s >= 64 {
                0
            } else {
                (args[0] << s) & m
            }
        }
        Op::Shr(s) => {
            if *s >= 64 {
                0
            } else {
                (args[0] >> s) & m
            }
        }
        Op::Slice { lo } => (args[0] >> lo) & m,
        Op::Concat => ((args[0] << in_widths[1]) | args[1]) & m,
        Op::Add => args[0].wrapping_add(args[1]) & m,
        Op::Sub => args[0].wrapping_sub(args[1]) & m,
        Op::Cmp(p) => u64::from(p.eval(args[0], args[1], in_widths[0])),
        Op::Mul => args[0].wrapping_mul(args[1]) & m,
        Op::Load(mem) => {
            let data = &memories[mem.0 as usize].data;
            data[args[0] as usize % data.len()] & m
        }
    }
}

/// Execute `iterations` loop iterations of `dfg` with the given input
/// streams, returning the full value [`Trace`].
///
/// Loop-carried reads that reach before iteration 0 see
/// [`Dfg::init_value`].
///
/// # Errors
///
/// Returns [`EvalError`] if an input stream is missing or too short.
///
/// # Examples
///
/// ```
/// use pipemap_ir::{DfgBuilder, InputStreams, execute};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DfgBuilder::new("sum");
/// let x = b.input("x", 8);
/// let prev = b.placeholder(8);
/// let acc = b.add(x, prev);
/// b.bind(prev, acc, 1)?;
/// let out = b.output("acc", acc);
/// let dfg = b.finish()?;
///
/// let mut ins = InputStreams::new();
/// ins.set(dfg.inputs()[0], vec![1, 2, 3]);
/// let trace = execute(&dfg, &ins, 3)?;
/// assert_eq!(trace.value(2, out), 6); // running sum 1+2+3
/// # Ok(())
/// # }
/// ```
pub fn execute(dfg: &Dfg, inputs: &InputStreams, iterations: usize) -> Result<Trace, EvalError> {
    let order = dfg
        .topo_order()
        .expect("validated graphs have a topological order");
    let mut values: Vec<Vec<u64>> = Vec::with_capacity(iterations);
    for iter in 0..iterations {
        let mut row = vec![0u64; dfg.len()];
        for &id in &order {
            let node = dfg.node(id);
            if node.op == Op::Input {
                row[id.index()] = inputs.value(id, iter, iterations)? & mask(node.width);
                continue;
            }
            let mut args = Vec::with_capacity(node.ins.len());
            let mut in_widths = Vec::with_capacity(node.ins.len());
            for p in &node.ins {
                let v = if p.dist == 0 {
                    row[p.node.index()]
                } else if iter >= p.dist as usize {
                    values[iter - p.dist as usize][p.node.index()]
                } else {
                    dfg.init_value(p.node) & mask(dfg.node(p.node).width)
                };
                args.push(v);
                in_widths.push(dfg.node(p.node).width);
            }
            row[id.index()] = eval_op(&node.op, node.width, &args, &in_widths, dfg.memories());
        }
        values.push(row);
    }
    Ok(Trace { values })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DfgBuilder;
    use crate::op::CmpPred;

    #[test]
    fn masks() {
        assert_eq!(mask(1), 1);
        assert_eq!(mask(8), 0xFF);
        assert_eq!(mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_mask_panics() {
        mask(0);
    }

    #[test]
    fn basic_logic_and_arith() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.input("y", 8);
        let a = b.and(x, y);
        let o = b.xor(a, y);
        let s = b.add(o, x);
        let out = b.output("s", s);
        let g = b.finish().expect("valid");

        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0xF0]);
        ins.set(g.inputs()[1], vec![0x3C]);
        let t = execute(&g, &ins, 1).expect("executes");
        // (0xF0 & 0x3C) ^ 0x3C = 0x30 ^ 0x3C = 0x0C; + 0xF0 = 0xFC
        assert_eq!(t.value(0, out), 0xFC);
    }

    #[test]
    fn signed_compare_and_mux() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 4);
        let nonneg = b.is_non_negative(x);
        let a = b.const_(1, 4);
        let c = b.const_(2, 4);
        let m = b.mux(nonneg, a, c);
        let out = b.output("m", m);
        let g = b.finish().expect("valid");

        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0b0111, 0b1000]); // +7 then -8
        let t = execute(&g, &ins, 2).expect("executes");
        assert_eq!(t.value(0, out), 1);
        assert_eq!(t.value(1, out), 2);
    }

    #[test]
    fn loop_carried_distance_two() {
        // fib-like: f = f@-1 + f@-2, seeded by init values.
        let mut b = DfgBuilder::new("fib");
        let p1 = b.placeholder(16);
        let p2 = b.placeholder(16);
        let f = b.add(p1, p2);
        b.bind(p1, f, 1).expect("bind");
        b.bind(p2, f, 2).expect("bind");
        b.set_init_value(f, 1);
        let out = b.output("f", f);
        let g = b.finish().expect("valid");

        let t = execute(&g, &InputStreams::new(), 5).expect("executes");
        // iter0: 1+1=2, iter1: 2+1=3, iter2: 3+2=5, iter3: 5+3=8, iter4: 13
        let got: Vec<u64> = (0..5).map(|i| t.value(i, out)).collect();
        assert_eq!(got, vec![2, 3, 5, 8, 13]);
    }

    #[test]
    fn memory_load() {
        let mut b = DfgBuilder::new("rom");
        let m = b.add_memory("tbl", 8, vec![10, 20, 30, 40]);
        let a = b.input("a", 2);
        let v = b.load(m, a);
        let out = b.output("v", v);
        let g = b.finish().expect("valid");

        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0, 3, 2]);
        let t = execute(&g, &ins, 3).expect("executes");
        assert_eq!(
            (0..3).map(|i| t.value(i, out)).collect::<Vec<_>>(),
            vec![10, 40, 30]
        );
    }

    #[test]
    fn slice_concat_roundtrip() {
        let mut b = DfgBuilder::new("sc");
        let x = b.input("x", 8);
        let hi = b.slice(x, 4, 4);
        let lo = b.slice(x, 0, 4);
        let back = b.concat(hi, lo);
        let out = b.output("y", back);
        let g = b.finish().expect("valid");
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0xA5]);
        let t = execute(&g, &ins, 1).expect("executes");
        assert_eq!(t.value(0, out), 0xA5);
    }

    #[test]
    fn missing_and_short_streams_error() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 8);
        let o = b.not(x);
        b.output("o", o);
        let g = b.finish().expect("valid");

        assert!(matches!(
            execute(&g, &InputStreams::new(), 1),
            Err(EvalError::MissingInput { .. })
        ));
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![1]);
        assert!(matches!(
            execute(&g, &ins, 2),
            Err(EvalError::ShortInput { .. })
        ));
    }

    #[test]
    fn random_streams_cover_all_inputs() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 8);
        let y = b.input("y", 3);
        let s = b.zext(y, 8);
        let a = b.add(x, s);
        b.output("o", a);
        let g = b.finish().expect("valid");
        let ins = InputStreams::random(&g, 10, 42);
        let t = execute(&g, &ins, 10).expect("random streams suffice");
        assert_eq!(t.iterations(), 10);
        // Determinism.
        let ins2 = InputStreams::random(&g, 10, 42);
        assert_eq!(ins, ins2);
    }

    #[test]
    fn cmp_uses_operand_width_for_sign() {
        let mut b = DfgBuilder::new("t");
        let x = b.input("x", 4);
        let y = b.const_(0, 4);
        let lt = b.cmp(CmpPred::Slt, x, y);
        let out = b.output("lt", lt);
        let g = b.finish().expect("valid");
        let mut ins = InputStreams::new();
        ins.set(g.inputs()[0], vec![0b1000]); // -8 in 4 bits
        let t = execute(&g, &ins, 1).expect("executes");
        assert_eq!(t.value(0, out), 1);
    }
}
